//! HTCD: Hoeffding Tree with Change Detection.
//!
//! The paper's simplest framework baseline — a single Hoeffding tree whose
//! prequential errors feed an ADWIN detector; on drift the tree is rebuilt
//! from scratch. Each rebuild is a new "model", so HTCD's C-F1 is poor on
//! recurring-concept streams (it can never bring a previous model back).

use ficsum_classifiers::{Classifier, HoeffdingTree};
use ficsum_drift::{Adwin, DetectorState, DriftDetector};
use ficsum_eval::EvaluatedSystem;

/// The HTCD framework.
pub struct Htcd {
    tree: HoeffdingTree,
    detector: Adwin,
    n_features: usize,
    n_classes: usize,
    generation: usize,
    n_resets: usize,
}

impl Htcd {
    /// HTCD with ADWIN delta 0.002 (MOA default).
    pub fn new(n_features: usize, n_classes: usize) -> Self {
        Self {
            tree: HoeffdingTree::new(n_features, n_classes),
            detector: Adwin::new(0.002),
            n_features,
            n_classes,
            generation: 0,
            n_resets: 0,
        }
    }

    /// How many times the tree has been rebuilt.
    pub fn n_resets(&self) -> usize {
        self.n_resets
    }
}

impl EvaluatedSystem for Htcd {
    fn step(&mut self, x: &[f64], y: usize) -> (usize, usize) {
        let prediction = self.tree.predict(x);
        let err = if prediction == y { 0.0 } else { 1.0 };
        self.tree.train(x, y);
        if self.detector.add(err) == DetectorState::Drift {
            self.tree = HoeffdingTree::new(self.n_features, self.n_classes);
            self.detector.reset();
            self.generation += 1;
            self.n_resets += 1;
        }
        (prediction, self.generation)
    }

    fn name(&self) -> String {
        "HTCD".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    fn blob(rng: &mut Xoshiro256pp, flip: bool) -> (Vec<f64>, usize) {
        let y = rng.random_range(0..2usize);
        let x0 = if y == 0 { rng.random::<f64>() } else { 2.0 + rng.random::<f64>() };
        (vec![x0, rng.random()], if flip { 1 - y } else { y })
    }

    #[test]
    fn resets_on_label_flip() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut htcd = Htcd::new(2, 2);
        for _ in 0..3000 {
            let (x, y) = blob(&mut rng, false);
            htcd.step(&x, y);
        }
        assert_eq!(htcd.n_resets(), 0, "no reset under stationarity");
        let mut correct = 0;
        for _ in 0..4000 {
            let (x, y) = blob(&mut rng, true);
            let (p, _) = htcd.step(&x, y);
            if p == y {
                correct += 1;
            }
        }
        assert!(htcd.n_resets() >= 1, "flip must reset the tree");
        assert!(correct > 2600, "post-drift recovery too weak: {correct}/4000");
    }

    #[test]
    fn model_id_increments_per_reset() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut htcd = Htcd::new(2, 2);
        let (_, m0) = htcd.step(&[0.0, 0.0], 0);
        assert_eq!(m0, 0);
        for _ in 0..2000 {
            let (x, y) = blob(&mut rng, false);
            htcd.step(&x, y);
        }
        for _ in 0..3000 {
            let (x, y) = blob(&mut rng, true);
            htcd.step(&x, y);
        }
        let (_, m1) = htcd.step(&[0.0, 0.0], 0);
        assert!(m1 >= 1);
    }
}
