//! Adapter exposing the ensemble classifiers (DWM, ARF) as evaluated
//! systems.
//!
//! Ensembles maintain one continuously evolving model, so their model
//! identity never changes — the paper's Table VI shows exactly this: strong
//! kappa (especially ARF) but flat, poor C-F1 because a single model id
//! cannot track recurring concepts.

use ficsum_classifiers::{AdaptiveRandomForest, Classifier, DynamicWeightedMajority};
use ficsum_eval::EvaluatedSystem;

/// Which ensemble to run.
pub enum EnsembleKind {
    /// Dynamic Weighted Majority (Kolter & Maloof 2007).
    Dwm(DynamicWeightedMajority),
    /// Adaptive Random Forest (Gomes et al. 2017).
    Arf(AdaptiveRandomForest),
}

/// An ensemble under evaluation.
pub struct EnsembleSystem {
    kind: EnsembleKind,
}

impl EnsembleSystem {
    /// DWM with paper-parity defaults (10 Hoeffding-tree experts).
    pub fn dwm(n_features: usize, n_classes: usize) -> Self {
        Self { kind: EnsembleKind::Dwm(DynamicWeightedMajority::new(n_features, n_classes)) }
    }

    /// ARF with paper-parity defaults (10 trees).
    pub fn arf(n_features: usize, n_classes: usize) -> Self {
        Self { kind: EnsembleKind::Arf(AdaptiveRandomForest::new(n_features, n_classes)) }
    }

    fn classifier(&mut self) -> &mut dyn Classifier {
        match &mut self.kind {
            EnsembleKind::Dwm(c) => c,
            EnsembleKind::Arf(c) => c,
        }
    }
}

impl EvaluatedSystem for EnsembleSystem {
    fn step(&mut self, x: &[f64], y: usize) -> (usize, usize) {
        let clf = self.classifier();
        let prediction = clf.predict(x);
        clf.train(x, y);
        (prediction, 0) // single evolving model
    }

    fn name(&self) -> String {
        match &self.kind {
            EnsembleKind::Dwm(_) => "DWM".into(),
            EnsembleKind::Arf(_) => "ARF".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    #[test]
    fn both_ensembles_learn() {
        for mut system in [EnsembleSystem::dwm(2, 2), EnsembleSystem::arf(2, 2)] {
            let mut rng = Xoshiro256pp::seed_from_u64(6);
            let mut correct = 0;
            for i in 0..1500 {
                let y = rng.random_range(0..2usize);
                let x = vec![y as f64 * 2.0 + rng.random::<f64>(), rng.random()];
                let (p, m) = system.step(&x, y);
                assert_eq!(m, 0, "ensembles expose a single model id");
                if i > 500 && p == y {
                    correct += 1;
                }
            }
            assert!(correct > 900, "{} accuracy too low: {correct}/1000", system.name());
        }
    }
}
