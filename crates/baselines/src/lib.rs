//! Baseline adaptive-stream frameworks (Table VI of the paper).
//!
//! Every framework implements [`ficsum_eval::EvaluatedSystem`] so the same
//! prequential runner measures kappa, C-F1 and runtime:
//!
//! * [`Htcd`] — a Hoeffding tree reset whenever ADWIN detects drift in its
//!   error rate (single evolving model, no recurrence handling),
//! * [`Rcd`] — the Recurring Concept Drift framework (Gonçalves & De Barros,
//!   2013): per-concept stored observation windows, EDDM drift detection and
//!   a two-sample statistical test for recurrence,
//! * [`EnsembleSystem`] — adapter running DWM or ARF (one evolving ensemble
//!   model, hence their flat C-F1 in the paper),
//! * [`FicsumSystem`] — adapter exposing a [`ficsum_core::Ficsum`] instance
//!   (any variant) to the runner.

pub mod ensemble;
pub mod ficsum_adapter;
pub mod htcd;
pub mod rcd;

pub use ensemble::EnsembleSystem;
pub use ficsum_adapter::FicsumSystem;
pub use htcd::Htcd;
pub use rcd::Rcd;
