//! Adapter exposing [`ficsum_core::Ficsum`] (any variant) to the runner.

use ficsum_core::{Ficsum, FicsumBuilder, FicsumConfig, Variant};
use ficsum_eval::EvaluatedSystem;
use ficsum_obs::Recorder;

/// A FiCSUM instance under evaluation.
pub struct FicsumSystem {
    inner: Ficsum,
    label: String,
}

impl FicsumSystem {
    /// Builds the given variant with the paper-default configuration.
    pub fn new(n_features: usize, n_classes: usize, variant: Variant) -> Self {
        Self::with_config(n_features, n_classes, variant, FicsumConfig::default())
    }

    /// Builds the given variant with an explicit configuration.
    pub fn with_config(
        n_features: usize,
        n_classes: usize,
        variant: Variant,
        config: FicsumConfig,
    ) -> Self {
        let inner = FicsumBuilder::new(n_features, n_classes)
            .variant(variant)
            .config(config)
            .build()
            .expect("valid FiCSUM configuration");
        Self { inner, label: variant.name() }
    }

    /// Wraps an already-built instance.
    pub fn from_instance(inner: Ficsum, label: impl Into<String>) -> Self {
        Self { inner, label: label.into() }
    }

    /// Access to the wrapped framework (for diagnostics).
    pub fn inner(&self) -> &Ficsum {
        &self.inner
    }
}

impl EvaluatedSystem for FicsumSystem {
    fn step(&mut self, x: &[f64], y: usize) -> (usize, usize) {
        let outcome = self.inner.process(x, y);
        (outcome.prediction, outcome.active_concept)
    }

    fn discrimination(&mut self) -> Option<f64> {
        self.inner.discrimination_probe()
    }

    fn attach_recorder(&mut self, recorder: Box<dyn Recorder>) -> bool {
        // The eval contract attaches recorders to an already-built system;
        // `Ficsum::attach_recorder` is the supported post-build hook for
        // exactly this driver shape.
        self.inner.attach_recorder(recorder);
        true
    }

    fn recorder(&self) -> Option<&dyn Recorder> {
        Some(self.inner.recorder())
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_eval::{evaluate_with, RunOptions};
    use ficsum_synth::stagger_stream;
    use ficsum_stream::{StreamSource, VecStream};

    fn truncated(stream: VecStream, n: usize) -> VecStream {
        let data: Vec<_> = stream.observations().iter().take(n).cloned().collect();
        VecStream::with_classes(data, 2)
    }

    #[test]
    fn ficsum_full_beats_chance_on_stagger() {
        let mut stream = truncated(stagger_stream(1), 8000);
        let mut system = FicsumSystem::with_config(
            stream.dims(),
            2,
            Variant::Full,
            FicsumConfig::default().with_window_size(50).with_fingerprint_gap(5),
        );
        let result = evaluate_with(&mut system, &mut stream, &RunOptions::new(2).observed());
        assert!(result.kappa > 0.3, "kappa {}", result.kappa);
        assert!(result.c_f1 > 0.2, "c_f1 {}", result.c_f1);
        assert_eq!(result.n_observations, 8000);
        // The observed run must report real per-stage costs and a drift
        // accounting derived purely from recorded events.
        let obs = result.observability.expect("FicsumSystem supports recorders");
        assert!(obs.n_drifts >= 1, "{obs:?}");
        assert!(!obs.stage_costs.is_empty(), "stage spans must be recorded");
        assert!(obs.total_stage_nanos() > 0);
    }

    #[test]
    fn variants_report_their_names() {
        assert_eq!(FicsumSystem::new(3, 2, Variant::ErrorRate).name(), "ER");
        assert_eq!(FicsumSystem::new(3, 2, Variant::Full).name(), "FiCSUM");
    }
}
