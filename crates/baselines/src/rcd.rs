//! RCD — Recurring Concept Drift framework (Gonçalves & De Barros, Pattern
//! Recognition Letters 2013).
//!
//! RCD stores, per concept, a classifier together with a *window of raw
//! observations*. Drift is detected with EDDM on the classifier's errors
//! (warning zone starts buffering recent observations). On drift, the
//! buffered observations are compared against each stored concept's window
//! with a two-sample statistical test; a match reuses that concept's
//! classifier, otherwise a new concept is created.
//!
//! The original uses a KNN-based multivariate test; we use per-feature
//! Kolmogorov–Smirnov tests with a majority vote — the same role (does this
//! sample come from the stored distribution?) with a textbook test.

use ficsum_classifiers::{Classifier, HoeffdingTree};
use ficsum_drift::{DetectorState, DriftDetector, Eddm};
use ficsum_eval::EvaluatedSystem;

/// Two-sample Kolmogorov–Smirnov distance between sorted samples.
fn ks_distance(a: &mut [f64], b: &mut [f64]) -> f64 {
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    let (n, m) = (a.len(), b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n && j < m {
        let (x, y) = (a[i], b[j]);
        if x < y {
            i += 1;
        } else if y < x {
            j += 1;
        } else {
            // Tied value: step both CDFs past every duplicate before
            // measuring the gap, otherwise ties inflate the distance.
            while i < n && a[i] == x {
                i += 1;
            }
            while j < m && b[j] == x {
                j += 1;
            }
        }
        d = d.max((i as f64 / n as f64 - j as f64 / m as f64).abs());
    }
    d
}

/// Whether two samples pass the KS test at alpha = 0.05 (null: same
/// distribution is *not* rejected).
fn ks_same(a: &[f64], b: &[f64]) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    let d = ks_distance(&mut a, &mut b);
    let (n, m) = (a.len() as f64, b.len() as f64);
    let critical = 1.36 * ((n + m) / (n * m)).sqrt();
    d <= critical
}

struct StoredConcept {
    id: usize,
    classifier: HoeffdingTree,
    /// Column-major stored sample: `window[feature]` = values.
    window: Vec<Vec<f64>>,
    labels: Vec<f64>,
}

/// The RCD framework.
pub struct Rcd {
    concepts: Vec<StoredConcept>,
    active: usize, // index into concepts
    detector: Eddm,
    /// Recent observations buffered since the warning zone began.
    buffer: Vec<(Vec<f64>, usize)>,
    buffer_cap: usize,
    n_features: usize,
    n_classes: usize,
    next_id: usize,
    /// Fraction of feature tests that must accept for a recurrence.
    accept_fraction: f64,
}

impl Rcd {
    /// RCD with a 200-observation comparison window.
    pub fn new(n_features: usize, n_classes: usize) -> Self {
        let first = StoredConcept {
            id: 0,
            classifier: HoeffdingTree::new(n_features, n_classes),
            window: vec![Vec::new(); n_features],
            labels: Vec::new(),
        };
        Self {
            concepts: vec![first],
            active: 0,
            detector: Eddm::default(),
            buffer: Vec::new(),
            buffer_cap: 200,
            n_features,
            n_classes,
            next_id: 1,
            accept_fraction: 0.7,
        }
    }

    /// Number of stored concepts.
    pub fn n_concepts(&self) -> usize {
        self.concepts.len()
    }

    fn buffer_columns(&self) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut cols = vec![Vec::with_capacity(self.buffer.len()); self.n_features];
        let mut labels = Vec::with_capacity(self.buffer.len());
        for (x, y) in &self.buffer {
            for (c, v) in cols.iter_mut().zip(x) {
                c.push(*v);
            }
            labels.push(*y as f64);
        }
        (cols, labels)
    }

    /// Tests the buffered sample against a stored concept's window.
    fn matches(&self, concept: &StoredConcept, cols: &[Vec<f64>], labels: &[f64]) -> bool {
        if concept.labels.is_empty() {
            return false;
        }
        let mut accepted = 0usize;
        let mut total = 0usize;
        for (stored, fresh) in concept.window.iter().zip(cols) {
            total += 1;
            if ks_same(stored, fresh) {
                accepted += 1;
            }
        }
        total += 1;
        if ks_same(&concept.labels, labels) {
            accepted += 1;
        }
        accepted as f64 / total as f64 >= self.accept_fraction
    }

    fn on_drift(&mut self) {
        let (cols, labels) = self.buffer_columns();
        let matched = self
            .concepts
            .iter()
            .position(|c| self.matches(c, &cols, &labels));
        match matched {
            Some(idx) => self.active = idx,
            None => {
                let id = self.next_id;
                self.next_id += 1;
                self.concepts.push(StoredConcept {
                    id,
                    classifier: HoeffdingTree::new(self.n_features, self.n_classes),
                    window: cols,
                    labels,
                });
                self.active = self.concepts.len() - 1;
            }
        }
        self.buffer.clear();
        self.detector.reset();
    }
}

impl EvaluatedSystem for Rcd {
    fn step(&mut self, x: &[f64], y: usize) -> (usize, usize) {
        let concept = &mut self.concepts[self.active];
        let prediction = concept.classifier.predict(x);
        let err = if prediction == y { 0.0 } else { 1.0 };
        concept.classifier.train(x, y);

        // Keep the stored window fresh while the concept is active.
        if concept.labels.len() < 400 {
            for (c, v) in concept.window.iter_mut().zip(x) {
                c.push(*v);
            }
            concept.labels.push(y as f64);
        }

        match self.detector.add(err) {
            DetectorState::Warning => {
                if self.buffer.len() < self.buffer_cap {
                    self.buffer.push((x.to_vec(), y));
                }
            }
            DetectorState::Drift => {
                self.buffer.push((x.to_vec(), y));
                self.on_drift();
            }
            DetectorState::Stable => {
                // Keep a rolling short buffer so a sudden drift still has a
                // sample to test with.
                self.buffer.push((x.to_vec(), y));
                if self.buffer.len() > self.buffer_cap {
                    self.buffer.remove(0);
                }
            }
        }
        (prediction, self.concepts[self.active].id)
    }

    fn name(&self) -> String {
        "RCD".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    #[test]
    fn ks_distance_identical_is_zero() {
        let mut a = vec![1.0, 2.0, 3.0, 4.0];
        let mut b = a.clone();
        assert_eq!(ks_distance(&mut a, &mut b), 0.0);
    }

    #[test]
    fn ks_detects_disjoint_samples() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 * 0.01).collect();
        let b: Vec<f64> = (0..100).map(|i| 5.0 + i as f64 * 0.01).collect();
        assert!(!ks_same(&a, &b));
    }

    #[test]
    fn ks_accepts_same_distribution() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let a: Vec<f64> = (0..200).map(|_| rng.random()).collect();
        let b: Vec<f64> = (0..200).map(|_| rng.random()).collect();
        assert!(ks_same(&a, &b));
    }

    #[test]
    fn runs_prequentially() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut rcd = Rcd::new(2, 2);
        let mut correct = 0;
        for _ in 0..3000 {
            let y = rng.random_range(0..2usize);
            let x = vec![y as f64 + rng.random::<f64>() * 0.5, rng.random()];
            let (p, _) = rcd.step(&x, y);
            if p == y {
                correct += 1;
            }
        }
        assert!(correct > 2400, "accuracy too low: {correct}/3000");
        assert_eq!(rcd.n_concepts(), 1, "stationary stream: one concept");
    }

    #[test]
    fn creates_concept_on_feature_drift() {
        // Label noise keeps a steady error flow so EDDM has distance
        // statistics; the drift shifts the feature marginal (rejected by
        // the KS test) and scrambles the labelling (bunching the errors).
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut rcd = Rcd::new(2, 2);
        let emit = |rcd: &mut Rcd, rng: &mut Xoshiro256pp, drifted: bool| {
            let mut y = rng.random_range(0..2usize);
            let x = if drifted {
                vec![5.0 + (1 - y) as f64 * 3.0 + rng.random::<f64>(), rng.random()]
            } else {
                vec![y as f64 + rng.random::<f64>() * 0.5, rng.random()]
            };
            if rng.random::<f64>() < 0.15 {
                y = 1 - y;
            }
            rcd.step(&x, y);
        };
        for _ in 0..2000 {
            emit(&mut rcd, &mut rng, false);
        }
        for _ in 0..4000 {
            emit(&mut rcd, &mut rng, true);
        }
        assert!(rcd.n_concepts() >= 2, "drift should create a concept");
    }
}
