//! Meta-feature sensitivity suite: each function must respond to exactly
//! the kind of behaviour it claims to capture (the unit-level version of
//! the paper's Table V).

use ficsum_meta::{
    autocorrelation, imf_entropies, kurtosis, lagged_mutual_information, mean, skewness, std_dev,
    turning_point_rate, EmdConfig,
};
use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

fn uniform(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n).map(|_| rng.random()).collect()
}

fn ar1(phi: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut prev = 0.5;
    (0..n)
        .map(|_| {
            prev = phi * prev + (1.0 - phi) * rng.random::<f64>();
            prev
        })
        .collect()
}

fn with_sine(base: &[f64], amp: f64, freq: f64) -> Vec<f64> {
    base.iter().enumerate().map(|(i, &v)| v + amp * (freq * i as f64).sin()).collect()
}

#[test]
fn mean_and_std_respond_to_distribution_shift() {
    let a = uniform(200, 1);
    let shifted: Vec<f64> = a.iter().map(|v| v + 0.5).collect();
    let scaled: Vec<f64> = a.iter().map(|v| 0.5 + (v - 0.5) * 2.0).collect();
    assert!((mean(&shifted) - mean(&a) - 0.5).abs() < 1e-9);
    assert!(std_dev(&scaled) > 1.8 * std_dev(&a));
    // ...but not to autocorrelation changes of the same marginal scale.
    let smooth = ar1(0.9, 200, 2);
    assert!((mean(&smooth) - 0.5).abs() < 0.15);
}

#[test]
fn skew_and_kurtosis_respond_to_shape() {
    let sym = uniform(500, 3);
    let skewed: Vec<f64> = sym.iter().map(|v| v.powf(3.0)).collect();
    assert!(skewness(&skewed) > skewness(&sym) + 0.5);
    let heavy: Vec<f64> = sym
        .iter()
        .enumerate()
        .map(|(i, &v)| if i % 50 == 0 { v + 5.0 } else { v })
        .collect();
    assert!(kurtosis(&heavy) > kurtosis(&sym) + 3.0);
}

#[test]
fn autocorrelation_responds_to_temporal_structure_not_marginal() {
    let iid = uniform(1000, 4);
    let smooth = ar1(0.85, 1000, 5);
    assert!(autocorrelation(&smooth, 1) > autocorrelation(&iid, 1) + 0.5);
}

#[test]
fn mutual_information_detects_frequency_overlay() {
    let base = uniform(600, 6);
    let tonal = with_sine(&base, 0.6, 0.4);
    let mi_base = lagged_mutual_information(&base, 1, 8);
    let mi_tonal = lagged_mutual_information(&tonal, 1, 8);
    assert!(mi_tonal > mi_base + 0.1, "base {mi_base} tonal {mi_tonal}");
}

#[test]
fn turning_point_rate_separates_smooth_from_oscillating() {
    let smooth = ar1(0.9, 500, 7);
    let base = uniform(500, 8);
    let fast = with_sine(&base, 1.5, 2.5);
    let tpr_smooth = turning_point_rate(&smooth);
    let tpr_fast = turning_point_rate(&fast);
    assert!(tpr_smooth < 2.0 / 3.0 - 0.05, "smooth {tpr_smooth}");
    assert!(tpr_fast > tpr_smooth + 0.1, "fast {tpr_fast}");
}

#[test]
fn imf_entropies_change_with_timescale_structure() {
    let noise = uniform(256, 9);
    let layered = with_sine(&with_sine(&noise, 0.8, 0.05), 0.4, 1.2);
    let (n1, n2) = imf_entropies(&noise, &EmdConfig::default());
    let (l1, l2) = imf_entropies(&layered, &EmdConfig::default());
    assert!(n1 > 0.0 && l1 > 0.0);
    // Layered signal distributes differently across the first two IMFs.
    assert!(((n1 - l1).abs() + (n2 - l2).abs()) > 0.05);
}
