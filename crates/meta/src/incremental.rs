//! Evaluation of the incrementally substituted sequence statistics.
//!
//! [`ficsum_stream::SeqStats`] maintains sufficient state — shift-centered
//! lagged cross-sums, a lag-1 joint histogram with exact frozen edges, and
//! an exact turning-point counter — in O(1) per observation. This module
//! turns that state into the values of the corresponding meta-functions,
//! applying *the batch functions' own degenerate-input gates* so the
//! substitution stays within the tolerance contract:
//!
//! * turning-point rate and lagged mutual information are **bit-identical**
//!   to the batch sweep (integer counts, identical arithmetic, identical
//!   loop order);
//! * ACF and PACF agree to ≤ 1e-9 relative (the cross-sums accumulate in a
//!   different order than the batch sweep and the mean/denominator come
//!   from the window's incremental [`Moments`]).
//!
//! When the state cannot honour the contract — non-finite values resident,
//! a PACF denominator small enough to amplify the cross-sum rounding past
//! 1e-9 — [`ext_vals`] returns `None` and the engine falls back to the
//! batch sweep for that source.

use ficsum_stream::{Moments, SeqStats};

/// Substituted values for the incrementally maintained sequence functions
/// of one behaviour source.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExtVals {
    pub acf1: f64,
    pub acf2: f64,
    pub pacf1: f64,
    pub pacf2: f64,
    pub mi: f64,
    pub tpr: f64,
}

/// PACF error amplification is `O(rounding / (1 - r1²))`; below this
/// denominator the ~1e-13 cross-sum rounding could breach the 1e-9
/// contract, so the source falls back to the batch sweep instead.
const PACF_DENOM_FLOOR: f64 = 1e-3;

/// Evaluates every substitutable sequence statistic from `stats`, or
/// `None` when the state is unusable (invalid, stale length, mismatched
/// histogram resolution, or a tolerance-threatening PACF denominator) and
/// the caller must take the batch path. `get(i)` reads window value `i`
/// (oldest first) for the O(lag) re-centering corrections.
pub(crate) fn ext_vals<G: Fn(usize) -> f64>(
    stats: &SeqStats,
    moments: &Moments,
    n: usize,
    mi_bins: usize,
    get: G,
) -> Option<ExtVals> {
    if !stats.is_valid() || stats.count() != n || stats.bins() != mi_bins || mi_bins < 2 {
        return None;
    }
    let mean = moments.mean();
    let denom = moments.sum_sq_dev();
    let r1 = acf(stats, n, mean, denom, 1, &get);
    let r2 = acf(stats, n, mean, denom, 2, &get);
    let pacf2_denom = 1.0 - r1 * r1;
    if pacf2_denom.abs() < PACF_DENOM_FLOOR && n > 3 {
        return None;
    }
    let pacf2 = if pacf2_denom.abs() <= f64::EPSILON {
        0.0
    } else {
        (r2 - r1 * r1) / pacf2_denom
    };
    Some(ExtVals {
        acf1: r1,
        acf2: r2,
        // Durbin–Levinson: pacf(1) is acf(1).
        pacf1: r1,
        pacf2,
        mi: mutual_information(stats, n),
        tpr: turning_point_rate(stats, n),
    })
}

/// Autocorrelation at `lag` from the centered cross-sum, re-centered from
/// the frozen shift `K` to the window mean with an exact O(lag)
/// correction: with `u_i = x_i - K` and `d = mean - K`,
///
/// `Σ (x_i - m)(x_{i+lag} - m) = c_lag - d·(2nd - head - tail) + (n-lag)d²`
///
/// where `head`/`tail` are the sums of the first/last `lag` shifted window
/// values. Gates mirror the batch `autocorrelation` exactly.
fn acf<G: Fn(usize) -> f64>(
    stats: &SeqStats,
    n: usize,
    mean: f64,
    denom: f64,
    lag: usize,
    get: &G,
) -> f64 {
    if n <= lag + 1 {
        return 0.0;
    }
    if denom <= f64::EPSILON {
        return 0.0;
    }
    let k = stats.shift();
    let d = mean - k;
    let head: f64 = (0..lag).map(|i| get(i) - k).sum();
    let tail: f64 = (n - lag..n).map(|i| get(i) - k).sum();
    let num = stats.cross_sum(lag) - d * (2.0 * n as f64 * d - head - tail)
        + (n - lag) as f64 * d * d;
    num / denom
}

/// Lag-1 mutual information from the joint histogram — the same counts,
/// normalisation and summation order as the batch estimator, so the value
/// is bit-identical. The marginals are derived from the joint by integer
/// row/column sums (exact: counts are far below 2^53).
fn mutual_information(stats: &SeqStats, n: usize) -> f64 {
    let lag = 1usize;
    let bins = stats.bins();
    if n <= lag + 2 || bins < 2 {
        return 0.0;
    }
    let (lo, hi) = stats.edges();
    if !(hi - lo).is_finite() || hi - lo <= f64::EPSILON {
        return 0.0;
    }
    let joint = stats.joint();
    let pairs = (n - lag) as f64;
    let mut mi = 0.0;
    for a in 0..bins {
        let px: u32 = joint[a * bins..(a + 1) * bins].iter().sum();
        if px == 0 {
            continue;
        }
        for b in 0..bins {
            let c = joint[a * bins + b];
            if c == 0 {
                continue;
            }
            let py: u32 = (0..bins).map(|r| joint[r * bins + b]).sum();
            let pj = c as f64 / pairs;
            let pa = px as f64 / pairs;
            let pb = py as f64 / pairs;
            mi += pj * (pj / (pa * pb)).ln();
        }
    }
    mi.max(0.0)
}

/// Turning-point rate from the exact counter; the count is bit-identical
/// to the batch sweep by construction, and so is the final division.
fn turning_point_rate(stats: &SeqStats, n: usize) -> f64 {
    if n < 3 {
        return 0.0;
    }
    stats.turning_points() as f64 / (n - 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autocorr::{autocorrelation, partial_autocorrelation};
    use crate::functions::turning_point_rate as batch_tpr;
    use crate::mutual_info::lagged_mutual_information;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    fn assemble(xs: &[f64], bins: usize) -> (SeqStats, Moments) {
        let mut s = SeqStats::new(bins);
        s.rebuild(xs.len(), |i| xs[i]);
        let mut m = Moments::new();
        xs.iter().for_each(|&x| m.push(x));
        (s, m)
    }

    #[test]
    fn matches_batch_functions_on_random_windows() {
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        for trial in 0..50 {
            let n = rng.random_range(4..120usize);
            let offset = rng.random_range(-1e4..1e4);
            let xs: Vec<f64> =
                (0..n).map(|_| offset + rng.random_range(-3.0..3.0)).collect();
            let (s, m) = assemble(&xs, 8);
            let Some(e) = ext_vals(&s, &m, n, 8, |i| xs[i]) else {
                continue; // PACF denominator floor: batch fallback is legal.
            };
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + b.abs());
            assert!(close(e.acf1, autocorrelation(&xs, 1)), "trial {trial} acf1");
            assert!(close(e.acf2, autocorrelation(&xs, 2)), "trial {trial} acf2");
            assert!(close(e.pacf1, partial_autocorrelation(&xs, 1)), "trial {trial} pacf1");
            assert!(close(e.pacf2, partial_autocorrelation(&xs, 2)), "trial {trial} pacf2");
            assert_eq!(e.mi, lagged_mutual_information(&xs, 1, 8), "trial {trial} mi");
            assert_eq!(e.tpr, batch_tpr(&xs), "trial {trial} tpr");
        }
    }

    #[test]
    fn constant_window_gates_to_zero() {
        let xs = vec![2.5; 30];
        let (s, m) = assemble(&xs, 8);
        let e = ext_vals(&s, &m, xs.len(), 8, |i| xs[i]).expect("valid state");
        assert_eq!(e.acf1, 0.0);
        assert_eq!(e.acf2, 0.0);
        assert_eq!(e.pacf2, 0.0);
        assert_eq!(e.mi, 0.0);
        assert_eq!(e.tpr, 0.0);
    }

    #[test]
    fn invalid_or_mismatched_state_is_refused() {
        let xs = [1.0, f64::NAN, 3.0, 4.0, 2.0];
        let (s, m) = assemble(&xs, 8);
        assert!(ext_vals(&s, &m, xs.len(), 8, |i| xs[i]).is_none(), "non-finite");
        let clean = [1.0, 2.0, 3.0, 4.0, 2.0];
        let (s, m) = assemble(&clean, 8);
        assert!(ext_vals(&s, &m, 4, 8, |i| clean[i]).is_none(), "stale length");
        assert!(ext_vals(&s, &m, clean.len(), 4, |i| clean[i]).is_none(), "bins mismatch");
    }

    #[test]
    fn near_unit_acf_falls_back_for_pacf_safety() {
        // A long ramp has r1 ≈ 1 - 3/n; the PACF denominator floor must
        // refuse once 1 - r1² drops below it.
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let (s, m) = assemble(&xs, 8);
        let r1 = autocorrelation(&xs, 1);
        assert!(1.0 - r1 * r1 < PACF_DENOM_FLOOR, "premise: ramp is near-unit ACF");
        assert!(ext_vals(&s, &m, xs.len(), 8, |i| xs[i]).is_none());
    }
}
