//! Raw fingerprint extraction: window → vector of meta-information values.
//!
//! The [`FingerprintExtractor`] captures a *configuration* — which behaviour
//! sources and which meta-information functions participate — and turns any
//! window of labeled observations into a fixed-layout vector. The layout is
//! described by the accompanying [`FingerprintSchema`], which the FiCSUM
//! core uses to normalise, weight and compare fingerprints dimension by
//! dimension.
//!
//! Restricting the configuration yields the paper's ablation variants:
//! features-only (U-MI), supervised-sources-only (S-MI), the error-rate
//! single feature (ER), and single-function variants (Table V).

use ficsum_classifiers::Classifier;
use ficsum_stream::LabeledObservation;

use crate::autocorr::{autocorrelation, partial_autocorrelation};
use crate::emd::{imf_entropies, EmdConfig};
use crate::functions::{kurtosis, mean, skewness, std_dev, turning_point_rate, MetaFunction};
use crate::mutual_info::lagged_mutual_information;
use crate::sources::{behaviour_sources, source_sequence_into, SourceKind};

/// Which behaviour sources participate in the fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceSelection {
    /// The `d` input-feature sources (unsupervised).
    pub features: bool,
    /// Ground-truth label sequence.
    pub labels: bool,
    /// Predicted label sequence.
    pub predictions: bool,
    /// Error-indicator sequence.
    pub errors: bool,
    /// Error-distance sequence.
    pub error_distances: bool,
}

impl SourceSelection {
    /// Everything — the full FiCSUM configuration.
    pub fn all() -> Self {
        Self { features: true, labels: true, predictions: true, errors: true, error_distances: true }
    }

    /// Only the unsupervised feature sources (the paper's U-MI variant).
    pub fn unsupervised_only() -> Self {
        Self {
            features: true,
            labels: false,
            predictions: false,
            errors: false,
            error_distances: false,
        }
    }

    /// Only the supervised sources (the paper's S-MI variant).
    pub fn supervised_only() -> Self {
        Self {
            features: false,
            labels: true,
            predictions: true,
            errors: true,
            error_distances: true,
        }
    }

    /// Only the error sequence (basis of the ER variant).
    pub fn errors_only() -> Self {
        Self {
            features: false,
            labels: false,
            predictions: false,
            errors: true,
            error_distances: false,
        }
    }

    /// Whether `kind` participates under this selection.
    pub fn includes(&self, kind: SourceKind) -> bool {
        match kind {
            SourceKind::Feature(_) => self.features,
            SourceKind::Labels => self.labels,
            SourceKind::Predictions => self.predictions,
            SourceKind::Errors => self.errors,
            SourceKind::ErrorDistances => self.error_distances,
        }
    }
}

/// One dimension of the fingerprint: a (behaviour source, function) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimensionInfo {
    /// The behaviour source the value was computed from.
    pub source: SourceKind,
    /// The meta-information function applied.
    pub function: MetaFunction,
}

impl DimensionInfo {
    /// Whether this dimension depends on labels or classifier output. Such
    /// dimensions are reset by fingerprint-plasticity events and excluded
    /// from purely unsupervised variants.
    pub fn is_supervised(&self) -> bool {
        self.source.is_supervised() || self.function == MetaFunction::FeatureImportance
    }

    /// Whether this dimension depends on the *classifier's* output (not just
    /// labels). These are the dimensions fingerprint plasticity resets when
    /// the classifier changes significantly (Section IV): predicted labels,
    /// errors, error distances and feature importance — but not the
    /// ground-truth label source.
    pub fn depends_on_classifier(&self) -> bool {
        matches!(
            self.source,
            SourceKind::Predictions | SourceKind::Errors | SourceKind::ErrorDistances
        ) || self.function == MetaFunction::FeatureImportance
    }

    /// `source.function` display name.
    pub fn name(&self) -> String {
        format!("{}.{}", self.source.name(), self.function.name())
    }
}

/// The fixed layout of a fingerprint vector.
#[derive(Debug, Clone, PartialEq)]
pub struct FingerprintSchema {
    /// One entry per fingerprint dimension, in vector order.
    pub dims: Vec<DimensionInfo>,
}

impl FingerprintSchema {
    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }
}

/// Extracts raw fingerprint vectors from windows of labeled observations.
#[derive(Debug, Clone)]
pub struct FingerprintExtractor {
    n_features: usize,
    functions: Vec<MetaFunction>,
    sources: SourceSelection,
    include_feature_importance: bool,
    emd: EmdConfig,
    mi_bins: usize,
    schema: FingerprintSchema,
}

impl FingerprintExtractor {
    /// The full FiCSUM configuration: all sources, all 13 functions.
    pub fn full(n_features: usize) -> Self {
        Self::new(
            n_features,
            MetaFunction::SEQUENCE_FUNCTIONS.to_vec(),
            SourceSelection::all(),
            true,
        )
    }

    /// Custom configuration. `functions` are the sequence statistics applied
    /// to every selected source; `include_feature_importance` adds one
    /// classifier-importance dimension per feature source (requires
    /// `sources.features`).
    pub fn new(
        n_features: usize,
        functions: Vec<MetaFunction>,
        sources: SourceSelection,
        include_feature_importance: bool,
    ) -> Self {
        assert!(n_features > 0);
        let functions: Vec<MetaFunction> = functions
            .into_iter()
            .filter(|f| *f != MetaFunction::FeatureImportance)
            .collect();
        let include_fi = include_feature_importance && sources.features;
        let mut dims = Vec::new();
        for kind in behaviour_sources(n_features) {
            if !sources.includes(kind) {
                continue;
            }
            for &function in &functions {
                dims.push(DimensionInfo { source: kind, function });
            }
        }
        if include_fi {
            for j in 0..n_features {
                dims.push(DimensionInfo {
                    source: SourceKind::Feature(j),
                    function: MetaFunction::FeatureImportance,
                });
            }
        }
        assert!(!dims.is_empty(), "extractor configuration selects no dimensions");
        Self {
            n_features,
            functions,
            sources,
            include_feature_importance: include_fi,
            emd: EmdConfig::default(),
            mi_bins: 8,
            schema: FingerprintSchema { dims },
        }
    }

    /// The paper's ER variant: the error-rate meta-feature alone.
    pub fn error_rate_only(n_features: usize) -> Self {
        Self::new(
            n_features,
            vec![MetaFunction::Mean],
            SourceSelection::errors_only(),
            false,
        )
    }

    /// A single-function variant for the Table V comparison. For
    /// [`MetaFunction::FeatureImportance`] the fingerprint is the importance
    /// channel alone; other functions apply to every behaviour source.
    pub fn single_function(n_features: usize, function: MetaFunction) -> Self {
        if function == MetaFunction::FeatureImportance {
            Self::new(n_features, vec![MetaFunction::Mean], SourceSelection::all(), true)
                .restrict_to_fi()
        } else {
            Self::new(n_features, vec![function], SourceSelection::all(), false)
        }
    }

    fn restrict_to_fi(mut self) -> Self {
        self.schema.dims.retain(|d| d.function == MetaFunction::FeatureImportance);
        self.functions.clear();
        self
    }

    /// The vector layout produced by [`FingerprintExtractor::extract`].
    pub fn schema(&self) -> &FingerprintSchema {
        &self.schema
    }

    /// Number of input features the extractor was built for.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Which sources this extractor consumes.
    pub fn sources(&self) -> SourceSelection {
        self.sources
    }

    /// The sequence functions applied to every selected source, in schema
    /// order (never contains [`MetaFunction::FeatureImportance`]).
    pub fn functions(&self) -> &[MetaFunction] {
        &self.functions
    }

    /// Whether the schema ends with the per-feature importance block.
    pub fn includes_feature_importance(&self) -> bool {
        self.include_feature_importance
    }

    /// The EMD configuration used for the IMF-entropy dimensions.
    pub fn emd_config(&self) -> &EmdConfig {
        &self.emd
    }

    /// Histogram bins used by the mutual-information dimension.
    pub fn mi_bins(&self) -> usize {
        self.mi_bins
    }

    fn eval_function(&self, function: MetaFunction, seq: &[f64], imf: &Option<(f64, f64)>) -> f64 {
        match function {
            MetaFunction::Mean => mean(seq),
            MetaFunction::StdDev => std_dev(seq),
            MetaFunction::Skew => skewness(seq),
            MetaFunction::Kurtosis => kurtosis(seq),
            MetaFunction::Acf1 => autocorrelation(seq, 1),
            MetaFunction::Acf2 => autocorrelation(seq, 2),
            MetaFunction::Pacf1 => partial_autocorrelation(seq, 1),
            MetaFunction::Pacf2 => partial_autocorrelation(seq, 2),
            MetaFunction::MutualInformation => lagged_mutual_information(seq, 1, self.mi_bins),
            MetaFunction::TurningPointRate => turning_point_rate(seq),
            MetaFunction::ImfEntropy1 => imf.map_or(0.0, |(a, _)| a),
            MetaFunction::ImfEntropy2 => imf.map_or(0.0, |(_, b)| b),
            MetaFunction::FeatureImportance => unreachable!("handled separately"),
        }
    }

    /// Computes the raw fingerprint of `window`. `classifier` supplies
    /// feature-importance contributions; pass the classifier the predictions
    /// in `window` were made with. When `None`, importance dims are 0.
    pub fn extract(
        &self,
        window: &[LabeledObservation],
        classifier: Option<&dyn Classifier>,
    ) -> Vec<f64> {
        let needs_emd = self
            .functions
            .iter()
            .any(|f| matches!(f, MetaFunction::ImfEntropy1 | MetaFunction::ImfEntropy2));
        let mut out = Vec::with_capacity(self.schema.len());
        // One sequence buffer serves every behaviour source in turn.
        let mut seq = Vec::with_capacity(window.len());
        for kind in behaviour_sources(self.n_features) {
            if !self.sources.includes(kind) {
                continue;
            }
            if self.functions.is_empty() {
                continue;
            }
            source_sequence_into(window, kind, &mut seq);
            let imf = if needs_emd { Some(imf_entropies(&seq, &self.emd)) } else { None };
            for &function in &self.functions {
                out.push(self.eval_function(function, &seq, &imf));
            }
        }
        if self.include_feature_importance {
            let mut importance = vec![0.0; self.n_features];
            if let Some(clf) = classifier {
                let mut counted = 0usize;
                for o in window {
                    if let Some(contrib) = clf.feature_contributions(o.features()) {
                        for (acc, c) in importance.iter_mut().zip(contrib) {
                            *acc += c.abs();
                        }
                        counted += 1;
                    }
                }
                if counted > 0 {
                    for acc in &mut importance {
                        *acc /= counted as f64;
                    }
                }
            }
            out.extend(importance);
        }
        debug_assert_eq!(out.len(), self.schema.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_classifiers::HoeffdingTree;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    fn window(rng: &mut Xoshiro256pp, n: usize, d: usize) -> Vec<LabeledObservation> {
        (0..n)
            .map(|_| {
                let x: Vec<f64> = (0..d).map(|_| rng.random()).collect();
                let y = rng.random_range(0..2usize);
                let l = rng.random_range(0..2usize);
                LabeledObservation::new(x, y, l)
            })
            .collect()
    }

    #[test]
    fn full_schema_has_expected_size() {
        // 12 sequence functions x (d + 4) sources + d importance dims.
        let ex = FingerprintExtractor::full(3);
        assert_eq!(ex.schema().len(), 12 * 7 + 3);
    }

    #[test]
    fn extract_matches_schema_len() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let ex = FingerprintExtractor::full(3);
        let w = window(&mut rng, 75, 3);
        let fp = ex.extract(&w, None);
        assert_eq!(fp.len(), ex.schema().len());
        assert!(fp.iter().all(|v| v.is_finite()), "{fp:?}");
    }

    #[test]
    fn er_variant_is_error_rate() {
        let ex = FingerprintExtractor::error_rate_only(5);
        assert_eq!(ex.schema().len(), 1);
        let w = vec![
            LabeledObservation::new(vec![0.0; 5], 0, 0),
            LabeledObservation::new(vec![0.0; 5], 0, 1),
            LabeledObservation::new(vec![0.0; 5], 1, 1),
            LabeledObservation::new(vec![0.0; 5], 1, 0),
        ];
        let fp = ex.extract(&w, None);
        assert!((fp[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn umi_variant_has_no_supervised_dims() {
        let ex = FingerprintExtractor::new(
            4,
            MetaFunction::SEQUENCE_FUNCTIONS.to_vec(),
            SourceSelection::unsupervised_only(),
            false,
        );
        assert!(ex.schema().dims.iter().all(|d| !d.is_supervised()));
        assert_eq!(ex.schema().len(), 12 * 4);
    }

    #[test]
    fn smi_variant_has_only_supervised_dims() {
        let ex = FingerprintExtractor::new(
            4,
            MetaFunction::SEQUENCE_FUNCTIONS.to_vec(),
            SourceSelection::supervised_only(),
            false,
        );
        assert!(ex.schema().dims.iter().all(|d| d.is_supervised()));
        assert_eq!(ex.schema().len(), 12 * 4);
    }

    #[test]
    fn single_function_variants() {
        let ex = FingerprintExtractor::single_function(3, MetaFunction::Skew);
        assert_eq!(ex.schema().len(), 7);
        assert!(ex.schema().dims.iter().all(|d| d.function == MetaFunction::Skew));

        let fi = FingerprintExtractor::single_function(3, MetaFunction::FeatureImportance);
        assert_eq!(fi.schema().len(), 3);
        assert!(fi
            .schema()
            .dims
            .iter()
            .all(|d| d.function == MetaFunction::FeatureImportance));
    }

    #[test]
    fn feature_importance_uses_classifier() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut tree = HoeffdingTree::new(2, 2);
        for _ in 0..4000 {
            let y = rng.random_range(0..2usize);
            let x0 = if y == 0 { rng.random::<f64>() } else { 2.0 + rng.random::<f64>() };
            tree.train(&[x0, rng.random()], y);
        }
        let ex = FingerprintExtractor::single_function(2, MetaFunction::FeatureImportance);
        let w = window(&mut rng, 50, 2);
        let with = ex.extract(&w, Some(&tree));
        let without = ex.extract(&w, None);
        assert_eq!(without, vec![0.0, 0.0]);
        assert!(with[0] > with[1], "x0 should dominate importance: {with:?}");
    }

    #[test]
    fn different_concepts_produce_different_fingerprints() {
        let ex = FingerprintExtractor::full(1);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let low: Vec<LabeledObservation> = (0..75)
            .map(|_| LabeledObservation::new(vec![rng.random::<f64>()], 0, 0))
            .collect();
        let high: Vec<LabeledObservation> = (0..75)
            .map(|_| LabeledObservation::new(vec![rng.random::<f64>() + 10.0], 0, 0))
            .collect();
        let f1 = ex.extract(&low, None);
        let f2 = ex.extract(&high, None);
        let dist: f64 = f1.iter().zip(&f2).map(|(a, b)| (a - b).abs()).sum();
        assert!(dist > 5.0, "fingerprints should differ, L1={dist}");
    }

    #[test]
    #[should_panic(expected = "selects no dimensions")]
    fn empty_configuration_panics() {
        let _ = FingerprintExtractor::new(
            2,
            vec![],
            SourceSelection::unsupervised_only(),
            false,
        );
    }
}
