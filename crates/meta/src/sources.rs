//! Behaviour-source extraction (Figure 2 of the paper).
//!
//! A window of `w` labeled observations is separated into `d + 4` univariate
//! sequences: one per input feature (describing `p(X)`), plus the label,
//! predicted-label, error, and error-distance sequences (describing
//! `p(y|X)` as shown by the concept and as learned by the classifier).

use ficsum_stream::LabeledObservation;

/// Identifies one behaviour source of the fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// The `j`-th input feature — unsupervised, describes `p(X)`.
    Feature(usize),
    /// Ground-truth labels `y` — supervised.
    Labels,
    /// Classifier labels `l` — supervised (learned `p(y|X)`).
    Predictions,
    /// Error indicators `l != y` — supervised.
    Errors,
    /// Distances between consecutive errors — supervised (temporal
    /// `p(y|X)`).
    ErrorDistances,
}

impl SourceKind {
    /// Whether this source needs labels/classifier output (Definition 2) or
    /// only the feature distribution (Definition 1).
    pub fn is_supervised(self) -> bool {
        !matches!(self, SourceKind::Feature(_))
    }

    /// Stable short name for reports.
    pub fn name(self) -> String {
        match self {
            SourceKind::Feature(j) => format!("x{j}"),
            SourceKind::Labels => "y".into(),
            SourceKind::Predictions => "l".into(),
            SourceKind::Errors => "err".into(),
            SourceKind::ErrorDistances => "errdist".into(),
        }
    }
}

/// Extracts the error-distance sequence into `out` (cleared first): the
/// gaps (in observations) between consecutive errors within the window.
/// Matches the paper's worked example (errors `[0, 1, 1]` → distances
/// `[1]`). Reusing one buffer across calls makes repeated extraction
/// allocation-free once the buffer has warmed to the window size.
pub fn error_distances_into(window: &[LabeledObservation], out: &mut Vec<f64>) {
    out.clear();
    let mut last: Option<usize> = None;
    for (i, o) in window.iter().enumerate() {
        if o.is_error() {
            if let Some(prev) = last {
                out.push((i - prev) as f64);
            }
            last = Some(i);
        }
    }
}

/// Allocating convenience wrapper around [`error_distances_into`].
pub fn error_distances(window: &[LabeledObservation]) -> Vec<f64> {
    let mut out = Vec::new();
    error_distances_into(window, &mut out);
    out
}

/// Extracts the univariate sequence for one behaviour source into `out`
/// (cleared first), reusing its capacity.
pub fn source_sequence_into(window: &[LabeledObservation], kind: SourceKind, out: &mut Vec<f64>) {
    match kind {
        SourceKind::Feature(j) => {
            out.clear();
            out.extend(window.iter().map(|o| o.features()[j]));
        }
        SourceKind::Labels => {
            out.clear();
            out.extend(window.iter().map(|o| o.label() as f64));
        }
        SourceKind::Predictions => {
            out.clear();
            out.extend(window.iter().map(|o| o.prediction as f64));
        }
        SourceKind::Errors => {
            out.clear();
            out.extend(window.iter().map(|o| if o.is_error() { 1.0 } else { 0.0 }));
        }
        SourceKind::ErrorDistances => error_distances_into(window, out),
    }
}

/// Allocating convenience wrapper around [`source_sequence_into`].
pub fn source_sequence(window: &[LabeledObservation], kind: SourceKind) -> Vec<f64> {
    let mut out = Vec::new();
    source_sequence_into(window, kind, &mut out);
    out
}

/// All `d + 4` behaviour sources in fingerprint order.
pub fn behaviour_sources(n_features: usize) -> Vec<SourceKind> {
    let mut out: Vec<SourceKind> = (0..n_features).map(SourceKind::Feature).collect();
    out.extend([
        SourceKind::Labels,
        SourceKind::Predictions,
        SourceKind::Errors,
        SourceKind::ErrorDistances,
    ]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from Section III-A of the paper.
    fn paper_window() -> Vec<LabeledObservation> {
        vec![
            LabeledObservation::new(vec![1.0, 5.0], 1, 1),
            LabeledObservation::new(vec![0.5, 7.0], 1, 0),
            LabeledObservation::new(vec![0.75, 6.0], 0, 1),
        ]
    }

    #[test]
    fn paper_example_sources() {
        let w = paper_window();
        assert_eq!(source_sequence(&w, SourceKind::Feature(0)), vec![1.0, 0.5, 0.75]);
        assert_eq!(source_sequence(&w, SourceKind::Feature(1)), vec![5.0, 7.0, 6.0]);
        assert_eq!(source_sequence(&w, SourceKind::Labels), vec![1.0, 1.0, 0.0]);
        assert_eq!(source_sequence(&w, SourceKind::Predictions), vec![1.0, 0.0, 1.0]);
        assert_eq!(source_sequence(&w, SourceKind::Errors), vec![0.0, 1.0, 1.0]);
        assert_eq!(source_sequence(&w, SourceKind::ErrorDistances), vec![1.0]);
    }

    #[test]
    fn paper_example_mean_fingerprint() {
        // "Using only the 'mean' meta-information function, the fingerprint
        // of the window would be: [0.75, 6, 0.66, 0.66, 0.66, 1]".
        let w = paper_window();
        let means: Vec<f64> = behaviour_sources(2)
            .into_iter()
            .map(|k| crate::functions::mean(&source_sequence(&w, k)))
            .collect();
        let expected = [0.75, 6.0, 2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0, 1.0];
        for (got, want) in means.iter().zip(expected) {
            assert!((got - want).abs() < 1e-9, "{means:?}");
        }
    }

    #[test]
    fn no_errors_means_empty_distances() {
        let w = vec![LabeledObservation::new(vec![0.0], 1, 1); 5];
        assert!(error_distances(&w).is_empty());
    }

    #[test]
    fn into_variants_match_and_reuse_capacity() {
        let w = paper_window();
        let mut buf = Vec::new();
        for kind in behaviour_sources(2) {
            source_sequence_into(&w, kind, &mut buf);
            assert_eq!(buf, source_sequence(&w, kind), "{kind:?}");
        }
        let cap = buf.capacity();
        for kind in behaviour_sources(2) {
            source_sequence_into(&w, kind, &mut buf);
        }
        assert_eq!(buf.capacity(), cap, "warm buffer must not reallocate");
    }

    #[test]
    fn source_ordering_is_features_then_supervised() {
        let srcs = behaviour_sources(3);
        assert_eq!(srcs.len(), 7);
        assert_eq!(srcs[0], SourceKind::Feature(0));
        assert_eq!(srcs[2], SourceKind::Feature(2));
        assert_eq!(srcs[6], SourceKind::ErrorDistances);
        assert!(!srcs[1].is_supervised());
        assert!(srcs[4].is_supervised());
    }
}
