//! The fingerprint engine: incremental, allocation-free, optionally
//! parallel meta-feature extraction.
//!
//! [`FingerprintExtractor::extract`] is a faithful but naive transcription
//! of the paper: every call materialises one `Vec` per behaviour source,
//! re-derives the four moment statistics with separate passes, and lets the
//! EMD sifting loop allocate freely. That is fine for a one-off fingerprint
//! but FiCSUM fingerprints *constantly* — every fingerprint gap, every
//! repository comparison, every recheck.
//!
//! [`FingerprintEngine`] wraps an extractor and reuses all working memory
//! across calls:
//!
//! * **Cached source-sequence pass** — the window is materialised once into
//!   per-source scratch buffers shared by every meta-function; repeated
//!   extraction allocates nothing after warm-up (EMD, MI histograms and
//!   spline fitting included).
//! * **Fused moments** — mean, standard deviation, skew and kurtosis come
//!   from a single two-pass sweep instead of nine, with bit-identical
//!   results to the batch functions. When extracting from a
//!   [`TrackedWindow`], the feature and label moment dimensions instead
//!   read the window's incrementally maintained [`Moments`]
//!   (`O(1)` per observation rather than `O(window)` per fingerprint).
//! * **Opt-in parallelism** — [`FingerprintEngine::set_threads`] fans the
//!   `d + 4` behaviour sources across a [`std::thread::scope`] worker pool.
//!   Each source's computation is independent and writes a disjoint slice
//!   of the output, so parallel extraction is bit-identical to sequential.
//!
//! The legacy [`FingerprintExtractor::extract`] path is kept untouched: it
//! is the reference the engine is tested against, and the baseline for the
//! throughput comparison in `ficsum-bench`.

use std::sync::Arc;

use ficsum_classifiers::Classifier;
use ficsum_obs::Clock;
use ficsum_stream::{FrameSource, LabeledObservation, Moments, MomentSource, StatSource, TrackedWindow};

use crate::autocorr::{autocorrelation, partial_autocorrelation};
use crate::emd::{imf_entropies_scratch, EmdConfig, EmdScratch};
use crate::extractor::{FingerprintExtractor, FingerprintSchema};
use crate::functions::{turning_point_rate, MetaFunction};
use crate::incremental::{ext_vals, ExtVals};
use crate::mutual_info::{lagged_mutual_information_scratch, MiScratch};
use crate::sources::{behaviour_sources, SourceKind};

/// Statistics pre-computed by a tracked window; substituted for the batch
/// sweeps on sources whose membership the window tracks.
#[derive(Debug, Clone, Copy)]
struct TrackedVals {
    mean: f64,
    std_dev: f64,
    skewness: f64,
    kurtosis: f64,
    /// Incrementally maintained sequence statistics (ACF, PACF, lagged MI,
    /// turning-point rate); `None` = batch sweep for those functions.
    ext: Option<ExtVals>,
}

/// One cached EMD result: the IMF entropies of the last sequence this
/// source computed them for, keyed by a content hash so an unchanged
/// window reuses them exactly, plus a staleness age for the bounded-stride
/// amortisation of [`FingerprintEngine::set_emd_stride`].
#[derive(Debug, Clone, Copy, Default)]
struct EmdSlot {
    hash: u64,
    len: usize,
    vals: (f64, f64),
    /// Consecutive stale reuses since the last fresh sifting.
    age: u32,
    valid: bool,
}

/// One work item of the parallel source sweep: the source sequence, its
/// tracked substitutes, its EMD cache slot (with the stride budget), the
/// disjoint output chunk it fills, and its per-source timing slot.
type SourceTask<'a> = (
    &'a [f64],
    Option<TrackedVals>,
    Option<(&'a mut EmdSlot, u32)>,
    &'a mut [f64],
    &'a mut u64,
);

impl TrackedVals {
    fn from_moments(m: &Moments) -> Self {
        Self {
            mean: m.mean(),
            std_dev: m.std_dev(),
            skewness: m.skewness(),
            kurtosis: m.kurtosis(),
            ext: None,
        }
    }
}

/// Per-worker scratch: everything one behaviour source needs.
#[derive(Debug, Clone, Default)]
struct SourceScratch {
    emd: EmdScratch,
    mi: MiScratch,
}

/// The classifier-independent half of one window's repredicted extraction.
///
/// A repository sweep scores *one* window under *many* classifiers. The
/// feature and label behaviour sources do not depend on the classifier, yet
/// the plain entry points re-evaluate their meta-functions (EMD sifting,
/// mutual information, autocorrelation, the moment sweep) once per
/// classifier. [`FingerprintEngine::static_scan_tracked`] evaluates those
/// sources once into this cache; [`FingerprintEngine::extract_with_scan`]
/// then copies the cached dimensions and computes only the
/// prediction-dependent sources and the importance tail per classifier.
///
/// Bit-exactness: the cached dimensions are produced by the very same
/// per-source evaluation on the very same cached sequences as the plain
/// path, and copying an `f64` preserves its bits. Validity is the caller's
/// contract — a scan must be rebuilt whenever the window contents change.
/// The cache is `Sync` (plain data), so one scan can feed parallel workers.
#[derive(Debug, Clone, Default)]
pub struct StaticScan {
    /// Evaluated function blocks for the whole source section, aligned with
    /// the engine's source order; only the chunks of classifier-independent
    /// sources hold meaningful values.
    vals: Vec<f64>,
    ready: bool,
}

impl StaticScan {
    /// An empty (not yet scanned) cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a window has been scanned into this cache.
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// Drops the scan; the next use requires a rebuild.
    pub fn invalidate(&mut self) {
        self.ready = false;
    }
}

/// Reusable, optionally parallel fingerprint extraction.
///
/// Wraps a [`FingerprintExtractor`] configuration and produces the same
/// fingerprints through [`FingerprintEngine::extract`] — allocation-free
/// after warm-up, and bit-identical to the legacy path. See the module
/// docs for the full design.
#[derive(Debug, Clone)]
pub struct FingerprintEngine {
    extractor: FingerprintExtractor,
    /// Selected behaviour sources in schema order (empty when the extractor
    /// is importance-only).
    kinds: Vec<SourceKind>,
    /// Worker threads for the per-source fan-out; 1 = sequential.
    threads: usize,
    /// Whether the tracked-window entry points may substitute incremental
    /// moments for the batch sweep (off by default: bit-exact batch).
    incremental_moments: bool,
    /// Whether the tracked-window entry points may substitute the full
    /// incremental sequence-statistic set (ACF/PACF, lagged MI, turning
    /// points) and cache IMF entropies per source. Off by default.
    incremental_stats: bool,
    /// EMD amortisation budget: recompute IMF entropies for a changed
    /// window at most every `emd_stride`-th extraction per source. `1`
    /// (default) = recompute on every content change.
    emd_stride: u32,
    /// Which EMD cache bank the current tracked extraction uses (`None` =
    /// caching off for this call).
    active_bank: Option<usize>,
    /// Per-source EMD cache slots, one bank per window tag (0 = active A,
    /// 1 = stale B) so the two fingerprint cadences never evict each other.
    emd_cache: [Vec<EmdSlot>; 2],
    /// One cached sequence buffer per selected source.
    seqs: Vec<Vec<f64>>,
    /// Tracked moment substitutes, aligned with `kinds` (`None` = batch).
    tracked: Vec<Option<TrackedVals>>,
    /// Re-predicted labels for [`FingerprintEngine::extract_repredicted`].
    preds: Vec<usize>,
    /// Probability scratch for allocation-free classifier calls.
    proba: Vec<f64>,
    /// Contribution scratch for the feature-importance tail.
    contrib: Vec<f64>,
    workers: Vec<SourceScratch>,
    /// Span clock for per-source timing; `None` = timing off (zero cost).
    clock: Option<Arc<dyn Clock>>,
    /// Cumulative nanoseconds spent evaluating each source, aligned with
    /// `kinds`. Parallel workers write disjoint slots, so sequential and
    /// parallel attribution use identical bookkeeping.
    source_nanos: Vec<u64>,
    /// Extractions measured since the last [`FingerprintEngine::reset_timings`].
    timed_extractions: u64,
}

impl FingerprintEngine {
    /// Sequential engine around `extractor`.
    pub fn new(extractor: FingerprintExtractor) -> Self {
        let kinds = if extractor.functions().is_empty() {
            Vec::new()
        } else {
            behaviour_sources(extractor.n_features())
                .into_iter()
                .filter(|&k| extractor.sources().includes(k))
                .collect()
        };
        let n_sources = kinds.len();
        Self {
            extractor,
            kinds,
            threads: 1,
            incremental_moments: false,
            incremental_stats: false,
            emd_stride: 1,
            active_bank: None,
            emd_cache: [Vec::new(), Vec::new()],
            seqs: vec![Vec::new(); n_sources],
            tracked: Vec::new(),
            preds: Vec::new(),
            proba: Vec::new(),
            contrib: Vec::new(),
            workers: vec![SourceScratch::default()],
            clock: None,
            source_nanos: vec![0; n_sources],
            timed_extractions: 0,
        }
    }

    /// Builder-style thread-count override; see
    /// [`FingerprintEngine::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Sets the number of worker threads the per-source fan-out may use.
    /// `0` and `1` both mean sequential. Parallel extraction is guaranteed
    /// bit-identical to sequential: sources are computed by identical code
    /// on disjoint output slices, whichever thread runs them.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Current worker-thread setting.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Builder-style variant of
    /// [`FingerprintEngine::set_incremental_moments`].
    pub fn with_incremental_moments(mut self, on: bool) -> Self {
        self.set_incremental_moments(on);
        self
    }

    /// Lets the tracked-window entry points source the four moment features
    /// (mean, standard deviation, skew, kurtosis) of feature and label
    /// sequences from the window's incremental [`Moments`] — O(1) per
    /// observation instead of a per-extraction sweep. The substituted values
    /// agree with the batch sweep to ≤ 1e-9 relative but are *not*
    /// bit-identical, so this is off by default: drift-detection
    /// trajectories are feedback loops in which any numeric difference can
    /// compound.
    pub fn set_incremental_moments(&mut self, on: bool) {
        self.incremental_moments = on;
    }

    /// Whether incremental moment substitution is enabled.
    pub fn incremental_moments(&self) -> bool {
        self.incremental_moments
    }

    /// Builder-style variant of [`FingerprintEngine::set_incremental_stats`].
    pub fn with_incremental_stats(mut self, on: bool) -> Self {
        self.set_incremental_stats(on);
        self
    }

    /// Extends the incremental substitution from the moments to the full
    /// per-window statistic set on tracked entry points: ACF/PACF at lags
    /// 1–2 come from rolling centered cross-sums, lagged mutual information
    /// from an add/remove joint histogram, and the turning-point rate from
    /// an exact counter — all maintained by the window in O(1) per
    /// observation (see [`ficsum_stream::SeqStats`]). The window must have
    /// statistics enabled ([`ficsum_stream::FrameWindows::enable_stats`]
    /// with the extractor's MI bin count); sources without usable state
    /// silently fall back to the batch sweep.
    ///
    /// Enabling this also enables the moment substitution for tracked
    /// sources (the two share the same ≤ 1e-9 relative tolerance contract;
    /// MI and turning points are bit-identical). IMF entropies are
    /// additionally cached per source behind a content hash — identical
    /// window contents reuse the previous sifting exactly; see
    /// [`FingerprintEngine::set_emd_stride`] for the amortised schedule.
    /// Off by default: the batch path stays bit-exact.
    pub fn set_incremental_stats(&mut self, on: bool) {
        self.incremental_stats = on;
        if !on {
            self.active_bank = None;
        }
    }

    /// Whether incremental sequence-statistic substitution is enabled.
    pub fn incremental_stats(&self) -> bool {
        self.incremental_stats
    }

    /// Builder-style variant of [`FingerprintEngine::set_emd_stride`].
    pub fn with_emd_stride(mut self, stride: u32) -> Self {
        self.set_emd_stride(stride);
        self
    }

    /// Bounds how often IMF entropies are re-sifted when incremental
    /// statistics are on: a *changed* window recomputes them at most every
    /// `stride`-th extraction per source, reusing the previous values in
    /// between (an *unchanged* window always reuses them exactly, at any
    /// stride). `1` — the default — recomputes on every change, so the EMD
    /// dimensions stay faithful to the batch path; larger strides trade
    /// bounded staleness (at most `stride - 1` fingerprint gaps) for a
    /// proportional cut in sifting cost, which dominates extraction time.
    pub fn set_emd_stride(&mut self, stride: u32) {
        self.emd_stride = stride.max(1);
    }

    /// Current EMD amortisation stride.
    pub fn emd_stride(&self) -> u32 {
        self.emd_stride
    }

    /// Drops every cached EMD result. The framework calls this when the
    /// active classifier changes (model switch, plasticity reset): the
    /// prediction-dependent sources' sequences change meaning, so stale
    /// reuse across the switch would mix classifiers.
    pub fn invalidate_emd_cache(&mut self) {
        for bank in &mut self.emd_cache {
            bank.iter_mut().for_each(|s| s.valid = false);
        }
    }

    /// Enables per-source extraction timing against `clock` (pass `None` to
    /// disable — the default, with zero cost on the extraction path). The
    /// clock is shared, not owned, so the framework, engine and tests can
    /// observe one coherent timeline; the parallel fan-out reads the same
    /// clock from every worker, which is why [`Clock`] is `Send + Sync`.
    pub fn set_clock(&mut self, clock: Option<Arc<dyn Clock>>) {
        self.clock = clock;
    }

    /// Whether per-source timing is active.
    pub fn timing_enabled(&self) -> bool {
        self.clock.is_some()
    }

    /// Cumulative nanoseconds spent evaluating each behaviour source since
    /// timing was enabled (or last reset), as `(source name, nanos)` in
    /// schema order. Empty when timing is off.
    pub fn source_timings(&self) -> Vec<(String, u64)> {
        if self.clock.is_none() {
            return Vec::new();
        }
        self.kinds
            .iter()
            .zip(&self.source_nanos)
            .map(|(k, &n)| (k.name(), n))
            .collect()
    }

    /// Number of extractions measured since the last reset.
    pub fn timed_extractions(&self) -> u64 {
        self.timed_extractions
    }

    /// Zeroes the per-source timing accumulators.
    pub fn reset_timings(&mut self) {
        self.source_nanos.iter_mut().for_each(|n| *n = 0);
        self.timed_extractions = 0;
    }

    /// The wrapped configuration.
    pub fn extractor(&self) -> &FingerprintExtractor {
        &self.extractor
    }

    /// The vector layout produced by extraction (same as the extractor's).
    pub fn schema(&self) -> &FingerprintSchema {
        self.extractor.schema()
    }

    /// Number of input features the engine was built for.
    pub fn n_features(&self) -> usize {
        self.extractor.n_features()
    }

    /// Drop-in equivalent of [`FingerprintExtractor::extract`]; see
    /// [`FingerprintEngine::extract_into`].
    pub fn extract(
        &mut self,
        window: &[LabeledObservation],
        classifier: Option<&dyn Classifier>,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.extract_into(window, classifier, &mut out);
        out
    }

    /// Computes the raw fingerprint of `window` into `out` (cleared first),
    /// reusing the engine's scratch buffers. Produces bit-identical values
    /// to [`FingerprintExtractor::extract`] on the same window.
    pub fn extract_into(
        &mut self,
        window: &[LabeledObservation],
        classifier: Option<&dyn Classifier>,
        out: &mut Vec<f64>,
    ) {
        self.extract_frames_into(window, classifier, out);
    }

    /// [`FingerprintEngine::extract_into`] over any [`FrameSource`] — ring
    /// views, owned frame blocks and observation slices all extract through
    /// the same code, bit-identically.
    pub fn extract_frames_into<S: FrameSource + ?Sized>(
        &mut self,
        src: &S,
        classifier: Option<&dyn Classifier>,
        out: &mut Vec<f64>,
    ) {
        self.tracked.clear();
        self.active_bank = None;
        self.run(src, classifier, false, out);
    }

    /// Extracts the fingerprint `window` would have under `classifier`'s
    /// *current* predictions: every observation is re-predicted and the
    /// prediction-dependent sources (predictions, errors, error distances)
    /// are built from those fresh labels. Equivalent to cloning the window,
    /// overwriting each `prediction`, and extracting — without the clone.
    pub fn extract_repredicted(
        &mut self,
        window: &[LabeledObservation],
        classifier: &dyn Classifier,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.extract_repredicted_into(window, classifier, &mut out);
        out
    }

    /// [`FingerprintEngine::extract_repredicted`] writing into `out`.
    pub fn extract_repredicted_into(
        &mut self,
        window: &[LabeledObservation],
        classifier: &dyn Classifier,
        out: &mut Vec<f64>,
    ) {
        self.extract_frames_repredicted_into(window, classifier, out);
    }

    /// [`FingerprintEngine::extract_repredicted_into`] over any
    /// [`FrameSource`].
    pub fn extract_frames_repredicted_into<S: FrameSource + ?Sized>(
        &mut self,
        src: &S,
        classifier: &dyn Classifier,
        out: &mut Vec<f64>,
    ) {
        self.tracked.clear();
        self.active_bank = None;
        self.run(src, Some(classifier), true, out);
    }

    /// Extracts from a [`TrackedWindow`] without copying it out. When
    /// [`FingerprintEngine::set_incremental_moments`] is enabled, the
    /// feature and label moment dimensions come from the window's
    /// incremental [`Moments`] instead of a batch sweep (≤ 1e-9 relative
    /// difference); otherwise the result is bit-identical to
    /// [`FingerprintEngine::extract`] on the same observations.
    pub fn extract_tracked(
        &mut self,
        window: &TrackedWindow,
        classifier: Option<&dyn Classifier>,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.extract_tracked_frames_into(window, classifier, &mut out);
        out
    }

    /// [`FingerprintEngine::extract_tracked`] with re-prediction, the
    /// framework's hot path: fingerprint the current window as seen by an
    /// arbitrary classifier, with no window clone and O(1) moment updates.
    pub fn extract_tracked_repredicted(
        &mut self,
        window: &TrackedWindow,
        classifier: &dyn Classifier,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.extract_tracked_frames_repredicted_into(window, classifier, &mut out);
        out
    }

    /// [`FingerprintEngine::extract_tracked`] over any frame window that
    /// carries incremental moments (ring-backed [`ficsum_stream::TrackedFrames`]
    /// or the legacy [`TrackedWindow`]), writing into `out`.
    pub fn extract_tracked_frames_into<S: FrameSource + MomentSource + StatSource + ?Sized>(
        &mut self,
        src: &S,
        classifier: Option<&dyn Classifier>,
        out: &mut Vec<f64>,
    ) {
        self.fill_tracked_vals(src, false);
        self.set_active_bank(src);
        self.run(src, classifier, false, out);
    }

    /// [`FingerprintEngine::extract_tracked_repredicted`] over any tracked
    /// frame window, writing into `out`.
    pub fn extract_tracked_frames_repredicted_into<
        S: FrameSource + MomentSource + StatSource + ?Sized,
    >(
        &mut self,
        src: &S,
        classifier: &dyn Classifier,
        out: &mut Vec<f64>,
    ) {
        self.fill_tracked_vals(src, true);
        self.set_active_bank(src);
        self.run(src, Some(classifier), true, out);
    }

    /// Evaluates the classifier-independent sources of `src` into `scan`,
    /// for a sweep that scores one window under many classifiers via
    /// [`FingerprintEngine::extract_with_scan`].
    pub fn static_scan_frames<S: FrameSource + ?Sized>(&mut self, src: &S, scan: &mut StaticScan) {
        self.tracked.clear();
        self.active_bank = None;
        self.static_scan_common(src, scan);
    }

    /// [`FingerprintEngine::static_scan_frames`] over a moment-tracking
    /// window (the incremental-moment substitutes apply exactly as in
    /// [`FingerprintEngine::extract_tracked_frames_repredicted_into`]).
    pub fn static_scan_tracked<S: FrameSource + MomentSource + StatSource + ?Sized>(
        &mut self,
        src: &S,
        scan: &mut StaticScan,
    ) {
        self.fill_tracked_vals(src, true);
        self.set_active_bank(src);
        self.static_scan_common(src, scan);
    }

    fn static_scan_common<S: FrameSource + ?Sized>(&mut self, src: &S, scan: &mut StaticScan) {
        let n = src.len();
        let Self {
            extractor,
            kinds,
            seqs,
            tracked,
            workers,
            clock,
            source_nanos,
            emd_cache,
            emd_stride,
            active_bank,
            ..
        } = self;
        let emd_stride = *emd_stride;
        let mut cache = active_bank.map(|b| &mut emd_cache[b]);
        let functions = extractor.functions();
        let nf = functions.len();
        scan.vals.clear();
        scan.vals.resize(kinds.len() * nf, 0.0);
        scan.ready = true;
        if nf == 0 || kinds.is_empty() {
            return;
        }
        let needs_emd = functions
            .iter()
            .any(|f| matches!(f, MetaFunction::ImfEntropy1 | MetaFunction::ImfEntropy2));
        let emd_cfg = *extractor.emd_config();
        let mi_bins = extractor.mi_bins();
        for (seq, &kind) in seqs.iter_mut().zip(kinds.iter()) {
            match kind {
                SourceKind::Feature(j) => {
                    seq.clear();
                    seq.extend((0..n).map(|i| src.features(i)[j]));
                }
                SourceKind::Labels => {
                    seq.clear();
                    seq.extend((0..n).map(|i| src.label(i) as f64));
                }
                _ => {}
            }
        }
        if workers.is_empty() {
            workers.push(SourceScratch::default());
        }
        let worker = &mut workers[0];
        for (i, ((seq, chunk), nano)) in
            seqs.iter().zip(scan.vals.chunks_mut(nf)).zip(source_nanos.iter_mut()).enumerate()
        {
            if !kind_is_static(kinds[i]) {
                continue;
            }
            let t0 = clock.as_deref().map(Clock::now_nanos);
            eval_source_into(
                seq,
                functions,
                needs_emd,
                &emd_cfg,
                mi_bins,
                tracked.get(i).copied().flatten(),
                cache.as_deref_mut().map(|c| (&mut c[i], emd_stride)),
                worker,
                chunk,
            );
            if let (Some(c), Some(t0)) = (clock.as_deref(), t0) {
                *nano += c.now_nanos().saturating_sub(t0);
            }
        }
    }

    /// One classifier's repredicted fingerprint of the window previously
    /// scanned into `scan`: the cached classifier-independent dimensions
    /// are copied, and only the prediction-dependent sources plus the
    /// importance tail are computed. Bit-identical to
    /// [`FingerprintEngine::extract_frames_repredicted_into`] (or the
    /// tracked variant, when the scan was built with
    /// [`FingerprintEngine::static_scan_tracked`]) on the same window —
    /// `src` must hold exactly the contents the scan was built from.
    pub fn extract_with_scan<S: FrameSource + ?Sized>(
        &mut self,
        src: &S,
        scan: &StaticScan,
        classifier: &dyn Classifier,
        out: &mut Vec<f64>,
    ) {
        debug_assert!(scan.ready, "extract_with_scan before static_scan");
        let n = src.len();
        {
            let Self { preds, proba, .. } = self;
            preds.clear();
            for i in 0..n {
                preds.push(classifier.predict_with(src.features(i), proba));
            }
        }
        out.clear();
        out.resize(self.extractor.schema().len(), 0.0);
        {
            let Self {
                extractor,
                kinds,
                seqs,
                preds,
                workers,
                clock,
                source_nanos,
                timed_extractions,
                ..
            } = self;
            let functions = extractor.functions();
            let nf = functions.len();
            let src_len = kinds.len() * nf;
            if nf > 0 && !kinds.is_empty() {
                debug_assert_eq!(scan.vals.len(), src_len, "scan built for another schema");
                let needs_emd = functions
                    .iter()
                    .any(|f| matches!(f, MetaFunction::ImfEntropy1 | MetaFunction::ImfEntropy2));
                let emd_cfg = *extractor.emd_config();
                let mi_bins = extractor.mi_bins();
                for (seq, &kind) in seqs.iter_mut().zip(kinds.iter()) {
                    match kind {
                        SourceKind::Predictions => {
                            seq.clear();
                            seq.extend(preds.iter().map(|&v| v as f64));
                        }
                        SourceKind::Errors => {
                            seq.clear();
                            seq.extend(
                                (0..n).map(|i| if preds[i] != src.label(i) { 1.0 } else { 0.0 }),
                            );
                        }
                        SourceKind::ErrorDistances => {
                            seq.clear();
                            let mut last: Option<usize> = None;
                            for (i, &p) in preds.iter().enumerate() {
                                if p != src.label(i) {
                                    if let Some(prev) = last {
                                        seq.push((i - prev) as f64);
                                    }
                                    last = Some(i);
                                }
                            }
                        }
                        _ => {}
                    }
                }
                if workers.is_empty() {
                    workers.push(SourceScratch::default());
                }
                let worker = &mut workers[0];
                for (i, ((seq, chunk), nano)) in seqs
                    .iter()
                    .zip(out[..src_len].chunks_mut(nf))
                    .zip(source_nanos.iter_mut())
                    .enumerate()
                {
                    if kind_is_static(kinds[i]) {
                        chunk.copy_from_slice(&scan.vals[i * nf..(i + 1) * nf]);
                        continue;
                    }
                    let t0 = clock.as_deref().map(Clock::now_nanos);
                    eval_source_into(
                        seq, functions, needs_emd, &emd_cfg, mi_bins, None, None, worker, chunk,
                    );
                    if let (Some(c), Some(t0)) = (clock.as_deref(), t0) {
                        *nano += c.now_nanos().saturating_sub(t0);
                    }
                }
                if *timed_extractions < u64::MAX {
                    *timed_extractions += clock.is_some() as u64;
                }
            }
        }
        if self.extractor.includes_feature_importance() {
            let n_features = self.extractor.n_features();
            let tail = out.len() - n_features;
            let importance = &mut out[tail..];
            let mut counted = 0usize;
            let Self { contrib, proba, .. } = self;
            for i in 0..n {
                if classifier.contributions_with(src.features(i), contrib, proba) {
                    for (acc, c) in importance.iter_mut().zip(contrib.iter()) {
                        *acc += c.abs();
                    }
                    counted += 1;
                }
            }
            if counted > 0 {
                for acc in importance.iter_mut() {
                    *acc /= counted as f64;
                }
            }
        }
        debug_assert_eq!(out.len(), self.extractor.schema().len());
    }

    /// Populates the tracked substitutes for window-membership sources. A
    /// no-op unless incremental moments or statistics are enabled — an
    /// empty `tracked` vector means every source takes the batch path. With
    /// incremental statistics on, each tracked source additionally carries
    /// the evaluated sequence statistics, or `None` for them when the
    /// window's state cannot honour the tolerance contract (see
    /// [`crate::incremental`]).
    ///
    /// Features and labels are classifier-independent and substitute in
    /// every mode. The prediction and error sources substitute only for
    /// *non-repredicting* extraction (`repredict == false`): a repredicting
    /// pass replaces the prediction sequence with the classifier's current
    /// output, which the push-time banks do not describe. Error distances
    /// are derived (not push-aligned) and always take the batch path.
    fn fill_tracked_vals<M: FrameSource + MomentSource + StatSource + ?Sized>(
        &mut self,
        window: &M,
        repredict: bool,
    ) {
        debug_assert!(window.n_feature_moments() >= self.extractor.n_features());
        self.tracked.clear();
        if !self.incremental_moments && !self.incremental_stats {
            return;
        }
        let n = window.len();
        let mi_bins = self.extractor.mi_bins();
        let want_ext = self.incremental_stats;
        for &kind in &self.kinds {
            self.tracked.push(match kind {
                SourceKind::Feature(j) => {
                    let m = window.feature_moments(j);
                    let mut tv = TrackedVals::from_moments(m);
                    if want_ext {
                        tv.ext = window
                            .feature_stats(j)
                            .and_then(|s| ext_vals(s, m, n, mi_bins, |i| window.features(i)[j]));
                    }
                    Some(tv)
                }
                SourceKind::Labels => {
                    let m = window.label_moments();
                    let mut tv = TrackedVals::from_moments(m);
                    if want_ext {
                        tv.ext = window
                            .label_stats()
                            .and_then(|s| ext_vals(s, m, n, mi_bins, |i| window.label(i) as f64));
                    }
                    Some(tv)
                }
                // Predictions and errors only carry moments inside the stat
                // bank, so their substitution is available in full
                // incremental-statistics mode only (moments-only mode keeps
                // them on the batch sweep, as it always has).
                SourceKind::Predictions if want_ext && !repredict => {
                    window.prediction_track().map(|(m, s)| {
                        let mut tv = TrackedVals::from_moments(m);
                        tv.ext = ext_vals(s, m, n, mi_bins, |i| window.prediction(i) as f64);
                        tv
                    })
                }
                SourceKind::Errors if want_ext && !repredict => {
                    window.error_track().map(|(m, s)| {
                        let mut tv = TrackedVals::from_moments(m);
                        tv.ext = ext_vals(s, m, n, mi_bins, |i| {
                            if window.prediction(i) != window.label(i) {
                                1.0
                            } else {
                                0.0
                            }
                        });
                        tv
                    })
                }
                _ => None,
            });
        }
    }

    /// Selects (and lazily sizes) the EMD cache bank for a tracked
    /// extraction from `src`; `None` when caching is off.
    fn set_active_bank<S: StatSource + ?Sized>(&mut self, src: &S) {
        self.active_bank = if self.incremental_stats {
            let tag = src.window_tag().min(1);
            let n = self.kinds.len();
            if self.emd_cache[tag].len() != n {
                self.emd_cache[tag] = vec![EmdSlot::default(); n];
            }
            Some(tag)
        } else {
            None
        };
    }

    /// Shared extraction core over any frame source.
    fn run<S: FrameSource + ?Sized>(
        &mut self,
        src: &S,
        classifier: Option<&dyn Classifier>,
        repredict: bool,
        out: &mut Vec<f64>,
    ) {
        let n = src.len();
        let use_preds = if repredict {
            let clf = classifier.expect("re-predicted extraction requires a classifier");
            let Self { preds, proba, .. } = self;
            preds.clear();
            for i in 0..n {
                preds.push(clf.predict_with(src.features(i), proba));
            }
            true
        } else {
            false
        };
        self.fill_sequences(src, use_preds);
        out.clear();
        out.resize(self.extractor.schema().len(), 0.0);
        let src_len = self.kinds.len() * self.extractor.functions().len();
        self.eval_sources(&mut out[..src_len]);
        if self.extractor.includes_feature_importance() {
            let n_features = self.extractor.n_features();
            let tail = out.len() - n_features;
            let importance = &mut out[tail..];
            if let Some(clf) = classifier {
                let mut counted = 0usize;
                let Self { contrib, proba, .. } = self;
                for i in 0..n {
                    if clf.contributions_with(src.features(i), contrib, proba) {
                        for (acc, c) in importance.iter_mut().zip(contrib.iter()) {
                            *acc += c.abs();
                        }
                        counted += 1;
                    }
                }
                if counted > 0 {
                    for acc in importance.iter_mut() {
                        *acc /= counted as f64;
                    }
                }
            }
        }
        debug_assert_eq!(out.len(), self.extractor.schema().len());
    }

    /// The cached source-sequence pass: materialises every selected
    /// behaviour source into its scratch buffer, optionally substituting
    /// re-predicted labels for the prediction-dependent sources.
    fn fill_sequences<S: FrameSource + ?Sized>(&mut self, src: &S, use_preds: bool) {
        let n = src.len();
        let preds = if use_preds { Some(self.preds.as_slice()) } else { None };
        for (seq, &kind) in self.seqs.iter_mut().zip(self.kinds.iter()) {
            seq.clear();
            match kind {
                SourceKind::Feature(j) => seq.extend((0..n).map(|i| src.features(i)[j])),
                SourceKind::Labels => seq.extend((0..n).map(|i| src.label(i) as f64)),
                SourceKind::Predictions => match preds {
                    Some(p) => seq.extend(p.iter().map(|&v| v as f64)),
                    None => seq.extend((0..n).map(|i| src.prediction(i) as f64)),
                },
                SourceKind::Errors => match preds {
                    Some(p) => seq.extend(
                        (0..n).map(|i| if p[i] != src.label(i) { 1.0 } else { 0.0 }),
                    ),
                    None => seq.extend(
                        (0..n).map(|i| if src.prediction(i) != src.label(i) { 1.0 } else { 0.0 }),
                    ),
                },
                SourceKind::ErrorDistances => {
                    let mut last: Option<usize> = None;
                    for i in 0..n {
                        let err = match preds {
                            Some(p) => p[i] != src.label(i),
                            None => src.prediction(i) != src.label(i),
                        };
                        if err {
                            if let Some(prev) = last {
                                seq.push((i - prev) as f64);
                            }
                            last = Some(i);
                        }
                    }
                }
            }
        }
    }

    /// Evaluates every (source, function) dimension into `out`, fanning
    /// sources across the worker pool when `threads > 1`.
    fn eval_sources(&mut self, out: &mut [f64]) {
        let functions = self.extractor.functions();
        let nf = functions.len();
        if nf == 0 || self.kinds.is_empty() {
            return;
        }
        let needs_emd = functions
            .iter()
            .any(|f| matches!(f, MetaFunction::ImfEntropy1 | MetaFunction::ImfEntropy2));
        let emd_cfg = *self.extractor.emd_config();
        let mi_bins = self.extractor.mi_bins();
        let emd_stride = self.emd_stride;
        let tracked = &self.tracked;
        let seqs = &self.seqs;
        let clock = self.clock.clone();
        let nanos = &mut self.source_nanos;
        if self.timed_extractions < u64::MAX {
            self.timed_extractions += clock.is_some() as u64;
        }
        let tracked_of = |i: usize| tracked.get(i).copied().flatten();
        let mut cache = match self.active_bank {
            Some(b) => Some(&mut self.emd_cache[b]),
            None => None,
        };
        let n_workers = self.threads.min(self.kinds.len());
        if n_workers <= 1 {
            if self.workers.is_empty() {
                self.workers.push(SourceScratch::default());
            }
            let worker = &mut self.workers[0];
            for (i, ((seq, chunk), nano)) in
                seqs.iter().zip(out.chunks_mut(nf)).zip(nanos.iter_mut()).enumerate()
            {
                let t0 = clock.as_deref().map(Clock::now_nanos);
                eval_source_into(
                    seq,
                    functions,
                    needs_emd,
                    &emd_cfg,
                    mi_bins,
                    tracked_of(i),
                    cache.as_deref_mut().map(|c| (&mut c[i], emd_stride)),
                    worker,
                    chunk,
                );
                if let (Some(c), Some(t0)) = (clock.as_deref(), t0) {
                    *nano += c.now_nanos().saturating_sub(t0);
                }
            }
        } else {
            if self.workers.len() < n_workers {
                self.workers.resize_with(n_workers, SourceScratch::default);
            }
            let mut slots: Vec<Option<(&mut EmdSlot, u32)>> =
                Vec::with_capacity(self.kinds.len());
            match cache {
                Some(c) => slots.extend(c.iter_mut().map(|s| Some((s, emd_stride)))),
                None => slots.extend(self.kinds.iter().map(|_| None)),
            }
            // Round-robin the sources over the workers; each work item owns
            // a disjoint slice of `out` (and its own timing and EMD cache
            // slots), so no synchronisation is needed and the result cannot
            // depend on scheduling.
            let mut batches: Vec<Vec<SourceTask<'_>>> =
                (0..n_workers).map(|_| Vec::new()).collect();
            for ((i, ((seq, chunk), nano)), slot) in seqs
                .iter()
                .zip(out.chunks_mut(nf))
                .zip(nanos.iter_mut())
                .enumerate()
                .zip(slots)
            {
                batches[i % n_workers].push((seq, tracked_of(i), slot, chunk, nano));
            }
            std::thread::scope(|scope| {
                for (worker, batch) in self.workers.iter_mut().zip(batches) {
                    let clock = clock.clone();
                    scope.spawn(move || {
                        for (seq, tv, slot, chunk, nano) in batch {
                            let t0 = clock.as_deref().map(Clock::now_nanos);
                            eval_source_into(
                                seq, functions, needs_emd, &emd_cfg, mi_bins, tv, slot, worker,
                                chunk,
                            );
                            if let (Some(c), Some(t0)) = (clock.as_deref(), t0) {
                                *nano += c.now_nanos().saturating_sub(t0);
                            }
                        }
                    });
                }
            });
        }
    }
}

/// Whether `kind`'s behaviour sequence is independent of the classifier
/// (and therefore cacheable across a repository sweep).
fn kind_is_static(kind: SourceKind) -> bool {
    matches!(kind, SourceKind::Feature(_) | SourceKind::Labels)
}

/// FNV-1a over the IEEE-754 bit patterns of a sequence, one 64-bit word
/// per value. Identifies unchanged window contents for EMD reuse; a
/// collision between two *different* windows of equal length is the only
/// way the exact-reuse path can misfire, at odds of ~2⁻⁶⁴ per comparison.
fn hash_seq(seq: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in seq {
        h ^= x.to_bits();
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ seq.len() as u64
}

/// EMD with the per-source cache: an unchanged sequence (by content hash)
/// reuses the previous sifting exactly; a changed one reuses the stale
/// values while the slot is within its stride budget, and re-sifts
/// otherwise.
fn cached_imf(
    seq: &[f64],
    emd_cfg: &EmdConfig,
    scratch: &mut EmdScratch,
    slot: &mut EmdSlot,
    stride: u32,
) -> (f64, f64) {
    let hash = hash_seq(seq);
    if slot.valid && slot.len == seq.len() && slot.hash == hash {
        return slot.vals;
    }
    if slot.valid && stride > 1 && slot.age + 1 < stride {
        slot.age += 1;
        return slot.vals;
    }
    let vals = imf_entropies_scratch(seq, emd_cfg, scratch);
    *slot = EmdSlot { hash, len: seq.len(), vals, age: 0, valid: true };
    vals
}

/// Evaluates one behaviour source's function block into `out`
/// (`out.len() == functions.len()`).
///
/// The moment statistics come from a fused two-pass sweep (or the tracked
/// substitutes); the remaining functions run on the cached sequence with
/// scratch-backed EMD and MI, unless the tracked substitutes carry the
/// incrementally evaluated sequence statistics. With no substitutes and no
/// EMD cache slot, every value is bit-identical to the corresponding
/// [`FingerprintExtractor::extract`] dimension.
#[allow(clippy::too_many_arguments)]
fn eval_source_into(
    seq: &[f64],
    functions: &[MetaFunction],
    needs_emd: bool,
    emd_cfg: &EmdConfig,
    mi_bins: usize,
    tracked: Option<TrackedVals>,
    emd_slot: Option<(&mut EmdSlot, u32)>,
    scratch: &mut SourceScratch,
    out: &mut [f64],
) {
    let imf = if needs_emd {
        Some(match emd_slot {
            Some((slot, stride)) => cached_imf(seq, emd_cfg, &mut scratch.emd, slot, stride),
            None => imf_entropies_scratch(seq, emd_cfg, &mut scratch.emd),
        })
    } else {
        None
    };
    let ext = tracked.and_then(|t| t.ext);
    let n = seq.len();
    let needs_moments = tracked.is_none()
        && functions.iter().any(|f| {
            matches!(
                f,
                MetaFunction::Mean
                    | MetaFunction::StdDev
                    | MetaFunction::Skew
                    | MetaFunction::Kurtosis
            )
        });
    let mut mean_v = 0.0;
    let (mut cm2, mut cm3, mut cm4) = (0.0, 0.0, 0.0);
    if needs_moments && n > 0 {
        let nf = n as f64;
        mean_v = seq.iter().sum::<f64>() / nf;
        let (mut s2, mut s3, mut s4) = (0.0, 0.0, 0.0);
        for &x in seq {
            let d = x - mean_v;
            let d2 = d * d;
            s2 += d2;
            s3 += d2 * d;
            s4 += d2 * d2;
        }
        cm2 = s2 / nf;
        cm3 = s3 / nf;
        cm4 = s4 / nf;
    }
    for (slot, &function) in out.iter_mut().zip(functions) {
        *slot = match function {
            MetaFunction::Mean => match tracked {
                Some(t) => t.mean,
                None => {
                    if n == 0 {
                        0.0
                    } else {
                        mean_v
                    }
                }
            },
            MetaFunction::StdDev => match tracked {
                Some(t) => t.std_dev,
                None => {
                    if n < 2 {
                        0.0
                    } else {
                        cm2.sqrt()
                    }
                }
            },
            MetaFunction::Skew => match tracked {
                Some(t) => t.skewness,
                None => {
                    if n < 3 || cm2 <= f64::EPSILON {
                        0.0
                    } else {
                        cm3 / cm2.powf(1.5)
                    }
                }
            },
            MetaFunction::Kurtosis => match tracked {
                Some(t) => t.kurtosis,
                None => {
                    if n < 4 || cm2 <= f64::EPSILON {
                        0.0
                    } else {
                        cm4 / (cm2 * cm2) - 3.0
                    }
                }
            },
            MetaFunction::Acf1 => match ext {
                Some(e) => e.acf1,
                None => autocorrelation(seq, 1),
            },
            MetaFunction::Acf2 => match ext {
                Some(e) => e.acf2,
                None => autocorrelation(seq, 2),
            },
            MetaFunction::Pacf1 => match ext {
                Some(e) => e.pacf1,
                None => partial_autocorrelation(seq, 1),
            },
            MetaFunction::Pacf2 => match ext {
                Some(e) => e.pacf2,
                None => partial_autocorrelation(seq, 2),
            },
            MetaFunction::MutualInformation => match ext {
                Some(e) => e.mi,
                None => lagged_mutual_information_scratch(seq, 1, mi_bins, &mut scratch.mi),
            },
            MetaFunction::TurningPointRate => match ext {
                Some(e) => e.tpr,
                None => turning_point_rate(seq),
            },
            MetaFunction::ImfEntropy1 => imf.map_or(0.0, |(a, _)| a),
            MetaFunction::ImfEntropy2 => imf.map_or(0.0, |(_, b)| b),
            MetaFunction::FeatureImportance => {
                unreachable!("feature importance is not a sequence function")
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::SourceSelection;
    use ficsum_classifiers::HoeffdingTree;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    fn window(rng: &mut Xoshiro256pp, n: usize, d: usize, classes: usize) -> Vec<LabeledObservation> {
        (0..n)
            .map(|_| {
                let x: Vec<f64> = (0..d).map(|_| rng.random_range(-2.0..2.0)).collect();
                let y = rng.random_range(0..classes);
                let l = rng.random_range(0..classes);
                LabeledObservation::new(x, y, l)
            })
            .collect()
    }

    fn trained_tree(rng: &mut Xoshiro256pp, d: usize) -> HoeffdingTree {
        let mut tree = HoeffdingTree::new(d, 2);
        for _ in 0..2000 {
            let y = rng.random_range(0..2usize);
            let mut x: Vec<f64> = (0..d).map(|_| rng.random()).collect();
            x[0] += 2.0 * y as f64;
            tree.train(&x, y);
        }
        tree
    }

    #[test]
    fn engine_matches_legacy_extractor_exactly() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let ex = FingerprintExtractor::full(4);
        let mut engine = FingerprintEngine::new(ex.clone());
        let tree = trained_tree(&mut rng, 4);
        for trial in 0..5 {
            let w = window(&mut rng, 40 + trial * 17, 4, 2);
            let legacy = ex.extract(&w, Some(&tree));
            let fast = engine.extract(&w, Some(&tree));
            assert_eq!(legacy, fast, "trial {trial}: engine must be bit-identical");
        }
    }

    #[test]
    fn scanned_sweep_matches_plain_repredicted_extraction() {
        // The repository-sweep fast path: one static scan of a window,
        // reused across several classifiers, must reproduce the plain
        // repredicted extraction bit-for-bit — including when the scan is
        // consumed by a *different* engine instance (the parallel workers).
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let ex = FingerprintExtractor::full(4);
        let mut engine = FingerprintEngine::new(ex.clone());
        let mut worker = FingerprintEngine::new(ex);
        let trees: Vec<HoeffdingTree> =
            (0..4).map(|_| trained_tree(&mut rng, 4)).collect();
        let mut scan = StaticScan::new();
        for trial in 0..3 {
            let w = window(&mut rng, 30 + trial * 25, 4, 2);
            engine.static_scan_frames(&w[..], &mut scan);
            for tree in &trees {
                let plain = engine.extract_repredicted(&w, tree);
                let mut scanned = Vec::new();
                engine.extract_with_scan(&w[..], &scan, tree, &mut scanned);
                assert_eq!(plain, scanned, "trial {trial}: owner engine diverged");
                let mut other = Vec::new();
                worker.extract_with_scan(&w[..], &scan, tree, &mut other);
                assert_eq!(plain, other, "trial {trial}: worker engine diverged");
            }
        }
    }

    #[test]
    fn engine_matches_legacy_on_ablation_variants() {
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let variants = [
            FingerprintExtractor::error_rate_only(3),
            FingerprintExtractor::single_function(3, MetaFunction::Skew),
            FingerprintExtractor::single_function(3, MetaFunction::FeatureImportance),
            FingerprintExtractor::new(
                3,
                MetaFunction::SEQUENCE_FUNCTIONS.to_vec(),
                SourceSelection::unsupervised_only(),
                false,
            ),
            FingerprintExtractor::new(
                3,
                MetaFunction::SEQUENCE_FUNCTIONS.to_vec(),
                SourceSelection::supervised_only(),
                false,
            ),
        ];
        let tree = trained_tree(&mut rng, 3);
        for ex in variants {
            let mut engine = FingerprintEngine::new(ex.clone());
            let w = window(&mut rng, 60, 3, 2);
            assert_eq!(ex.extract(&w, Some(&tree)), engine.extract(&w, Some(&tree)));
            assert_eq!(ex.extract(&w, None), engine.extract(&w, None));
        }
    }

    #[test]
    fn sequential_and_parallel_are_bit_identical() {
        // The golden parity test: a 20-feature synthetic stream window,
        // extracted sequentially and with a worker pool, must agree on
        // every bit.
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let d = 20;
        let mut seq_engine = FingerprintEngine::new(FingerprintExtractor::full(d));
        let mut par_engine =
            FingerprintEngine::new(FingerprintExtractor::full(d)).with_threads(4);
        assert_eq!(par_engine.threads(), 4);
        let tree = trained_tree(&mut rng, d);
        for trial in 0..3 {
            let w: Vec<LabeledObservation> = (0..100)
                .map(|i| {
                    let x: Vec<f64> = (0..d)
                        .map(|j| (i as f64 * 0.1 + j as f64).sin() + rng.random::<f64>() * 0.3)
                        .collect();
                    let y = rng.random_range(0..2usize);
                    let l = rng.random_range(0..2usize);
                    LabeledObservation::new(x, y, l)
                })
                .collect();
            let sequential = seq_engine.extract(&w, Some(&tree));
            let parallel = par_engine.extract(&w, Some(&tree));
            assert_eq!(sequential, parallel, "trial {trial}");
            // Reprediction path too.
            let sequential = seq_engine.extract_repredicted(&w, &tree);
            let parallel = par_engine.extract_repredicted(&w, &tree);
            assert_eq!(sequential, parallel, "repredicted trial {trial}");
        }
    }

    #[test]
    fn repredicted_matches_manual_relabel() {
        let mut rng = Xoshiro256pp::seed_from_u64(14);
        let ex = FingerprintExtractor::full(3);
        let mut engine = FingerprintEngine::new(ex.clone());
        let tree = trained_tree(&mut rng, 3);
        let w = window(&mut rng, 75, 3, 2);
        // The legacy framework path: clone, overwrite predictions, extract.
        let relabeled: Vec<LabeledObservation> = w
            .iter()
            .map(|o| {
                let mut o = o.clone();
                o.prediction = tree.predict(o.features());
                o
            })
            .collect();
        let legacy = ex.extract(&relabeled, Some(&tree));
        let fast = engine.extract_repredicted(&w, &tree);
        assert_eq!(legacy, fast);
    }

    #[test]
    fn tracked_extraction_is_bit_exact_by_default() {
        let mut rng = Xoshiro256pp::seed_from_u64(15);
        let d = 3;
        let mut engine = FingerprintEngine::new(FingerprintExtractor::full(d));
        let mut tw = TrackedWindow::new(50, d);
        for o in window(&mut rng, 120, d, 2) {
            tw.push(o);
        }
        let contents: Vec<LabeledObservation> = tw.iter().cloned().collect();
        let batch = engine.extract(&contents, None);
        let tracked = engine.extract_tracked(&tw, None);
        assert_eq!(batch, tracked);
    }

    #[test]
    fn tracked_extraction_matches_batch_closely() {
        let mut rng = Xoshiro256pp::seed_from_u64(15);
        let d = 3;
        let mut engine =
            FingerprintEngine::new(FingerprintExtractor::full(d)).with_incremental_moments(true);
        let mut tw = TrackedWindow::new(50, d);
        for o in window(&mut rng, 120, d, 2) {
            tw.push(o);
        }
        let contents: Vec<LabeledObservation> = tw.iter().cloned().collect();
        let batch = engine.extract(&contents, None);
        let tracked = engine.extract_tracked(&tw, None);
        assert_eq!(batch.len(), tracked.len());
        for (i, (b, t)) in batch.iter().zip(&tracked).enumerate() {
            assert!(
                (b - t).abs() <= 1e-9 * (1.0 + b.abs()),
                "dim {i}: batch {b} vs tracked {t}"
            );
        }
    }

    fn filled_windows(
        rng: &mut Xoshiro256pp,
        w: usize,
        delay: usize,
        d: usize,
        steps: usize,
        bins: usize,
    ) -> ficsum_stream::FrameWindows {
        let mut fw = ficsum_stream::FrameWindows::new(w, delay, d);
        fw.enable_stats(bins);
        for _ in 0..steps {
            let x: Vec<f64> = (0..d).map(|_| rng.random_range(-2.0..2.0)).collect();
            fw.push(&x, rng.random_range(0..2usize), rng.random_range(0..2usize));
        }
        fw
    }

    #[test]
    fn incremental_stats_match_batch_closely() {
        let mut rng = Xoshiro256pp::seed_from_u64(41);
        let d = 3;
        let ex = FingerprintExtractor::full(d);
        let mut fast = FingerprintEngine::new(ex.clone()).with_incremental_stats(true);
        let mut batch = FingerprintEngine::new(ex);
        let tree = trained_tree(&mut rng, d);
        let mut fw = ficsum_stream::FrameWindows::new(50, 10, d);
        fw.enable_stats(8);
        let mut out_fast = Vec::new();
        let mut out_batch = Vec::new();
        for step in 0..220 {
            let x: Vec<f64> = (0..d).map(|_| rng.random_range(-2.0..2.0)).collect();
            fw.push(&x, rng.random_range(0..2usize), rng.random_range(0..2usize));
            if step % 13 != 0 || step < 5 {
                continue;
            }
            for tag in 0..2 {
                let (tracked, view) = if tag == 0 {
                    (fw.a_tracked(), fw.a_view())
                } else {
                    if fw.stale_len() == 0 {
                        continue;
                    }
                    (fw.stale_tracked(), fw.stale_view())
                };
                fast.extract_tracked_frames_repredicted_into(&tracked, &tree, &mut out_fast);
                batch.extract_frames_repredicted_into(&view, &tree, &mut out_batch);
                assert_eq!(out_fast.len(), out_batch.len());
                for (i, (t, b)) in out_fast.iter().zip(&out_batch).enumerate() {
                    assert!(
                        (t - b).abs() <= 1e-9 * (1.0 + b.abs()),
                        "step {step} tag {tag} dim {i}: batch {b} vs incremental {t}"
                    );
                }
                let nf = MetaFunction::SEQUENCE_FUNCTIONS.len();
                // The substituted MI / turning-point dims and the cached
                // (stride-1) EMD dims must be bit-identical, per source.
                for s in 0..(d + 4) {
                    for f in [8usize, 9, 10, 11] {
                        assert_eq!(
                            out_fast[s * nf + f].to_bits(),
                            out_batch[s * nf + f].to_bits(),
                            "step {step} tag {tag} source {s} fn {f}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_stats_cover_prediction_sources_without_reprediction() {
        // Non-repredicting extraction keeps the push-time prediction
        // sequence, so the prediction and error sources substitute from
        // their stat banks too — within the same tolerance contract.
        let mut rng = Xoshiro256pp::seed_from_u64(44);
        let d = 3;
        let ex = FingerprintExtractor::full(d);
        let mut fast = FingerprintEngine::new(ex.clone()).with_incremental_stats(true);
        let mut batch = FingerprintEngine::new(ex);
        let mut fw = ficsum_stream::FrameWindows::new(50, 10, d);
        fw.enable_stats(8);
        let mut out_fast = Vec::new();
        let mut out_batch = Vec::new();
        for step in 0..220 {
            let x: Vec<f64> = (0..d).map(|_| rng.random_range(-2.0..2.0)).collect();
            fw.push(&x, rng.random_range(0..2usize), rng.random_range(0..2usize));
            if step % 17 != 0 || step < 5 {
                continue;
            }
            fast.extract_tracked_frames_into(&fw.a_tracked(), None, &mut out_fast);
            batch.extract_frames_into(&fw.a_view(), None, &mut out_batch);
            assert_eq!(out_fast.len(), out_batch.len());
            for (i, (t, b)) in out_fast.iter().zip(&out_batch).enumerate() {
                assert!(
                    (t - b).abs() <= 1e-9 * (1.0 + b.abs()),
                    "step {step} dim {i}: batch {b} vs incremental {t}"
                );
            }
            let nf = MetaFunction::SEQUENCE_FUNCTIONS.len();
            for s in 0..(d + 4) {
                for f in [8usize, 9, 10, 11] {
                    assert_eq!(
                        out_fast[s * nf + f].to_bits(),
                        out_batch[s * nf + f].to_bits(),
                        "step {step} source {s} fn {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_stats_parallel_matches_sequential() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let d = 4;
        let ex = FingerprintExtractor::full(d);
        let mut seq_engine =
            FingerprintEngine::new(ex.clone()).with_incremental_stats(true).with_emd_stride(3);
        let mut par_engine =
            FingerprintEngine::new(ex).with_incremental_stats(true).with_emd_stride(3).with_threads(3);
        let mut fw = filled_windows(&mut rng, 40, 5, d, 60, 8);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for _ in 0..10 {
            let x: Vec<f64> = (0..d).map(|_| rng.random_range(-2.0..2.0)).collect();
            fw.push(&x, rng.random_range(0..2usize), 0);
            seq_engine.extract_tracked_frames_into(&fw.a_tracked(), None, &mut a);
            par_engine.extract_tracked_frames_into(&fw.a_tracked(), None, &mut b);
            assert_eq!(a, b, "cache decisions must be scheduling-independent");
        }
    }

    #[test]
    fn emd_stride_reuses_then_refreshes() {
        let mut rng = Xoshiro256pp::seed_from_u64(43);
        let d = 2;
        let stride = 3u32;
        let mut engine = FingerprintEngine::new(FingerprintExtractor::full(d))
            .with_incremental_stats(true)
            .with_emd_stride(stride);
        assert_eq!(engine.emd_stride(), stride);
        let mut batch = FingerprintEngine::new(FingerprintExtractor::full(d));
        let mut fw = filled_windows(&mut rng, 30, 0, d, 40, 8);
        let nf = MetaFunction::SEQUENCE_FUNCTIONS.len();
        let emd_dims: Vec<usize> =
            (0..d + 4).flat_map(|s| [s * nf + 10, s * nf + 11]).collect();
        let mut out = Vec::new();
        engine.extract_tracked_frames_into(&fw.a_tracked(), None, &mut out);
        let first = out.clone();
        let mut refreshed = false;
        for round in 1..=(stride as usize) {
            let x: Vec<f64> = (0..d).map(|_| rng.random_range(-2.0..2.0)).collect();
            fw.push(&x, rng.random_range(0..2usize), 0);
            engine.extract_tracked_frames_into(&fw.a_tracked(), None, &mut out);
            let fresh = batch.extract(&{
                let mut block = ficsum_stream::FrameBlock::new();
                block.copy_from(&fw.a_view());
                (0..block.len())
                    .map(|i| LabeledObservation::new(
                        block.features(i).to_vec(),
                        block.label(i),
                        block.prediction(i),
                    ))
                    .collect::<Vec<_>>()
            }, None);
            let stale = emd_dims.iter().all(|&i| out[i].to_bits() == first[i].to_bits());
            let exact = emd_dims.iter().all(|&i| out[i].to_bits() == fresh[i].to_bits());
            if round < stride as usize {
                assert!(stale, "round {round}: within budget, entropies must be reused");
            } else {
                assert!(exact, "round {round}: stride exhausted, entropies must refresh");
                refreshed = true;
            }
            // Non-EMD dims always track the live window.
            assert!(
                out.iter().zip(&fresh).enumerate().all(|(i, (a, b))| {
                    emd_dims.contains(&i) || (a - b).abs() <= 1e-9 * (1.0 + b.abs())
                }),
                "round {round}: substituted stats must track the window"
            );
        }
        assert!(refreshed);
        engine.invalidate_emd_cache();
        engine.extract_tracked_frames_into(&fw.a_tracked(), None, &mut out);
        // After invalidation the very next extraction re-sifts.
        let contents: Vec<LabeledObservation> = (0..fw.a_len())
            .map(|i| {
                let v = fw.a_view();
                LabeledObservation::new(v.features(i).to_vec(), v.label(i), v.prediction(i))
            })
            .collect();
        let fresh = batch.extract(&contents, None);
        for &i in &emd_dims {
            assert_eq!(out[i].to_bits(), fresh[i].to_bits(), "dim {i} after invalidate");
        }
    }

    #[test]
    fn per_source_timing_covers_sequential_and_parallel_paths() {
        use ficsum_obs::MonotonicClock;
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let d = 6;
        let w = window(&mut rng, 80, d, 2);
        for threads in [1, 3] {
            let mut engine =
                FingerprintEngine::new(FingerprintExtractor::full(d)).with_threads(threads);
            assert!(!engine.timing_enabled());
            assert!(engine.source_timings().is_empty());
            engine.set_clock(Some(Arc::new(MonotonicClock::new())));
            assert!(engine.timing_enabled());
            let _ = engine.extract(&w, None);
            let _ = engine.extract(&w, None);
            assert_eq!(engine.timed_extractions(), 2, "threads={threads}");
            let timings = engine.source_timings();
            assert_eq!(timings.len(), d + 4, "one slot per behaviour source");
            assert!(
                timings.iter().any(|(_, n)| *n > 0),
                "threads={threads}: wall clock must attribute some cost"
            );
            engine.reset_timings();
            assert_eq!(engine.timed_extractions(), 0);
            assert!(engine.source_timings().iter().all(|(_, n)| *n == 0));
        }
    }

    #[test]
    fn timing_does_not_perturb_extraction_values() {
        use ficsum_obs::ManualClock;
        let mut rng = Xoshiro256pp::seed_from_u64(22);
        let w = window(&mut rng, 60, 3, 2);
        let mut plain = FingerprintEngine::new(FingerprintExtractor::full(3));
        let mut timed = FingerprintEngine::new(FingerprintExtractor::full(3));
        timed.set_clock(Some(Arc::new(ManualClock::new())));
        assert_eq!(plain.extract(&w, None), timed.extract(&w, None));
    }

    #[test]
    fn repeated_extraction_reuses_buffers() {
        // Not a direct allocation count (no custom allocator available),
        // but the scratch buffers must retain capacity between calls.
        let mut rng = Xoshiro256pp::seed_from_u64(16);
        let mut engine = FingerprintEngine::new(FingerprintExtractor::full(2));
        let w = window(&mut rng, 80, 2, 2);
        let _ = engine.extract(&w, None);
        let caps: Vec<usize> = engine.seqs.iter().map(Vec::capacity).collect();
        let _ = engine.extract(&w, None);
        let caps_after: Vec<usize> = engine.seqs.iter().map(Vec::capacity).collect();
        assert_eq!(caps, caps_after, "sequence buffers must be reused");
    }
}
