//! Moment statistics, turning-point rate and the [`MetaFunction`] catalogue.

/// The 13 meta-information functions of Table I.
///
/// The first twelve are sequence statistics applicable to every behaviour
/// source; [`MetaFunction::FeatureImportance`] is the classifier-derived
/// per-feature channel (the paper's Shapley value), which only applies to
/// feature sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaFunction {
    /// Distribution centre.
    Mean,
    /// Distribution variance.
    StdDev,
    /// Distribution asymmetry.
    Skew,
    /// Distribution tails.
    Kurtosis,
    /// Temporal dependence, lag 1.
    Acf1,
    /// Temporal dependence, lag 2.
    Acf2,
    /// Partial temporal dependence, lag 1.
    Pacf1,
    /// Partial temporal dependence, lag 2.
    Pacf2,
    /// Lag-1 self mutual information.
    MutualInformation,
    /// Rate of oscillation.
    TurningPointRate,
    /// Entropy of the first intrinsic mode function.
    ImfEntropy1,
    /// Entropy of the second intrinsic mode function.
    ImfEntropy2,
    /// Classifier feature importance (Shapley stand-in).
    FeatureImportance,
}

impl MetaFunction {
    /// The twelve sequence statistics (everything but feature importance).
    pub const SEQUENCE_FUNCTIONS: [MetaFunction; 12] = [
        MetaFunction::Mean,
        MetaFunction::StdDev,
        MetaFunction::Skew,
        MetaFunction::Kurtosis,
        MetaFunction::Acf1,
        MetaFunction::Acf2,
        MetaFunction::Pacf1,
        MetaFunction::Pacf2,
        MetaFunction::MutualInformation,
        MetaFunction::TurningPointRate,
        MetaFunction::ImfEntropy1,
        MetaFunction::ImfEntropy2,
    ];

    /// All thirteen functions.
    pub const ALL: [MetaFunction; 13] = [
        MetaFunction::Mean,
        MetaFunction::StdDev,
        MetaFunction::Skew,
        MetaFunction::Kurtosis,
        MetaFunction::Acf1,
        MetaFunction::Acf2,
        MetaFunction::Pacf1,
        MetaFunction::Pacf2,
        MetaFunction::MutualInformation,
        MetaFunction::TurningPointRate,
        MetaFunction::ImfEntropy1,
        MetaFunction::ImfEntropy2,
        MetaFunction::FeatureImportance,
    ];

    /// Stable short name (used in schema descriptors and reports).
    pub fn name(self) -> &'static str {
        match self {
            MetaFunction::Mean => "mean",
            MetaFunction::StdDev => "std",
            MetaFunction::Skew => "skew",
            MetaFunction::Kurtosis => "kurtosis",
            MetaFunction::Acf1 => "acf1",
            MetaFunction::Acf2 => "acf2",
            MetaFunction::Pacf1 => "pacf1",
            MetaFunction::Pacf2 => "pacf2",
            MetaFunction::MutualInformation => "mi",
            MetaFunction::TurningPointRate => "tpr",
            MetaFunction::ImfEntropy1 => "imf1",
            MetaFunction::ImfEntropy2 => "imf2",
            MetaFunction::FeatureImportance => "fi",
        }
    }
}

/// Arithmetic mean; 0 for an empty sequence.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Central moment of order `k`.
fn central_moment(xs: &[f64], m: f64, k: u32) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|&x| (x - m).powi(k as i32)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for sequences shorter than 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    central_moment(xs, mean(xs), 2).sqrt()
}

/// Moment skewness `m3 / m2^(3/2)`; 0 for degenerate sequences.
pub fn skewness(xs: &[f64]) -> f64 {
    if xs.len() < 3 {
        return 0.0;
    }
    let m = mean(xs);
    let m2 = central_moment(xs, m, 2);
    if m2 <= f64::EPSILON {
        return 0.0;
    }
    central_moment(xs, m, 3) / m2.powf(1.5)
}

/// Excess kurtosis `m4 / m2^2 - 3`; 0 for degenerate sequences.
pub fn kurtosis(xs: &[f64]) -> f64 {
    if xs.len() < 4 {
        return 0.0;
    }
    let m = mean(xs);
    let m2 = central_moment(xs, m, 2);
    if m2 <= f64::EPSILON {
        return 0.0;
    }
    central_moment(xs, m, 4) / (m2 * m2) - 3.0
}

/// Proportion of interior points that are local extrema (sign change of the
/// first difference). For an i.i.d. sequence the expectation is 2/3.
pub fn turning_point_rate(xs: &[f64]) -> f64 {
    if xs.len() < 3 {
        return 0.0;
    }
    let mut turns = 0usize;
    for w in xs.windows(3) {
        let (a, b, c) = (w[0], w[1], w[2]);
        if (b - a) * (c - b) < 0.0 {
            turns += 1;
        }
    }
    turns as f64 / (xs.len() - 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn skew_sign_tracks_asymmetry() {
        let right = [1.0, 1.0, 1.0, 1.0, 10.0];
        let left = [10.0, 10.0, 10.0, 10.0, 1.0];
        assert!(skewness(&right) > 0.5);
        assert!(skewness(&left) < -0.5);
        let symm = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(skewness(&symm).abs() < 1e-9);
    }

    #[test]
    fn kurtosis_of_uniformish_is_negative() {
        // Uniform distribution has excess kurtosis -1.2.
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        assert!((kurtosis(&xs) + 1.2).abs() < 0.05);
    }

    #[test]
    fn degenerate_sequences_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(skewness(&[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(kurtosis(&[5.0, 5.0, 5.0, 5.0]), 0.0);
        assert_eq!(turning_point_rate(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn turning_points_of_alternating_sequence() {
        let xs = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        assert!((turning_point_rate(&xs) - 1.0).abs() < 1e-12);
        let mono = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(turning_point_rate(&mono), 0.0);
    }

    #[test]
    fn catalogue_is_consistent() {
        assert_eq!(MetaFunction::ALL.len(), 13);
        assert_eq!(MetaFunction::SEQUENCE_FUNCTIONS.len(), 12);
        assert!(!MetaFunction::SEQUENCE_FUNCTIONS.contains(&MetaFunction::FeatureImportance));
        let names: std::collections::HashSet<_> =
            MetaFunction::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 13, "names must be unique");
    }
}
