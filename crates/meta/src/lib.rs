//! Meta-information functions and fingerprint feature extraction.
//!
//! Implements every meta-information function of Table I of the FiCSUM
//! paper, each mapping a univariate *behaviour source* sequence to a single
//! real value (Definitions 1 and 2):
//!
//! | function | behaviour captured |
//! |---|---|
//! | mean | distribution centre |
//! | standard deviation | distribution variance |
//! | skew | distribution asymmetry |
//! | kurtosis | distribution tails |
//! | autocorrelation lag 1 & 2 | temporal dependence |
//! | partial autocorrelation lag 1 & 2 | temporal dependence |
//! | mutual information (lag 1) | temporal dependence |
//! | turning point rate | rate of oscillation |
//! | entropy of intrinsic mode functions 1 & 2 | behaviour across timescales |
//! | feature importance (tree path contributions) | classifier behaviour |
//!
//! and the five behaviour sources: the `d` input features (unsupervised,
//! describing `p(X)`), labels, classifier labels, errors and error distances
//! (supervised, describing `p(y|X)`).
//!
//! The IMF entropies require a full empirical mode decomposition, provided
//! by [`emd`] on top of natural cubic splines ([`spline`]).

pub mod autocorr;
pub mod emd;
pub mod engine;
pub mod extractor;
pub mod functions;
mod incremental;
pub mod mutual_info;
pub mod sources;
pub mod spline;

pub use autocorr::{autocorrelation, partial_autocorrelation};
pub use emd::{imf_entropies, imf_entropies_scratch, EmdConfig, EmdScratch};
pub use engine::{FingerprintEngine, StaticScan};
pub use extractor::{DimensionInfo, FingerprintExtractor, FingerprintSchema, SourceSelection};
pub use functions::{kurtosis, mean, skewness, std_dev, turning_point_rate, MetaFunction};
pub use mutual_info::{lagged_mutual_information, lagged_mutual_information_scratch, MiScratch};
pub use sources::{
    behaviour_sources, error_distances, error_distances_into, source_sequence,
    source_sequence_into, SourceKind,
};
