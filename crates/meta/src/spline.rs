//! Natural cubic spline interpolation.
//!
//! Used by the empirical mode decomposition to build upper/lower envelopes
//! through the local extrema of a signal. Knots are `(x, y)` pairs with
//! strictly increasing `x`; the spline has zero second derivative at both
//! ends (the "natural" boundary condition) and is evaluated with clamped
//! linear extrapolation outside the knot range.

/// A natural cubic spline through a set of knots.
#[derive(Debug, Clone)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives at the knots.
    m: Vec<f64>,
}

impl CubicSpline {
    /// Fits a natural cubic spline. Requires at least 2 knots with strictly
    /// increasing `x`; returns `None` otherwise.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Option<Self> {
        let n = xs.len();
        if n < 2 || n != ys.len() {
            return None;
        }
        if xs.windows(2).any(|w| w[1] <= w[0]) {
            return None;
        }
        // Solve the tridiagonal system for second derivatives (Thomas
        // algorithm). Natural boundary: m[0] = m[n-1] = 0.
        let mut m = vec![0.0; n];
        if n > 2 {
            let k = n - 2; // interior unknowns
            let mut a = vec![0.0; k]; // sub-diagonal
            let mut b = vec![0.0; k]; // diagonal
            let mut c = vec![0.0; k]; // super-diagonal
            let mut d = vec![0.0; k]; // rhs
            for i in 0..k {
                let h0 = xs[i + 1] - xs[i];
                let h1 = xs[i + 2] - xs[i + 1];
                a[i] = h0;
                b[i] = 2.0 * (h0 + h1);
                c[i] = h1;
                d[i] = 6.0 * ((ys[i + 2] - ys[i + 1]) / h1 - (ys[i + 1] - ys[i]) / h0);
            }
            // Forward elimination.
            for i in 1..k {
                let w = a[i] / b[i - 1];
                b[i] -= w * c[i - 1];
                d[i] -= w * d[i - 1];
            }
            // Back substitution.
            m[k] = d[k - 1] / b[k - 1];
            for i in (0..k - 1).rev() {
                m[i + 1] = (d[i] - c[i] * m[i + 2]) / b[i];
            }
        }
        Some(Self { xs: xs.to_vec(), ys: ys.to_vec(), m })
    }

    /// Evaluates the spline at `x`. Outside the knot range the boundary
    /// value is extended (constant extrapolation keeps EMD envelopes sane).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Binary search for the containing interval.
        let i = match self.xs.binary_search_by(|v| v.total_cmp(&x)) {
            Ok(i) => return self.ys[i],
            Err(i) => i - 1,
        };
        let h = self.xs[i + 1] - self.xs[i];
        let t = x - self.xs[i];
        let u = self.xs[i + 1] - x;
        (self.m[i] * u * u * u + self.m[i + 1] * t * t * t) / (6.0 * h)
            + (self.ys[i] / h - self.m[i] * h / 6.0) * u
            + (self.ys[i + 1] / h - self.m[i + 1] * h / 6.0) * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_knots_exactly() {
        let xs = [0.0, 1.0, 2.5, 4.0];
        let ys = [1.0, -1.0, 3.0, 0.5];
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!((s.eval(*x) - y).abs() < 1e-9, "knot ({x},{y})");
        }
    }

    #[test]
    fn two_knots_is_linear() {
        let s = CubicSpline::fit(&[0.0, 2.0], &[0.0, 4.0]).unwrap();
        assert!((s.eval(1.0) - 2.0).abs() < 1e-12);
        assert!((s.eval(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reproduces_smooth_function_between_knots() {
        // Sample sin on a dense grid; spline error should be small.
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for i in 0..190 {
            let x = i as f64 * 0.05;
            assert!(
                (s.eval(x) - x.sin()).abs() < 0.01,
                "x={x} spline={} sin={}",
                s.eval(x),
                x.sin()
            );
        }
    }

    #[test]
    fn extrapolation_is_clamped() {
        let s = CubicSpline::fit(&[0.0, 1.0, 2.0], &[5.0, 0.0, 7.0]).unwrap();
        assert_eq!(s.eval(-10.0), 5.0);
        assert_eq!(s.eval(10.0), 7.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(CubicSpline::fit(&[0.0], &[1.0]).is_none());
        assert!(CubicSpline::fit(&[0.0, 0.0], &[1.0, 2.0]).is_none());
        assert!(CubicSpline::fit(&[0.0, 1.0], &[1.0]).is_none());
        assert!(CubicSpline::fit(&[1.0, 0.5], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn natural_boundary_second_derivative_is_zero() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 0.7).cos()).collect();
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        assert_eq!(s.m[0], 0.0);
        assert_eq!(s.m[9], 0.0);
    }
}
