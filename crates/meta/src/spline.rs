//! Natural cubic spline interpolation.
//!
//! Used by the empirical mode decomposition to build upper/lower envelopes
//! through the local extrema of a signal. Knots are `(x, y)` pairs with
//! strictly increasing `x`; the spline has zero second derivative at both
//! ends (the "natural" boundary condition) and is evaluated with clamped
//! linear extrapolation outside the knot range.

/// A natural cubic spline through a set of knots.
#[derive(Debug, Clone)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives at the knots.
    m: Vec<f64>,
}

impl CubicSpline {
    /// Fits a natural cubic spline. Requires at least 2 knots with strictly
    /// increasing `x`; returns `None` otherwise.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Option<Self> {
        let n = xs.len();
        if n < 2 || n != ys.len() {
            return None;
        }
        if xs.windows(2).any(|w| w[1] <= w[0]) {
            return None;
        }
        // Solve the tridiagonal system for second derivatives (Thomas
        // algorithm). Natural boundary: m[0] = m[n-1] = 0.
        let mut m = vec![0.0; n];
        if n > 2 {
            let k = n - 2; // interior unknowns
            let mut a = vec![0.0; k]; // sub-diagonal
            let mut b = vec![0.0; k]; // diagonal
            let mut c = vec![0.0; k]; // super-diagonal
            let mut d = vec![0.0; k]; // rhs
            for i in 0..k {
                let h0 = xs[i + 1] - xs[i];
                let h1 = xs[i + 2] - xs[i + 1];
                a[i] = h0;
                b[i] = 2.0 * (h0 + h1);
                c[i] = h1;
                d[i] = 6.0 * ((ys[i + 2] - ys[i + 1]) / h1 - (ys[i + 1] - ys[i]) / h0);
            }
            // Forward elimination.
            for i in 1..k {
                let w = a[i] / b[i - 1];
                b[i] -= w * c[i - 1];
                d[i] -= w * d[i - 1];
            }
            // Back substitution.
            m[k] = d[k - 1] / b[k - 1];
            for i in (0..k - 1).rev() {
                m[i + 1] = (d[i] - c[i] * m[i + 2]) / b[i];
            }
        }
        Some(Self { xs: xs.to_vec(), ys: ys.to_vec(), m })
    }

    /// Evaluates the spline at `x`. Outside the knot range the boundary
    /// value is extended (constant extrapolation keeps EMD envelopes sane).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Binary search for the containing interval.
        let i = match self.xs.binary_search_by(|v| v.total_cmp(&x)) {
            Ok(i) => return self.ys[i],
            Err(i) => i - 1,
        };
        let h = self.xs[i + 1] - self.xs[i];
        let t = x - self.xs[i];
        let u = self.xs[i + 1] - x;
        (self.m[i] * u * u * u + self.m[i + 1] * t * t * t) / (6.0 * h)
            + (self.ys[i] / h - self.m[i] * h / 6.0) * u
            + (self.ys[i + 1] / h - self.m[i + 1] * h / 6.0) * t
    }
}

/// A natural cubic spline with caller-owned, reusable storage.
///
/// Functionally identical to [`CubicSpline`] — the fit solves the same
/// tridiagonal system and the evaluation uses the same interpolation
/// formula — but every buffer (knots, second derivatives, Thomas-algorithm
/// temporaries) is retained across fits, so refitting inside a hot loop
/// allocates nothing after warm-up. Built for the EMD sifting loop, which
/// refits two envelopes per sifting pass.
///
/// Evaluation is optimised for *ascending* query points (the EMD case:
/// `x = 0, 1, 2, …`): [`SplineScratch::eval_monotone`] walks a cursor
/// forward instead of binary-searching per point, which is O(n + k) over a
/// whole sweep instead of O(n log k) — and produces bit-identical values,
/// including the exact-knot-hit behaviour of [`CubicSpline::eval`].
#[derive(Debug, Clone, Default)]
pub struct SplineScratch {
    xs: Vec<f64>,
    ys: Vec<f64>,
    m: Vec<f64>,
    // Thomas-algorithm temporaries.
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    d: Vec<f64>,
    /// Interval cursor for monotone evaluation; reset on every fit.
    cursor: usize,
    /// Segment index the cached evaluation terms below were computed for
    /// (`usize::MAX` = none).
    cached_seg: usize,
    seg_six_h: f64,
    seg_c0: f64,
    seg_c1: f64,
    seg_m0: f64,
    seg_m1: f64,
}

impl SplineScratch {
    /// Empty scratch; buffers grow on first fit and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fits a natural cubic spline through the knots, reusing this scratch's
    /// storage. Same contract as [`CubicSpline::fit`]: requires at least 2
    /// knots with strictly increasing `x`, returns `false` (leaving the
    /// scratch unusable until the next successful fit) otherwise.
    pub fn fit(&mut self, xs: &[f64], ys: &[f64]) -> bool {
        let n = xs.len();
        if n < 2 || n != ys.len() {
            return false;
        }
        if xs.windows(2).any(|w| w[1] <= w[0]) {
            return false;
        }
        self.xs.clear();
        self.xs.extend_from_slice(xs);
        self.ys.clear();
        self.ys.extend_from_slice(ys);
        self.m.clear();
        self.m.resize(n, 0.0);
        self.cursor = 0;
        self.cached_seg = usize::MAX;
        if n > 2 {
            let k = n - 2; // interior unknowns
            // Every element of a/b/c/d is overwritten below before it is
            // read, so the buffers are resized without zero-filling.
            for buf in [&mut self.a, &mut self.b, &mut self.c, &mut self.d] {
                buf.resize(k, 0.0);
            }
            let (a, b, c, d) = (&mut self.a, &mut self.b, &mut self.c, &mut self.d);
            // Each knot's left slope is the previous knot's right slope, so
            // carrying it across iterations halves the divisions without
            // changing a single operand (bit-identical to the two-division
            // form in [`CubicSpline::fit`]).
            let mut h0 = xs[1] - xs[0];
            let mut s0 = (ys[1] - ys[0]) / h0;
            for ((((ai, bi), (ci, di)), xw), yw) in a
                .iter_mut()
                .zip(b.iter_mut())
                .zip(c.iter_mut().zip(d.iter_mut()))
                .zip(xs[1..].windows(2))
                .zip(ys[1..].windows(2))
            {
                let h1 = xw[1] - xw[0];
                let s1 = (yw[1] - yw[0]) / h1;
                *ai = h0;
                *bi = 2.0 * (h0 + h1);
                *ci = h1;
                *di = 6.0 * (s1 - s0);
                h0 = h1;
                s0 = s1;
            }
            // Forward elimination. The previous row's updated diagonal and
            // rhs are carried in registers: `pb`/`pd` hold exactly the
            // values `b[i - 1]`/`d[i - 1]` contain after their own update,
            // so each division sees the same operands as the indexed form.
            let mut pb = b[0];
            let mut pc = c[0];
            let mut pd = d[0];
            for ((&ai, bi), (&ci, di)) in a[1..]
                .iter()
                .zip(b[1..].iter_mut())
                .zip(c[1..].iter().zip(d[1..].iter_mut()))
            {
                let w = ai / pb;
                pb = *bi - w * pc;
                pd = *di - w * pd;
                *bi = pb;
                *di = pd;
                pc = ci;
            }
            // Back substitution, carrying `m[i + 2]` the same way.
            self.m[k] = d[k - 1] / b[k - 1];
            let mut next = self.m[k];
            for (((&di, &ci), &bi), mi) in d[..k - 1]
                .iter()
                .zip(c[..k - 1].iter())
                .zip(b[..k - 1].iter())
                .zip(self.m[1..k].iter_mut())
                .rev()
            {
                let v = (di - ci * next) / bi;
                *mi = v;
                next = v;
            }
        }
        true
    }

    /// Evaluates the fitted spline at `x`, assuming `x` is not smaller than
    /// any previously queried point since the last fit. Bit-identical to
    /// [`CubicSpline::eval`] at every point, including exact knot hits and
    /// clamped extrapolation.
    pub fn eval_monotone(&mut self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        while self.cursor + 1 < n && self.xs[self.cursor + 1] <= x {
            self.cursor += 1;
        }
        let i = self.cursor;
        debug_assert!(self.xs[i] <= x, "eval_monotone called with descending x");
        if x == self.xs[i] {
            return self.ys[i];
        }
        // The interpolation terms that do not depend on `x` are cached per
        // segment: consecutive queries land in the same interval, and every
        // cached value is produced by exactly the expression
        // [`CubicSpline::eval`] would evaluate per point, so results stay
        // bit-identical while the per-point divisions drop from three to one.
        if self.cached_seg != i {
            let h = self.xs[i + 1] - self.xs[i];
            self.seg_six_h = 6.0 * h;
            self.seg_m0 = self.m[i];
            self.seg_m1 = self.m[i + 1];
            self.seg_c0 = self.ys[i] / h - self.m[i] * h / 6.0;
            self.seg_c1 = self.ys[i + 1] / h - self.m[i + 1] * h / 6.0;
            self.cached_seg = i;
        }
        let t = x - self.xs[i];
        let u = self.xs[i + 1] - x;
        (self.seg_m0 * u * u * u + self.seg_m1 * t * t * t) / self.seg_six_h
            + self.seg_c0 * u
            + self.seg_c1 * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_knots_exactly() {
        let xs = [0.0, 1.0, 2.5, 4.0];
        let ys = [1.0, -1.0, 3.0, 0.5];
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!((s.eval(*x) - y).abs() < 1e-9, "knot ({x},{y})");
        }
    }

    #[test]
    fn two_knots_is_linear() {
        let s = CubicSpline::fit(&[0.0, 2.0], &[0.0, 4.0]).unwrap();
        assert!((s.eval(1.0) - 2.0).abs() < 1e-12);
        assert!((s.eval(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reproduces_smooth_function_between_knots() {
        // Sample sin on a dense grid; spline error should be small.
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for i in 0..190 {
            let x = i as f64 * 0.05;
            assert!(
                (s.eval(x) - x.sin()).abs() < 0.01,
                "x={x} spline={} sin={}",
                s.eval(x),
                x.sin()
            );
        }
    }

    #[test]
    fn extrapolation_is_clamped() {
        let s = CubicSpline::fit(&[0.0, 1.0, 2.0], &[5.0, 0.0, 7.0]).unwrap();
        assert_eq!(s.eval(-10.0), 5.0);
        assert_eq!(s.eval(10.0), 7.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(CubicSpline::fit(&[0.0], &[1.0]).is_none());
        assert!(CubicSpline::fit(&[0.0, 0.0], &[1.0, 2.0]).is_none());
        assert!(CubicSpline::fit(&[0.0, 1.0], &[1.0]).is_none());
        assert!(CubicSpline::fit(&[1.0, 0.5], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn scratch_is_bit_identical_to_legacy_on_ascending_queries() {
        use ficsum_stream::rng::{RandomSource, Xoshiro256pp};
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        let mut scratch = SplineScratch::new();
        for trial in 0..50 {
            let k = 2 + (trial % 30);
            // Integer-spaced knots with occasional gaps, like EMD extrema.
            let mut x = 0.0;
            let mut xs = Vec::new();
            for _ in 0..k {
                xs.push(x);
                x += 1.0 + (rng.random::<f64>() * 3.0).floor();
            }
            let ys: Vec<f64> = (0..k).map(|_| rng.random::<f64>() * 4.0 - 2.0).collect();
            let legacy = CubicSpline::fit(&xs, &ys).unwrap();
            assert!(scratch.fit(&xs, &ys));
            let last = *xs.last().unwrap();
            let mut q = -1.0;
            while q <= last + 2.0 {
                assert_eq!(
                    legacy.eval(q).to_bits(),
                    scratch.eval_monotone(q).to_bits(),
                    "trial {trial}, query {q}"
                );
                q += 0.5; // hits every integer knot exactly
            }
        }
    }

    #[test]
    fn natural_boundary_second_derivative_is_zero() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 0.7).cos()).collect();
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        assert_eq!(s.m[0], 0.0);
        assert_eq!(s.m[9], 0.0);
    }
}
