//! Empirical Mode Decomposition and IMF entropy.
//!
//! The "entropy of intrinsic mode functions 1 & 2" meta-features (Ding &
//! Luo, Entropy 2019) require decomposing a window into intrinsic mode
//! functions (IMFs) via sifting: repeatedly subtracting the mean of the
//! cubic-spline envelopes through the local maxima and minima until the
//! residual behaves like an IMF. Each IMF is then summarised by the Shannon
//! entropy of its value histogram, capturing behaviour at that timescale.

use crate::spline::{CubicSpline, SplineScratch};

/// Parameters of the sifting process.
#[derive(Debug, Clone, Copy)]
pub struct EmdConfig {
    /// Stop sifting when the normalised squared change falls below this
    /// (Huang's SD criterion, usually 0.2–0.3).
    pub sd_threshold: f64,
    /// Hard cap on sifting iterations per IMF.
    pub max_siftings: usize,
    /// Number of IMFs to extract.
    pub n_imfs: usize,
    /// Histogram bins for the entropy summary.
    pub entropy_bins: usize,
}

impl Default for EmdConfig {
    fn default() -> Self {
        Self { sd_threshold: 0.3, max_siftings: 8, n_imfs: 2, entropy_bins: 10 }
    }
}

/// Indices of local maxima (`true`) or minima (`false`), with plateau
/// handling (the first point of a plateau counts).
fn local_extrema(xs: &[f64], maxima: bool) -> Vec<usize> {
    let mut out = Vec::new();
    let n = xs.len();
    if n < 3 {
        return out;
    }
    for i in 1..n - 1 {
        let (a, b, c) = (xs[i - 1], xs[i], xs[i + 1]);
        let is_ext = if maxima { b > a && b >= c } else { b < a && b <= c };
        if is_ext {
            out.push(i);
        }
    }
    out
}

/// One sifting pass: signal minus the mean envelope. `None` when the signal
/// has too few extrema to build envelopes (it is a residual/trend).
fn sift_once(xs: &[f64]) -> Option<Vec<f64>> {
    let maxima = local_extrema(xs, true);
    let minima = local_extrema(xs, false);
    if maxima.len() < 2 || minima.len() < 2 {
        return None;
    }
    let n = xs.len();
    // Anchor envelopes at the endpoints to avoid swing-out.
    let build = |idx: &[usize]| -> Option<CubicSpline> {
        let mut kx = Vec::with_capacity(idx.len() + 2);
        let mut ky = Vec::with_capacity(idx.len() + 2);
        kx.push(0.0);
        ky.push(xs[0]);
        for &i in idx {
            kx.push(i as f64);
            ky.push(xs[i]);
        }
        if *idx.last().unwrap() != n - 1 {
            kx.push((n - 1) as f64);
            ky.push(xs[n - 1]);
        }
        CubicSpline::fit(&kx, &ky)
    };
    let upper = build(&maxima)?;
    let lower = build(&minima)?;
    Some(
        (0..n)
            .map(|i| {
                let x = i as f64;
                xs[i] - 0.5 * (upper.eval(x) + lower.eval(x))
            })
            .collect(),
    )
}

/// Extracts one IMF from `xs` by iterated sifting. Returns `None` when `xs`
/// is already a residual.
fn extract_imf(xs: &[f64], config: &EmdConfig) -> Option<Vec<f64>> {
    let mut h = sift_once(xs)?;
    for _ in 1..config.max_siftings {
        let next = match sift_once(&h) {
            Some(n) => n,
            None => break,
        };
        // Huang's stopping criterion.
        let num: f64 = h.iter().zip(&next).map(|(a, b)| (a - b) * (a - b)).sum();
        let den: f64 = h.iter().map(|a| a * a).sum::<f64>().max(1e-12);
        h = next;
        if num / den < config.sd_threshold {
            break;
        }
    }
    Some(h)
}

/// Full decomposition: returns up to `config.n_imfs` IMFs (coarser modes
/// later). The final residual is not returned.
pub fn decompose(xs: &[f64], config: &EmdConfig) -> Vec<Vec<f64>> {
    let mut residual = xs.to_vec();
    let mut imfs = Vec::with_capacity(config.n_imfs);
    for _ in 0..config.n_imfs {
        match extract_imf(&residual, config) {
            Some(imf) => {
                for (r, i) in residual.iter_mut().zip(&imf) {
                    *r -= i;
                }
                imfs.push(imf);
            }
            None => break,
        }
    }
    imfs
}

/// Shannon entropy (nats) of an equal-width histogram of `xs`.
fn histogram_entropy(xs: &[f64], bins: usize) -> f64 {
    if xs.len() < 2 || bins < 2 {
        return 0.0;
    }
    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !(hi - lo).is_finite() || hi - lo <= f64::EPSILON {
        return 0.0;
    }
    let mut counts = vec![0.0f64; bins];
    for &x in xs {
        let b = (((x - lo) / (hi - lo) * bins as f64) as usize).min(bins - 1);
        counts[b] += 1.0;
    }
    let n = xs.len() as f64;
    -counts
        .iter()
        .filter(|&&c| c > 0.0)
        .map(|&c| {
            let p = c / n;
            p * p.ln()
        })
        .sum::<f64>()
}

/// The two IMF-entropy meta-features: `(H(IMF1), H(IMF2))`.
///
/// When the window is too smooth to yield an IMF, the corresponding entropy
/// is 0 (no oscillatory behaviour at that timescale).
pub fn imf_entropies(xs: &[f64], config: &EmdConfig) -> (f64, f64) {
    let imfs = decompose(xs, config);
    let h = |i: usize| {
        imfs.get(i).map_or(0.0, |imf| histogram_entropy(imf, config.entropy_bins))
    };
    (h(0), h(1))
}

/// Reusable working memory for [`imf_entropies_scratch`].
///
/// The sifting loop is by far the most allocation-heavy part of fingerprint
/// extraction: every pass builds two extrema lists, two knot arrays, two
/// splines and an output signal. Holding all of that here lets repeated
/// extraction (one EMD per behaviour source per fingerprint) run without
/// touching the allocator after warm-up, while producing bit-identical
/// results to the allocating [`imf_entropies`] path.
#[derive(Debug, Clone, Default)]
pub struct EmdScratch {
    residual: Vec<f64>,
    h: Vec<f64>,
    next: Vec<f64>,
    sift: SiftBuffers,
    counts: Vec<f64>,
}

impl EmdScratch {
    /// Empty scratch; buffers grow on first use and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Buffers consumed by a single sifting pass.
#[derive(Debug, Clone, Default)]
struct SiftBuffers {
    max_idx: Vec<usize>,
    min_idx: Vec<usize>,
    kx: Vec<f64>,
    ky: Vec<f64>,
    upper: SplineScratch,
    lower: SplineScratch,
}

/// Both [`local_extrema`] passes fused into one sweep over `xs` (the
/// maximum and minimum conditions are mutually exclusive, so a single
/// branch per point reproduces both index lists exactly).
fn local_extrema_both_into(xs: &[f64], max_out: &mut Vec<usize>, min_out: &mut Vec<usize>) {
    max_out.clear();
    min_out.clear();
    let n = xs.len();
    if n < 3 {
        return;
    }
    for i in 1..n - 1 {
        let (a, b, c) = (xs[i - 1], xs[i], xs[i + 1]);
        if b > a && b >= c {
            max_out.push(i);
        } else if b < a && b <= c {
            min_out.push(i);
        }
    }
}

/// Fits an endpoint-anchored envelope through the extrema at `idx`,
/// mirroring the knot construction in [`sift_once`].
fn fit_envelope(
    xs: &[f64],
    idx: &[usize],
    kx: &mut Vec<f64>,
    ky: &mut Vec<f64>,
    spline: &mut SplineScratch,
) -> bool {
    let n = xs.len();
    kx.clear();
    ky.clear();
    kx.push(0.0);
    ky.push(xs[0]);
    for &i in idx {
        kx.push(i as f64);
        ky.push(xs[i]);
    }
    if *idx.last().unwrap() != n - 1 {
        kx.push((n - 1) as f64);
        ky.push(xs[n - 1]);
    }
    spline.fit(kx, ky)
}

/// [`sift_once`] with reused buffers; returns `false` where the allocating
/// version returns `None`. The monotone spline evaluation walks `x = 0..n`
/// in order, matching the binary-search result at every point.
fn sift_once_into(xs: &[f64], out: &mut Vec<f64>, s: &mut SiftBuffers) -> bool {
    local_extrema_both_into(xs, &mut s.max_idx, &mut s.min_idx);
    if s.max_idx.len() < 2 || s.min_idx.len() < 2 {
        return false;
    }
    if !fit_envelope(xs, &s.max_idx, &mut s.kx, &mut s.ky, &mut s.upper) {
        return false;
    }
    if !fit_envelope(xs, &s.min_idx, &mut s.kx, &mut s.ky, &mut s.lower) {
        return false;
    }
    out.clear();
    out.extend(xs.iter().enumerate().map(|(i, &v)| {
        let x = i as f64;
        v - 0.5 * (s.upper.eval_monotone(x) + s.lower.eval_monotone(x))
    }));
    true
}

/// [`extract_imf`] with reused buffers; the extracted IMF lands in `h`.
fn extract_imf_into(
    xs: &[f64],
    h: &mut Vec<f64>,
    next: &mut Vec<f64>,
    sift: &mut SiftBuffers,
    config: &EmdConfig,
) -> bool {
    if !sift_once_into(xs, h, sift) {
        return false;
    }
    for _ in 1..config.max_siftings {
        if !sift_once_into(h, next, sift) {
            break;
        }
        // Huang's criterion with both sums in one sweep; each accumulator
        // adds the same terms in the same order as the two-pass form.
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (a, b) in h.iter().zip(next.iter()) {
            num += (a - b) * (a - b);
            den += a * a;
        }
        let den = den.max(1e-12);
        std::mem::swap(h, next);
        if num / den < config.sd_threshold {
            break;
        }
    }
    true
}

/// [`histogram_entropy`] with a reused counts buffer.
fn histogram_entropy_into(xs: &[f64], bins: usize, counts: &mut Vec<f64>) -> f64 {
    if xs.len() < 2 || bins < 2 {
        return 0.0;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if !(hi - lo).is_finite() || hi - lo <= f64::EPSILON {
        return 0.0;
    }
    counts.clear();
    counts.resize(bins, 0.0);
    for &x in xs {
        let b = (((x - lo) / (hi - lo) * bins as f64) as usize).min(bins - 1);
        counts[b] += 1.0;
    }
    let n = xs.len() as f64;
    -counts
        .iter()
        .filter(|&&c| c > 0.0)
        .map(|&c| {
            let p = c / n;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Allocation-free variant of [`imf_entropies`]: decomposition, sifting and
/// the entropy histograms all run inside `scratch`. Bit-identical output.
pub fn imf_entropies_scratch(xs: &[f64], config: &EmdConfig, scratch: &mut EmdScratch) -> (f64, f64) {
    let EmdScratch { residual, h, next, sift, counts } = scratch;
    residual.clear();
    residual.extend_from_slice(xs);
    let mut out = (0.0, 0.0);
    for k in 0..config.n_imfs {
        if !extract_imf_into(residual, h, next, sift, config) {
            break;
        }
        let e = histogram_entropy_into(h, config.entropy_bins, counts);
        if k == 0 {
            out.0 = e;
        } else if k == 1 {
            out.1 = e;
        }
        for (r, i) in residual.iter_mut().zip(h.iter()) {
            *r -= i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    #[test]
    fn extrema_detection() {
        let xs = [0.0, 1.0, 0.0, -1.0, 0.0, 1.0, 0.0];
        assert_eq!(local_extrema(&xs, true), vec![1, 5]);
        assert_eq!(local_extrema(&xs, false), vec![3]);
    }

    #[test]
    fn monotone_signal_has_no_imfs() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert!(decompose(&xs, &EmdConfig::default()).is_empty());
        assert_eq!(imf_entropies(&xs, &EmdConfig::default()), (0.0, 0.0));
    }

    #[test]
    fn imf1_captures_the_fast_component() {
        // fast sine + slow sine: IMF1 should correlate with the fast one.
        let n = 256;
        let fast: Vec<f64> = (0..n).map(|i| (i as f64 * 1.0).sin()).collect();
        let slow: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin() * 2.0).collect();
        let xs: Vec<f64> = fast.iter().zip(&slow).map(|(a, b)| a + b).collect();
        let imfs = decompose(&xs, &EmdConfig::default());
        assert!(!imfs.is_empty());
        let imf1 = &imfs[0];
        // Correlation of IMF1 with the fast component.
        let mf = fast.iter().sum::<f64>() / n as f64;
        let mi = imf1.iter().sum::<f64>() / n as f64;
        let num: f64 = fast.iter().zip(imf1).map(|(f, i)| (f - mf) * (i - mi)).sum();
        let df: f64 = fast.iter().map(|f| (f - mf) * (f - mf)).sum::<f64>().sqrt();
        let di: f64 = imf1.iter().map(|i| (i - mi) * (i - mi)).sum::<f64>().sqrt();
        let corr = num / (df * di);
        assert!(corr > 0.8, "IMF1 should track the fast sine, corr={corr}");
    }

    #[test]
    fn decomposition_is_additive() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let xs: Vec<f64> = (0..128)
            .map(|i| (i as f64 * 0.9).sin() + 0.3 * (i as f64 * 0.1).cos() + rng.random::<f64>() * 0.1)
            .collect();
        let config = EmdConfig::default();
        let imfs = decompose(&xs, &config);
        assert!(!imfs.is_empty());
        // signal = sum(imfs) + residual; residual = signal - sum must have
        // fewer oscillations (fewer extrema) than the signal.
        let mut residual = xs.clone();
        for imf in &imfs {
            for (r, v) in residual.iter_mut().zip(imf) {
                *r -= v;
            }
        }
        let ext = |v: &[f64]| local_extrema(v, true).len() + local_extrema(v, false).len();
        assert!(
            ext(&residual) < ext(&xs),
            "residual must be smoother: {} vs {}",
            ext(&residual),
            ext(&xs)
        );
    }

    #[test]
    fn entropies_distinguish_dense_from_spiky_oscillation() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        // Dense oscillation: IMF values spread over their range.
        let noise: Vec<f64> = (0..128).map(|_| rng.random::<f64>()).collect();
        // Spiky signal: mostly flat with rare large impulses, so the IMF's
        // value histogram is concentrated near zero (low entropy).
        let spiky: Vec<f64> = (0..128)
            .map(|i| {
                let base = 0.01 * ((i % 3) as f64 - 1.0); // tiny ripple so extrema exist
                if i % 32 == 5 {
                    5.0
                } else {
                    base
                }
            })
            .collect();
        let (hn, hn2) = imf_entropies(&noise, &EmdConfig::default());
        let (hs, _) = imf_entropies(&spiky, &EmdConfig::default());
        assert!(hn > 0.0 && hn2 > 0.0);
        assert!(
            hn - hs > 0.5,
            "dense ({hn}) vs spiky ({hs}) IMF1 entropy should differ clearly"
        );
    }

    #[test]
    fn short_windows_do_not_panic() {
        for n in 0..10 {
            let xs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let _ = imf_entropies(&xs, &EmdConfig::default());
        }
    }
}
