//! Autocorrelation and partial autocorrelation.

use crate::functions::mean;

/// Sample autocorrelation at `lag`.
///
/// Returns 0 for sequences too short or with zero variance (a constant
/// series carries no temporal dependence signal).
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if xs.len() <= lag + 1 {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    if denom <= f64::EPSILON {
        return 0.0;
    }
    let num: f64 = xs.windows(lag + 1).map(|w| (w[0] - m) * (w[lag] - m)).sum();
    num / denom
}

/// Partial autocorrelation at `lag` (1 or 2) via the Durbin–Levinson
/// recursion:
///
/// * `pacf(1) = acf(1)`
/// * `pacf(2) = (acf(2) - acf(1)^2) / (1 - acf(1)^2)`
///
/// Lags above 2 are not needed by FiCSUM and panic.
pub fn partial_autocorrelation(xs: &[f64], lag: usize) -> f64 {
    match lag {
        1 => autocorrelation(xs, 1),
        2 => {
            let r1 = autocorrelation(xs, 1);
            let r2 = autocorrelation(xs, 2);
            let denom = 1.0 - r1 * r1;
            if denom.abs() <= f64::EPSILON {
                0.0
            } else {
                (r2 - r1 * r1) / denom
            }
        }
        _ => panic!("FiCSUM only uses PACF lags 1 and 2, got {lag}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    fn ar1(phi: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut prev = 0.0;
        for _ in 0..n {
            let eps: f64 = rng.random::<f64>() - 0.5;
            let x = phi * prev + eps;
            xs.push(x);
            prev = x;
        }
        xs
    }

    #[test]
    fn white_noise_has_near_zero_acf() {
        let xs = ar1(0.0, 5000, 1);
        assert!(autocorrelation(&xs, 1).abs() < 0.05);
        assert!(autocorrelation(&xs, 2).abs() < 0.05);
    }

    #[test]
    fn ar1_acf_matches_phi() {
        let xs = ar1(0.8, 20_000, 2);
        assert!((autocorrelation(&xs, 1) - 0.8).abs() < 0.03);
        assert!((autocorrelation(&xs, 2) - 0.64).abs() < 0.05);
    }

    #[test]
    fn ar1_pacf2_is_near_zero() {
        // For an AR(1) process the PACF cuts off after lag 1.
        let xs = ar1(0.7, 20_000, 3);
        assert!((partial_autocorrelation(&xs, 1) - 0.7).abs() < 0.03);
        assert!(partial_autocorrelation(&xs, 2).abs() < 0.05);
    }

    #[test]
    fn constant_series_is_zero() {
        let xs = vec![3.0; 100];
        assert_eq!(autocorrelation(&xs, 1), 0.0);
        assert_eq!(partial_autocorrelation(&xs, 2), 0.0);
    }

    #[test]
    fn short_series_is_zero() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 2), 0.0);
        assert_eq!(autocorrelation(&[], 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "lags 1 and 2")]
    fn pacf_lag3_panics() {
        let _ = partial_autocorrelation(&[1.0, 2.0, 3.0, 4.0], 3);
    }

    #[test]
    fn alternating_series_has_negative_acf() {
        let xs: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
        assert!(autocorrelation(&xs, 2) > 0.9);
    }
}
