//! Lag-1 self mutual information as a temporal-dependence meta-feature.
//!
//! FiCSUM (following FEDD) uses the mutual information between a behaviour
//! source and its one-step-lagged self. Unlike autocorrelation, MI also
//! captures nonlinear dependence. Estimated with an equal-width 2-D
//! histogram, which is the standard plug-in estimator at window sizes of
//! 50–200 observations.

/// Mutual information (nats) between `xs[..n-lag]` and `xs[lag..]`.
///
/// Returns 0 for degenerate inputs (constant or too-short series).
pub fn lagged_mutual_information(xs: &[f64], lag: usize, n_bins: usize) -> f64 {
    let mut scratch = MiScratch::new();
    lagged_mutual_information_scratch(xs, lag, n_bins, &mut scratch)
}

/// Reusable histogram storage for [`lagged_mutual_information_scratch`].
#[derive(Debug, Clone, Default)]
pub struct MiScratch {
    joint: Vec<f64>,
    px: Vec<f64>,
    py: Vec<f64>,
}

impl MiScratch {
    /// Empty scratch; buffers grow on first use and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`lagged_mutual_information`] with caller-owned histogram buffers, so
/// repeated estimation allocates nothing. Bit-identical output.
pub fn lagged_mutual_information_scratch(
    xs: &[f64],
    lag: usize,
    n_bins: usize,
    scratch: &mut MiScratch,
) -> f64 {
    if xs.len() <= lag + 2 || n_bins < 2 {
        return 0.0;
    }
    let n = xs.len() - lag;
    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !(hi - lo).is_finite() || hi - lo <= f64::EPSILON {
        return 0.0;
    }
    let bin = |v: f64| -> usize {
        (((v - lo) / (hi - lo) * n_bins as f64) as usize).min(n_bins - 1)
    };

    let MiScratch { joint, px, py } = scratch;
    joint.clear();
    joint.resize(n_bins * n_bins, 0.0);
    px.clear();
    px.resize(n_bins, 0.0);
    py.clear();
    py.resize(n_bins, 0.0);
    for i in 0..n {
        let a = bin(xs[i]);
        let b = bin(xs[i + lag]);
        joint[a * n_bins + b] += 1.0;
        px[a] += 1.0;
        py[b] += 1.0;
    }
    let n = n as f64;
    let mut mi = 0.0;
    for a in 0..n_bins {
        for b in 0..n_bins {
            let pj = joint[a * n_bins + b] / n;
            if pj > 0.0 {
                let pa = px[a] / n;
                let pb = py[b] / n;
                mi += pj * (pj / (pa * pb)).ln();
            }
        }
    }
    mi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    #[test]
    fn iid_noise_has_low_mi() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let xs: Vec<f64> = (0..5000).map(|_| rng.random()).collect();
        let mi = lagged_mutual_information(&xs, 1, 8);
        assert!(mi < 0.05, "iid MI {mi} should be near zero");
    }

    #[test]
    fn deterministic_sequence_has_high_mi() {
        // A slow sine is almost perfectly predictable from its lag.
        let xs: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.05).sin()).collect();
        let mi = lagged_mutual_information(&xs, 1, 8);
        assert!(mi > 1.0, "deterministic MI {mi} should be high");
    }

    #[test]
    fn nonlinear_dependence_is_captured() {
        // x_{t+1} = x_t^2 folded into [0,1]: zero linear correlation regions
        // still share information.
        let mut x = 0.37;
        let xs: Vec<f64> = (0..5000)
            .map(|_| {
                x = 3.9 * x * (1.0 - x); // logistic map, chaotic but deterministic
                x
            })
            .collect();
        let mi = lagged_mutual_information(&xs, 1, 8);
        assert!(mi > 0.5, "logistic-map MI {mi} should be substantial");
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(lagged_mutual_information(&[], 1, 8), 0.0);
        assert_eq!(lagged_mutual_information(&[1.0, 2.0], 1, 8), 0.0);
        assert_eq!(lagged_mutual_information(&vec![5.0; 100], 1, 8), 0.0);
        assert_eq!(lagged_mutual_information(&[1.0, 2.0, 3.0, 4.0], 1, 1), 0.0);
    }

    #[test]
    fn mi_is_nonnegative() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..20 {
            let xs: Vec<f64> = (0..60).map(|_| rng.random()).collect();
            assert!(lagged_mutual_information(&xs, 1, 6) >= 0.0);
        }
    }
}
