//! Shared behavioural contract for every incremental learner: learn a
//! separable problem, survive trait-object usage, clone faithfully, and
//! reset cleanly.

use ficsum_classifiers::{
    AdaptiveRandomForest, Classifier, DynamicWeightedMajority, GaussianNaiveBayes, HoeffdingTree,
    MajorityClass,
};
use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

fn learners(d: usize, k: usize) -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(MajorityClass::new(d, k)),
        Box::new(GaussianNaiveBayes::new(d, k)),
        Box::new(HoeffdingTree::new(d, k)),
        Box::new(AdaptiveRandomForest::new(d, k)),
        Box::new(DynamicWeightedMajority::new(d, k)),
    ]
}

fn blob(rng: &mut Xoshiro256pp, k: usize) -> (Vec<f64>, usize) {
    let y = rng.random_range(0..k);
    let x = vec![y as f64 * 2.0 + rng.random::<f64>(), rng.random()];
    (x, y)
}

#[test]
fn every_learner_beats_chance_on_separable_blobs() {
    for mut clf in learners(2, 3) {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..1200 {
            let (x, y) = blob(&mut rng, 3);
            clf.train(&x, y);
        }
        let mut correct = 0;
        for _ in 0..300 {
            let (x, y) = blob(&mut rng, 3);
            if clf.predict(&x) == y {
                correct += 1;
            }
        }
        // MajorityClass is the floor (~1/3); everything else far higher.
        assert!(correct > 80, "accuracy {correct}/300");
    }
}

#[test]
fn probabilities_are_distributions() {
    for mut clf in learners(2, 4) {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for _ in 0..300 {
            let (x, y) = blob(&mut rng, 4);
            clf.train(&x, y);
        }
        let p = clf.predict_proba(&[1.0, 0.5]);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
    }
}

#[test]
fn clone_box_preserves_predictions() {
    for mut clf in learners(2, 2) {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..800 {
            let (x, y) = blob(&mut rng, 2);
            clf.train(&x, y);
        }
        let clone = clf.clone_box();
        for _ in 0..100 {
            let (x, _) = blob(&mut rng, 2);
            assert_eq!(clf.predict(&x), clone.predict(&x));
        }
    }
}

#[test]
fn reset_returns_to_untrained_state() {
    for mut clf in learners(2, 2) {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        for _ in 0..500 {
            let (x, y) = blob(&mut rng, 2);
            clf.train(&x, y);
        }
        clf.reset();
        assert_eq!(clf.n_trained(), 0);
    }
}

#[test]
fn dimensions_are_reported() {
    for clf in learners(2, 3) {
        assert_eq!(clf.n_features(), 2);
        assert_eq!(clf.n_classes(), 3);
    }
}

#[test]
fn only_trees_expose_contributions_and_growth() {
    let mut tree = HoeffdingTree::new(2, 2);
    let mut rng = Xoshiro256pp::seed_from_u64(5);
    for _ in 0..2000 {
        let (x, y) = blob(&mut rng, 2);
        tree.train(&x, y);
    }
    assert!(tree.feature_contributions(&[0.5, 0.5]).is_some());
    let mut nb = GaussianNaiveBayes::new(2, 2);
    nb.train(&[0.1, 0.2], 0);
    assert!(nb.feature_contributions(&[0.1, 0.2]).is_none());
    assert!(!nb.take_growth_event());
}
