//! Dynamic Weighted Majority (Kolter & Maloof, JMLR 2007).
//!
//! DWM maintains a pool of expert learners with multiplicative weights.
//! Every `period` observations: experts that voted wrongly are decayed by
//! `beta`, experts whose weight falls below `theta` are removed, and a fresh
//! expert is added whenever the weighted ensemble itself errs. This is one
//! of the framework baselines of the paper's Table VI.

use crate::classifier::{argmax, normalize_or_uniform, Classifier};
use crate::hoeffding::HoeffdingTree;
use crate::naive_bayes::GaussianNaiveBayes;

/// Base learner used for new experts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpertKind {
    /// Gaussian naive Bayes (fast; the classic DWM choice).
    NaiveBayes,
    /// Hoeffding tree (the paper's Table VI configuration).
    #[default]
    HoeffdingTree,
}

struct Expert {
    model: Box<dyn Classifier>,
    weight: f64,
}

impl Clone for Expert {
    fn clone(&self) -> Self {
        Self { model: self.model.clone_box(), weight: self.weight }
    }
}

/// The DWM ensemble classifier.
pub struct DynamicWeightedMajority {
    experts: Vec<Expert>,
    kind: ExpertKind,
    beta: f64,
    theta: f64,
    period: usize,
    max_experts: usize,
    n_features: usize,
    n_classes: usize,
    n_trained: usize,
}

impl Clone for DynamicWeightedMajority {
    fn clone(&self) -> Self {
        Self {
            experts: self.experts.clone(),
            kind: self.kind,
            beta: self.beta,
            theta: self.theta,
            period: self.period,
            max_experts: self.max_experts,
            n_features: self.n_features,
            n_classes: self.n_classes,
            n_trained: self.n_trained,
        }
    }
}

impl DynamicWeightedMajority {
    /// DWM with paper-parity defaults: beta 0.5, theta 0.01, period 50,
    /// at most 10 Hoeffding-tree experts.
    pub fn new(n_features: usize, n_classes: usize) -> Self {
        Self::with_params(n_features, n_classes, ExpertKind::default(), 0.5, 0.01, 50, 10)
    }

    /// Fully parameterised constructor.
    pub fn with_params(
        n_features: usize,
        n_classes: usize,
        kind: ExpertKind,
        beta: f64,
        theta: f64,
        period: usize,
        max_experts: usize,
    ) -> Self {
        assert!((0.0..1.0).contains(&beta) && theta > 0.0 && period > 0 && max_experts > 0);
        let mut dwm = Self {
            experts: Vec::new(),
            kind,
            beta,
            theta,
            period,
            max_experts,
            n_features,
            n_classes,
            n_trained: 0,
        };
        dwm.add_expert();
        dwm
    }

    fn build_model(&self) -> Box<dyn Classifier> {
        match self.kind {
            ExpertKind::NaiveBayes => {
                Box::new(GaussianNaiveBayes::new(self.n_features, self.n_classes))
            }
            ExpertKind::HoeffdingTree => {
                Box::new(HoeffdingTree::new(self.n_features, self.n_classes))
            }
        }
    }

    fn add_expert(&mut self) {
        if self.experts.len() >= self.max_experts {
            // Evict the lightest expert to make room.
            if let Some((idx, _)) = self
                .experts
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.weight.total_cmp(&b.1.weight))
            {
                self.experts.swap_remove(idx);
            }
        }
        let model = self.build_model();
        self.experts.push(Expert { model, weight: 1.0 });
    }

    /// Current number of experts in the pool.
    pub fn n_experts(&self) -> usize {
        self.experts.len()
    }

    fn weighted_vote(&self, x: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        for e in &self.experts {
            acc[e.model.predict(x).min(self.n_classes - 1)] += e.weight;
        }
        normalize_or_uniform(acc)
    }
}

impl Classifier for DynamicWeightedMajority {
    fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.weighted_vote(x))
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        self.weighted_vote(x)
    }

    fn train(&mut self, x: &[f64], y: usize) {
        if y >= self.n_classes || x.len() != self.n_features {
            return;
        }
        self.n_trained += 1;
        let update_round = self.n_trained.is_multiple_of(self.period);

        // Record per-expert correctness before training, decay wrong experts
        // on update rounds.
        let global_pred = self.predict(x);
        for e in &mut self.experts {
            if update_round && e.model.predict(x) != y {
                e.weight *= self.beta;
            }
        }

        if update_round {
            // Normalise so the max weight is 1, prune light experts.
            let max_w = self.experts.iter().map(|e| e.weight).fold(0.0_f64, f64::max);
            if max_w > 0.0 {
                for e in &mut self.experts {
                    e.weight /= max_w;
                }
            }
            let theta = self.theta;
            if self.experts.len() > 1 {
                self.experts.retain(|e| e.weight >= theta);
            }
            if global_pred != y {
                self.add_expert();
            }
        }

        for e in &mut self.experts {
            e.model.train(x, y);
        }
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn n_trained(&self) -> usize {
        self.n_trained
    }

    fn reset(&mut self) {
        self.experts.clear();
        self.n_trained = 0;
        self.add_expert();
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    fn blob(rng: &mut Xoshiro256pp, flipped: bool) -> (Vec<f64>, usize) {
        let y = rng.random_range(0..2usize);
        let x0 = if y == 0 { rng.random::<f64>() } else { 2.0 + rng.random::<f64>() };
        (vec![x0, rng.random()], if flipped { 1 - y } else { y })
    }

    #[test]
    fn learns_and_adapts() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let mut dwm =
            DynamicWeightedMajority::with_params(2, 2, ExpertKind::NaiveBayes, 0.5, 0.01, 50, 10);
        for _ in 0..1500 {
            let (x, y) = blob(&mut rng, false);
            dwm.train(&x, y);
        }
        let mut correct = 0;
        for _ in 0..200 {
            let (x, y) = blob(&mut rng, false);
            if dwm.predict(&x) == y {
                correct += 1;
            }
        }
        assert!(correct > 180, "pre-drift accuracy {correct}/200");

        for _ in 0..3000 {
            let (x, y) = blob(&mut rng, true);
            dwm.train(&x, y);
        }
        let mut correct = 0;
        for _ in 0..200 {
            let (x, y) = blob(&mut rng, true);
            if dwm.predict(&x) == y {
                correct += 1;
            }
        }
        assert!(correct > 160, "post-drift accuracy {correct}/200");
    }

    #[test]
    fn expert_pool_is_bounded() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let mut dwm =
            DynamicWeightedMajority::with_params(1, 2, ExpertKind::NaiveBayes, 0.5, 0.01, 10, 4);
        // Pure noise keeps adding experts; pool must stay bounded.
        for _ in 0..2000 {
            dwm.train(&[rng.random()], rng.random_range(0..2usize));
        }
        assert!(dwm.n_experts() <= 4);
        assert!(dwm.n_experts() >= 1);
    }

    #[test]
    fn reset_shrinks_to_single_expert() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let mut dwm = DynamicWeightedMajority::new(2, 2);
        for _ in 0..500 {
            let (x, y) = blob(&mut rng, false);
            dwm.train(&x, y);
        }
        dwm.reset();
        assert_eq!(dwm.n_experts(), 1);
        assert_eq!(dwm.n_trained(), 0);
    }
}
