//! Gaussian naive Bayes for numeric stream features.

use ficsum_stream::RunningStats;

use crate::classifier::{argmax, normalize_or_uniform, Classifier};

const MIN_STD: f64 = 1e-6;

/// Incremental Gaussian naive Bayes.
///
/// Maintains one [`RunningStats`] per (class, feature) pair and class priors,
/// predicting with log-density sums. This is the expert learner used by DWM
/// and the leaf predictor of naive-Bayes Hoeffding-tree leaves.
#[derive(Debug, Clone)]
pub struct GaussianNaiveBayes {
    /// `stats[c][j]` — Gaussian of feature `j` conditioned on class `c`.
    stats: Vec<Vec<RunningStats>>,
    class_counts: Vec<f64>,
    n_trained: usize,
}

impl GaussianNaiveBayes {
    /// A naive Bayes over `n_features` numeric inputs and `n_classes` labels.
    pub fn new(n_features: usize, n_classes: usize) -> Self {
        assert!(n_classes > 0 && n_features > 0);
        Self {
            stats: vec![vec![RunningStats::new(); n_features]; n_classes],
            class_counts: vec![0.0; n_classes],
            n_trained: 0,
        }
    }

    /// Log joint density `log p(c) + sum_j log N(x_j; mu_cj, sigma_cj)`.
    fn log_joint(&self, x: &[f64], c: usize) -> f64 {
        let total: f64 = self.class_counts.iter().sum();
        let prior = (self.class_counts[c] + 1.0) / (total + self.class_counts.len() as f64);
        let mut log_p = prior.ln();
        for (j, &xj) in x.iter().enumerate() {
            let s = &self.stats[c][j];
            if s.count() < 2 {
                continue; // no density estimate yet for this feature
            }
            let sd = s.std_dev().max(MIN_STD);
            let z = (xj - s.mean()) / sd;
            log_p += -0.5 * z * z - sd.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln();
        }
        log_p
    }
}

impl Classifier for GaussianNaiveBayes {
    fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.predict_proba(x))
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        if self.n_trained == 0 {
            return vec![1.0 / self.class_counts.len() as f64; self.class_counts.len()];
        }
        let logs: Vec<f64> =
            (0..self.class_counts.len()).map(|c| self.log_joint(x, c)).collect();
        // Log-sum-exp for numerical stability.
        let max = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logs.iter().map(|&l| (l - max).exp()).collect();
        normalize_or_uniform(exps)
    }

    fn train(&mut self, x: &[f64], y: usize) {
        if y >= self.class_counts.len() || x.len() != self.stats[0].len() {
            return;
        }
        self.class_counts[y] += 1.0;
        for (j, &xj) in x.iter().enumerate() {
            self.stats[y][j].push(xj);
        }
        self.n_trained += 1;
    }

    fn n_classes(&self) -> usize {
        self.class_counts.len()
    }

    fn n_features(&self) -> usize {
        self.stats[0].len()
    }

    fn n_trained(&self) -> usize {
        self.n_trained
    }

    fn reset(&mut self) {
        for row in &mut self.stats {
            for s in row {
                s.reset();
            }
        }
        self.class_counts.iter_mut().for_each(|c| *c = 0.0);
        self.n_trained = 0;
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    #[test]
    fn separable_gaussians_are_learned() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let mut nb = GaussianNaiveBayes::new(2, 2);
        for _ in 0..500 {
            let (x0, x1): (f64, f64) = (rng.random(), rng.random());
            nb.train(&[x0, x1 + 0.0], 0);
            nb.train(&[x0 + 5.0, x1 + 5.0], 1);
        }
        assert_eq!(nb.predict(&[0.5, 0.5]), 0);
        assert_eq!(nb.predict(&[5.5, 5.5]), 1);
        let p = nb.predict_proba(&[0.5, 0.5]);
        assert!(p[0] > 0.99);
    }

    #[test]
    fn untrained_predicts_uniform() {
        let nb = GaussianNaiveBayes::new(3, 4);
        assert_eq!(nb.predict_proba(&[0.0; 3]), vec![0.25; 4]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut nb = GaussianNaiveBayes::new(3, 3);
        for _ in 0..100 {
            let x: [f64; 3] = [rng.random(), rng.random(), rng.random()];
            nb.train(&x, rng.random_range(0..3usize));
        }
        let p = nb.predict_proba(&[0.2, 0.8, 0.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn mismatched_dims_ignored() {
        let mut nb = GaussianNaiveBayes::new(2, 2);
        nb.train(&[1.0], 0); // wrong arity
        assert_eq!(nb.n_trained(), 0);
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let mut nb = GaussianNaiveBayes::new(1, 2);
        for _ in 0..50 {
            nb.train(&[1.0], 0);
            nb.train(&[2.0], 1);
        }
        let p = nb.predict_proba(&[1.0]);
        assert!(p[0] > 0.9, "degenerate sigma handled: {p:?}");
    }
}
