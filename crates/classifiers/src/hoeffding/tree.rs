//! The Hoeffding tree (VFDT) learner.

use ficsum_stream::rng::{sample_indices, Xoshiro256pp};

use crate::classifier::{argmax, normalize_or_uniform_in_place, Classifier};
use crate::hoeffding::observer::{entropy, normal_cdf, GaussianObserver, SplitScratch};

/// How leaves turn their sufficient statistics into predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeafPrediction {
    /// Majority class of the leaf.
    MajorityClass,
    /// Gaussian naive Bayes over the leaf's attribute observers.
    NaiveBayes,
    /// Per-leaf adaptive choice between the two, tracking which has been
    /// more accurate at this leaf (MOA's `NBAdaptive`, the default).
    #[default]
    NaiveBayesAdaptive,
}

/// Hyper-parameters of the [`HoeffdingTree`].
#[derive(Debug, Clone)]
pub struct HoeffdingTreeConfig {
    /// Observations a leaf accumulates between split attempts.
    pub grace_period: usize,
    /// `delta` of the Hoeffding bound (probability of a wrong split choice).
    pub split_confidence: f64,
    /// Below this bound value, ties are split anyway.
    pub tie_threshold: f64,
    /// Leaf prediction strategy.
    pub leaf_prediction: LeafPrediction,
    /// Maximum tree depth (leaves at this depth never split).
    pub max_depth: usize,
    /// Number of candidate thresholds evaluated per attribute.
    pub n_split_candidates: usize,
    /// When set, each leaf observes only a random subset of this many
    /// attributes (the ARF random-subspace mechanism).
    pub subspace: Option<usize>,
    /// Seed for subspace sampling.
    pub seed: u64,
}

impl Default for HoeffdingTreeConfig {
    /// Defaults tuned for recurring-concept streams whose stationary
    /// segments hold hundreds-to-thousands of observations (the paper's
    /// setting): splits are evaluated often and the tie threshold is
    /// permissive, trading a little split quality for much faster
    /// structural convergence than MOA's web-scale defaults.
    fn default() -> Self {
        Self {
            grace_period: 25,
            split_confidence: 1e-4,
            tie_threshold: 0.15,
            leaf_prediction: LeafPrediction::default(),
            max_depth: 20,
            n_split_candidates: 10,
            subspace: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct LeafData {
    class_counts: Vec<f64>,
    observers: Vec<GaussianObserver>,
    /// Attributes this leaf observes (all, or a random subspace).
    attrs: Vec<usize>,
    weight_seen: f64,
    weight_at_last_eval: f64,
    depth: usize,
    /// Adaptive leaf-prediction bookkeeping.
    mc_correct: f64,
    nb_correct: f64,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(LeafData),
    Split {
        feature: usize,
        threshold: f64,
        /// Class counts of everything routed through this node, kept for
        /// Saabas path contributions.
        class_counts: Vec<f64>,
        left: usize,
        right: usize,
    },
}

/// An incremental Very Fast Decision Tree (Domingos & Hulten, KDD 2000) with
/// Gaussian attribute observers for numeric features.
///
/// This is the classifier FiCSUM attaches to every concept representation.
/// Besides the standard learner interface, it exposes:
///
/// * **growth events** ([`Classifier::take_growth_event`]) — FiCSUM resets
///   classifier-dependent meta-feature distributions when the tree grows a
///   branch (paper Section IV),
/// * **path contributions** ([`Classifier::feature_contributions`]) — the
///   Saabas decomposition of a prediction across the features on its root→
///   leaf path, this workspace's fast stand-in for Shapley values.
#[derive(Debug, Clone)]
pub struct HoeffdingTree {
    config: HoeffdingTreeConfig,
    nodes: Vec<Node>,
    root: usize,
    n_features: usize,
    n_classes: usize,
    n_trained: usize,
    rng: Xoshiro256pp,
    grew_since_taken: bool,
    n_splits: usize,
    /// Scratch probability vector for the adaptive-leaf bookkeeping in
    /// `train`, kept so the hot path never allocates.
    train_scratch: Vec<f64>,
    /// Reusable buffers for grace-period split evaluation, kept so the
    /// periodic [`GaussianObserver::best_split_with`] sweep never allocates.
    split_scratch: SplitScratch,
}

impl HoeffdingTree {
    /// A tree over `n_features` numeric inputs and `n_classes` labels with
    /// default hyper-parameters.
    pub fn new(n_features: usize, n_classes: usize) -> Self {
        Self::with_config(n_features, n_classes, HoeffdingTreeConfig::default())
    }

    /// A tree with explicit hyper-parameters.
    pub fn with_config(n_features: usize, n_classes: usize, config: HoeffdingTreeConfig) -> Self {
        assert!(n_features > 0 && n_classes > 0);
        let mut rng = Xoshiro256pp::seed_from_u64(config.seed);
        let root_leaf = Self::make_leaf(n_features, n_classes, &config, &mut rng, 0);
        Self {
            config,
            nodes: vec![Node::Leaf(root_leaf)],
            root: 0,
            n_features,
            n_classes,
            n_trained: 0,
            rng,
            grew_since_taken: false,
            n_splits: 0,
            train_scratch: Vec::new(),
            split_scratch: SplitScratch::default(),
        }
    }

    fn make_leaf(
        n_features: usize,
        n_classes: usize,
        config: &HoeffdingTreeConfig,
        rng: &mut Xoshiro256pp,
        depth: usize,
    ) -> LeafData {
        let attrs: Vec<usize> = match config.subspace {
            Some(k) if k < n_features => sample_indices(rng, n_features, k),
            _ => (0..n_features).collect(),
        };
        LeafData {
            class_counts: vec![0.0; n_classes],
            observers: attrs.iter().map(|_| GaussianObserver::new(n_classes)).collect(),
            attrs,
            weight_seen: 0.0,
            weight_at_last_eval: 0.0,
            depth,
            mc_correct: 0.0,
            nb_correct: 0.0,
        }
    }

    /// Number of splits performed so far (tree size proxy).
    pub fn n_splits(&self) -> usize {
        self.n_splits
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (max leaf depth).
    pub fn depth(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Leaf(l) => Some(l.depth),
                Node::Split { .. } => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Index of the leaf `x` routes to.
    fn sorted_leaf(&self, x: &[f64]) -> usize {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Leaf(_) => return idx,
                Node::Split { feature, threshold, left, right, .. } => {
                    idx = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Naive-Bayes class log-posteriors at a leaf, written into `out`.
    fn leaf_nb_proba_into(&self, leaf: &LeafData, x: &[f64], out: &mut Vec<f64>) {
        let total: f64 = leaf.class_counts.iter().sum();
        if total <= 0.0 {
            out.clear();
            out.resize(self.n_classes, 1.0 / self.n_classes as f64);
            return;
        }
        out.clear();
        out.resize(self.n_classes, 0.0);
        for (c, log) in out.iter_mut().enumerate() {
            let prior = (leaf.class_counts[c] + 1.0) / (total + self.n_classes as f64);
            *log = prior.ln();
            for (oi, &attr) in leaf.attrs.iter().enumerate() {
                let stats = &leaf.observers[oi].class_stats()[c];
                if stats.count() < 2 {
                    continue;
                }
                let sd = stats.std_dev().max(1e-6);
                let z = (x[attr] - stats.mean()) / sd;
                *log += -0.5 * z * z - sd.ln();
            }
        }
        let max = out.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for l in out.iter_mut() {
            *l = (*l - max).exp();
        }
        normalize_or_uniform_in_place(out);
    }

    fn leaf_proba_into(&self, leaf: &LeafData, x: &[f64], out: &mut Vec<f64>) {
        let mc = |out: &mut Vec<f64>| {
            out.clear();
            out.extend_from_slice(&leaf.class_counts);
            normalize_or_uniform_in_place(out);
        };
        match self.config.leaf_prediction {
            LeafPrediction::MajorityClass => mc(out),
            LeafPrediction::NaiveBayes => self.leaf_nb_proba_into(leaf, x, out),
            LeafPrediction::NaiveBayesAdaptive => {
                if leaf.nb_correct > leaf.mc_correct {
                    self.leaf_nb_proba_into(leaf, x, out)
                } else {
                    mc(out)
                }
            }
        }
    }

    /// Class-probability estimates written into `out` — the zero-allocation
    /// core [`Classifier::predict_proba`] wraps.
    pub fn predict_proba_into(&self, x: &[f64], out: &mut Vec<f64>) {
        let leaf_idx = self.sorted_leaf(x);
        match &self.nodes[leaf_idx] {
            Node::Leaf(l) => self.leaf_proba_into(l, x, out),
            Node::Split { .. } => unreachable!("sorted_leaf returns a leaf"),
        }
    }

    /// Attempts to split the leaf at `idx`. Returns whether a split happened.
    fn try_split(&mut self, idx: usize) -> bool {
        let (best, second_merit, leaf_entropy, n, depth) = {
            let scratch = &mut self.split_scratch;
            let leaf = match &self.nodes[idx] {
                Node::Leaf(l) => l,
                Node::Split { .. } => return false,
            };
            if leaf.depth >= self.config.max_depth {
                return false;
            }
            let n: f64 = leaf.class_counts.iter().sum();
            // A pure leaf has nothing to gain from splitting.
            if leaf.class_counts.iter().filter(|&&c| c > 0.0).count() < 2 {
                return false;
            }
            let mut best: Option<(usize, f64, f64)> = None; // (attr, threshold, merit)
            let mut second_merit = 0.0;
            for (oi, obs) in leaf.observers.iter().enumerate() {
                if let Some(cand) = obs.best_split_with(self.config.n_split_candidates, scratch) {
                    match best {
                        Some((_, _, m)) if cand.merit > m => {
                            second_merit = m;
                            best = Some((leaf.attrs[oi], cand.threshold, cand.merit));
                        }
                        Some((_, _, m)) => {
                            if cand.merit > second_merit {
                                second_merit = cand.merit;
                            }
                            let _ = m;
                        }
                        None => best = Some((leaf.attrs[oi], cand.threshold, cand.merit)),
                    }
                }
            }
            match best {
                Some(b) => (b, second_merit, entropy(&leaf.class_counts), n, leaf.depth),
                None => return false,
            }
        };

        // Hoeffding bound over the merit range R = log2(n_classes).
        let range = (self.n_classes as f64).log2().max(1.0);
        let eps = (range * range * (1.0 / self.config.split_confidence).ln() / (2.0 * n)).sqrt();
        let (attr, threshold, merit) = best;
        // Splitting must beat not-splitting (merit > 0) decisively.
        let decisive = merit - second_merit > eps || eps < self.config.tie_threshold;
        if merit <= 1e-10 || !decisive || merit < leaf_entropy * 0.01 {
            return false;
        }

        // Materialise the split: project leaf statistics into the children.
        let (left_counts, right_counts, parent_counts) = {
            let leaf = match &self.nodes[idx] {
                Node::Leaf(l) => l,
                Node::Split { .. } => unreachable!("checked above"),
            };
            let oi = leaf.attrs.iter().position(|&a| a == attr).expect("attr from this leaf");
            let (l, r) = leaf.observers[oi].project(threshold);
            (l, r, leaf.class_counts.clone())
        };
        let mut left_leaf =
            Self::make_leaf(self.n_features, self.n_classes, &self.config, &mut self.rng, depth + 1);
        left_leaf.class_counts = left_counts;
        let mut right_leaf =
            Self::make_leaf(self.n_features, self.n_classes, &self.config, &mut self.rng, depth + 1);
        right_leaf.class_counts = right_counts;

        let left = self.nodes.len();
        self.nodes.push(Node::Leaf(left_leaf));
        let right = self.nodes.len();
        self.nodes.push(Node::Leaf(right_leaf));
        self.nodes[idx] =
            Node::Split { feature: attr, threshold, class_counts: parent_counts, left, right };
        self.n_splits += 1;
        self.grew_since_taken = true;
        true
    }
}

impl Classifier for HoeffdingTree {
    fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.predict_proba(x))
    }

    fn predict_with(&self, x: &[f64], proba_scratch: &mut Vec<f64>) -> usize {
        // Same label as `predict`: the probabilities are computed by the
        // identical exp/normalise path, only into caller-owned storage.
        self.predict_proba_into(x, proba_scratch);
        argmax(proba_scratch)
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_classes);
        self.predict_proba_into(x, &mut out);
        out
    }

    fn train(&mut self, x: &[f64], y: usize) {
        if y >= self.n_classes || x.len() != self.n_features {
            return;
        }
        // Update class counts along the internal path (for contributions).
        let mut idx = self.root;
        loop {
            match &mut self.nodes[idx] {
                Node::Leaf(_) => break,
                Node::Split { feature, threshold, class_counts, left, right } => {
                    class_counts[y] += 1.0;
                    idx = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }

        // Adaptive-leaf bookkeeping requires predictions *before* training.
        if self.config.leaf_prediction == LeafPrediction::NaiveBayesAdaptive {
            let mut scratch = std::mem::take(&mut self.train_scratch);
            let (mc_pred, nb_pred) = match &self.nodes[idx] {
                Node::Leaf(l) => {
                    self.leaf_nb_proba_into(l, x, &mut scratch);
                    (argmax(&l.class_counts), argmax(&scratch))
                }
                Node::Split { .. } => unreachable!(),
            };
            self.train_scratch = scratch;
            if let Node::Leaf(l) = &mut self.nodes[idx] {
                if mc_pred == y {
                    l.mc_correct += 1.0;
                }
                if nb_pred == y {
                    l.nb_correct += 1.0;
                }
            }
        }

        let should_eval = {
            let leaf = match &mut self.nodes[idx] {
                Node::Leaf(l) => l,
                Node::Split { .. } => unreachable!(),
            };
            leaf.class_counts[y] += 1.0;
            leaf.weight_seen += 1.0;
            for oi in 0..leaf.attrs.len() {
                let attr = leaf.attrs[oi];
                leaf.observers[oi].observe(x[attr], y);
            }
            leaf.weight_seen - leaf.weight_at_last_eval >= self.config.grace_period as f64
        };
        self.n_trained += 1;

        if should_eval {
            if let Node::Leaf(l) = &mut self.nodes[idx] {
                l.weight_at_last_eval = l.weight_seen;
            }
            self.try_split(idx);
        }
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn n_trained(&self) -> usize {
        self.n_trained
    }

    fn reset(&mut self) {
        let config = self.config.clone();
        *self = HoeffdingTree::with_config(self.n_features, self.n_classes, config);
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }

    fn take_growth_event(&mut self) -> bool {
        std::mem::take(&mut self.grew_since_taken)
    }

    fn complexity(&self) -> usize {
        self.n_splits
    }

    /// Saabas path decomposition: walking root→leaf, the change in the
    /// predicted class's probability at each split is credited to the split
    /// feature. The absolute values, averaged over a window, approximate
    /// Shapley feature importance for trees.
    fn feature_contributions(&self, x: &[f64]) -> Option<Vec<f64>> {
        let mut contrib = Vec::new();
        let mut scratch = Vec::with_capacity(self.n_classes);
        self.contributions_with(x, &mut contrib, &mut scratch);
        Some(contrib)
    }

    fn contributions_with(
        &self,
        x: &[f64],
        out: &mut Vec<f64>,
        proba_scratch: &mut Vec<f64>,
    ) -> bool {
        out.clear();
        out.resize(self.n_features, 0.0);
        let pred = self.predict_with(x, proba_scratch);
        let norm_counts = |counts: &[f64], scratch: &mut Vec<f64>| {
            scratch.clear();
            scratch.extend_from_slice(counts);
            normalize_or_uniform_in_place(scratch);
            scratch[pred]
        };
        let mut idx = self.root;
        // Walk internal nodes; every hop credits the split feature with the
        // change in P(pred). Reaching a leaf ends the walk (the hop *into*
        // the leaf was already credited when the leaf was the child).
        while let Node::Split { feature, threshold, class_counts, left, right } = &self.nodes[idx]
        {
            let p_here = norm_counts(class_counts, proba_scratch);
            let child = if x[*feature] <= *threshold { *left } else { *right };
            let p_child = match &self.nodes[child] {
                Node::Leaf(l) => {
                    self.leaf_proba_into(l, x, proba_scratch);
                    proba_scratch[pred]
                }
                Node::Split { class_counts, .. } => norm_counts(class_counts, proba_scratch),
            };
            out[*feature] += p_child - p_here;
            idx = child;
        }
        true
    }
}

/// Marginal Gaussian probability that feature `feature` of a random
/// observation routed through `counts`-weighted classes lies below `t`.
/// Exposed for tests of the projection maths.
#[doc(hidden)]
pub fn _cdf_for_tests(x: f64, mean: f64, std: f64) -> f64 {
    normal_cdf(x, mean, std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    /// Two well-separated Gaussian blobs labelled by a threshold on x0.
    fn blob_stream(rng: &mut Xoshiro256pp, n: usize) -> Vec<(Vec<f64>, usize)> {
        (0..n)
            .map(|_| {
                let y = rng.random_range(0..2usize);
                let x0 = if y == 0 { rng.random::<f64>() } else { 2.0 + rng.random::<f64>() };
                let x1: f64 = rng.random();
                (vec![x0, x1], y)
            })
            .collect()
    }

    #[test]
    fn learns_threshold_concept() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut tree = HoeffdingTree::new(2, 2);
        for (x, y) in blob_stream(&mut rng, 3000) {
            tree.train(&x, y);
        }
        assert!(tree.n_splits() >= 1, "tree must grow");
        let mut correct = 0;
        let test = blob_stream(&mut rng, 500);
        for (x, y) in &test {
            if tree.predict(x) == *y {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.95, "accuracy {acc} too low");
    }

    #[test]
    fn growth_event_is_one_shot() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut tree = HoeffdingTree::new(2, 2);
        for (x, y) in blob_stream(&mut rng, 3000) {
            tree.train(&x, y);
        }
        assert!(tree.take_growth_event());
        assert!(!tree.take_growth_event(), "event must be consumed");
    }

    #[test]
    fn contributions_highlight_predictive_feature() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut tree = HoeffdingTree::new(2, 2);
        for (x, y) in blob_stream(&mut rng, 5000) {
            tree.train(&x, y);
        }
        let mut acc = vec![0.0; 2];
        for (x, _) in blob_stream(&mut rng, 200) {
            let c = tree.feature_contributions(&x).unwrap();
            acc[0] += c[0].abs();
            acc[1] += c[1].abs();
        }
        assert!(
            acc[0] > acc[1],
            "feature 0 drives labels; contributions {acc:?} disagree"
        );
    }

    #[test]
    fn untrained_tree_is_uniform() {
        let tree = HoeffdingTree::new(3, 4);
        let p = tree.predict_proba(&[0.0, 0.0, 0.0]);
        assert_eq!(p, vec![0.25; 4]);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn pure_stream_never_splits() {
        let mut tree = HoeffdingTree::new(1, 2);
        for i in 0..2000 {
            tree.train(&[i as f64], 0);
        }
        assert_eq!(tree.n_splits(), 0);
    }

    #[test]
    fn respects_max_depth() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let config = HoeffdingTreeConfig {
            max_depth: 1,
            grace_period: 50,
            ..HoeffdingTreeConfig::default()
        };
        let mut tree = HoeffdingTree::with_config(2, 2, config);
        // Noisy XOR-ish labels force repeated split attempts.
        for _ in 0..5000 {
            let x = [rng.random::<f64>() * 4.0, rng.random::<f64>() * 4.0];
            let y = ((x[0] > 2.0) ^ (x[1] > 2.0)) as usize;
            tree.train(&x, y);
        }
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn subspace_restricts_observed_attrs() {
        let config = HoeffdingTreeConfig {
            subspace: Some(1),
            grace_period: 30,
            ..HoeffdingTreeConfig::default()
        };
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut tree = HoeffdingTree::with_config(4, 2, config);
        for (x, y) in (0..500).map(|_| {
            let y = rng.random_range(0..2usize);
            (vec![y as f64, rng.random(), rng.random(), rng.random()], y)
        }) {
            tree.train(&x, y);
        }
        // No crash and the tree may or may not split (depends which attr was
        // sampled); the invariant is that training stayed well-defined.
        assert_eq!(tree.n_trained(), 500);
    }

    #[test]
    fn reset_restores_blank_state() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut tree = HoeffdingTree::new(2, 2);
        for (x, y) in blob_stream(&mut rng, 2000) {
            tree.train(&x, y);
        }
        tree.reset();
        assert_eq!(tree.n_trained(), 0);
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict_proba(&[0.0, 0.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn multiclass_three_blobs() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut tree = HoeffdingTree::new(1, 3);
        for _ in 0..6000 {
            let y = rng.random_range(0..3usize);
            let x = [y as f64 * 3.0 + rng.random::<f64>()];
            tree.train(&x, y);
        }
        assert_eq!(tree.predict(&[0.5]), 0);
        assert_eq!(tree.predict(&[3.5]), 1);
        assert_eq!(tree.predict(&[6.5]), 2);
    }
}
