//! Hoeffding tree (VFDT) implementation.
//!
//! Split into the numeric attribute [`observer`] (Gaussian per-class
//! estimators and split scoring) and the [`tree`] learner itself.

pub mod observer;
pub mod tree;

pub use observer::{entropy, normal_cdf, GaussianObserver, SplitCandidate};
pub use tree::{HoeffdingTree, HoeffdingTreeConfig, LeafPrediction};
