//! Gaussian numeric attribute observer for Hoeffding-tree leaves.
//!
//! Each leaf keeps, per attribute, one Gaussian estimator per class plus the
//! observed attribute range. Candidate binary splits are evaluated by
//! projecting each class's Gaussian mass onto the two sides of a threshold
//! (the scheme of MOA's `GaussianNumericAttributeClassObserver`).

use ficsum_stream::RunningStats;

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (maximum absolute error ~1.5e-7, ample for split scoring).
pub fn normal_cdf(x: f64, mean: f64, std: f64) -> f64 {
    if std <= 0.0 {
        return if x < mean { 0.0 } else { 1.0 };
    }
    let z = (x - mean) / (std * std::f64::consts::SQRT_2);
    0.5 * (1.0 + erf(z))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Shannon entropy (log2) of a non-negative count vector.
pub fn entropy(counts: &[f64]) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in counts {
        if c > 0.0 {
            let p = c / total;
            h -= p * p.log2();
        }
    }
    h
}

/// A candidate binary split on a numeric attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCandidate {
    /// Threshold: observations with `x <= threshold` go left.
    pub threshold: f64,
    /// Information gain of the split.
    pub merit: f64,
}

/// Reusable buffers for [`GaussianObserver::best_split_with`]: the class
/// totals plus the left/right projections for one candidate threshold.
#[derive(Debug, Clone, Default)]
pub struct SplitScratch {
    totals: Vec<f64>,
    left: Vec<f64>,
    right: Vec<f64>,
}

/// Per-attribute observer: one Gaussian per class + attribute range.
#[derive(Debug, Clone)]
pub struct GaussianObserver {
    per_class: Vec<RunningStats>,
    min: f64,
    max: f64,
}

impl GaussianObserver {
    /// Observer for an attribute under `n_classes` labels.
    pub fn new(n_classes: usize) -> Self {
        Self {
            per_class: vec![RunningStats::new(); n_classes],
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records attribute value `v` for an observation of class `class`.
    pub fn observe(&mut self, v: f64, class: usize) {
        if !v.is_finite() || class >= self.per_class.len() {
            return;
        }
        self.per_class[class].push(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Projected class counts `(left, right)` for threshold `t`, using each
    /// class Gaussian's CDF mass.
    pub fn project(&self, t: f64) -> (Vec<f64>, Vec<f64>) {
        let mut left = Vec::new();
        let mut right = Vec::new();
        self.project_into(t, &mut left, &mut right);
        (left, right)
    }

    /// [`GaussianObserver::project`] into caller-owned buffers (cleared and
    /// zero-filled first) — the allocation-free core.
    pub fn project_into(&self, t: f64, left: &mut Vec<f64>, right: &mut Vec<f64>) {
        let k = self.per_class.len();
        left.clear();
        left.resize(k, 0.0);
        right.clear();
        right.resize(k, 0.0);
        for (c, s) in self.per_class.iter().enumerate() {
            let n = s.count() as f64;
            if n == 0.0 {
                continue;
            }
            let frac = if s.count() < 2 {
                // Point mass: all on one side.
                if s.mean() <= t {
                    1.0
                } else {
                    0.0
                }
            } else {
                normal_cdf(t, s.mean(), s.std_dev())
            };
            left[c] = n * frac;
            right[c] = n * (1.0 - frac);
        }
    }

    /// Best split over `n_candidates` evenly spaced thresholds in the
    /// observed range. Returns `None` when the range is degenerate.
    pub fn best_split(&self, n_candidates: usize) -> Option<SplitCandidate> {
        self.best_split_with(n_candidates, &mut SplitScratch::default())
    }

    /// [`GaussianObserver::best_split`] reusing `scratch` — identical result
    /// (same thresholds, same projection arithmetic, same tie handling),
    /// with every buffer reused across candidate thresholds and calls.
    pub fn best_split_with(
        &self,
        n_candidates: usize,
        scratch: &mut SplitScratch,
    ) -> Option<SplitCandidate> {
        if !self.min.is_finite() || !self.max.is_finite() || self.max - self.min <= f64::EPSILON {
            return None;
        }
        let SplitScratch { totals, left, right } = scratch;
        totals.clear();
        totals.extend(self.per_class.iter().map(|s| s.count() as f64));
        let n: f64 = totals.iter().sum();
        if n < 2.0 {
            return None;
        }
        let h_pre = entropy(totals);
        let mut best: Option<SplitCandidate> = None;
        for i in 1..=n_candidates {
            let t = self.min + (self.max - self.min) * i as f64 / (n_candidates + 1) as f64;
            self.project_into(t, left, right);
            let nl: f64 = left.iter().sum();
            let nr: f64 = right.iter().sum();
            if nl <= 0.0 || nr <= 0.0 {
                continue;
            }
            let h_post = (nl * entropy(left) + nr * entropy(right)) / n;
            let merit = h_pre - h_post;
            if best.is_none_or(|b| merit > b.merit) {
                best = Some(SplitCandidate { threshold: t, merit });
            }
        }
        best
    }

    /// Total observations recorded.
    pub fn total_count(&self) -> u64 {
        self.per_class.iter().map(RunningStats::count).sum()
    }

    /// Per-class Gaussian estimators (used by naive-Bayes leaf prediction).
    pub fn class_stats(&self) -> &[RunningStats] {
        &self.per_class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_sanity() {
        assert!((normal_cdf(0.0, 0.0, 1.0) - 0.5).abs() < 1e-7);
        assert!(normal_cdf(3.0, 0.0, 1.0) > 0.99);
        assert!(normal_cdf(-3.0, 0.0, 1.0) < 0.01);
        // Degenerate sigma behaves like a step function.
        assert_eq!(normal_cdf(1.0, 2.0, 0.0), 0.0);
        assert_eq!(normal_cdf(3.0, 2.0, 0.0), 1.0);
    }

    #[test]
    fn entropy_sanity() {
        assert_eq!(entropy(&[4.0, 0.0]), 0.0);
        assert!((entropy(&[5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn separable_classes_yield_high_merit_split() {
        let mut obs = GaussianObserver::new(2);
        for i in 0..200 {
            let jitter = (i % 10) as f64 * 0.01;
            obs.observe(0.0 + jitter, 0);
            obs.observe(1.0 + jitter, 1);
        }
        let split = obs.best_split(10).expect("split must exist");
        assert!(split.merit > 0.9, "merit {} too low", split.merit);
        assert!(split.threshold > 0.05 && split.threshold < 1.0);
    }

    #[test]
    fn identical_distributions_yield_low_merit() {
        let mut obs = GaussianObserver::new(2);
        for i in 0..200 {
            let v = (i % 20) as f64 * 0.05;
            obs.observe(v, 0);
            obs.observe(v, 1);
        }
        let split = obs.best_split(10).expect("range is non-degenerate");
        assert!(split.merit < 0.05, "merit {} should be ~0", split.merit);
    }

    #[test]
    fn degenerate_range_yields_none() {
        let mut obs = GaussianObserver::new(2);
        for _ in 0..50 {
            obs.observe(1.0, 0);
            obs.observe(1.0, 1);
        }
        assert!(obs.best_split(10).is_none());
    }

    #[test]
    fn projection_preserves_total_mass() {
        let mut obs = GaussianObserver::new(3);
        for i in 0..90 {
            obs.observe(i as f64 * 0.1, i % 3);
        }
        let (l, r) = obs.project(4.5);
        let total: f64 = l.iter().sum::<f64>() + r.iter().sum::<f64>();
        assert!((total - 90.0).abs() < 1e-9);
    }
}
