//! The incremental classifier interface.

/// An incremental (online) multi-class classifier.
///
/// All learners in this workspace are trained prequentially: callers predict
/// first, then train on the revealed label. Implementations must be
/// object-safe so the FiCSUM repository can store heterogeneous classifiers
/// behind `Box<dyn Classifier>`.
pub trait Classifier: Send {
    /// Predicts a class label for `x`. Untrained classifiers return 0.
    fn predict(&self, x: &[f64]) -> usize;

    /// Class-probability estimates for `x`. The returned vector has
    /// `n_classes` entries summing to 1 (uniform when untrained).
    fn predict_proba(&self, x: &[f64]) -> Vec<f64>;

    /// Incorporates one labeled observation.
    fn train(&mut self, x: &[f64], y: usize);

    /// Number of classes this classifier discriminates.
    fn n_classes(&self) -> usize;

    /// Number of input features.
    fn n_features(&self) -> usize;

    /// Number of training observations incorporated so far.
    fn n_trained(&self) -> usize;

    /// Forgets everything, returning to the untrained state.
    fn reset(&mut self);

    /// Clones the classifier behind the trait object.
    fn clone_box(&self) -> Box<dyn Classifier>;

    /// Returns `true` once if the model structure changed "significantly"
    /// since the last call (e.g. a Hoeffding tree grew a branch). FiCSUM
    /// uses this to reset the distribution of classifier-dependent
    /// meta-information features (Section IV). Default: never.
    fn take_growth_event(&mut self) -> bool {
        false
    }

    /// Per-feature importance of the prediction on `x`, when the learner can
    /// attribute it (tree path contributions). `None` for opaque learners.
    fn feature_contributions(&self, x: &[f64]) -> Option<Vec<f64>> {
        let _ = x;
        None
    }

    /// A rough model-complexity measure (splits for trees, experts for
    /// ensembles, 0 for flat models). FiCSUM uses it to judge whether a
    /// growth event is still a *significant* behavioural change (early
    /// structure) or routine refinement of a large model.
    fn complexity(&self) -> usize {
        0
    }
}

impl Clone for Box<dyn Classifier> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A factory producing fresh classifiers for new concepts.
///
/// FiCSUM initialises a new classifier whenever a drift leads to a segment
/// that matches no stored concept; the factory captures the configuration
/// (classifier kind, hyper-parameters, seed policy) used for every concept.
pub trait ClassifierFactory: Send {
    /// Builds a fresh, untrained classifier.
    fn build(&mut self) -> Box<dyn Classifier>;
}

impl<F> ClassifierFactory for F
where
    F: FnMut() -> Box<dyn Classifier> + Send,
{
    fn build(&mut self) -> Box<dyn Classifier> {
        self()
    }
}

/// Utility: argmax over a probability vector with deterministic tie-break
/// (lowest index wins).
pub fn argmax(probs: &[f64]) -> usize {
    let mut best = 0;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in probs.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Utility: normalises a non-negative vector to sum to 1, or returns the
/// uniform distribution when the sum is zero or non-finite.
pub fn normalize_or_uniform(mut v: Vec<f64>) -> Vec<f64> {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        for x in &mut v {
            *x /= sum;
        }
    } else {
        let n = v.len().max(1);
        v = vec![1.0 / n as f64; n];
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[0.4, 0.4, 0.2]), 0);
        assert_eq!(argmax(&[0.1, 0.8, 0.1]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn normalize_handles_zero_sum() {
        let u = normalize_or_uniform(vec![0.0, 0.0]);
        assert_eq!(u, vec![0.5, 0.5]);
        let n = normalize_or_uniform(vec![1.0, 3.0]);
        assert!((n[0] - 0.25).abs() < 1e-12);
        assert!((n[1] - 0.75).abs() < 1e-12);
    }
}
