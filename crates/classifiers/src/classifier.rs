//! The incremental classifier interface.

/// An incremental (online) multi-class classifier.
///
/// All learners in this workspace are trained prequentially: callers predict
/// first, then train on the revealed label. Implementations must be
/// object-safe so the FiCSUM repository can store heterogeneous classifiers
/// behind `Box<dyn Classifier>`.
pub trait Classifier: Send + Sync {
    /// Predicts a class label for `x`. Untrained classifiers return 0.
    fn predict(&self, x: &[f64]) -> usize;

    /// Allocation-free prediction: like [`Self::predict`], but given a
    /// caller-owned scratch vector implementations can reuse for the
    /// probability work. Must return the same label as `predict`. The
    /// default ignores the scratch and delegates.
    fn predict_with(&self, x: &[f64], proba_scratch: &mut Vec<f64>) -> usize {
        let _ = proba_scratch;
        self.predict(x)
    }

    /// Class-probability estimates for `x`. The returned vector has
    /// `n_classes` entries summing to 1 (uniform when untrained).
    fn predict_proba(&self, x: &[f64]) -> Vec<f64>;

    /// Incorporates one labeled observation.
    fn train(&mut self, x: &[f64], y: usize);

    /// Number of classes this classifier discriminates.
    fn n_classes(&self) -> usize;

    /// Number of input features.
    fn n_features(&self) -> usize;

    /// Number of training observations incorporated so far.
    fn n_trained(&self) -> usize;

    /// Forgets everything, returning to the untrained state.
    fn reset(&mut self);

    /// Clones the classifier behind the trait object.
    fn clone_box(&self) -> Box<dyn Classifier>;

    /// Returns `true` once if the model structure changed "significantly"
    /// since the last call (e.g. a Hoeffding tree grew a branch). FiCSUM
    /// uses this to reset the distribution of classifier-dependent
    /// meta-information features (Section IV). Default: never.
    fn take_growth_event(&mut self) -> bool {
        false
    }

    /// Per-feature importance of the prediction on `x`, when the learner can
    /// attribute it (tree path contributions). `None` for opaque learners.
    fn feature_contributions(&self, x: &[f64]) -> Option<Vec<f64>> {
        let _ = x;
        None
    }

    /// Allocation-free variant of [`Self::feature_contributions`]: fills
    /// `out` and returns `true` when the learner can attribute the
    /// prediction, returns `false` (leaving `out` unspecified) otherwise.
    /// `proba_scratch` is caller-owned scratch for the probability walks.
    /// Must produce the same values as `feature_contributions`.
    fn contributions_with(
        &self,
        x: &[f64],
        out: &mut Vec<f64>,
        proba_scratch: &mut Vec<f64>,
    ) -> bool {
        let _ = proba_scratch;
        match self.feature_contributions(x) {
            Some(c) => {
                out.clear();
                out.extend_from_slice(&c);
                true
            }
            None => false,
        }
    }

    /// A rough model-complexity measure (splits for trees, experts for
    /// ensembles, 0 for flat models). FiCSUM uses it to judge whether a
    /// growth event is still a *significant* behavioural change (early
    /// structure) or routine refinement of a large model.
    fn complexity(&self) -> usize {
        0
    }
}

impl Clone for Box<dyn Classifier> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A factory producing fresh classifiers for new concepts.
///
/// FiCSUM initialises a new classifier whenever a drift leads to a segment
/// that matches no stored concept; the factory captures the configuration
/// (classifier kind, hyper-parameters, seed policy) used for every concept.
pub trait ClassifierFactory: Send {
    /// Builds a fresh, untrained classifier.
    fn build(&mut self) -> Box<dyn Classifier>;
}

impl<F> ClassifierFactory for F
where
    F: FnMut() -> Box<dyn Classifier> + Send,
{
    fn build(&mut self) -> Box<dyn Classifier> {
        self()
    }
}

/// Utility: argmax over a probability vector with deterministic tie-break
/// (lowest index wins).
pub fn argmax(probs: &[f64]) -> usize {
    let mut best = 0;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in probs.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Utility: normalises a non-negative vector to sum to 1, or returns the
/// uniform distribution when the sum is zero or non-finite.
pub fn normalize_or_uniform(mut v: Vec<f64>) -> Vec<f64> {
    normalize_or_uniform_in_place(&mut v);
    v
}

/// In-place [`normalize_or_uniform`]: same result, no allocation when the
/// vector already has capacity. An empty vector degenerates to `[1.0]`,
/// matching the by-value version.
pub fn normalize_or_uniform_in_place(v: &mut Vec<f64>) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        for x in v.iter_mut() {
            *x /= sum;
        }
    } else {
        let n = v.len().max(1);
        v.clear();
        v.resize(n, 1.0 / n as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[0.4, 0.4, 0.2]), 0);
        assert_eq!(argmax(&[0.1, 0.8, 0.1]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn normalize_handles_zero_sum() {
        let u = normalize_or_uniform(vec![0.0, 0.0]);
        assert_eq!(u, vec![0.5, 0.5]);
        let n = normalize_or_uniform(vec![1.0, 3.0]);
        assert!((n[0] - 0.25).abs() < 1e-12);
        assert!((n[1] - 0.75).abs() < 1e-12);
    }
}
