//! Incremental stream classifiers.
//!
//! FiCSUM associates one incremental classifier with each concept
//! representation; the paper uses a Hoeffding Tree. The baseline frameworks
//! additionally need an adaptive random forest (ARF), dynamic weighted
//! majority (DWM) and naive Bayes. All learners implement the common
//! [`Classifier`] trait and are trained prequentially (test-then-train).
//!
//! * [`MajorityClass`] — predicts the most frequent label seen,
//! * [`GaussianNaiveBayes`] — Gaussian naive Bayes,
//! * [`HoeffdingTree`] — Very Fast Decision Tree (Domingos & Hulten, KDD
//!   2000) with Gaussian numeric attribute observers, information-gain
//!   splits under the Hoeffding bound, adaptive naive-Bayes leaves, growth
//!   events (consumed by FiCSUM's fingerprint-plasticity mechanism) and
//!   Saabas-style per-feature prediction contributions (the workspace's
//!   stand-in for the paper's Shapley feature-importance channel),
//! * [`AdaptiveRandomForest`] — Gomes et al., 2017: online bagging with
//!   Poisson(6), per-tree ADWIN warning/drift monitors, random subspaces,
//! * [`DynamicWeightedMajority`] — Kolter & Maloof, 2007.

pub mod arf;
pub mod classifier;
pub mod dwm;
pub mod hoeffding;
pub mod majority;
pub mod naive_bayes;

pub use arf::AdaptiveRandomForest;
pub use classifier::{Classifier, ClassifierFactory};
pub use dwm::DynamicWeightedMajority;
pub use hoeffding::{HoeffdingTree, HoeffdingTreeConfig, LeafPrediction};
pub use majority::MajorityClass;
pub use naive_bayes::GaussianNaiveBayes;
