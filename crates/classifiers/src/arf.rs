//! Adaptive Random Forest (Gomes et al., Machine Learning 2017).
//!
//! ARF is the strongest ensemble baseline in the paper's Table VI. Each
//! member is a Hoeffding tree restricted to a random attribute subspace,
//! trained with online bagging (Poisson(λ=6) example weights) and monitored
//! by a pair of ADWIN detectors: a permissive one that triggers *warnings*
//! (start training a background tree) and a strict one that triggers
//! *drifts* (replace the tree with its background).

use ficsum_drift::{Adwin, DetectorState, DriftDetector};
use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

use crate::classifier::{argmax, normalize_or_uniform, Classifier};
use crate::hoeffding::{HoeffdingTree, HoeffdingTreeConfig};

/// Draws from Poisson(lambda) via Knuth's algorithm (fine for small lambda).
fn poisson(lambda: f64, rng: &mut Xoshiro256pp) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[derive(Debug, Clone)]
struct Member {
    tree: HoeffdingTree,
    background: Option<HoeffdingTree>,
    warning: Adwin,
    drift: Adwin,
    correct: f64,
    seen: f64,
}

impl Member {
    /// Decayed running accuracy used as the vote weight.
    fn weight(&self) -> f64 {
        if self.seen < 1.0 {
            1.0
        } else {
            (self.correct / self.seen).max(0.01)
        }
    }
}

/// Configuration for [`AdaptiveRandomForest`].
#[derive(Debug, Clone)]
pub struct ArfConfig {
    /// Ensemble size (paper: 10).
    pub n_trees: usize,
    /// Online-bagging Poisson rate.
    pub lambda: f64,
    /// ADWIN delta for the warning monitor.
    pub warning_delta: f64,
    /// ADWIN delta for the drift monitor.
    pub drift_delta: f64,
    /// Per-tree random-subspace size; `None` = `ceil(sqrt(d)) + 1`.
    pub subspace: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArfConfig {
    fn default() -> Self {
        Self {
            n_trees: 10,
            lambda: 6.0,
            warning_delta: 0.01,
            drift_delta: 0.001,
            subspace: None,
            seed: 0,
        }
    }
}

/// The Adaptive Random Forest ensemble classifier.
#[derive(Debug, Clone)]
pub struct AdaptiveRandomForest {
    members: Vec<Member>,
    config: ArfConfig,
    n_features: usize,
    n_classes: usize,
    n_trained: usize,
    rng: Xoshiro256pp,
}

impl AdaptiveRandomForest {
    /// Forest with default configuration.
    pub fn new(n_features: usize, n_classes: usize) -> Self {
        Self::with_config(n_features, n_classes, ArfConfig::default())
    }

    /// Forest with explicit configuration.
    pub fn with_config(n_features: usize, n_classes: usize, config: ArfConfig) -> Self {
        assert!(config.n_trees > 0);
        let mut rng = Xoshiro256pp::seed_from_u64(config.seed);
        let members = (0..config.n_trees)
            .map(|_| Self::fresh_member(n_features, n_classes, &config, &mut rng))
            .collect();
        Self { members, config, n_features, n_classes, n_trained: 0, rng }
    }

    fn subspace_size(n_features: usize, config: &ArfConfig) -> usize {
        config
            .subspace
            .unwrap_or_else(|| ((n_features as f64).sqrt().ceil() as usize + 1).min(n_features))
    }

    fn fresh_tree(
        n_features: usize,
        n_classes: usize,
        config: &ArfConfig,
        rng: &mut Xoshiro256pp,
    ) -> HoeffdingTree {
        let tree_config = HoeffdingTreeConfig {
            subspace: Some(Self::subspace_size(n_features, config)),
            grace_period: 50,
            seed: rng.random(),
            ..HoeffdingTreeConfig::default()
        };
        HoeffdingTree::with_config(n_features, n_classes, tree_config)
    }

    fn fresh_member(
        n_features: usize,
        n_classes: usize,
        config: &ArfConfig,
        rng: &mut Xoshiro256pp,
    ) -> Member {
        Member {
            tree: Self::fresh_tree(n_features, n_classes, config, rng),
            background: None,
            warning: Adwin::new(config.warning_delta),
            drift: Adwin::new(config.drift_delta),
            correct: 0.0,
            seen: 0.0,
        }
    }

    /// Number of ensemble members (always `n_trees`).
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// Members currently training a background tree (in warning state).
    pub fn n_backgrounds(&self) -> usize {
        self.members.iter().filter(|m| m.background.is_some()).count()
    }
}

impl Classifier for AdaptiveRandomForest {
    fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.predict_proba(x))
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        for m in &self.members {
            let w = m.weight();
            for (a, p) in acc.iter_mut().zip(m.tree.predict_proba(x)) {
                *a += w * p;
            }
        }
        normalize_or_uniform(acc)
    }

    fn train(&mut self, x: &[f64], y: usize) {
        if y >= self.n_classes || x.len() != self.n_features {
            return;
        }
        self.n_trained += 1;
        let (n_features, n_classes) = (self.n_features, self.n_classes);
        let config = self.config.clone();
        for mi in 0..self.members.len() {
            // Prequential error of this member drives its monitors.
            let err = {
                let m = &mut self.members[mi];
                let pred = m.tree.predict(x);
                let err = if pred == y { 0.0 } else { 1.0 };
                m.seen = m.seen * 0.999 + 1.0;
                m.correct = m.correct * 0.999 + (1.0 - err);
                err
            };
            let warning_fired =
                self.members[mi].warning.add(err) == DetectorState::Drift;
            let drift_fired = self.members[mi].drift.add(err) == DetectorState::Drift;

            if drift_fired {
                let m = &mut self.members[mi];
                m.tree = m.background.take().unwrap_or_else(|| {
                    Self::fresh_tree(n_features, n_classes, &config, &mut self.rng)
                });
                m.warning.reset();
                m.drift.reset();
                m.correct = 0.0;
                m.seen = 0.0;
            } else if warning_fired && self.members[mi].background.is_none() {
                self.members[mi].background =
                    Some(Self::fresh_tree(n_features, n_classes, &config, &mut self.rng));
            }

            // Online bagging: train k ~ Poisson(lambda) times.
            let k = poisson(self.config.lambda, &mut self.rng);
            let m = &mut self.members[mi];
            for _ in 0..k {
                m.tree.train(x, y);
                if let Some(bg) = &mut m.background {
                    bg.train(x, y);
                }
            }
        }
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn n_trained(&self) -> usize {
        self.n_trained
    }

    fn reset(&mut self) {
        let config = self.config.clone();
        *self = AdaptiveRandomForest::with_config(self.n_features, self.n_classes, config);
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(rng: &mut Xoshiro256pp) -> (Vec<f64>, usize) {
        let y = rng.random_range(0..2usize);
        let x0 = if y == 0 { rng.random::<f64>() } else { 2.0 + rng.random::<f64>() };
        (vec![x0, rng.random()], y)
    }

    #[test]
    fn poisson_mean_is_close_to_lambda() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson(6.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.1, "poisson mean {mean}");
    }

    #[test]
    fn learns_separable_concept() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut arf = AdaptiveRandomForest::with_config(
            2,
            2,
            ArfConfig { n_trees: 5, ..ArfConfig::default() },
        );
        for _ in 0..1500 {
            let (x, y) = blob(&mut rng);
            arf.train(&x, y);
        }
        let mut correct = 0;
        for _ in 0..300 {
            let (x, y) = blob(&mut rng);
            if arf.predict(&x) == y {
                correct += 1;
            }
        }
        assert!(correct > 270, "accuracy too low: {correct}/300");
    }

    #[test]
    fn adapts_to_label_flip() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut arf = AdaptiveRandomForest::with_config(
            2,
            2,
            ArfConfig { n_trees: 5, ..ArfConfig::default() },
        );
        for _ in 0..1500 {
            let (x, y) = blob(&mut rng);
            arf.train(&x, y);
        }
        // Flip the labelling function and keep training.
        for _ in 0..2500 {
            let (x, y) = blob(&mut rng);
            arf.train(&x, 1 - y);
        }
        let mut correct = 0;
        for _ in 0..300 {
            let (x, y) = blob(&mut rng);
            if arf.predict(&x) == 1 - y {
                correct += 1;
            }
        }
        assert!(correct > 250, "post-drift accuracy too low: {correct}/300");
    }

    #[test]
    fn reset_restores_untrained_state() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut arf = AdaptiveRandomForest::new(2, 2);
        for _ in 0..200 {
            let (x, y) = blob(&mut rng);
            arf.train(&x, y);
        }
        arf.reset();
        assert_eq!(arf.n_trained(), 0);
        assert_eq!(arf.n_backgrounds(), 0);
    }
}
