//! Majority-class baseline classifier.

use crate::classifier::{argmax, normalize_or_uniform, Classifier};

/// Predicts the most frequent class label seen so far, ignoring features.
///
/// Useful as a floor baseline and as the leaf predictor of an unsplit
/// Hoeffding tree.
#[derive(Debug, Clone)]
pub struct MajorityClass {
    counts: Vec<f64>,
    n_features: usize,
    n_trained: usize,
}

impl MajorityClass {
    /// A majority classifier over `n_classes` labels and `n_features` inputs.
    pub fn new(n_features: usize, n_classes: usize) -> Self {
        assert!(n_classes > 0);
        Self { counts: vec![0.0; n_classes], n_features, n_trained: 0 }
    }
}

impl Classifier for MajorityClass {
    fn predict(&self, _x: &[f64]) -> usize {
        argmax(&self.counts)
    }

    fn predict_proba(&self, _x: &[f64]) -> Vec<f64> {
        normalize_or_uniform(self.counts.clone())
    }

    fn train(&mut self, _x: &[f64], y: usize) {
        if let Some(c) = self.counts.get_mut(y) {
            *c += 1.0;
            self.n_trained += 1;
        }
    }

    fn n_classes(&self) -> usize {
        self.counts.len()
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn n_trained(&self) -> usize {
        self.n_trained
    }

    fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0.0);
        self.n_trained = 0;
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_majority() {
        let mut m = MajorityClass::new(1, 3);
        for y in [0, 1, 1, 2, 1] {
            m.train(&[0.0], y);
        }
        assert_eq!(m.predict(&[9.9]), 1);
        let p = m.predict_proba(&[0.0]);
        assert!((p[1] - 0.6).abs() < 1e-12);
        assert_eq!(m.n_trained(), 5);
    }

    #[test]
    fn untrained_is_uniform() {
        let m = MajorityClass::new(2, 4);
        assert_eq!(m.predict_proba(&[0.0, 0.0]), vec![0.25; 4]);
        assert_eq!(m.predict(&[0.0, 0.0]), 0);
    }

    #[test]
    fn out_of_range_label_ignored() {
        let mut m = MajorityClass::new(1, 2);
        m.train(&[0.0], 7);
        assert_eq!(m.n_trained(), 0);
    }

    #[test]
    fn reset_clears() {
        let mut m = MajorityClass::new(1, 2);
        m.train(&[0.0], 1);
        m.reset();
        assert_eq!(m.n_trained(), 0);
        assert_eq!(m.predict_proba(&[0.0]), vec![0.5, 0.5]);
    }
}
