//! End-to-end recurrence scenarios for the FiCSUM core: detection at a
//! known boundary, reuse on return, and behaviour knobs.

use ficsum_core::{FicsumBuilder, FicsumConfig, Variant};
use ficsum_synth::{
    ConceptGenerator, LabelledConcept, RandomTreeLabeller, StaggerLabeller, UniformSampler,
};

fn quick() -> FicsumConfig {
    FicsumConfig::default().with_window_size(50).with_fingerprint_gap(5).with_repository_gap(50)
}

fn stagger_gens(n: usize) -> Vec<Box<dyn ConceptGenerator>> {
    (0..n)
        .map(|c| {
            Box::new(LabelledConcept::new(
                UniformSampler::new(3, 300 + c as u64),
                StaggerLabeller::new(c),
                0.0,
                400 + c as u64,
            )) as Box<dyn ConceptGenerator>
        })
        .collect()
}

#[test]
fn alternating_concepts_produce_drifts_and_bounded_fragmentation() {
    let mut system = FicsumBuilder::new(3, 2).config(quick()).build().unwrap();
    let mut gens = stagger_gens(2);
    for seg in 0..10 {
        let g = &mut gens[seg % 2];
        for _ in 0..700 {
            let o = g.generate();
            system.process(&o.features, o.label);
        }
    }
    let stats = system.stats();
    assert!(stats.n_drifts >= 3, "boundaries should be noticed: {stats:?}");
    assert!(
        stats.n_reuses + stats.n_recheck_switches >= 1,
        "at least one recurrence should be recognised: {stats:?}"
    );
    assert!(
        stats.n_new_concepts <= 12,
        "fragmentation out of control: {stats:?}"
    );
}

#[test]
fn unsupervised_variant_sees_pure_feature_drift() {
    // Fixed labelling function; concepts differ only in feature means.
    use ficsum_synth::{ChannelModulation, ModulatedSampler};
    let labeller = RandomTreeLabeller::with_pool(4, 3, 2, 4, 77);
    let gens: Vec<Box<dyn ConceptGenerator>> = (0..2)
        .map(|c| {
            let m = ChannelModulation {
                shift: if c == 0 { -0.4 } else { 0.4 },
                ..ChannelModulation::identity()
            };
            let sampler = ModulatedSampler::uniform(UniformSampler::new(4, 10 + c as u64), m);
            Box::new(LabelledConcept::new(sampler, labeller.clone(), 0.0, 20 + c as u64))
                as Box<dyn ConceptGenerator>
        })
        .collect();
    let mut gens = gens;
    let mut system =
        FicsumBuilder::new(4, 2).variant(Variant::Unsupervised).config(quick()).build().unwrap();
    for seg in 0..6 {
        let g = &mut gens[seg % 2];
        g.restart_segment();
        for _ in 0..700 {
            let o = g.generate();
            system.process(&o.features, o.label);
        }
    }
    assert!(
        system.stats().n_drifts >= 2,
        "U-MI must see a +/-0.4 mean shift: {:?}",
        system.stats()
    );
}

#[test]
fn disabling_second_check_is_respected() {
    let config = quick().with_second_check(false);
    let mut system = FicsumBuilder::new(3, 2).config(config).build().unwrap();
    let mut gens = stagger_gens(3);
    for seg in 0..9 {
        let g = &mut gens[seg % 3];
        for _ in 0..600 {
            let o = g.generate();
            system.process(&o.features, o.label);
        }
    }
    assert_eq!(system.stats().n_recheck_switches, 0);
}

/// Regression: a concept that leaves the repository while active and is
/// stored again later must keep its `ConceptId`. The repository's insert
/// used to leave the id allocator untouched, so an entry whose id had not
/// passed through `allocate_id` could collide with a later allocation —
/// two concepts sharing an id breaks both recurrence lookup and the C-F1
/// identity mapping.
#[test]
fn reinserted_concepts_keep_their_identity() {
    use ficsum_obs::{shared, InMemoryRecorder};
    let keep = shared(InMemoryRecorder::new());
    let mut system = FicsumBuilder::new(3, 2)
        .config(quick())
        .recorder(Box::new(keep.clone()))
        .build()
        .unwrap();
    let mut gens = stagger_gens(2);
    for seg in 0..10 {
        let g = &mut gens[seg % 2];
        for _ in 0..700 {
            let o = g.generate();
            system.process(&o.features, o.label);
        }
    }
    // Every id on the switch path must be unique per concept: the same id
    // never refers to two simultaneously live entries, i.e. the active id
    // is never also stored in the repository.
    let repo_ids: Vec<_> = system.repository().iter().map(|e| e.id).collect();
    let mut sorted = repo_ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), repo_ids.len(), "duplicate ids stored: {repo_ids:?}");
    assert!(
        !repo_ids.contains(&system.active_concept()),
        "active id {} must not also be stored: {repo_ids:?}",
        system.active_concept()
    );
    // A reuse means some id was taken out and, at the next switch, stored
    // back. Its identity must survive the round trip: the recorded switch
    // sequence must show the reused id coming back as a `to` after having
    // been a `from`.
    let switches = keep.borrow().concept_switches();
    let stats = system.stats();
    if stats.n_reuses + stats.n_recheck_switches > 0 {
        let reused = switches
            .iter()
            .any(|&(_, _, to)| switches.iter().any(|&(_, from, _)| from == to));
        assert!(reused, "a reuse must bring back a previously active id: {switches:?}");
    }
}

#[test]
fn weights_adapt_away_from_uniform_once_repository_exists() {
    let mut system = FicsumBuilder::new(3, 2).config(quick()).build().unwrap();
    let mut gens = stagger_gens(2);
    for seg in 0..6 {
        let g = &mut gens[seg % 2];
        for _ in 0..700 {
            let o = g.generate();
            system.process(&o.features, o.label);
        }
    }
    let w = &system.weights().values;
    let spread = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - w.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread > 0.1, "weights should differentiate dimensions: spread {spread}");
}
