//! The FiCSUM driver — Algorithm 1 of the paper.

use std::sync::Arc;

use ficsum_classifiers::{Classifier, ClassifierFactory};
use ficsum_drift::{Adwin, DetectorState, DriftDetector};
use ficsum_meta::{FingerprintEngine, FingerprintExtractor, StaticScan};
use ficsum_obs::{Clock, DriftTrigger, MonotonicClock, NullRecorder, Recorder, Stage, StreamEvent};
use ficsum_stream::{EwStats, FrameBlock, FrameWindows};

use crate::checkpoint::SessionCheckpoint;
use crate::config::{ConfigError, FicsumConfig};
use crate::fingerprint::{ConceptFingerprint, FingerprintNormalizer};
use crate::repository::{ConceptEntry, ConceptId, Repository, RetainedPair};
use crate::similarity::{fingerprint_similarity, fingerprint_similarity_unit, CachedFingerprint};
use crate::weights::DynamicWeights;

/// What happened while processing one observation.
///
/// `#[non_exhaustive]`: downstream code reads fields (all `pub`) but only
/// the framework constructs values, so new per-step facts can be added
/// without a breaking release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct StepOutcome {
    /// Prequential prediction made *before* training on the observation.
    pub prediction: usize,
    /// Whether a concept drift was detected at this observation.
    pub drift: bool,
    /// Whether model selection switched the active concept (either to a
    /// stored recurrence or to a new concept).
    pub concept_switched: bool,
    /// Identifier of the concept active *after* this observation.
    pub active_concept: ConceptId,
}

/// How the last model selection resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Selection {
    Reused(ConceptId),
    New(ConceptId),
}

#[derive(Debug, Clone, Copy)]
struct PendingRecheck {
    due: u64,
    created_new: bool,
}

/// Counters exposed for diagnostics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FicsumStats {
    /// Drifts detected.
    pub n_drifts: u64,
    /// Model selections that reused a stored concept.
    pub n_reuses: u64,
    /// Model selections that created a new concept.
    pub n_new_concepts: u64,
    /// Second-pass corrections (new concept replaced by a recurrence).
    pub n_recheck_switches: u64,
    /// Fingerprint plasticity resets triggered by classifier growth.
    pub n_plasticity_resets: u64,
}

/// Whether a stored entry participates in the recurrence scan: its
/// selection fingerprint must be trained and it must carry either enough
/// similarity history or retained pairs to define an acceptance band.
fn is_candidate(entry: &ConceptEntry) -> bool {
    entry.sel_fingerprint.is_trained()
        && (entry.sim_stats.count() >= 3 || !entry.retained.is_empty())
}

/// Expected `(mu_s, sigma_s)` of a stored entry's within-concept
/// similarity (Section IV's record re-basing). The retained
/// `(F_c snapshot, F_B)` pairs are re-scored in selection space (unit
/// weights over today's normalisation): their mean is what a genuine
/// recurrence should score now, their spread the normal variation. Falls
/// back to the raw recorded `mu_c`/`sigma_c` when no pairs were retained.
///
/// A free function (not a method) so the parallel recurrence scan can call
/// it from worker threads against disjoint entries; `sa`/`sb`/`sims` are
/// caller-owned scratch reused across entries.
fn expected_similarity_with(
    config: &FicsumConfig,
    normalizer: &FingerprintNormalizer,
    entry: &ConceptEntry,
    sa: &mut Vec<f64>,
    sb: &mut Vec<f64>,
    sims: &mut Vec<f64>,
) -> (f64, f64) {
    if config.rebase_similarity && !entry.retained.is_empty() {
        sims.clear();
        for p in &entry.retained {
            normalizer.scale_into(&p.a, sa);
            normalizer.scale_into(&p.b, sb);
            sims.push(fingerprint_similarity_unit(sa, sb));
        }
        let mu = sims.iter().sum::<f64>() / sims.len() as f64;
        let var = sims.iter().map(|s| (s - mu) * (s - mu)).sum::<f64>() / sims.len() as f64;
        (mu, var.sqrt().max(0.02))
    } else {
        (entry.sim_stats.mean(), entry.sim_stats.std_dev().max(0.01))
    }
}

/// The FiCSUM framework instance.
///
/// Drive it prequentially with [`Ficsum::process`]; every call predicts,
/// trains, updates the concept fingerprint and runs drift detection / model
/// selection per Algorithm 1.
pub struct Ficsum {
    config: FicsumConfig,
    engine: FingerprintEngine,
    normalizer: FingerprintNormalizer,
    factory: Box<dyn ClassifierFactory>,

    // Active concept (held outside the repository while active).
    active_id: ConceptId,
    active_fp: ConceptFingerprint,
    active_fp_sel: ConceptFingerprint,
    active_clf: Box<dyn Classifier>,
    active_sim: EwStats,
    active_retained: Vec<RetainedPair>,
    active_sc: ConceptFingerprint,

    repo: Repository,
    recorder: Box<dyn Recorder>,
    clock: Arc<dyn Clock>,
    detector: Adwin,
    /// Algorithm 1's active window `A` and delayed buffer `B` as views over
    /// one shared structure-of-arrays frame ring (no per-step clones).
    frames: FrameWindows,
    weights: DynamicWeights,
    /// Weight-vector generation: bumped on every actual recompute; part of
    /// the weighted similarity cache key.
    weights_gen: u64,
    /// `(active fingerprint, repository, normaliser)` version stamp at the
    /// last weight recompute. An equal stamp proves every input the
    /// computation reads is unchanged, so the recompute is skipped — the
    /// kept values are bit-identical to what it would produce.
    weights_stamp: Option<(u64, u64, u64)>,
    /// Cached scaled+weighted side of the active fingerprint's mean (the
    /// drift-detection comparisons).
    active_cache: CachedFingerprint,
    /// Cached unit-weight side of the active *selection* fingerprint's
    /// mean; travels with the concept into and out of the repository.
    active_sel_cache: CachedFingerprint,
    /// Scratch: fingerprint extracted from the active window.
    fp_a: Vec<f64>,
    /// Scratch: fingerprint extracted from the stale window.
    fp_b: Vec<f64>,
    /// Scratch: per-entry fingerprint (F_SC refresh, recheck incumbent).
    fp_tmp: Vec<f64>,
    /// Scratch: scaled query vector for cached similarities.
    scaled_q: Vec<f64>,
    /// Scratch: class-probability buffer for allocation-free prediction.
    proba_scratch: Vec<f64>,
    /// Owned snapshot of `A` handed to model selection at drift (reused
    /// capacity; the ring itself cannot be borrowed across selection).
    drift_block: FrameBlock,
    /// Shared classifier-independent source scan of the window being
    /// scored. Feature and label sources do not depend on which classifier
    /// re-predicts the window, so the repository sweeps (selection, recheck
    /// and the F_SC refresh) compute them once per window and splice the
    /// results into every per-classifier extraction.
    window_scan: StaticScan,
    /// Per-worker engines for the parallel recurrence scan, built lazily on
    /// the first multi-candidate drift and invalidated when the engine's
    /// configuration changes.
    scan_pool: Vec<FingerprintEngine>,
    /// Worker threads for the recurrence scan (mirrors `FicsumBuilder::parallelism`).
    scan_threads: usize,
    t: u64,
    pending_recheck: Option<PendingRecheck>,
    stats: FicsumStats,
    n_classes: usize,
    n_features: usize,
    last_similarity: Option<f64>,
    /// Consecutive extreme-deviation checks (hard drift trigger).
    extreme_streak: u32,
    /// Last observation index at which a plasticity reset happened.
    last_plasticity: u64,
    /// Consecutive buffer fingerprints skipped as outliers (robust baseline).
    baseline_outliers: u32,
    /// Drift checks are suppressed until `t` reaches this (post-switch
    /// cooldown while the windows still hold pre-switch observations).
    cooldown_until: u64,
}

impl Ficsum {
    /// Builds a framework instance from its parts, validating the
    /// configuration. Most callers should use
    /// [`crate::variant::FicsumBuilder`] instead.
    pub fn from_parts(
        n_features: usize,
        n_classes: usize,
        config: FicsumConfig,
        extractor: FingerprintExtractor,
        mut factory: Box<dyn ClassifierFactory>,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        if extractor.n_features() != n_features {
            return Err(ConfigError::FeatureCountMismatch {
                stream: n_features,
                extractor: extractor.n_features(),
            });
        }
        let dims = extractor.schema().len();
        let mut repo = Repository::new(config.max_repository);
        let active_id = repo.allocate_id();
        let active_clf = factory.build();
        Ok(Self {
            normalizer: FingerprintNormalizer::new(dims),
            active_id,
            active_fp: ConceptFingerprint::new(dims),
            active_fp_sel: ConceptFingerprint::new(dims),
            active_clf,
            active_sim: EwStats::new(config.sim_alpha),
            active_retained: Vec::new(),
            active_sc: ConceptFingerprint::new(dims),
            repo,
            recorder: Box::new(NullRecorder),
            clock: Arc::new(MonotonicClock::new()),
            detector: Adwin::new(config.detector_delta),
            frames: FrameWindows::new(config.window_size, config.buffer_delay(), n_features),
            weights: DynamicWeights::uniform(dims),
            weights_gen: 0,
            weights_stamp: None,
            active_cache: CachedFingerprint::new(),
            active_sel_cache: CachedFingerprint::new(),
            fp_a: Vec::new(),
            fp_b: Vec::new(),
            fp_tmp: Vec::new(),
            scaled_q: Vec::new(),
            proba_scratch: Vec::new(),
            drift_block: FrameBlock::new(),
            window_scan: StaticScan::new(),
            scan_pool: Vec::new(),
            scan_threads: 1,
            t: 0,
            pending_recheck: None,
            stats: FicsumStats::default(),
            config,
            engine: FingerprintEngine::new(extractor),
            factory,
            n_classes,
            n_features,
            last_similarity: None,
            extreme_streak: 0,
            last_plasticity: 0,
            baseline_outliers: 0,
            cooldown_until: config.new_concept_grace as u64,
        })
    }

    /// Captures the session's complete learned and in-flight state.
    ///
    /// The checkpoint is an owned deep copy: the session keeps running
    /// unaffected, and later mutations do not leak into the capture. Pure
    /// caches, scratch buffers and the recorder/clock are excluded — see
    /// the [`crate::checkpoint`] module docs for the exact boundary and the
    /// bit-identical-replay guarantee
    /// [`crate::SessionTemplate::restore`] provides.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            n_features: self.n_features,
            n_classes: self.n_classes,
            config: self.config,
            active_id: self.active_id,
            active_fp: self.active_fp.clone(),
            active_fp_sel: self.active_fp_sel.clone(),
            active_clf: self.active_clf.clone(),
            active_sim: self.active_sim,
            active_retained: self.active_retained.clone(),
            active_sc: self.active_sc.clone(),
            repo: self.repo.clone(),
            normalizer: self.normalizer.clone(),
            weights: self.weights.clone(),
            weights_gen: self.weights_gen,
            weights_stamp: self.weights_stamp,
            detector: self.detector.clone(),
            frames: self.frames.clone(),
            t: self.t,
            pending_recheck: self.pending_recheck.map(|p| (p.due, p.created_new)),
            stats: self.stats,
            last_similarity: self.last_similarity,
            extreme_streak: self.extreme_streak,
            last_plasticity: self.last_plasticity,
            baseline_outliers: self.baseline_outliers,
            cooldown_until: self.cooldown_until,
        }
    }

    /// Rehydrates a pipeline from a checkpoint. Compatibility between the
    /// checkpoint and the construction inputs is the caller's contract —
    /// [`crate::SessionTemplate::restore`] performs that validation and is
    /// the public entry point.
    ///
    /// Caches, scratch buffers and the scan pool start empty: they are pure
    /// functions of the captured state (version-keyed), so their first
    /// `ensure`/rebuild reproduces exactly what the original session held.
    /// The restored pipeline carries a [`NullRecorder`] until one is
    /// attached; recorders are observers, not state.
    pub(crate) fn from_checkpoint(
        checkpoint: &SessionCheckpoint,
        extractor: FingerprintExtractor,
        factory: Box<dyn ClassifierFactory>,
    ) -> Self {
        Self {
            config: checkpoint.config,
            engine: FingerprintEngine::new(extractor),
            normalizer: checkpoint.normalizer.clone(),
            factory,
            active_id: checkpoint.active_id,
            active_fp: checkpoint.active_fp.clone(),
            active_fp_sel: checkpoint.active_fp_sel.clone(),
            active_clf: checkpoint.active_clf.clone(),
            active_sim: checkpoint.active_sim,
            active_retained: checkpoint.active_retained.clone(),
            active_sc: checkpoint.active_sc.clone(),
            repo: checkpoint.repo.clone(),
            recorder: Box::new(NullRecorder),
            clock: Arc::new(MonotonicClock::new()),
            detector: checkpoint.detector.clone(),
            frames: checkpoint.frames.clone(),
            weights: checkpoint.weights.clone(),
            weights_gen: checkpoint.weights_gen,
            weights_stamp: checkpoint.weights_stamp,
            active_cache: CachedFingerprint::new(),
            active_sel_cache: CachedFingerprint::new(),
            fp_a: Vec::new(),
            fp_b: Vec::new(),
            fp_tmp: Vec::new(),
            scaled_q: Vec::new(),
            proba_scratch: Vec::new(),
            drift_block: FrameBlock::new(),
            window_scan: StaticScan::new(),
            scan_pool: Vec::new(),
            scan_threads: 1,
            t: checkpoint.t,
            pending_recheck: checkpoint
                .pending_recheck
                .map(|(due, created_new)| PendingRecheck { due, created_new }),
            stats: checkpoint.stats,
            n_classes: checkpoint.n_classes,
            n_features: checkpoint.n_features,
            last_similarity: checkpoint.last_similarity,
            extreme_streak: checkpoint.extreme_streak,
            last_plasticity: checkpoint.last_plasticity,
            baseline_outliers: checkpoint.baseline_outliers,
            cooldown_until: checkpoint.cooldown_until,
        }
    }

    /// Sets the worker-thread count (see
    /// [`crate::variant::FicsumBuilder::parallelism`]). The fingerprint
    /// engine fans behaviour sources across the threads during extraction,
    /// and the recurrence scan at drift fans stored concepts across them
    /// (1 = sequential, the default). Both parallel paths are bit-identical
    /// to sequential, so this only changes wall-clock behaviour.
    pub(crate) fn configure_parallelism(&mut self, threads: usize) {
        self.engine.set_threads(threads);
        self.scan_threads = threads.max(1);
        self.scan_pool.clear();
    }

    /// Lets the engine substitute the window's incremental moments for the
    /// batch moment sweep (see
    /// [`crate::variant::FicsumBuilder::incremental_moments`]).
    pub(crate) fn configure_incremental_moments(&mut self, on: bool) {
        self.engine.set_incremental_moments(on);
        self.scan_pool.clear();
    }

    /// Extends the incremental substitution from the moments to the full
    /// per-window statistic set (see
    /// [`crate::variant::FicsumBuilder::incremental_stats`]): switches the
    /// frame windows' per-source statistic banks on at the extractor's MI
    /// resolution and lets the engine substitute ACF/PACF, lagged MI and
    /// the turning-point rate (which implies incremental moments) and cache
    /// IMF entropies per source.
    pub(crate) fn configure_incremental_stats(&mut self, on: bool) {
        if on {
            let bins = self.engine.extractor().mi_bins();
            self.frames.enable_stats(bins);
            self.engine.set_incremental_moments(true);
        } else {
            self.frames.disable_stats();
        }
        self.engine.set_incremental_stats(on);
        self.scan_pool.clear();
    }

    /// Bounds how often the engine re-sifts IMF entropies under incremental
    /// statistics (see [`crate::variant::FicsumBuilder::emd_stride`]).
    pub(crate) fn configure_emd_stride(&mut self, stride: u32) {
        self.engine.set_emd_stride(stride);
        self.scan_pool.clear();
    }

    /// The fingerprint engine driving extraction.
    pub fn engine(&self) -> &FingerprintEngine {
        &self.engine
    }

    /// Attaches an observability recorder: every event, counter, gauge and
    /// stage span the pipeline produces is delivered to it. The default is
    /// [`NullRecorder`], whose calls compile to nothing.
    ///
    /// Prefer configuring at construction with
    /// [`crate::variant::FicsumBuilder::recorder`]; this post-build hook
    /// exists for drivers that receive an already-built pipeline and attach
    /// observability afterwards (the `ficsum-eval` runner contract).
    ///
    /// Attaching an *enabled* recorder also switches on the fingerprint
    /// engine's per-source extraction timing (shared clock); attaching a
    /// disabled one switches it off again.
    pub fn attach_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.engine
            .set_clock(recorder.enabled().then(|| Arc::clone(&self.clock)));
        self.recorder = recorder;
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &dyn Recorder {
        self.recorder.as_ref()
    }

    /// Mutable access to the attached recorder.
    pub fn recorder_mut(&mut self) -> &mut dyn Recorder {
        self.recorder.as_mut()
    }

    /// Replaces the span-timing clock (default: a [`MonotonicClock`]
    /// anchored at construction; see
    /// [`crate::variant::FicsumBuilder::clock`]). Tests inject a
    /// [`ficsum_obs::ManualClock`] for bit-reproducible span records.
    pub(crate) fn attach_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
        if self.recorder.enabled() {
            self.engine.set_clock(Some(Arc::clone(&self.clock)));
        }
    }

    /// Single emission point for pipeline observations. `last_similarity`
    /// is maintained here as a *view over the same event stream* the
    /// recorder receives, so the accessor and an attached recorder can
    /// never disagree.
    fn emit(&mut self, event: StreamEvent) {
        if let StreamEvent::SimilarityObserved { value } = event {
            self.last_similarity = Some(value);
        }
        self.recorder.event(self.t, event);
    }

    /// Reads the clock for a span start; 0 (no clock read) when the
    /// recorder would discard the span anyway.
    fn span_start(&self) -> u64 {
        if self.recorder.enabled() {
            self.clock.now_nanos()
        } else {
            0
        }
    }

    /// Closes a stage span opened by [`Ficsum::span_start`].
    fn span_end(&mut self, stage: Stage, start: u64) {
        if self.recorder.enabled() {
            self.recorder
                .span(stage, self.clock.now_nanos().saturating_sub(start));
        }
    }

    /// Publishes the active concept's normal-similarity distribution
    /// `(mu_c, sigma_c, count)` as gauges. Callers gate on
    /// [`Recorder::enabled`].
    fn sim_gauges(&mut self) {
        self.recorder.gauge("ficsum.sim.mean", self.active_sim.mean());
        self.recorder.gauge("ficsum.sim.std_dev", self.active_sim.std_dev());
        self.recorder.gauge("ficsum.sim.count", self.active_sim.count() as f64);
    }

    /// Identifier of the currently active concept.
    pub fn active_concept(&self) -> ConceptId {
        self.active_id
    }

    /// Stored (non-active) concepts.
    pub fn repository(&self) -> &Repository {
        &self.repo
    }

    /// Diagnostic counters.
    pub fn stats(&self) -> FicsumStats {
        self.stats
    }

    /// Current dynamic weight vector (recomputed when its inputs change,
    /// checked every `P_C` observations).
    pub fn weights(&self) -> &DynamicWeights {
        &self.weights
    }

    /// The most recent `Sim(F_c, F_A)` value fed to the drift detector.
    pub fn last_similarity(&self) -> Option<f64> {
        self.last_similarity
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Discrimination-ability probe (Section II-A of the paper).
    ///
    /// Treating the current active window as drawn from the active concept,
    /// returns the mean gap between the active concept's similarity and each
    /// stored concept's similarity, in units of the active concept's normal
    /// similarity deviation: `mean_i (Sim_a - Sim_i) / sigma_a`. Larger
    /// values mean the representation separates the true concept from the
    /// impostors more decisively. `None` until the window, fingerprint and
    /// repository all exist.
    pub fn discrimination_probe(&mut self) -> Option<f64> {
        if !self.frames.a_is_full()
            || !self.active_fp.is_trained()
            || self.repo.is_empty()
            || self.active_sim.count() < 5
        {
            return None;
        }
        if !self.active_fp_sel.is_trained() {
            return None;
        }
        let mut f_a = Vec::new();
        self.engine.extract_tracked_frames_repredicted_into(
            &self.frames.a_tracked(),
            self.active_clf.as_ref(),
            &mut f_a,
        );
        let sim_active = self.selection_similarity(&self.active_fp_sel.mean_vector(), &f_a);
        let sigma = self.active_sim.std_dev().max(self.config.sim_sigma_floor);
        let mut sum = 0.0;
        let mut n = 0.0;
        let mut f_as = Vec::new();
        for entry in self.repo.iter().filter(|e| e.sel_fingerprint.is_trained()) {
            self.engine.extract_tracked_frames_repredicted_into(
                &self.frames.a_tracked(),
                entry.classifier.as_ref(),
                &mut f_as,
            );
            let sim_i = self.selection_similarity(&entry.sel_fingerprint.mean_vector(), &f_as);
            sum += (sim_active - sim_i) / sigma;
            n += 1.0;
        }
        (n > 0.0).then(|| sum / n)
    }

    /// Predicts without training or advancing any state.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.active_clf.predict(x)
    }

    /// Similarity used by model selection: normalised values under *uniform*
    /// weights. The dynamic weights are tuned to make the drift detector
    /// maximally sensitive around the active concept, but they move over
    /// time, which destabilises the acceptance bands recorded for stored
    /// concepts; selection instead compares in a weight-stationary space.
    ///
    /// Diagnostics-path helper (it allocates); the selection hot path runs
    /// the same comparison through [`CachedFingerprint`] instead.
    fn selection_similarity(&self, raw_a: &[f64], raw_b: &[f64]) -> f64 {
        let a = self.normalizer.scale(raw_a);
        let b = self.normalizer.scale(raw_b);
        let ones = vec![1.0; a.len()];
        fingerprint_similarity(&a, &b, &ones)
    }

    /// Moves the active concept into the repository (classifier and all).
    /// The prepared selection-side cache travels with it; the weighted
    /// drift-side cache is dropped (the incoming active fingerprint is a
    /// different object whose version counter could collide).
    fn store_active(&mut self) {
        let dims = self.engine.schema().len();
        self.active_cache.invalidate();
        let entry = ConceptEntry {
            id: self.active_id,
            fingerprint: std::mem::replace(&mut self.active_fp, ConceptFingerprint::new(dims)),
            sel_fingerprint: std::mem::replace(
                &mut self.active_fp_sel,
                ConceptFingerprint::new(dims),
            ),
            classifier: std::mem::replace(&mut self.active_clf, self.factory.build()),
            sim_stats: std::mem::replace(
                &mut self.active_sim,
                EwStats::new(self.config.sim_alpha),
            ),
            sc_fingerprint: std::mem::replace(&mut self.active_sc, ConceptFingerprint::new(dims)),
            retained: std::mem::take(&mut self.active_retained),
            last_active: self.t,
            sel_cache: std::mem::take(&mut self.active_sel_cache),
        };
        if let Some(evicted) = self.repo.insert(entry) {
            self.emit(StreamEvent::RepositoryEvicted { id: evicted as u64 });
            self.recorder.counter("ficsum.evictions", 1);
        }
    }

    /// Makes a stored entry the active concept. The similarity baseline is
    /// rebuilt from scratch: the reused classifier immediately resumes
    /// training, so its recorded similarity level is stale, and the robust
    /// outlier filter would otherwise block the baseline from ever
    /// re-converging.
    fn activate(&mut self, id: ConceptId) {
        let entry = self.repo.take(id).expect("selection returned stored id");
        self.active_id = entry.id;
        self.active_fp = entry.fingerprint;
        self.active_fp_sel = entry.sel_fingerprint;
        self.active_clf = entry.classifier;
        self.active_sim = EwStats::new(self.config.sim_alpha);
        self.active_retained = entry.retained;
        self.active_sc = entry.sc_fingerprint;
        self.active_sel_cache = entry.sel_cache;
        self.active_cache.invalidate();
    }

    /// Starts a brand-new concept.
    fn activate_new(&mut self) {
        let dims = self.engine.schema().len();
        self.active_id = self.repo.allocate_id();
        self.active_fp = ConceptFingerprint::new(dims);
        self.active_fp_sel = ConceptFingerprint::new(dims);
        self.active_clf = self.factory.build();
        self.active_sim = EwStats::new(self.config.sim_alpha);
        self.active_retained = Vec::new();
        self.active_sc = ConceptFingerprint::new(dims);
        self.active_sel_cache.invalidate();
        self.active_cache.invalidate();
    }

    /// Grows the scan-worker engine pool to `n` single-threaded clones of
    /// the main engine (same extractor and incremental-moments setting, no
    /// span clock — the workers' cost is attributed to the selection span).
    fn ensure_scan_pool(&mut self, n: usize) {
        while self.scan_pool.len() < n {
            let mut e = self.engine.clone();
            e.set_threads(1);
            e.set_clock(None);
            self.scan_pool.push(e);
        }
    }

    /// Finds the best stored recurrence candidate for `window`.
    ///
    /// Two acceptance tiers: (1) the paper's band test; (2) when nothing
    /// passes the band, a *dominant match* — a stored concept whose
    /// similarity is at least half its expected value and clearly ahead of
    /// every other stored concept. Tier 2 recovers recurrences whose
    /// absolute similarity level has moved (frozen classifier, evolved
    /// weights) but whose relative identity is unambiguous; without it the
    /// repository fragments, which is fatal to concept tracking (C-F1).
    ///
    /// Scoring a candidate — re-predict the window through its classifier,
    /// extract, compare — is independent per candidate, so with
    /// [`crate::variant::FicsumBuilder::parallelism`] > 1 candidates are fanned across a
    /// scoped worker pool. Workers write disjoint slots that are merged in
    /// repository order, and the acceptance fold runs over the merged list
    /// exactly as the sequential loop would: the outcome is bit-identical
    /// whichever thread scored an entry.
    /// `scan_ready` means the caller already built `window_scan` for this
    /// exact window (the drift path scans the live tracked window *before*
    /// copying it out, so the scan can reuse per-source EMD state); when
    /// false the scan is built here from the copied block.
    fn select_best(&mut self, window: &FrameBlock, scan_ready: bool) -> Option<(ConceptId, f64)> {
        let norm_v = self.normalizer.version();
        // Phase 0: refresh each candidate's cached selection side (cheap
        // version check per entry; recomputed only after the fingerprint or
        // the normaliser moved).
        {
            let Self { repo, normalizer, .. } = self;
            for entry in repo.iter_mut() {
                if is_candidate(entry) {
                    let key = (0, norm_v, entry.sel_fingerprint.version());
                    entry.sel_cache.ensure(key, &entry.sel_fingerprint, normalizer, None);
                }
            }
        }
        let n_cands = self.repo.iter().filter(|e| is_candidate(e)).count();
        if n_cands == 0 {
            return None;
        }
        // Shared static scan: feature and label sources of `window` are the
        // same whichever stored classifier re-predicts it, so they are
        // evaluated once here and spliced into every candidate extraction
        // (and the recheck's incumbent extraction) below.
        if !scan_ready {
            let Self { engine, window_scan, .. } = self;
            engine.static_scan_frames(window, window_scan);
        }
        debug_assert!(self.window_scan.is_ready());
        // Phase 1: score every candidate -> (id, sim, mu, sigma) in
        // repository order.
        let mut scored: Vec<(ConceptId, f64, f64, f64)> = Vec::with_capacity(n_cands);
        if self.scan_threads <= 1 || n_cands < 2 {
            let Self { engine, repo, normalizer, config, window_scan, .. } = self;
            let (normalizer, config, scan) = (&*normalizer, &*config, &*window_scan);
            let (mut fp, mut scaled) = (Vec::new(), Vec::new());
            let (mut sa, mut sb, mut sims) = (Vec::new(), Vec::new(), Vec::new());
            for entry in repo.iter().filter(|e| is_candidate(e)) {
                engine.extract_with_scan(window, scan, entry.classifier.as_ref(), &mut fp);
                normalizer.scale_into(&fp, &mut scaled);
                let sim = entry.sel_cache.similarity_scaled(&scaled, None);
                let (mu, sigma) = expected_similarity_with(
                    config, normalizer, entry, &mut sa, &mut sb, &mut sims,
                );
                scored.push((entry.id, sim, mu, sigma));
            }
        } else {
            let n_workers = self.scan_threads.min(n_cands);
            self.ensure_scan_pool(n_workers);
            let Self { scan_pool, repo, normalizer, config, window_scan, .. } = self;
            let (normalizer, config, scan) = (&*normalizer, &*config, &*window_scan);
            let cands: Vec<&ConceptEntry> = repo.iter().filter(|e| is_candidate(e)).collect();
            let mut slots: Vec<Option<(ConceptId, f64, f64, f64)>> = vec![None; cands.len()];
            let per = cands.len().div_ceil(n_workers);
            std::thread::scope(|scope| {
                for (engine, (chunk, out)) in
                    scan_pool.iter_mut().zip(cands.chunks(per).zip(slots.chunks_mut(per)))
                {
                    scope.spawn(move || {
                        let (mut fp, mut scaled) = (Vec::new(), Vec::new());
                        let (mut sa, mut sb, mut sims) = (Vec::new(), Vec::new(), Vec::new());
                        for (slot, entry) in out.iter_mut().zip(chunk) {
                            engine.extract_with_scan(
                                window,
                                scan,
                                entry.classifier.as_ref(),
                                &mut fp,
                            );
                            normalizer.scale_into(&fp, &mut scaled);
                            let sim = entry.sel_cache.similarity_scaled(&scaled, None);
                            let (mu, sigma) = expected_similarity_with(
                                config, normalizer, entry, &mut sa, &mut sb, &mut sims,
                            );
                            *slot = Some((entry.id, sim, mu, sigma));
                        }
                    });
                }
            });
            scored.extend(slots.into_iter().flatten());
            debug_assert_eq!(scored.len(), n_cands, "every scan slot must be filled");
        }
        // Acceptance fold, identical to the sequential reference loop.
        let debug_on = std::env::var_os("FICSUM_DEBUG").is_some();
        let mut banded: Option<(ConceptId, f64)> = None;
        let mut all: Vec<(ConceptId, f64, f64)> = Vec::with_capacity(scored.len());
        for (id, sim, mu, sigma) in scored {
            if debug_on {
                eprintln!(
                    "  [select t={}] entry {id}: sim={sim:.4} mu={mu:.4} sigma={sigma:.4}",
                    self.t
                );
            }
            if sim >= mu - self.config.accept_sigma * sigma
                && banded.is_none_or(|(_, b)| sim > b)
            {
                banded = Some((id, sim));
            }
            all.push((id, sim, mu));
        }
        if banded.is_some() {
            return banded;
        }
        // Dominant-match fallback.
        if all.len() >= 2 {
            all.sort_by(|a, b| b.1.total_cmp(&a.1));
            let (id, best_sim, mu) = all[0];
            let second = all[1].1;
            if best_sim >= 0.5 * mu && best_sim >= 1.3 * second.max(0.0) + 0.02 {
                return Some((id, best_sim));
            }
        }
        None
    }

    /// Model selection (Algorithm 1 lines 25–35): store the incumbent, test
    /// every stored concept, and activate the best acceptor or a fresh one.
    fn model_select(&mut self, window: &FrameBlock, scan_ready: bool) -> Selection {
        let from = self.active_id;
        self.store_active();
        let (selection, similarity) = match self.select_best(window, scan_ready) {
            Some((id, sim)) => {
                self.activate(id);
                self.stats.n_reuses += 1;
                self.recorder.counter("ficsum.reuses", 1);
                (Selection::Reused(id), Some(sim))
            }
            None => {
                self.activate_new();
                self.stats.n_new_concepts += 1;
                self.recorder.counter("ficsum.new_concepts", 1);
                (Selection::New(self.active_id), None)
            }
        };
        self.emit(StreamEvent::ConceptSwitch {
            from: from as u64,
            to: self.active_id as u64,
            similarity,
        });
        if self.recorder.enabled() {
            self.sim_gauges();
        }
        selection
    }

    /// Second model-selection pass `w` observations after every drift
    /// (Section III-A): the first pass necessarily saw a window partially
    /// drawn from before the drift; this pass re-runs selection on a window
    /// fully drawn from the emerging segment. If a stored concept now beats
    /// the incumbent, it is selected; a newly created incumbent is deleted
    /// ("the alternative is deleted"), a reused incumbent returns to the
    /// repository.
    fn run_recheck(&mut self, window: &FrameBlock, incumbent_new: bool, scan_ready: bool) {
        let best = self.select_best(window, scan_ready);
        let Some((id, best_sim)) = best else { return };
        // Score the incumbent on the same pure window; a fresh incumbent
        // with no history scores 0 (it cannot defend itself yet).
        let incumbent_sim = if self.active_fp_sel.is_trained() {
            {
                // `select_best` just built the static scan for this same
                // window (it returned Some, so candidates existed).
                let Self { engine, active_clf, fp_tmp, window_scan, .. } = self;
                engine.extract_with_scan(window, &*window_scan, active_clf.as_ref(), fp_tmp);
            }
            let key = (0, self.normalizer.version(), self.active_fp_sel.version());
            self.active_sel_cache.ensure(key, &self.active_fp_sel, &self.normalizer, None);
            self.normalizer.scale_into(&self.fp_tmp, &mut self.scaled_q);
            self.active_sel_cache.similarity_scaled(&self.scaled_q, None)
        } else {
            0.0
        };
        if best_sim <= incumbent_sim {
            return;
        }
        let from = self.active_id;
        if incumbent_new {
            // Drop the newcomer entirely.
            self.activate(id);
        } else {
            self.store_active();
            self.activate(id);
        }
        self.stats.n_recheck_switches += 1;
        self.recorder.counter("ficsum.recheck_switches", 1);
        self.emit(StreamEvent::ConceptSwitch {
            from: from as u64,
            to: self.active_id as u64,
            similarity: Some(best_sim),
        });
        if self.recorder.enabled() {
            self.sim_gauges();
        }
        self.frames.clear_buffer();
        self.detector.reset();
        self.extreme_streak = 0;
        self.cooldown_until =
            self.t + (self.config.window_size + self.config.buffer_delay()) as u64;
    }

    /// Processes one observation prequentially.
    ///
    /// Steady-state steps (no drift) are allocation-free: the observation
    /// is written into the shared frame ring, extraction and similarity run
    /// through reusable scratch buffers, and the dynamic weights are only
    /// recomputed when their version stamp shows an input changed.
    pub fn process(&mut self, x: &[f64], y: usize) -> StepOutcome {
        debug_assert_eq!(x.len(), self.n_features);
        let prediction = self.active_clf.predict_with(x, &mut self.proba_scratch);
        self.active_clf.train(x, y);
        self.frames.push(x, y, prediction);
        self.t += 1;

        // Fingerprint plasticity: a significant classifier change (a new
        // tree branch) invalidates the stored distribution of classifier-
        // dependent meta-features (Section IV).
        // Only early structural growth counts as a *significant* change
        // (Section IV): refinements of an already-large tree barely move its
        // predictions, and resetting on every one of them would keep the
        // fingerprint permanently amnesiac. Resets are also rate-limited.
        if self.config.plasticity
            && self.active_clf.take_growth_event()
            && self.active_clf.complexity() <= 8
            && self.t >= self.last_plasticity + 300
            && self.active_fp.is_trained() {
                self.last_plasticity = self.t;
                {
                    let Self { engine, active_fp, active_fp_sel, .. } = self;
                    let schema = engine.schema();
                    active_fp.reset_dims(|i| schema.dims[i].depends_on_classifier());
                    active_fp_sel.reset_dims(|i| schema.dims[i].depends_on_classifier());
                }
                self.stats.n_plasticity_resets += 1;
                self.emit(StreamEvent::PlasticityReset);
                self.recorder.counter("ficsum.plasticity_resets", 1);
                // The grown classifier re-predicts differently from here on;
                // do not let stale cached entropies bridge the change.
                self.engine.invalidate_emd_cache();
                // The reset dimensions read as empty until buffer windows
                // refill them; comparing against the half-empty fingerprint
                // would register as (false) drift.
                self.extreme_streak = 0;
                self.baseline_outliers = 0;
                self.cooldown_until = self.cooldown_until.max(
                    self.t + (self.config.window_size + self.config.buffer_delay()) as u64,
                );
            }

        let mut outcome = StepOutcome {
            prediction,
            drift: false,
            concept_switched: false,
            active_concept: self.active_id,
        };

        // Periodic fingerprint update + drift check (lines 16–24).
        if self.t.is_multiple_of(self.config.fingerprint_gap as u64) && self.frames.a_is_full() {
            let obs_on = self.recorder.enabled();
            // Epoch-gated dynamic weights: the computation is a pure
            // function of the active fingerprint, the repository and the
            // normaliser; an unchanged version stamp means the kept vector
            // is bit-identical to what a recompute would produce.
            let stamp = (
                self.active_fp.version(),
                self.repo.weights_stamp(),
                self.normalizer.version(),
            );
            if self.weights_stamp != Some(stamp) {
                let t0 = self.span_start();
                self.weights.compute_into(
                    &self.active_fp,
                    &self.repo,
                    &self.normalizer,
                    self.config.sigma_floor,
                );
                self.span_end(Stage::RepositoryReassess, t0);
                self.weights_gen += 1;
                self.weights_stamp = Some(stamp);
                self.weights.publish_shape(&mut *self.recorder);
                if obs_on {
                    let dims = self.weights.values.len() as u64;
                    let spread = self.weights.spread();
                    self.emit(StreamEvent::WeightsRecomputed { dims, spread });
                }
            }

            let mut force_drift = false;
            if self.frames.stale_is_full() {
                // The window is re-predicted through the current classifier
                // (the paper's makeFingerprint uses the classifier, line 17):
                // re-predicted error profiles are stable within a concept and
                // jump when the labelling function moves, giving both a clean
                // detection signal and consistency with model selection.
                let t0 = self.span_start();
                {
                    let Self { engine, frames, active_clf, fp_b, .. } = self;
                    engine.extract_tracked_frames_repredicted_into(
                        &frames.stale_tracked(),
                        active_clf.as_ref(),
                        fp_b,
                    );
                }
                self.span_end(Stage::Extract, t0);
                self.emit(StreamEvent::FingerprintExtracted { dims: self.fp_b.len() as u64 });
                let t0 = self.span_start();
                self.normalizer.observe(&self.fp_b);
                let mut incorporate = true;
                if self.active_fp.is_trained() {
                    let key = (
                        self.weights_gen,
                        self.normalizer.version(),
                        self.active_fp.version(),
                    );
                    self.active_cache.ensure(
                        key,
                        &self.active_fp,
                        &self.normalizer,
                        Some(&self.weights.values),
                    );
                    self.normalizer.scale_into(&self.fp_b, &mut self.scaled_q);
                    let norm_sim = self
                        .active_cache
                        .similarity_scaled(&self.scaled_q, Some(&self.weights.values));
                    // Robust baseline: a window whose similarity is an
                    // extreme outlier is most likely drawn from a drift
                    // region — folding it into mu_c / sigma_c / F_c would
                    // blur the very representation drift is detected
                    // against. Skip it, unless outliers persist (a genuine
                    // level shift, e.g. classifier evolution), in which case
                    // start absorbing again.
                    let sigma = self.active_sim.std_dev().max(self.config.sim_sigma_floor);
                    let z = (norm_sim - self.active_sim.mean()) / sigma;
                    let outlier =
                        self.active_sim.count() >= 5 && z.abs() >= self.config.outlier_z;
                    if outlier {
                        self.baseline_outliers += 1;
                        incorporate = false;
                        // A long run of outlier windows is itself decisive
                        // evidence that the stream has left this concept.
                        if self.baseline_outliers >= 20 {
                            force_drift = true;
                        }
                    } else {
                        self.baseline_outliers = 0;
                        self.active_sim.push(norm_sim);
                        self.emit(StreamEvent::BaselineAbsorbed { value: norm_sim });
                        if obs_on {
                            self.sim_gauges();
                        }
                    }
                }
                if incorporate {
                    self.active_fp.incorporate(&self.fp_b);
                    self.active_fp_sel.incorporate(&self.fp_b);
                }
                self.span_end(Stage::Similarity, t0);
            }

            if self.active_fp.n_incorporated() >= 2 && self.t >= self.cooldown_until {
                let t0 = self.span_start();
                {
                    let Self { engine, frames, active_clf, fp_a, .. } = self;
                    engine.extract_tracked_frames_repredicted_into(
                        &frames.a_tracked(),
                        active_clf.as_ref(),
                        fp_a,
                    );
                }
                self.span_end(Stage::Extract, t0);
                self.emit(StreamEvent::FingerprintExtracted { dims: self.fp_a.len() as u64 });
                let t0 = self.span_start();
                self.normalizer.observe(&self.fp_a);
                let key = (
                    self.weights_gen,
                    self.normalizer.version(),
                    self.active_fp.version(),
                );
                self.active_cache.ensure(
                    key,
                    &self.active_fp,
                    &self.normalizer,
                    Some(&self.weights.values),
                );
                self.normalizer.scale_into(&self.fp_a, &mut self.scaled_q);
                let sim_a = self
                    .active_cache
                    .similarity_scaled(&self.scaled_q, Some(&self.weights.values));
                self.emit(StreamEvent::SimilarityObserved { value: sim_a });
                // Retain occasional selection-space pairs: the selection
                // fingerprint's mean against this window re-predicted
                // through the classifier — exactly the comparison model
                // selection performs — so re-scoring them later calibrates
                // the acceptance band (Section IV's record re-basing).
                // `scaled_q` still holds this window's scaled fingerprint,
                // which is exactly the selection query side.
                if self.t.is_multiple_of(8 * self.config.fingerprint_gap as u64)
                    && self.active_fp_sel.is_trained()
                {
                    let sel_key = (0, self.normalizer.version(), self.active_fp_sel.version());
                    self.active_sel_cache.ensure(
                        sel_key,
                        &self.active_fp_sel,
                        &self.normalizer,
                        None,
                    );
                    let sim_sel = self.active_sel_cache.similarity_scaled(&self.scaled_q, None);
                    // Ring-recycle the oldest pair's buffers once the cap is
                    // reached; steady state allocates nothing.
                    let (mut a, mut b) = if self.active_retained.len() >= 8 {
                        let p = self.active_retained.remove(0);
                        (p.a, p.b)
                    } else {
                        (Vec::new(), Vec::new())
                    };
                    self.active_fp_sel.mean_into(&mut a);
                    b.clear();
                    b.extend_from_slice(&self.fp_a);
                    self.active_retained.push(RetainedPair { a, b, sim_then: sim_sel });
                }
                self.span_end(Stage::Similarity, t0);
                let t0 = self.span_start();
                // Standardise against the recorded normal similarity
                // distribution (mu_c, sigma_c): raw cosine values are
                // compressed near 1 and their scale varies by dataset, while
                // the deviation-from-normal is what "significantly
                // different to normal" means (Section III-A).
                let (z, detector_input) = if self.active_sim.count() >= 5 {
                    let sigma = self.active_sim.std_dev().max(self.config.sim_sigma_floor);
                    let c = self.config.deviation_clamp;
                    let z = ((sim_a - self.active_sim.mean()) / sigma).clamp(-c, c);
                    (z, (z + c) / (2.0 * c))
                } else {
                    (0.0, 0.5)
                };
                // Hard trigger: several consecutive checks far outside the
                // recorded normal band.
                if z.abs() >= self.config.hard_z {
                    self.extreme_streak += 1;
                } else {
                    self.extreme_streak = 0;
                }
                let adwin_fired = self.detector.add(detector_input) == DetectorState::Drift;
                let hard_fired = self.extreme_streak >= self.config.hard_consecutive;
                self.span_end(Stage::DriftCheck, t0);
                if adwin_fired || hard_fired || force_drift {
                    self.stats.n_drifts += 1;
                    let trigger = if adwin_fired {
                        DriftTrigger::Detector
                    } else if hard_fired {
                        DriftTrigger::HardStreak
                    } else {
                        DriftTrigger::OutlierRun
                    };
                    self.emit(StreamEvent::DriftDetected { trigger });
                    self.recorder.counter("ficsum.drifts", 1);
                    outcome.drift = true;
                    let mut block = std::mem::take(&mut self.drift_block);
                    block.copy_from(&self.frames.a_view());
                    let t0 = self.span_start();
                    // Under incremental statistics, scan the *live* tracked
                    // window instead of the copied block: the selection scan
                    // then shares the window's statistic banks and — because
                    // `fp_a` was just extracted from these exact contents —
                    // reuses the cached IMF entropies by content hash.
                    let scan_ready = self.engine.incremental_stats();
                    if scan_ready {
                        let Self { engine, frames, window_scan, .. } = self;
                        engine.static_scan_tracked(&frames.a_tracked(), window_scan);
                    }
                    let selection = self.model_select(&block, scan_ready);
                    self.span_end(Stage::RepositoryReassess, t0);
                    self.drift_block = block;
                    // The active classifier changed: cached EMD values for
                    // prediction-dependent sources belong to the old one.
                    self.engine.invalidate_emd_cache();
                    outcome.concept_switched = true;
                    self.frames.clear_buffer();
                    self.detector.reset();
                    self.extreme_streak = 0;
                    self.baseline_outliers = 0;
                    // Suppress checks until the windows hold only
                    // post-switch observations; a brand-new classifier gets
                    // longer to settle.
                    let turnover =
                        (self.config.window_size + self.config.buffer_delay()) as u64;
                    self.cooldown_until = self.t
                        + match selection {
                            Selection::New(_) => {
                                turnover.max(self.config.new_concept_grace as u64)
                            }
                            Selection::Reused(_) => turnover,
                        };
                    self.pending_recheck = self.config.second_check.then(|| PendingRecheck {
                        due: self.t + self.config.window_size as u64,
                        created_new: matches!(selection, Selection::New(_)),
                    });
                }
            }
        }

        // Periodic non-active fingerprint update for the intra-classifier
        // weight component (lines 37–42).
        if !outcome.drift
            && self.t.is_multiple_of(self.config.repository_gap as u64)
            && self.frames.a_is_full()
            && !self.repo.is_empty()
        {
            let t0 = self.span_start();
            {
                let Self { engine, repo, frames, fp_tmp, window_scan, .. } = self;
                let tracked = frames.a_tracked();
                // One static scan of `A` serves every stored classifier:
                // only the classifier-dependent sources are re-evaluated
                // per entry.
                engine.static_scan_tracked(&tracked, window_scan);
                for entry in repo.iter_mut() {
                    engine.extract_with_scan(
                        &tracked,
                        &*window_scan,
                        entry.classifier.as_ref(),
                        fp_tmp,
                    );
                    entry.sc_fingerprint.incorporate(fp_tmp);
                }
            }
            self.span_end(Stage::RepositoryReassess, t0);
        }

        // Delayed second model-selection pass (Section III-A).
        if let Some(recheck) = self.pending_recheck {
            if self.t >= recheck.due && self.frames.a_is_full() {
                self.pending_recheck = None;
                let before = self.active_id;
                let mut block = std::mem::take(&mut self.drift_block);
                block.copy_from(&self.frames.a_view());
                let t0 = self.span_start();
                let scan_ready = self.engine.incremental_stats();
                if scan_ready {
                    let Self { engine, frames, window_scan, .. } = self;
                    engine.static_scan_tracked(&frames.a_tracked(), window_scan);
                }
                self.run_recheck(&block, recheck.created_new, scan_ready);
                self.span_end(Stage::RepositoryReassess, t0);
                self.drift_block = block;
                if self.active_id != before {
                    outcome.concept_switched = true;
                    self.engine.invalidate_emd_cache();
                }
            }
        }

        // Periodically surface the engine's cumulative per-source extraction
        // cost (enabled recorders share the framework clock with the
        // engine, see `attach_recorder`).
        if self.recorder.enabled()
            && self.t.is_multiple_of(self.config.repository_gap as u64)
            && self.engine.timing_enabled()
        {
            for (name, nanos) in self.engine.source_timings() {
                self.recorder.gauge(&format!("ficsum.extract.src.{name}"), nanos as f64);
            }
        }

        outcome.active_concept = self.active_id;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::{FicsumBuilder, Variant};
    use ficsum_synth::{stagger_stream, StaggerLabeller};
    use ficsum_stream::StreamSource;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    fn quick_config() -> FicsumConfig {
        FicsumConfig {
            window_size: 50,
            fingerprint_gap: 5,
            repository_gap: 50,
            ..FicsumConfig::default()
        }
    }

    /// Two alternating STAGGER concepts with clean labels.
    fn run_two_concepts(variant: Variant, segments: usize, seg_len: usize) -> (Ficsum, f64) {
        use ficsum_synth::{LabelledConcept, UniformSampler};
        use ficsum_synth::ConceptGenerator;
        let mut systems = FicsumBuilder::new(3, 2)
            .variant(variant)
            .config(quick_config())
            .build()
            .unwrap();
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut gens: Vec<Box<dyn ConceptGenerator>> = (0..2)
            .map(|c| {
                Box::new(LabelledConcept::new(
                    UniformSampler::new(3, 100 + c as u64),
                    StaggerLabeller::new(c),
                    0.0,
                    200 + c as u64,
                )) as Box<dyn ConceptGenerator>
            })
            .collect();
        for seg in 0..segments {
            let gen = &mut gens[seg % 2];
            for _ in 0..seg_len {
                let o = gen.generate();
                let out = systems.process(&o.features, o.label);
                total += 1;
                if out.prediction == o.label {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        (systems, acc)
    }

    #[test]
    fn detects_drift_between_stagger_concepts() {
        let (ficsum, _) = run_two_concepts(Variant::Full, 4, 800);
        assert!(
            ficsum.stats().n_drifts >= 2,
            "expected drifts at the 3 boundaries, got {:?}",
            ficsum.stats()
        );
    }

    #[test]
    fn reuses_concepts_on_recurrence() {
        let (ficsum, acc) = run_two_concepts(Variant::Full, 8, 800);
        let stats = ficsum.stats();
        assert!(
            stats.n_reuses + stats.n_recheck_switches >= 1,
            "recurring concepts should be reused at least once: {stats:?}"
        );
        assert!(acc > 0.72, "accuracy {acc} too low for clean STAGGER");
    }

    #[test]
    fn stationary_stream_stays_on_one_concept() {
        let mut ficsum = FicsumBuilder::new(3, 2).config(quick_config()).build().unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let labeller = StaggerLabeller::new(0);
        use ficsum_synth::Labeller;
        let mut correct = 0usize;
        for _ in 0..4000 {
            let x = [rng.random(), rng.random(), rng.random()];
            let y = labeller.label(&x);
            if ficsum.process(&x, y).prediction == y {
                correct += 1;
            }
        }
        // Occasional alarms caused by classifier evolution are tolerated as
        // long as model selection recovers (same concept re-selected) and
        // accuracy stays high.
        let acc = correct as f64 / 4000.0;
        assert!(acc > 0.95, "stationary accuracy {acc} too low: {:?}", ficsum.stats());
        assert!(
            ficsum.stats().n_new_concepts <= 3,
            "stationary stream should not fragment: {:?}",
            ficsum.stats()
        );
    }

    #[test]
    fn er_variant_runs_end_to_end() {
        let (ficsum, acc) = run_two_concepts(Variant::ErrorRate, 4, 600);
        assert!(acc > 0.5);
        // The framework must at least survive and produce drift checks.
        assert!(ficsum.weights().values.len() == 1);
    }

    #[test]
    fn outcome_reports_active_concept() {
        let mut ficsum = FicsumBuilder::new(3, 2).config(quick_config()).build().unwrap();
        let out = ficsum.process(&[0.1, 0.2, 0.3], 1);
        assert_eq!(out.active_concept, ficsum.active_concept());
        assert!(!out.drift);
    }

    #[test]
    fn full_dataset_run_is_stable() {
        // Smoke test over a real composed stream (reduced size).
        let mut stream = stagger_stream(3);
        let mut ficsum = FicsumBuilder::new(3, 2).config(quick_config()).build().unwrap();
        let mut correct = 0usize;
        let mut n = 0usize;
        for _ in 0..6000 {
            let Some(o) = stream.next_observation() else { break };
            let out = ficsum.process(&o.features, o.label);
            if out.prediction == o.label {
                correct += 1;
            }
            n += 1;
        }
        let acc = correct as f64 / n as f64;
        assert!(acc > 0.70, "STAGGER accuracy {acc}");
    }

    #[test]
    fn parallel_recurrence_scan_matches_sequential() {
        // Same stream, threads = 1 vs threads = 4; every step outcome must
        // be bit-identical (drifts, selections, active concept ids).
        use ficsum_synth::{ConceptGenerator, LabelledConcept, UniformSampler};
        let build = |threads: usize| {
            FicsumBuilder::new(3, 2)
                .config(quick_config())
                .parallelism(threads)
                .build()
                .unwrap()
        };
        let mut seq = build(1);
        let mut par = build(4);
        let mut gens: Vec<Box<dyn ConceptGenerator>> = (0..3)
            .map(|c| {
                Box::new(LabelledConcept::new(
                    UniformSampler::new(3, 11 + c as u64),
                    StaggerLabeller::new(c % 3),
                    0.0,
                    77 + c as u64,
                )) as Box<dyn ConceptGenerator>
            })
            .collect();
        for seg in 0..9 {
            let gen = &mut gens[seg % 3];
            for _ in 0..400 {
                let o = gen.generate();
                let a = seq.process(&o.features, o.label);
                let b = par.process(&o.features, o.label);
                assert_eq!(a, b, "outcomes diverged at t={}", seq.t);
            }
        }
        assert!(seq.stats().n_drifts >= 1, "test must exercise model selection");
        assert_eq!(seq.stats(), par.stats());
    }
}
