//! Concept fingerprints and online normalisation.

use ficsum_meta::FingerprintSchema;
use ficsum_stream::{MinMaxScaler, RunningStats};

/// Online per-dimension min–max normaliser shared by all fingerprints of a
/// FiCSUM instance.
///
/// The paper scales "the observed range of each meta-information feature ...
/// to the range [0,1]" (Section III-A). The range is global (not
/// per-concept) so fingerprints from different concepts stay comparable.
#[derive(Debug, Clone)]
pub struct FingerprintNormalizer {
    scalers: Vec<MinMaxScaler>,
    /// Bumped whenever an observation widens any dimension's range; cache
    /// keys derived from scaled vectors include this.
    version: u64,
}

impl FingerprintNormalizer {
    /// Normaliser for `dims` fingerprint dimensions.
    pub fn new(dims: usize) -> Self {
        Self { scalers: vec![MinMaxScaler::new(); dims], version: 0 }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.scalers.len()
    }

    /// Monotone counter of range-widening observations. Two calls returning
    /// the same value bracket a region in which `scale` was a fixed
    /// function.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Widens every dimension's observed range by the raw vector.
    ///
    /// Concept fingerprints accumulate *raw* meta-feature values and are
    /// normalised only at comparison time — normalising before accumulation
    /// would freeze stored fingerprints in the range observed at storage
    /// time, biasing every later comparison as the range widens.
    pub fn observe(&mut self, raw: &[f64]) {
        debug_assert_eq!(raw.len(), self.scalers.len());
        let mut widened = false;
        for (&v, s) in raw.iter().zip(&mut self.scalers) {
            let before = (s.min(), s.max());
            s.observe(v);
            widened |= (s.min(), s.max()) != before;
        }
        self.version += widened as u64;
    }

    /// Widens every dimension's observed range, then returns the normalised
    /// copy.
    pub fn observe_and_scale(&mut self, raw: &[f64]) -> Vec<f64> {
        self.observe(raw);
        self.scale(raw)
    }

    /// Normalises without widening the range (for queries that must not
    /// perturb shared state).
    pub fn scale(&self, raw: &[f64]) -> Vec<f64> {
        debug_assert_eq!(raw.len(), self.scalers.len());
        raw.iter().zip(&self.scalers).map(|(&v, s)| s.scale(v)).collect()
    }

    /// [`Self::scale`] into a caller-owned vector (cleared first).
    pub fn scale_into(&self, raw: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(raw.len(), self.scalers.len());
        out.clear();
        out.extend(raw.iter().zip(&self.scalers).map(|(&v, s)| s.scale(v)));
    }

    /// Normalises a vector in place.
    pub fn scale_in_place(&self, v: &mut [f64]) {
        debug_assert_eq!(v.len(), self.scalers.len());
        for (x, s) in v.iter_mut().zip(&self.scalers) {
            *x = s.scale(*x);
        }
    }

    /// Observed span (max − min) of dimension `i`; `None` before any
    /// observation or for a degenerate range.
    pub fn span(&self, i: usize) -> Option<f64> {
        let (min, max) = (self.scalers[i].min()?, self.scalers[i].max()?);
        let span = max - min;
        (span > f64::EPSILON).then_some(span)
    }

    /// Converts a raw per-dimension standard deviation into normalised
    /// units (`sigma_raw / span`). Degenerate ranges yield 0 (the dimension
    /// is constant so far).
    pub fn scale_sigma(&self, raw_sigma: f64, i: usize) -> f64 {
        match self.span(i) {
            Some(span) => raw_sigma / span,
            None => 0.0,
        }
    }
}

/// The stored representation of one concept: per-dimension
/// `(mean, std-dev, count)` over all fingerprints incorporated from that
/// concept's stationary segments (Section III-A).
#[derive(Debug, Clone)]
pub struct ConceptFingerprint {
    stats: Vec<RunningStats>,
    incorporated: u64,
    /// Bumped on every mutation (incorporate, dimension reset); cache keys
    /// over the mean vector include this.
    version: u64,
}

impl ConceptFingerprint {
    /// Empty fingerprint with `dims` dimensions.
    pub fn new(dims: usize) -> Self {
        Self { stats: vec![RunningStats::new(); dims], incorporated: 0, version: 0 }
    }

    /// Monotone mutation counter. Equal values bracket a region in which
    /// the mean vector was unchanged.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Incorporates one raw window fingerprint. A non-finite value in a
    /// dimension is replaced by that dimension's current mean (a no-op on
    /// the distribution) so one degenerate meta-feature cannot poison it.
    pub fn incorporate(&mut self, fingerprint: &[f64]) {
        debug_assert_eq!(fingerprint.len(), self.stats.len());
        for (s, &v) in self.stats.iter_mut().zip(fingerprint) {
            s.push(if v.is_finite() { v } else { s.mean() });
        }
        self.incorporated += 1;
        self.version += 1;
    }

    /// Number of fingerprints incorporated so far.
    pub fn n_incorporated(&self) -> u64 {
        self.incorporated
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.stats.len()
    }

    /// Whether any fingerprint has been incorporated.
    pub fn is_trained(&self) -> bool {
        self.incorporated > 0
    }

    /// The `mu` vector (used as the concept's vector representation in the
    /// similarity calculation).
    pub fn mean_vector(&self) -> Vec<f64> {
        self.stats.iter().map(RunningStats::mean).collect()
    }

    /// [`Self::mean_vector`] into a caller-owned vector (cleared first).
    pub fn mean_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.stats.iter().map(RunningStats::mean));
    }

    /// Per-dimension mean.
    pub fn mean(&self, dim: usize) -> f64 {
        self.stats[dim].mean()
    }

    /// Per-dimension standard deviation.
    pub fn std_dev(&self, dim: usize) -> f64 {
        self.stats[dim].std_dev()
    }

    /// Resets the distribution of the dimensions selected by `mask`
    /// (fingerprint plasticity: classifier-dependent dimensions forget old
    /// classifier behaviour after significant training events, Section IV).
    pub fn reset_dims(&mut self, mask: impl Fn(usize) -> bool) {
        for (i, s) in self.stats.iter_mut().enumerate() {
            if mask(i) {
                s.reset();
            }
        }
        self.version += 1;
    }

    /// Resets every supervised dimension according to `schema`.
    pub fn reset_supervised(&mut self, schema: &FingerprintSchema) {
        debug_assert_eq!(schema.len(), self.stats.len());
        self.reset_dims(|i| schema.dims[i].is_supervised());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_meta::{FingerprintExtractor, MetaFunction, SourceSelection};

    #[test]
    fn incorporate_tracks_distribution() {
        let mut cf = ConceptFingerprint::new(2);
        cf.incorporate(&[0.0, 1.0]);
        cf.incorporate(&[1.0, 1.0]);
        assert_eq!(cf.n_incorporated(), 2);
        assert!((cf.mean(0) - 0.5).abs() < 1e-12);
        assert!((cf.std_dev(0) - 0.5).abs() < 1e-12);
        assert_eq!(cf.std_dev(1), 0.0);
        assert_eq!(cf.mean_vector(), vec![0.5, 1.0]);
    }

    #[test]
    fn non_finite_values_are_neutralised() {
        let mut cf = ConceptFingerprint::new(1);
        cf.incorporate(&[2.0]);
        cf.incorporate(&[f64::NAN]);
        assert_eq!(cf.mean(0), 2.0, "NaN must not move the mean");
    }

    #[test]
    fn normalizer_span_and_sigma_scaling() {
        let mut n = FingerprintNormalizer::new(2);
        n.observe(&[0.0, 5.0]);
        n.observe(&[4.0, 5.0]);
        assert_eq!(n.span(0), Some(4.0));
        assert_eq!(n.span(1), None); // degenerate
        assert!((n.scale_sigma(1.0, 0) - 0.25).abs() < 1e-12);
        assert_eq!(n.scale_sigma(1.0, 1), 0.0);
    }

    #[test]
    fn reset_supervised_keeps_unsupervised() {
        let ex = FingerprintExtractor::new(
            2,
            vec![MetaFunction::Mean],
            SourceSelection::all(),
            false,
        );
        // dims: x0.mean, x1.mean, y.mean, l.mean, err.mean, errdist.mean
        let mut cf = ConceptFingerprint::new(ex.schema().len());
        cf.incorporate(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        cf.reset_supervised(ex.schema());
        assert!((cf.mean(0) - 0.1).abs() < 1e-12);
        assert!((cf.mean(1) - 0.2).abs() < 1e-12);
        for dim in 2..6 {
            assert_eq!(cf.mean(dim), 0.0, "supervised dim {dim} must reset");
        }
    }

    #[test]
    fn normalizer_shares_range_across_queries() {
        let mut n = FingerprintNormalizer::new(1);
        n.observe_and_scale(&[0.0]);
        n.observe_and_scale(&[10.0]);
        assert!((n.scale(&[5.0])[0] - 0.5).abs() < 1e-12);
        // scale() must not widen the range
        assert_eq!(n.scale(&[20.0]), vec![1.0]);
        assert!((n.scale(&[5.0])[0] - 0.5).abs() < 1e-12);
    }
}
