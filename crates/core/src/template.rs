//! Validated session templates: one configuration, many pipelines.
//!
//! A serving deployment runs thousands of independent FiCSUM sessions that
//! all share one tuned configuration. Re-validating the hyper-parameters
//! (and re-threading error handling) on every session creation is wasted
//! work and an API trap — the config either was valid for every session or
//! for none. [`SessionTemplate`] front-loads validation once and then
//! stamps out pipelines infallibly and cheaply; it is `Send + Sync`, so a
//! sharded server can hand one template to every worker thread and build
//! sessions locally on the thread that will own them.

use std::sync::Arc;

use ficsum_classifiers::{Classifier, ClassifierFactory, HoeffdingTree};

use crate::checkpoint::{RestoreError, SessionCheckpoint};
use crate::config::{ConfigError, FicsumConfig};
use crate::framework::Ficsum;
use crate::variant::Variant;

/// Builds one fresh classifier factory per session.
///
/// [`ClassifierFactory::build`] takes `&mut self`, so a factory cannot be
/// shared between sessions that live on different threads; the template
/// instead shares this *factory constructor* and gives every session its
/// own factory.
type FactoryFn = dyn Fn() -> Box<dyn ClassifierFactory> + Send + Sync;

/// A validated, immutable recipe for constructing identical [`Ficsum`]
/// pipelines.
///
/// Construction validates the configuration exactly once;
/// [`SessionTemplate::instantiate`] is then infallible. Two pipelines
/// stamped from the same template are bit-identical in behaviour: driven
/// with the same observations they produce the same
/// [`crate::StepOutcome`]s (pinned by the template-cloning property test).
///
/// ```
/// use ficsum_core::{FicsumConfig, SessionTemplate, Variant};
/// let template = SessionTemplate::new(3, 2, FicsumConfig::default(), Variant::Full)?;
/// let mut a = template.instantiate();
/// let mut b = template.instantiate();
/// let (xs, y) = ([0.1, 0.7, 0.2], 1);
/// assert_eq!(a.process(&xs, y), b.process(&xs, y));
/// # Ok::<(), ficsum_core::ConfigError>(())
/// ```
#[derive(Clone)]
pub struct SessionTemplate {
    n_features: usize,
    n_classes: usize,
    config: FicsumConfig,
    variant: Variant,
    parallelism: usize,
    incremental_moments: bool,
    incremental_stats: bool,
    emd_stride: u32,
    factory: Arc<FactoryFn>,
}

impl SessionTemplate {
    /// Validates `config` and captures the recipe. The classifier is the
    /// paper-default Hoeffding tree; see
    /// [`SessionTemplate::with_classifier_factory`] to override it.
    pub fn new(
        n_features: usize,
        n_classes: usize,
        config: FicsumConfig,
        variant: Variant,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self {
            n_features,
            n_classes,
            config,
            variant,
            parallelism: 1,
            incremental_moments: false,
            incremental_stats: false,
            emd_stride: 1,
            factory: Arc::new(move || {
                Box::new(move || {
                    Box::new(HoeffdingTree::new(n_features, n_classes)) as Box<dyn Classifier>
                })
            }),
        })
    }

    /// Replaces the per-session classifier factory. `make` is invoked once
    /// per instantiated session, on the thread that owns the session.
    #[must_use]
    pub fn with_classifier_factory(
        mut self,
        make: impl Fn() -> Box<dyn ClassifierFactory> + Send + Sync + 'static,
    ) -> Self {
        self.factory = Arc::new(make);
        self
    }

    /// Per-session worker threads (see
    /// [`crate::variant::FicsumBuilder::parallelism`]). A sharded server
    /// normally keeps this at 1 — its parallelism is across sessions.
    #[must_use]
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// Enables the engine's incremental-moment substitution (see
    /// [`crate::variant::FicsumBuilder::incremental_moments`]).
    #[must_use]
    pub fn with_incremental_moments(mut self, on: bool) -> Self {
        self.incremental_moments = on;
        self
    }

    /// Enables the engine's full incremental statistic substitution (see
    /// [`crate::variant::FicsumBuilder::incremental_stats`]). Implies
    /// incremental moments.
    #[must_use]
    pub fn with_incremental_stats(mut self, on: bool) -> Self {
        self.incremental_stats = on;
        self
    }

    /// Bounds the EMD re-sifting cadence under incremental statistics (see
    /// [`crate::variant::FicsumBuilder::emd_stride`]).
    #[must_use]
    pub fn with_emd_stride(mut self, stride: u32) -> Self {
        self.emd_stride = stride.max(1);
        self
    }

    /// Feature dimensionality sessions are built for.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes sessions are built for.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The validated hyper-parameters.
    pub fn config(&self) -> &FicsumConfig {
        &self.config
    }

    /// The meta-information variant.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Stamps out a fresh pipeline. Infallible: the configuration was
    /// validated at template construction and the extractor is derived from
    /// the same `n_features` the pipeline is checked against.
    pub fn instantiate(&self) -> Ficsum {
        let mut ficsum = Ficsum::from_parts(
            self.n_features,
            self.n_classes,
            self.config,
            self.variant.extractor(self.n_features),
            (self.factory)(),
        )
        .expect("template was validated at construction");
        if self.parallelism != 1 {
            ficsum.configure_parallelism(self.parallelism);
        }
        if self.incremental_moments {
            ficsum.configure_incremental_moments(true);
        }
        if self.incremental_stats {
            ficsum.configure_incremental_stats(true);
        }
        if self.emd_stride != 1 {
            ficsum.configure_emd_stride(self.emd_stride);
        }
        ficsum
    }

    /// Rehydrates a session from a [`SessionCheckpoint`] captured with
    /// [`Ficsum::checkpoint`], after validating that this template is
    /// compatible with the checkpointed session (feature/class counts,
    /// fingerprint schema and hyper-parameters must all match — replaying
    /// under a different recipe would diverge silently, so a mismatch is an
    /// error, not a best effort).
    ///
    /// The restored pipeline continues **bit-identically**: driven with the
    /// observations the original session would have seen next, it produces
    /// the same [`crate::StepOutcome`]s and statistics as the uninterrupted
    /// original (pinned by the snapshot→restore→replay property test). The
    /// template's parallelism and incremental-statistics options are
    /// applied to the restored session. Parallelism is bit-identical to
    /// sequential, so it may differ freely from the capturing template. The
    /// incremental options change extraction arithmetic (within their
    /// ≤ 1e-9 contract), so bit-identical replay requires the same settings
    /// the capturing session ran with; the checkpointed frame windows carry
    /// their statistic banks, and re-enabling the same resolution on
    /// restore is an exact no-op. One caveat: the engine's EMD entropy
    /// cache is scratch, not state, so an `emd_stride` above 1 restarts
    /// its re-sift cadence at the restore point — replay stays within the
    /// tolerance contract but is bit-pinned only at the default stride.
    pub fn restore(&self, checkpoint: &SessionCheckpoint) -> Result<Ficsum, RestoreError> {
        self.validate_checkpoint(checkpoint)?;
        let extractor = self.variant.extractor(self.n_features);
        let mut ficsum = Ficsum::from_checkpoint(checkpoint, extractor, (self.factory)());
        if self.parallelism != 1 {
            ficsum.configure_parallelism(self.parallelism);
        }
        if self.incremental_moments {
            ficsum.configure_incremental_moments(true);
        }
        if self.incremental_stats {
            ficsum.configure_incremental_stats(true);
        }
        if self.emd_stride != 1 {
            ficsum.configure_emd_stride(self.emd_stride);
        }
        Ok(ficsum)
    }

    /// Checks whether [`SessionTemplate::restore`] would accept
    /// `checkpoint`, without constructing a pipeline. A server admitting
    /// checkpoints can reject incompatible ones eagerly on the submit
    /// thread and leave the actual (validated, infallible) rehydration to
    /// the worker thread that will own the session.
    pub fn validate_checkpoint(&self, checkpoint: &SessionCheckpoint) -> Result<(), RestoreError> {
        if self.n_features != checkpoint.n_features() {
            return Err(RestoreError::FeatureCountMismatch {
                template: self.n_features,
                checkpoint: checkpoint.n_features(),
            });
        }
        if self.n_classes != checkpoint.n_classes() {
            return Err(RestoreError::ClassCountMismatch {
                template: self.n_classes,
                checkpoint: checkpoint.n_classes(),
            });
        }
        if self.config != *checkpoint.config() {
            return Err(RestoreError::ConfigMismatch);
        }
        let dims = self.variant.extractor(self.n_features).schema().len();
        if dims != checkpoint.dims() {
            return Err(RestoreError::DimensionMismatch {
                template: dims,
                checkpoint: checkpoint.dims(),
            });
        }
        Ok(())
    }
}

impl std::fmt::Debug for SessionTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTemplate")
            .field("n_features", &self.n_features)
            .field("n_classes", &self.n_classes)
            .field("variant", &self.variant)
            .field("parallelism", &self.parallelism)
            .field("incremental_moments", &self.incremental_moments)
            .field("incremental_stats", &self.incremental_stats)
            .field("emd_stride", &self.emd_stride)
            .finish_non_exhaustive()
    }
}

/// Send audit for the serving boundary. `Ficsum` itself is deliberately
/// *not* `Send` (recorders may be `Rc`-shared single-thread handles); what
/// crosses threads in a sharded server is the template plus plain data, and
/// sessions are constructed on the worker thread that owns them.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SessionTemplate>();
    assert_send_sync::<FicsumConfig>();
    assert_send_sync::<crate::framework::StepOutcome>();
    assert_send_sync::<crate::framework::FicsumStats>();
    assert_send_sync::<ConfigError>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_config_is_rejected_once_up_front() {
        let bad = FicsumConfig::default().with_window_size(2);
        assert!(SessionTemplate::new(3, 2, bad, Variant::Full).is_err());
    }

    #[test]
    fn instantiated_sessions_are_independent_and_identical() {
        let template = SessionTemplate::new(3, 2, FicsumConfig::default(), Variant::Full)
            .expect("default config is valid");
        let mut a = template.instantiate();
        let mut b = template.instantiate();
        let mut only_a = template.instantiate();
        for i in 0..400usize {
            let x = [(i % 7) as f64 * 0.13, (i % 5) as f64 * 0.19, (i % 3) as f64 * 0.31];
            let y = i % 2;
            assert_eq!(a.process(&x, y), b.process(&x, y), "diverged at step {i}");
            // Driving a third session differently must not affect the pair.
            only_a.process(&x, (x[0] > 0.4) as usize);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn template_respects_variant_and_dims() {
        let template = SessionTemplate::new(4, 3, FicsumConfig::default(), Variant::ErrorRate)
            .expect("valid");
        let f = template.instantiate();
        assert_eq!(f.n_classes(), 3);
        assert_eq!(f.engine().schema().len(), 1, "ER variant has one dimension");
    }
}
