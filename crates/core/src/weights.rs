//! Dynamic meta-feature weighting (Section III-B).
//!
//! Each fingerprint dimension `mi` receives the weight
//! `w_mi = w_sigma_mi * w_d_mi` where:
//!
//! * `w_sigma_mi = 1 / sigma_mi` rescales deviations into units of the
//!   dimension's normal standard deviation (from the active concept
//!   fingerprint), and
//! * `w_d_mi = max(v_s_mi, v_sc_mi)` is a Fisher-score style discrimination
//!   term: `v_s` measures *inter-concept* variation (spread of per-concept
//!   means across the repository relative to the largest within-concept
//!   deviation) and `v_sc` measures *intra-classifier* variation (how far a
//!   stored classifier's behaviour on current data has moved from its stored
//!   behaviour).

use ficsum_obs::Recorder;

use crate::fingerprint::{ConceptFingerprint, FingerprintNormalizer};
use crate::repository::Repository;

/// The learned per-dimension weight vector.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicWeights {
    /// One non-negative weight per fingerprint dimension.
    pub values: Vec<f64>,
}

impl DynamicWeights {
    /// Uniform weights (used before anything is learned and by the
    /// no-weighting ablation).
    pub fn uniform(dims: usize) -> Self {
        Self { values: vec![1.0; dims] }
    }

    /// Computes the dynamic weights for the active concept against the
    /// repository. Concept fingerprints hold *raw* meta-feature statistics;
    /// `normalizer` supplies each dimension's observed span so the scale
    /// component is computed in normalised units (`sigma_floor` is in those
    /// units). The two Fisher components are ratios of same-dimension
    /// quantities, so spans cancel and raw statistics are used directly.
    pub fn compute(
        active: &ConceptFingerprint,
        repo: &Repository,
        normalizer: &FingerprintNormalizer,
        sigma_floor: f64,
    ) -> Self {
        let mut w = Self { values: Vec::new() };
        w.compute_into(active, repo, normalizer, sigma_floor);
        w
    }

    /// Recomputes the weight vector in place, reusing `values`' capacity —
    /// the allocation-free core [`DynamicWeights::compute`] wraps. The
    /// per-dimension statistics stream over the repository in the same
    /// entry order (and with the same per-accumulator addition order) as
    /// the collecting implementation, so the result is bit-identical.
    pub fn compute_into(
        &mut self,
        active: &ConceptFingerprint,
        repo: &Repository,
        normalizer: &FingerprintNormalizer,
        sigma_floor: f64,
    ) {
        let dims = active.dims();
        let values = &mut self.values;
        values.clear();
        let trained = || repo.iter().filter(|e| e.fingerprint.is_trained());
        let n_trained = trained().count();
        for dim in 0..dims {
            // --- scale component -------------------------------------------------
            let w_sigma = if active.n_incorporated() >= 2 {
                1.0 / normalizer.scale_sigma(active.std_dev(dim), dim).max(sigma_floor)
            } else {
                1.0
            };

            // --- inter-concept variation (v_s) -----------------------------------
            let v_s = if n_trained >= 2 {
                let grand =
                    trained().map(|e| e.fingerprint.mean(dim)).sum::<f64>() / n_trained as f64;
                let between = (trained()
                    .map(|e| {
                        let m = e.fingerprint.mean(dim);
                        (m - grand) * (m - grand)
                    })
                    .sum::<f64>()
                    / n_trained as f64)
                    .sqrt();
                let max_within =
                    trained().map(|e| e.fingerprint.std_dev(dim)).fold(0.0f64, f64::max);
                between / max_within.max(sigma_floor)
            } else {
                0.0
            };

            // --- intra-classifier variation (v_sc) --------------------------------
            let mut sc_sum = 0.0;
            let mut sc_n = 0usize;
            for e in trained().filter(|e| e.sc_fingerprint.is_trained()) {
                let dev = (e.fingerprint.mean(dim) - e.sc_fingerprint.mean(dim)).abs();
                sc_sum += dev / e.sc_fingerprint.std_dev(dim).max(sigma_floor);
                sc_n += 1;
            }
            let v_sc = if sc_n == 0 { 0.0 } else { sc_sum / sc_n as f64 };

            let w_d = v_s.max(v_sc);
            // Until discrimination information exists, fall back to pure
            // scale weighting.
            let w_d = if w_d > 0.0 { w_d } else { 1.0 };
            let w = w_sigma * w_d;
            values.push(if w.is_finite() && w > 0.0 { w } else { 1.0 });
        }
        // Normalise to mean 1 so weight magnitudes stay comparable across
        // updates (cosine similarity is invariant to a global scale, but the
        // retained-pair re-basing benefits from stability).
        let mean = values.iter().sum::<f64>() / dims.max(1) as f64;
        if mean > 0.0 && mean.is_finite() {
            for v in values.iter_mut() {
                *v /= mean;
            }
        }
    }

    /// Same as [`DynamicWeights::compute`], publishing the recomputed
    /// vector's shape to `recorder`: gauges `ficsum.weights.spread` and
    /// `ficsum.weights.max`. A disabled recorder skips the derived
    /// statistics entirely.
    pub fn compute_recorded(
        active: &ConceptFingerprint,
        repo: &Repository,
        normalizer: &FingerprintNormalizer,
        sigma_floor: f64,
        recorder: &mut dyn Recorder,
    ) -> Self {
        let w = Self::compute(active, repo, normalizer, sigma_floor);
        w.publish_shape(recorder);
        w
    }

    /// Publishes the vector's shape gauges (`ficsum.weights.spread`,
    /// `ficsum.weights.max`) to `recorder`; a disabled recorder skips the
    /// derived statistics entirely.
    pub fn publish_shape(&self, recorder: &mut dyn Recorder) {
        if recorder.enabled() {
            recorder.gauge("ficsum.weights.spread", self.spread());
            recorder.gauge("ficsum.weights.max", self.values.iter().copied().fold(0.0, f64::max));
        }
    }

    /// Max-minus-min of the weight values: 0 for uniform weights, larger as
    /// the weighting concentrates on few discriminative dimensions. The
    /// vector is mean-1 normalised, so spreads are comparable across
    /// recomputations.
    pub fn spread(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi >= lo { hi - lo } else { 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::{ConceptEntry, Repository};
    use ficsum_classifiers::MajorityClass;

    /// A normalizer whose every dimension has span 1 (so raw == normalised).
    fn unit_normalizer(dims: usize) -> FingerprintNormalizer {
        let mut n = FingerprintNormalizer::new(dims);
        n.observe(&vec![0.0; dims]);
        n.observe(&vec![1.0; dims]);
        n
    }

    fn entry_with_fp(repo: &mut Repository, samples: &[[f64; 2]]) {
        let id = repo.allocate_id();
        let mut e = ConceptEntry::new(id, 2, Box::new(MajorityClass::new(1, 2)));
        for s in samples {
            e.fingerprint.incorporate(s);
        }
        repo.insert(e);
    }

    #[test]
    fn uniform_before_learning() {
        let active = ConceptFingerprint::new(3);
        let repo = Repository::new(0);
        let w = DynamicWeights::compute(&active, &repo, &unit_normalizer(active.dims()), 0.01);
        assert_eq!(w.values, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn low_variance_dims_get_high_scale_weight() {
        let mut active = ConceptFingerprint::new(2);
        // dim 0 noisy, dim 1 tight
        for i in 0..20 {
            let v = if i % 2 == 0 { 0.1 } else { 0.9 };
            active.incorporate(&[v, 0.5 + 0.001 * (i % 2) as f64]);
        }
        let repo = Repository::new(0);
        let w = DynamicWeights::compute(&active, &repo, &unit_normalizer(active.dims()), 0.001);
        assert!(
            w.values[1] > w.values[0] * 10.0,
            "tight dim should dominate: {:?}",
            w.values
        );
    }

    #[test]
    fn discriminative_dims_get_high_fisher_weight() {
        let mut active = ConceptFingerprint::new(2);
        for _ in 0..10 {
            active.incorporate(&[0.5, 0.5]);
            active.incorporate(&[0.6, 0.6]);
        }
        let mut repo = Repository::new(0);
        // Concepts differ strongly in dim 0, identically in dim 1.
        entry_with_fp(&mut repo, &[[0.1, 0.5], [0.12, 0.52]]);
        entry_with_fp(&mut repo, &[[0.9, 0.5], [0.88, 0.52]]);
        let w = DynamicWeights::compute(&active, &repo, &unit_normalizer(active.dims()), 0.01);
        assert!(
            w.values[0] > 3.0 * w.values[1],
            "dim 0 separates concepts: {:?}",
            w.values
        );
    }

    #[test]
    fn intra_classifier_deviation_raises_weight() {
        let mut active = ConceptFingerprint::new(2);
        for _ in 0..5 {
            active.incorporate(&[0.5, 0.5]);
            active.incorporate(&[0.52, 0.52]);
        }
        let mut repo = Repository::new(0);
        let id = repo.allocate_id();
        let mut e = ConceptEntry::new(id, 2, Box::new(MajorityClass::new(1, 2)));
        // Stored behaviour: [0.2, 0.5]; behaviour on current data: dim 0
        // moved to 0.8, dim 1 stayed.
        for _ in 0..5 {
            e.fingerprint.incorporate(&[0.2, 0.5]);
            e.fingerprint.incorporate(&[0.22, 0.52]);
            e.sc_fingerprint.incorporate(&[0.8, 0.5]);
            e.sc_fingerprint.incorporate(&[0.82, 0.52]);
        }
        repo.insert(e);
        let w = DynamicWeights::compute(&active, &repo, &unit_normalizer(active.dims()), 0.01);
        assert!(
            w.values[0] > 2.0 * w.values[1],
            "dim 0 detects the classifier shift: {:?}",
            w.values
        );
    }

    #[test]
    fn weights_are_finite_and_positive() {
        let mut active = ConceptFingerprint::new(4);
        active.incorporate(&[0.0, 1.0, 0.5, f64::NAN]);
        active.incorporate(&[0.0, 1.0, 0.5, 0.5]);
        let repo = Repository::new(0);
        let w = DynamicWeights::compute(&active, &repo, &unit_normalizer(active.dims()), 0.01);
        assert!(w.values.iter().all(|v| v.is_finite() && *v > 0.0), "{:?}", w.values);
    }

    #[test]
    fn spread_is_zero_for_uniform_weights() {
        assert_eq!(DynamicWeights::uniform(5).spread(), 0.0);
        let w = DynamicWeights { values: vec![0.5, 1.0, 1.5] };
        assert!((w.spread() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compute_recorded_publishes_gauges() {
        use ficsum_obs::{InMemoryRecorder, NullRecorder};
        let mut active = ConceptFingerprint::new(2);
        for i in 0..10 {
            active.incorporate(&[0.1 * i as f64, 0.5]);
        }
        let repo = Repository::new(0);
        let mut rec = InMemoryRecorder::new();
        let w = DynamicWeights::compute_recorded(
            &active,
            &repo,
            &unit_normalizer(2),
            0.01,
            &mut rec,
        );
        assert_eq!(rec.gauge_value("ficsum.weights.spread"), Some(w.spread()));
        // A disabled recorder produces the same weights and no gauges.
        let w2 = DynamicWeights::compute_recorded(
            &active,
            &repo,
            &unit_normalizer(2),
            0.01,
            &mut NullRecorder,
        );
        assert_eq!(w, w2);
    }

    #[test]
    fn mean_is_normalised_to_one() {
        let mut active = ConceptFingerprint::new(3);
        for i in 0..10 {
            active.incorporate(&[0.1 * i as f64, 0.5, 0.9 - 0.05 * i as f64]);
        }
        let repo = Repository::new(0);
        let w = DynamicWeights::compute(&active, &repo, &unit_normalizer(active.dims()), 0.01);
        let mean = w.values.iter().sum::<f64>() / 3.0;
        assert!((mean - 1.0).abs() < 1e-9);
    }
}
