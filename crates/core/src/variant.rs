//! Builder and the paper's ablation variants.

use std::sync::Arc;

use ficsum_classifiers::{Classifier, ClassifierFactory, HoeffdingTree};
use ficsum_meta::{FingerprintExtractor, MetaFunction, SourceSelection};
use ficsum_obs::{Clock, Recorder};

use crate::config::{ConfigError, FicsumConfig};
use crate::framework::Ficsum;

/// Which meta-information configuration to fingerprint with.
///
/// These are exactly the systems compared in Tables III–V of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// All behaviour sources, all 13 functions (FiCSUM proper).
    Full,
    /// Error-rate meta-feature only (the ER baseline).
    ErrorRate,
    /// Supervised behaviour sources only (S-MI).
    Supervised,
    /// Unsupervised (feature) behaviour sources only (U-MI).
    Unsupervised,
    /// A single meta-information function across all sources (Table V rows).
    SingleFunction(MetaFunction),
}

impl Variant {
    /// Short name used in experiment reports.
    pub fn name(&self) -> String {
        match self {
            Variant::Full => "FiCSUM".into(),
            Variant::ErrorRate => "ER".into(),
            Variant::Supervised => "S-MI".into(),
            Variant::Unsupervised => "U-MI".into(),
            Variant::SingleFunction(f) => format!("fn:{}", f.name()),
        }
    }

    /// Builds the extractor for this variant.
    pub fn extractor(&self, n_features: usize) -> FingerprintExtractor {
        match self {
            Variant::Full => FingerprintExtractor::full(n_features),
            Variant::ErrorRate => FingerprintExtractor::error_rate_only(n_features),
            Variant::Supervised => FingerprintExtractor::new(
                n_features,
                MetaFunction::SEQUENCE_FUNCTIONS.to_vec(),
                SourceSelection::supervised_only(),
                false,
            ),
            Variant::Unsupervised => FingerprintExtractor::new(
                n_features,
                MetaFunction::SEQUENCE_FUNCTIONS.to_vec(),
                SourceSelection::unsupervised_only(),
                false,
            ),
            Variant::SingleFunction(f) => FingerprintExtractor::single_function(n_features, *f),
        }
    }
}

/// Builder for [`Ficsum`] instances.
///
/// Everything an instance can be configured with is a builder option; a
/// built [`Ficsum`] is immutable-by-default (drive it with
/// [`Ficsum::process`]). The 0.4.0 post-build `set_*` shims are gone; the
/// one supported post-build hook is [`Ficsum::attach_recorder`], for
/// drivers that receive an already-built pipeline.
pub struct FicsumBuilder {
    n_features: usize,
    n_classes: usize,
    config: FicsumConfig,
    variant: Variant,
    factory: Option<Box<dyn ClassifierFactory>>,
    recorder: Option<Box<dyn Recorder>>,
    clock: Option<Arc<dyn Clock>>,
    parallelism: usize,
    incremental_moments: bool,
    incremental_stats: bool,
    emd_stride: u32,
}

impl FicsumBuilder {
    /// Builder for a stream with `n_features` inputs and `n_classes` labels.
    pub fn new(n_features: usize, n_classes: usize) -> Self {
        Self {
            n_features,
            n_classes,
            config: FicsumConfig::default(),
            variant: Variant::Full,
            factory: None,
            recorder: None,
            clock: None,
            parallelism: 1,
            incremental_moments: false,
            incremental_stats: false,
            emd_stride: 1,
        }
    }

    /// Sets the hyper-parameters.
    pub fn config(mut self, config: FicsumConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the meta-information variant.
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Overrides the per-concept classifier factory (default: Hoeffding
    /// tree, the paper's choice).
    pub fn classifier_factory(mut self, factory: Box<dyn ClassifierFactory>) -> Self {
        self.factory = Some(factory);
        self
    }

    /// Attaches an observability recorder (default:
    /// [`ficsum_obs::NullRecorder`] — zero cost). Keep a shared handle
    /// ([`ficsum_obs::shared`]) to read signals back after the run.
    pub fn recorder(mut self, recorder: Box<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Overrides the span-timing clock (default: a monotonic wall clock;
    /// tests pass a [`ficsum_obs::ManualClock`]).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Number of worker threads the pipeline may use (default 1 =
    /// sequential): the fingerprint engine fans behaviour sources across
    /// them during extraction, and the recurrence scan at drift fans stored
    /// concepts across them. Both parallel paths are bit-identical to
    /// sequential, so this only changes wall-clock behaviour.
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// Lets the engine substitute the window's incremental moments for the
    /// batch moment sweep (O(1) per observation, ≤ 1e-9 relative
    /// difference). Off by default because drift trajectories are feedback
    /// loops: bit-exactness keeps them reproducible against the reference
    /// path.
    pub fn incremental_moments(mut self, on: bool) -> Self {
        self.incremental_moments = on;
        self
    }

    /// Extends the incremental substitution from the moments to the full
    /// per-window statistic set: ACF/PACF at lags 1–2 from rolling centered
    /// cross-sums, lagged mutual information from an add/remove joint
    /// histogram, the turning-point rate from an exact counter — all O(1)
    /// per observation — plus content-hash reuse of IMF entropies. Implies
    /// [`FicsumBuilder::incremental_moments`]. Substituted values agree
    /// with the batch sweep to ≤ 1e-9 relative (MI and turning points are
    /// bit-identical); off by default for the same reproducibility reason.
    pub fn incremental_stats(mut self, on: bool) -> Self {
        self.incremental_stats = on;
        self
    }

    /// Bounds how often IMF entropies are re-sifted when
    /// [`FicsumBuilder::incremental_stats`] is on: a changed window
    /// re-computes them at most every `stride`-th extraction per source
    /// (default 1 = on every change, faithful to the batch values; larger
    /// strides trade bounded staleness for a proportional cut in EMD cost).
    pub fn emd_stride(mut self, stride: u32) -> Self {
        self.emd_stride = stride.max(1);
        self
    }

    /// Builds the framework instance.
    ///
    /// Fails with a [`ConfigError`] if the hyper-parameters are invalid
    /// (see [`FicsumConfig::validate`]) or the variant's extractor disagrees
    /// with the stream's feature count.
    pub fn build(self) -> Result<Ficsum, ConfigError> {
        let (nf, nc) = (self.n_features, self.n_classes);
        let factory = self.factory.unwrap_or_else(|| {
            Box::new(move || Box::new(HoeffdingTree::new(nf, nc)) as Box<dyn Classifier>)
        });
        let mut ficsum = Ficsum::from_parts(
            self.n_features,
            self.n_classes,
            self.config,
            self.variant.extractor(self.n_features),
            factory,
        )?;
        // Clock first: attaching a recorder snapshots it into the engine.
        if let Some(clock) = self.clock {
            ficsum.attach_clock(clock);
        }
        if let Some(recorder) = self.recorder {
            ficsum.attach_recorder(recorder);
        }
        if self.parallelism != 1 {
            ficsum.configure_parallelism(self.parallelism);
        }
        if self.incremental_moments {
            ficsum.configure_incremental_moments(true);
        }
        if self.incremental_stats {
            ficsum.configure_incremental_stats(true);
        }
        if self.emd_stride != 1 {
            ficsum.configure_emd_stride(self.emd_stride);
        }
        Ok(ficsum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_are_stable() {
        assert_eq!(Variant::Full.name(), "FiCSUM");
        assert_eq!(Variant::ErrorRate.name(), "ER");
        assert_eq!(Variant::SingleFunction(MetaFunction::Skew).name(), "fn:skew");
    }

    #[test]
    fn extractor_dimensions_per_variant() {
        assert_eq!(Variant::Full.extractor(4).schema().len(), 12 * 8 + 4);
        assert_eq!(Variant::ErrorRate.extractor(4).schema().len(), 1);
        assert_eq!(Variant::Supervised.extractor(4).schema().len(), 12 * 4);
        assert_eq!(Variant::Unsupervised.extractor(4).schema().len(), 12 * 4);
        assert_eq!(
            Variant::SingleFunction(MetaFunction::Mean).extractor(4).schema().len(),
            8
        );
    }

    #[test]
    fn builder_produces_runnable_instances() {
        for v in [Variant::Full, Variant::ErrorRate, Variant::Supervised, Variant::Unsupervised] {
            let mut f = FicsumBuilder::new(2, 2).variant(v).build().unwrap();
            for i in 0..100 {
                f.process(&[i as f64 * 0.01, 0.5], i % 2);
            }
            assert_eq!(f.n_classes(), 2);
        }
    }
}
