//! Weighted cosine similarity between fingerprint vectors (Section III-B).

/// Weighted cosine similarity:
///
/// `Sim(a, b, w) = (wa . wb) / (||wa|| ||wb||)` with `wa_i = w_i a_i`.
///
/// Degenerate cases: two zero vectors are identical (similarity 1); one zero
/// vector is maximally dissimilar (0). With non-negative inputs (FiCSUM
/// fingerprints are normalised to `[0, 1]`) the result lies in `[0, 1]`.
pub fn weighted_cosine(a: &[f64], b: &[f64], weights: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), weights.len());
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for ((&x, &y), &w) in a.iter().zip(b).zip(weights) {
        let (wx, wy) = (w * x, w * y);
        dot += wx * wy;
        na += wx * wx;
        nb += wy * wy;
    }
    if na <= 0.0 && nb <= 0.0 {
        return 1.0;
    }
    if na <= 0.0 || nb <= 0.0 {
        return 0.0;
    }
    (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
}

/// Unweighted cosine similarity (all weights 1).
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let ones = vec![1.0; a.len()];
    weighted_cosine(a, b, &ones)
}

/// Fingerprint similarity used throughout FiCSUM.
///
/// Multi-dimensional fingerprints use the weighted cosine. A univariate
/// fingerprint (the ER variant) would make cosine degenerate — any two
/// positive scalars are perfectly "aligned" — so the paper's univariate
/// fallback is used instead: the complement of the absolute difference
/// (Section II's "inverse absolute difference", bounded to `[0, 1]` for
/// normalised inputs).
pub fn fingerprint_similarity(a: &[f64], b: &[f64], weights: &[f64]) -> f64 {
    if a.len() == 1 {
        (1.0 - (a[0] - b[0]).abs()).clamp(0.0, 1.0)
    } else {
        weighted_cosine(a, b, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_similarity_one() {
        let v = [0.3, 0.7, 0.1];
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_vectors_have_similarity_zero() {
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
    }

    #[test]
    fn scale_invariance() {
        let a = [0.2, 0.4, 0.6];
        let b = [0.4, 0.8, 1.2];
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_change_the_verdict() {
        // a and b agree on dim 0, disagree on dim 1.
        let a = [1.0, 1.0];
        let b = [1.0, 0.0];
        let favour_agreeing = weighted_cosine(&a, &b, &[10.0, 0.1]);
        let favour_disagreeing = weighted_cosine(&a, &b, &[0.1, 10.0]);
        assert!(favour_agreeing > 0.99);
        assert!(favour_disagreeing < 0.2);
    }

    #[test]
    fn zero_weight_dims_are_ignored() {
        let a = [0.5, 123.0];
        let b = [0.5, -55.0];
        assert!((weighted_cosine(&a, &b, &[1.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_vectors() {
        assert_eq!(cosine(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn univariate_similarity_is_distance_based() {
        assert!((fingerprint_similarity(&[0.3], &[0.3], &[1.0]) - 1.0).abs() < 1e-12);
        assert!((fingerprint_similarity(&[0.2], &[0.7], &[1.0]) - 0.5).abs() < 1e-12);
        assert_eq!(fingerprint_similarity(&[0.0], &[1.0], &[1.0]), 0.0);
        // With >= 2 dims it's the weighted cosine.
        let s = fingerprint_similarity(&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]);
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn bounded_for_nonnegative_inputs() {
        let a = [0.1, 0.9, 0.5, 0.3];
        let b = [0.8, 0.2, 0.4, 0.6];
        let w = [2.0, 0.5, 1.5, 3.0];
        let s = weighted_cosine(&a, &b, &w);
        assert!((0.0..=1.0).contains(&s));
    }
}
