//! Weighted cosine similarity between fingerprint vectors (Section III-B).

use crate::fingerprint::{ConceptFingerprint, FingerprintNormalizer};

/// Weighted cosine similarity:
///
/// `Sim(a, b, w) = (wa . wb) / (||wa|| ||wb||)` with `wa_i = w_i a_i`.
///
/// Degenerate cases: two zero vectors are identical (similarity 1); one zero
/// vector is maximally dissimilar (0). With non-negative inputs (FiCSUM
/// fingerprints are normalised to `[0, 1]`) the result lies in `[0, 1]`.
pub fn weighted_cosine(a: &[f64], b: &[f64], weights: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), weights.len());
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for ((&x, &y), &w) in a.iter().zip(b).zip(weights) {
        let (wx, wy) = (w * x, w * y);
        dot += wx * wy;
        na += wx * wx;
        nb += wy * wy;
    }
    if na <= 0.0 && nb <= 0.0 {
        return 1.0;
    }
    if na <= 0.0 || nb <= 0.0 {
        return 0.0;
    }
    (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
}

/// Unweighted cosine similarity (all weights 1).
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let ones = vec![1.0; a.len()];
    weighted_cosine(a, b, &ones)
}

/// [`fingerprint_similarity`] with unit weights, without materialising the
/// ones vector. Bit-identical to passing `&[1.0; n]`: IEEE 754 multiplication
/// by 1.0 is exact, so `wx = 1.0 * x` has the very bits of `x`.
pub fn fingerprint_similarity_unit(a: &[f64], b: &[f64]) -> f64 {
    if a.len() == 1 {
        return (1.0 - (a[0] - b[0]).abs()).clamp(0.0, 1.0);
    }
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na <= 0.0 && nb <= 0.0 {
        return 1.0;
    }
    if na <= 0.0 || nb <= 0.0 {
        return 0.0;
    }
    (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
}

/// Cache identity for one prepared fingerprint side:
/// `(weights generation, normaliser version, fingerprint version)`.
/// Unit-weight caches use `0` for the weights generation.
pub type CacheKey = (u64, u64, u64);

/// One pre-scaled, pre-weighted side of the fingerprint similarity.
///
/// Scaling a stored concept's mean vector and folding in the weights costs
/// O(d) per comparison — but between mutations of the fingerprint, the
/// normaliser and the weights, those inputs are *fixed*. This cache keys the
/// prepared side on the three version counters and lets repeated
/// comparisons skip half of [`weighted_cosine`], bit-exactly: the cached
/// accumulators (`wx` products, `Σ wx²`) are built in the same index order
/// as the fused loop, and IEEE 754 addition order is all that determines
/// the bits.
#[derive(Debug, Clone, Default)]
pub struct CachedFingerprint {
    key: Option<CacheKey>,
    /// Scaled mean vector (needed for the univariate fallback).
    scaled: Vec<f64>,
    /// `w_i * scaled_i` per dimension.
    weighted: Vec<f64>,
    /// `Σ (w_i * scaled_i)²` in index order.
    norm_sq: f64,
}

impl CachedFingerprint {
    /// An empty (invalid) cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached side; the next `ensure` recomputes.
    pub fn invalidate(&mut self) {
        self.key = None;
    }

    /// Whether the cache currently holds `key`'s prepared side.
    pub fn is_valid_for(&self, key: CacheKey) -> bool {
        self.key == Some(key)
    }

    /// Prepares `fingerprint`'s side under `normalizer` and `weights`
    /// (`None` = unit weights), unless `key` already matches. `key` must
    /// change whenever any of the three inputs change — the version
    /// counters of the fingerprint and normaliser plus a weights
    /// generation counter provide exactly that.
    pub fn ensure(
        &mut self,
        key: CacheKey,
        fingerprint: &ConceptFingerprint,
        normalizer: &FingerprintNormalizer,
        weights: Option<&[f64]>,
    ) {
        if self.key == Some(key) {
            return;
        }
        fingerprint.mean_into(&mut self.scaled);
        normalizer.scale_in_place(&mut self.scaled);
        self.weighted.clear();
        match weights {
            Some(w) => {
                debug_assert_eq!(w.len(), self.scaled.len());
                self.weighted.extend(self.scaled.iter().zip(w).map(|(&x, &wi)| wi * x));
            }
            None => self.weighted.extend_from_slice(&self.scaled),
        }
        self.norm_sq = self.weighted.iter().map(|&wx| wx * wx).sum();
        self.key = Some(key);
    }

    /// The cached scaled mean vector.
    pub fn scaled(&self) -> &[f64] {
        &self.scaled
    }

    /// Fingerprint similarity of the cached side against an *already
    /// scaled* query vector, with the same weights the cache was prepared
    /// with. Bit-identical to
    /// `fingerprint_similarity(cached_scaled, scaled_query, weights)`:
    /// each accumulator (`dot`, `na`, `nb`) receives the same additions in
    /// the same order as the fused loop, and splitting one loop into
    /// per-accumulator loops cannot change any of them.
    pub fn similarity_scaled(&self, scaled_query: &[f64], weights: Option<&[f64]>) -> f64 {
        debug_assert!(self.key.is_some(), "similarity_scaled before ensure");
        debug_assert_eq!(self.scaled.len(), scaled_query.len());
        if self.scaled.len() == 1 {
            return (1.0 - (self.scaled[0] - scaled_query[0]).abs()).clamp(0.0, 1.0);
        }
        let na = self.norm_sq;
        let mut dot = 0.0;
        let mut nb = 0.0;
        match weights {
            Some(w) => {
                debug_assert_eq!(w.len(), scaled_query.len());
                for ((&wx, &y), &wi) in self.weighted.iter().zip(scaled_query).zip(w) {
                    let wy = wi * y;
                    dot += wx * wy;
                    nb += wy * wy;
                }
            }
            None => {
                for (&wx, &wy) in self.weighted.iter().zip(scaled_query) {
                    dot += wx * wy;
                    nb += wy * wy;
                }
            }
        }
        if na <= 0.0 && nb <= 0.0 {
            return 1.0;
        }
        if na <= 0.0 || nb <= 0.0 {
            return 0.0;
        }
        (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0)
    }
}

/// Fingerprint similarity used throughout FiCSUM.
///
/// Multi-dimensional fingerprints use the weighted cosine. A univariate
/// fingerprint (the ER variant) would make cosine degenerate — any two
/// positive scalars are perfectly "aligned" — so the paper's univariate
/// fallback is used instead: the complement of the absolute difference
/// (Section II's "inverse absolute difference", bounded to `[0, 1]` for
/// normalised inputs).
pub fn fingerprint_similarity(a: &[f64], b: &[f64], weights: &[f64]) -> f64 {
    if a.len() == 1 {
        (1.0 - (a[0] - b[0]).abs()).clamp(0.0, 1.0)
    } else {
        weighted_cosine(a, b, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_similarity_one() {
        let v = [0.3, 0.7, 0.1];
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_vectors_have_similarity_zero() {
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
    }

    #[test]
    fn scale_invariance() {
        let a = [0.2, 0.4, 0.6];
        let b = [0.4, 0.8, 1.2];
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_change_the_verdict() {
        // a and b agree on dim 0, disagree on dim 1.
        let a = [1.0, 1.0];
        let b = [1.0, 0.0];
        let favour_agreeing = weighted_cosine(&a, &b, &[10.0, 0.1]);
        let favour_disagreeing = weighted_cosine(&a, &b, &[0.1, 10.0]);
        assert!(favour_agreeing > 0.99);
        assert!(favour_disagreeing < 0.2);
    }

    #[test]
    fn zero_weight_dims_are_ignored() {
        let a = [0.5, 123.0];
        let b = [0.5, -55.0];
        assert!((weighted_cosine(&a, &b, &[1.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_vectors() {
        assert_eq!(cosine(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn univariate_similarity_is_distance_based() {
        assert!((fingerprint_similarity(&[0.3], &[0.3], &[1.0]) - 1.0).abs() < 1e-12);
        assert!((fingerprint_similarity(&[0.2], &[0.7], &[1.0]) - 0.5).abs() < 1e-12);
        assert_eq!(fingerprint_similarity(&[0.0], &[1.0], &[1.0]), 0.0);
        // With >= 2 dims it's the weighted cosine.
        let s = fingerprint_similarity(&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]);
        assert!(s.abs() < 1e-12);
    }

    /// xorshift64* — deterministic generator for the property test below
    /// (the workspace carries no external proptest dependency).
    struct Rng(u64);

    impl Rng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in [0, 1).
        fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        fn range(&mut self, lo: usize, hi: usize) -> usize {
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }

    /// Property: for every epoch-valid cache, `similarity_scaled` is
    /// bit-identical (0 ULPs) to the uncached [`fingerprint_similarity`]
    /// over the same scaled vectors and weights. 500 randomised cases
    /// sweep dimensionality (including the univariate fallback), weighted
    /// and unit-weight comparisons, degenerate zero vectors and sparse
    /// weights.
    #[test]
    fn cached_similarity_matches_uncached_to_zero_ulps() {
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
        for case in 0..500 {
            let dims = rng.range(1, 24);
            let mut normalizer = FingerprintNormalizer::new(dims);
            let mut fp = ConceptFingerprint::new(dims);
            // Train the normaliser and the stored fingerprint on a few
            // random raw vectors (occasionally all-zero to hit the
            // degenerate branches).
            let zero_side = case % 17 == 0;
            for _ in 0..rng.range(1, 6) {
                let raw: Vec<f64> = (0..dims)
                    .map(|_| if zero_side { 0.0 } else { rng.f64() * 10.0 - 2.0 })
                    .collect();
                normalizer.observe(&raw);
                fp.incorporate(&raw);
            }
            let weights: Option<Vec<f64>> = if case % 3 == 0 {
                None
            } else {
                // Sparse non-negative weights, some exactly zero.
                Some(
                    (0..dims)
                        .map(|_| if rng.f64() < 0.2 { 0.0 } else { rng.f64() * 3.0 })
                        .collect(),
                )
            };
            let mut cache = CachedFingerprint::new();
            cache.ensure((1, normalizer.version(), fp.version()), &fp, &normalizer, weights.as_deref());
            // A batch of queries against the one prepared side exercises
            // cache reuse, not just the first fill.
            for q in 0..4 {
                let raw_q: Vec<f64> = (0..dims)
                    .map(|_| if q == 3 { 0.0 } else { rng.f64() * 10.0 - 2.0 })
                    .collect();
                let scaled_q = normalizer.scale(&raw_q);
                let got = cache.similarity_scaled(&scaled_q, weights.as_deref());
                let scaled_side = normalizer.scale(&fp.mean_vector());
                let ones = vec![1.0; dims];
                let w = weights.as_deref().unwrap_or(&ones);
                let want = fingerprint_similarity(&scaled_side, &scaled_q, w);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "case {case} query {q}: cached {got:e} != uncached {want:e} (dims {dims})"
                );
            }
        }
    }

    #[test]
    fn bounded_for_nonnegative_inputs() {
        let a = [0.1, 0.9, 0.5, 0.3];
        let b = [0.8, 0.2, 0.4, 0.6];
        let w = [2.0, 0.5, 1.5, 3.0];
        let s = weighted_cosine(&a, &b, &w);
        assert!((0.0..=1.0).contains(&s));
    }
}
