//! The concept repository: stored `(fingerprint, classifier, mu, sigma)`
//! tuples tested for recurrence at every drift.

use ficsum_classifiers::Classifier;
use ficsum_stream::EwStats;

use crate::fingerprint::ConceptFingerprint;
use crate::similarity::CachedFingerprint;

/// Identifier of a stored concept. Ids are never reused, so they double as
/// the "model" identity `M` in the C-F1 evaluation.
pub type ConceptId = usize;

/// A retained fingerprint pair with the similarity recorded between them at
/// storage time — used to re-base old similarity records when the dynamic
/// weighting has since changed (Section IV).
#[derive(Debug, Clone)]
pub struct RetainedPair {
    /// First normalised fingerprint of the pair.
    pub a: Vec<f64>,
    /// Second normalised fingerprint of the pair.
    pub b: Vec<f64>,
    /// Similarity between `a` and `b` under the weights at record time.
    pub sim_then: f64,
}

/// Everything stored about one concept.
///
/// `Clone` deep-copies the classifier (via [`Classifier::clone_box`]); the
/// checkpoint subsystem relies on this to capture repository state without
/// serialising live trait objects.
#[derive(Clone)]
pub struct ConceptEntry {
    /// Stable identifier.
    pub id: ConceptId,
    /// The concept fingerprint `F_c` built from *online* (prequential)
    /// predictions — the representation drift detection compares against.
    pub fingerprint: ConceptFingerprint,
    /// The concept fingerprint built from windows *re-predicted* through
    /// the classifier — the representation model selection compares
    /// against. Algorithm 1 computes `F_AS` by re-predicting the query
    /// window (line 29), so the stored side must be built the same way;
    /// the online fingerprint meanwhile must match the online-labelled
    /// windows the detector sees (line 11). One representation cannot be
    /// consistent with both, hence the pair.
    pub sel_fingerprint: ConceptFingerprint,
    /// The classifier `I_c` trained on this concept.
    pub classifier: Box<dyn Classifier>,
    /// Distribution of `Sim(F_c, F_B)` under recent stationary conditions
    /// (`mu_c`, `sigma_c`), exponentially weighted so classifier-training
    /// transients are forgotten.
    pub sim_stats: EwStats,
    /// `F_SC`: the distribution of this classifier's behaviour on windows
    /// drawn from *other* (currently active) concepts — drives the
    /// intra-classifier weight component.
    pub sc_fingerprint: ConceptFingerprint,
    /// Retained pairs for similarity re-basing.
    pub retained: Vec<RetainedPair>,
    /// Timestamp of last activation (for LRU eviction).
    pub last_active: u64,
    /// Cached scaled/weighted side of `sel_fingerprint`'s mean vector,
    /// reused across recurrence scans while fingerprint and normaliser are
    /// unchanged. Pure cache: carries no semantic state.
    pub sel_cache: CachedFingerprint,
}

impl ConceptEntry {
    /// Fresh entry with an untrained fingerprint and the given classifier.
    pub fn new(id: ConceptId, dims: usize, classifier: Box<dyn Classifier>) -> Self {
        Self {
            id,
            fingerprint: ConceptFingerprint::new(dims),
            sel_fingerprint: ConceptFingerprint::new(dims),
            classifier,
            sim_stats: EwStats::default(),
            sc_fingerprint: ConceptFingerprint::new(dims),
            retained: Vec::new(),
            last_active: 0,
            sel_cache: CachedFingerprint::new(),
        }
    }

    /// Records a fingerprint pair for future similarity re-basing, keeping
    /// at most `cap` recent pairs.
    pub fn retain_pair(&mut self, a: Vec<f64>, b: Vec<f64>, sim_then: f64, cap: usize) {
        self.retained.push(RetainedPair { a, b, sim_then });
        if self.retained.len() > cap {
            self.retained.remove(0);
        }
    }
}

/// The repository `R` of stored concept representations.
#[derive(Default, Clone)]
pub struct Repository {
    entries: Vec<ConceptEntry>,
    next_id: ConceptId,
    /// 0 = unbounded.
    max_entries: usize,
    /// Bumped on every membership change (insert, take, remove); part of
    /// the epoch key gating dynamic-weight recomputation.
    version: u64,
}

impl Repository {
    /// Repository bounded to `max_entries` concepts (0 = unbounded).
    pub fn new(max_entries: usize) -> Self {
        Self { entries: Vec::new(), next_id: 0, max_entries, version: 0 }
    }

    /// Monotone membership-mutation counter.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// A single fingerprint of everything the dynamic weighting reads from
    /// the repository: membership plus each entry's fingerprint and
    /// `F_SC` versions, FNV-folded in entry order. Two equal stamps (with
    /// an unchanged active fingerprint and normaliser) guarantee
    /// [`crate::weights::DynamicWeights::compute`] would return identical
    /// values.
    pub fn weights_stamp(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        fold(self.version);
        for e in &self.entries {
            fold(e.id as u64 + 1);
            fold(e.fingerprint.version());
            fold(e.sc_fingerprint.version());
        }
        h
    }

    /// Allocates the next concept id.
    pub fn allocate_id(&mut self) -> ConceptId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Inserts (or replaces) an entry, evicting the least-recently-active
    /// stored concept when the bound is exceeded. Returns the id of the
    /// evicted concept, if any.
    ///
    /// Ids must stay stable across a take/insert round trip (a concept that
    /// leaves the repository while active and returns later keeps its
    /// identity for C-F1), so inserting never renumbers — instead the
    /// allocator is advanced past `entry.id`, ensuring an externally
    /// constructed entry can never collide with a later [`Repository::allocate_id`].
    pub fn insert(&mut self, entry: ConceptEntry) -> Option<ConceptId> {
        self.version += 1;
        self.next_id = self.next_id.max(entry.id + 1);
        if let Some(pos) = self.entries.iter().position(|e| e.id == entry.id) {
            self.entries[pos] = entry;
        } else {
            self.entries.push(entry);
        }
        if self.max_entries > 0 && self.entries.len() > self.max_entries {
            if let Some((pos, _)) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_active)
            {
                return Some(self.entries.remove(pos).id);
            }
        }
        None
    }

    /// Removes and returns the entry with `id`.
    pub fn take(&mut self, id: ConceptId) -> Option<ConceptEntry> {
        let pos = self.entries.iter().position(|e| e.id == id)?;
        self.version += 1;
        Some(self.entries.remove(pos))
    }

    /// Removes the entry with `id`, dropping it.
    pub fn remove(&mut self, id: ConceptId) -> bool {
        self.take(id).is_some()
    }

    /// Immutable entry access.
    pub fn get(&self, id: ConceptId) -> Option<&ConceptEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Mutable entry access.
    pub fn get_mut(&mut self, id: ConceptId) -> Option<&mut ConceptEntry> {
        self.entries.iter_mut().find(|e| e.id == id)
    }

    /// Iterates over stored entries.
    pub fn iter(&self) -> impl Iterator<Item = &ConceptEntry> {
        self.entries.iter()
    }

    /// Iterates mutably over stored entries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut ConceptEntry> {
        self.entries.iter_mut()
    }

    /// Number of stored concepts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_classifiers::MajorityClass;

    fn entry(repo: &mut Repository, last_active: u64) -> ConceptId {
        let id = repo.allocate_id();
        let mut e = ConceptEntry::new(id, 4, Box::new(MajorityClass::new(2, 2)));
        e.last_active = last_active;
        repo.insert(e);
        id
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut r = Repository::new(0);
        let a = entry(&mut r, 0);
        let b = entry(&mut r, 1);
        assert!(b > a);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn insert_replaces_same_id() {
        let mut r = Repository::new(0);
        let id = entry(&mut r, 0);
        let mut e2 = ConceptEntry::new(id, 4, Box::new(MajorityClass::new(2, 2)));
        e2.last_active = 99;
        r.insert(e2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(id).unwrap().last_active, 99);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut r = Repository::new(2);
        let old = entry(&mut r, 1);
        let mid = entry(&mut r, 5);
        let id = r.allocate_id();
        let mut e = ConceptEntry::new(id, 4, Box::new(MajorityClass::new(2, 2)));
        e.last_active = 9;
        let evicted = r.insert(e);
        assert_eq!(r.len(), 2);
        assert_eq!(evicted, Some(old), "insert must report the evicted id");
        assert!(r.get(old).is_none(), "oldest must be evicted");
        assert!(r.get(mid).is_some());
        assert!(r.get(id).is_some());
    }

    #[test]
    fn insert_advances_the_allocator_past_manual_ids() {
        let mut r = Repository::new(0);
        // An entry constructed without going through allocate_id.
        r.insert(ConceptEntry::new(7, 4, Box::new(MajorityClass::new(2, 2))));
        let next = r.allocate_id();
        assert!(next > 7, "allocate_id must never reissue a stored id, got {next}");
    }

    #[test]
    fn id_survives_take_and_reinsert() {
        let mut r = Repository::new(0);
        let id = entry(&mut r, 3);
        let _churn = entry(&mut r, 4);
        let e = r.take(id).expect("present");
        assert_eq!(e.id, id);
        r.insert(e);
        assert_eq!(r.get(id).map(|e| e.id), Some(id));
        assert!(r.allocate_id() > id);
    }

    #[test]
    fn take_removes_entry() {
        let mut r = Repository::new(0);
        let id = entry(&mut r, 0);
        let e = r.take(id).expect("present");
        assert_eq!(e.id, id);
        assert!(r.is_empty());
        assert!(r.take(id).is_none());
    }

    #[test]
    fn retained_pairs_are_capped() {
        let mut e = ConceptEntry::new(0, 2, Box::new(MajorityClass::new(1, 2)));
        for i in 0..10 {
            e.retain_pair(vec![i as f64], vec![i as f64], 1.0, 3);
        }
        assert_eq!(e.retained.len(), 3);
        assert_eq!(e.retained[0].a, vec![7.0]);
    }
}
