//! FiCSUM — Fingerprinting with Combined Supervised and Unsupervised
//! Meta-Information (Halstead et al., ICDE 2021).
//!
//! The framework represents every *concept* in a data stream as a
//! **concept fingerprint**: the online distribution (mean, standard
//! deviation, count) of each meta-information feature over the windows drawn
//! from that concept. A weighted cosine similarity between the current
//! concept fingerprint and fingerprints of recent windows drives:
//!
//! * **drift detection** — ADWIN monitors the similarity stream and alerts
//!   when recent observations stop resembling the active concept,
//! * **model selection** — after a drift, stored concepts are tested for
//!   recurrence; matching concepts have their classifier *reused*,
//!   transferring knowledge across stream segments.
//!
//! Weights are learned online per dataset (Section III-B): a scale component
//! `w_sigma = 1/sigma` puts dimensions on comparable footing, and a
//! discrimination component `w_d` (Fisher-score style, the max of
//! inter-concept and intra-classifier variation) emphasises the
//! meta-features that actually separate this dataset's concepts.
//!
//! Entry point: [`Ficsum`], usually built through [`variant::FicsumBuilder`].

pub mod checkpoint;
pub mod config;
pub mod fingerprint;
pub mod framework;
pub mod repository;
pub mod similarity;
pub mod template;
pub mod variant;
pub mod weights;

pub use checkpoint::{RestoreError, SessionCheckpoint};
pub use config::{ConfigError, FicsumConfig};
pub use fingerprint::{ConceptFingerprint, FingerprintNormalizer};
pub use framework::{Ficsum, FicsumStats, StepOutcome};
pub use repository::{ConceptEntry, ConceptId, Repository};
pub use similarity::{cosine, fingerprint_similarity, weighted_cosine};
pub use template::SessionTemplate;
pub use variant::{FicsumBuilder, Variant};
pub use weights::DynamicWeights;
