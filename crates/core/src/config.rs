//! FiCSUM hyper-parameters and their validation.

use std::fmt;

/// A rejected [`FicsumConfig`] (or mismatched framework parts).
///
/// Returned by [`FicsumConfig::validate`] and propagated by
/// `Ficsum::from_parts` / `FicsumBuilder::build` so callers can surface
/// configuration mistakes instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `window_size` below the minimum of 10 observations.
    WindowTooSmall,
    /// `buffer_ratio` outside `(0, 2]`.
    BufferRatioOutOfRange,
    /// `fingerprint_gap` of zero.
    ZeroFingerprintGap,
    /// `repository_gap` of zero.
    ZeroRepositoryGap,
    /// `detector_delta` outside `(0, 1)`.
    DetectorDeltaOutOfRange,
    /// `accept_sigma` not positive.
    NonPositiveAcceptSigma,
    /// `sigma_floor` not positive.
    NonPositiveSigmaFloor,
    /// `sim_sigma_floor` not positive.
    NonPositiveSimSigmaFloor,
    /// `sim_alpha` outside `(0, 1]`.
    SimAlphaOutOfRange,
    /// `deviation_clamp` not exceeding 1.
    DeviationClampTooSmall,
    /// `hard_z` not exceeding 1.
    HardZTooSmall,
    /// `outlier_z` not exceeding 1.
    OutlierZTooSmall,
    /// `hard_consecutive` of zero.
    ZeroHardConsecutive,
    /// Extractor feature count disagreeing with the stream's feature count
    /// (raised by `Ficsum::from_parts`).
    FeatureCountMismatch {
        /// Feature count declared for the stream.
        stream: usize,
        /// Feature count the extractor was built for.
        extractor: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::WindowTooSmall => write!(f, "window_size must be at least 10"),
            ConfigError::BufferRatioOutOfRange => write!(f, "buffer_ratio must be in (0, 2]"),
            ConfigError::ZeroFingerprintGap => write!(f, "fingerprint_gap must be >= 1"),
            ConfigError::ZeroRepositoryGap => write!(f, "repository_gap must be >= 1"),
            ConfigError::DetectorDeltaOutOfRange => {
                write!(f, "detector_delta must be in (0, 1)")
            }
            ConfigError::NonPositiveAcceptSigma => write!(f, "accept_sigma must be positive"),
            ConfigError::NonPositiveSigmaFloor => write!(f, "sigma_floor must be positive"),
            ConfigError::NonPositiveSimSigmaFloor => {
                write!(f, "sim_sigma_floor must be positive")
            }
            ConfigError::SimAlphaOutOfRange => write!(f, "sim_alpha must be in (0, 1]"),
            ConfigError::DeviationClampTooSmall => write!(f, "deviation_clamp must exceed 1"),
            ConfigError::HardZTooSmall => write!(f, "hard_z must exceed 1"),
            ConfigError::OutlierZTooSmall => write!(f, "outlier_z must exceed 1"),
            ConfigError::ZeroHardConsecutive => write!(f, "hard_consecutive must be >= 1"),
            ConfigError::FeatureCountMismatch { stream, extractor } => write!(
                f,
                "extractor built for {extractor} features but the stream has {stream}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Hyper-parameters of the FiCSUM framework (Algorithm 1).
///
/// Defaults follow the paper's tuned values (Section VI-2): `w = 75`,
/// buffer ratio `0.25`, `P_C = 3`, `P_S = 25`.
///
/// The struct is `#[non_exhaustive]`: construct it as
/// `FicsumConfig::default()` refined through the `with_*` setters (fields
/// stay `pub`, so reading — and in-place mutation before the config is
/// handed to a builder — keeps working). New knobs can then be added
/// without breaking downstream construction sites.
///
/// ```
/// use ficsum_core::FicsumConfig;
/// let c = FicsumConfig::default().with_window_size(50).with_fingerprint_gap(5);
/// assert_eq!(c.window_size, 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct FicsumConfig {
    /// Window size `w`: length of both the active window `A` and the stale
    /// buffer window `B`.
    pub window_size: usize,
    /// Buffer ratio: the buffer delay is `b = ceil(window_size * ratio)`,
    /// bounding the assumed drift-detection delay.
    pub buffer_ratio: f64,
    /// Gap `P_C` between fingerprint updates (drift checks).
    pub fingerprint_gap: usize,
    /// Gap `P_S` between repository (non-active) fingerprint updates used by
    /// the intra-classifier weight component.
    pub repository_gap: usize,
    /// ADWIN confidence for the similarity drift detector. The detector
    /// runs on the *standardised* similarity stream, whose stationary
    /// variance is tame, so a larger delta than ADWIN's usual 0.002 is
    /// appropriate; false alarms are cheap because model selection re-accepts
    /// the incumbent concept.
    pub detector_delta: f64,
    /// Exponential-forgetting factor of the recorded similarity
    /// distribution (mu_c, sigma_c). Larger = adapts faster, forgets the
    /// classifier-training transient sooner.
    pub sim_alpha: f64,
    /// Acceptance band width in standard deviations: a stored concept is a
    /// recurrence candidate when its similarity is within
    /// `accept_sigma * sigma` of its recorded mean (paper: 2).
    pub accept_sigma: f64,
    /// Floor on per-dimension standard deviation when computing
    /// `w_sigma = 1/sigma` (fingerprint values are normalised to [0, 1]).
    pub sigma_floor: f64,
    /// Floor on the standard deviation of the recorded similarity
    /// distribution when standardising the detector input.
    pub sim_sigma_floor: f64,
    /// Clamp (in standard deviations) on the standardised similarity fed to
    /// the drift detector. Cosine similarity over many non-negative
    /// dimensions is compressed near 1, so the detector monitors the
    /// *deviation from the recorded normal similarity* `(sim - mu_c) /
    /// sigma_c` — the quantity FiCSUM stores `mu_c`/`sigma_c` for — rather
    /// than the raw value.
    pub deviation_clamp: f64,
    /// Hard drift trigger: a deviation beyond `hard_z` standard deviations
    /// observed on `hard_consecutive` consecutive checks fires a drift
    /// immediately. This catches the short, sharp similarity dips a fast-
    /// adapting classifier produces, which are over before ADWIN's bound can
    /// cut; it operationalises the paper's "similarity significantly
    /// different to normal" (mu ± k sigma) directly.
    pub hard_z: f64,
    /// Consecutive extreme checks required by the hard trigger.
    pub hard_consecutive: u32,
    /// Outlier threshold (in standard deviations) above which a buffer
    /// window is *not* absorbed into the concept fingerprint or the
    /// similarity baseline. Lower than `hard_z`: absorption is conservative
    /// about concept purity, detection is balanced. Twenty consecutive
    /// skipped windows escalate to a drift.
    pub outlier_z: f64,
    /// Drift-check suppression after a *new* concept is created, in
    /// observations. A brand-new classifier changes behaviour rapidly while
    /// it bootstraps, which looks exactly like drift; checks resume once it
    /// has had this long to settle (reused concepts only get the short
    /// `w + b` window-turnover cooldown).
    pub new_concept_grace: usize,
    /// Maximum stored concepts; 0 = unbounded. When full, the least recently
    /// used concept is evicted.
    pub max_repository: usize,
    /// Whether to run the delayed second model-selection pass `w`
    /// observations after each drift (Section III-A).
    pub second_check: bool,
    /// Whether classifier growth events reset supervised meta-feature
    /// distributions (fingerprint plasticity, Section IV).
    pub plasticity: bool,
    /// Whether similarity records are re-based through retained fingerprint
    /// pairs when weights have moved (Section IV).
    pub rebase_similarity: bool,
}

impl Default for FicsumConfig {
    fn default() -> Self {
        Self {
            window_size: 75,
            buffer_ratio: 0.25,
            fingerprint_gap: 3,
            repository_gap: 25,
            detector_delta: 0.05,
            sim_alpha: 0.1,
            accept_sigma: 2.0,
            sigma_floor: 0.01,
            sim_sigma_floor: 0.002,
            deviation_clamp: 8.0,
            hard_z: 5.0,
            hard_consecutive: 3,
            outlier_z: 3.0,
            new_concept_grace: 300,
            max_repository: 0,
            second_check: true,
            plasticity: true,
            rebase_similarity: true,
        }
    }
}

macro_rules! with_setters {
    ($($(#[$doc:meta])* $with:ident: $field:ident: $ty:ty;)*) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $with(mut self, value: $ty) -> Self {
                self.$field = value;
                self
            }
        )*
    };
}

impl FicsumConfig {
    with_setters! {
        /// Returns the config with `window_size` replaced.
        with_window_size: window_size: usize;
        /// Returns the config with `buffer_ratio` replaced.
        with_buffer_ratio: buffer_ratio: f64;
        /// Returns the config with `fingerprint_gap` replaced.
        with_fingerprint_gap: fingerprint_gap: usize;
        /// Returns the config with `repository_gap` replaced.
        with_repository_gap: repository_gap: usize;
        /// Returns the config with `detector_delta` replaced.
        with_detector_delta: detector_delta: f64;
        /// Returns the config with `sim_alpha` replaced.
        with_sim_alpha: sim_alpha: f64;
        /// Returns the config with `accept_sigma` replaced.
        with_accept_sigma: accept_sigma: f64;
        /// Returns the config with `sigma_floor` replaced.
        with_sigma_floor: sigma_floor: f64;
        /// Returns the config with `sim_sigma_floor` replaced.
        with_sim_sigma_floor: sim_sigma_floor: f64;
        /// Returns the config with `deviation_clamp` replaced.
        with_deviation_clamp: deviation_clamp: f64;
        /// Returns the config with `hard_z` replaced.
        with_hard_z: hard_z: f64;
        /// Returns the config with `hard_consecutive` replaced.
        with_hard_consecutive: hard_consecutive: u32;
        /// Returns the config with `outlier_z` replaced.
        with_outlier_z: outlier_z: f64;
        /// Returns the config with `new_concept_grace` replaced.
        with_new_concept_grace: new_concept_grace: usize;
        /// Returns the config with `max_repository` replaced.
        with_max_repository: max_repository: usize;
        /// Returns the config with `second_check` replaced.
        with_second_check: second_check: bool;
        /// Returns the config with `plasticity` replaced.
        with_plasticity: plasticity: bool;
        /// Returns the config with `rebase_similarity` replaced.
        with_rebase_similarity: rebase_similarity: bool;
    }

    /// The buffer delay `b` implied by the window size and buffer ratio.
    pub fn buffer_delay(&self) -> usize {
        ((self.window_size as f64 * self.buffer_ratio).ceil() as usize).max(1)
    }

    /// Validates parameter sanity, reporting the first violated invariant.
    ///
    /// The negated comparisons are deliberate: `!(x > 0.0)` rejects NaN
    /// along with non-positive values, which `x <= 0.0` would silently
    /// accept.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.window_size < 10 {
            return Err(ConfigError::WindowTooSmall);
        }
        if !(self.buffer_ratio > 0.0 && self.buffer_ratio <= 2.0) {
            return Err(ConfigError::BufferRatioOutOfRange);
        }
        if self.fingerprint_gap < 1 {
            return Err(ConfigError::ZeroFingerprintGap);
        }
        if self.repository_gap < 1 {
            return Err(ConfigError::ZeroRepositoryGap);
        }
        if !(self.detector_delta > 0.0 && self.detector_delta < 1.0) {
            return Err(ConfigError::DetectorDeltaOutOfRange);
        }
        if !(self.accept_sigma > 0.0) {
            return Err(ConfigError::NonPositiveAcceptSigma);
        }
        if !(self.sigma_floor > 0.0) {
            return Err(ConfigError::NonPositiveSigmaFloor);
        }
        if !(self.sim_sigma_floor > 0.0) {
            return Err(ConfigError::NonPositiveSimSigmaFloor);
        }
        if !(self.sim_alpha > 0.0 && self.sim_alpha <= 1.0) {
            return Err(ConfigError::SimAlphaOutOfRange);
        }
        if !(self.deviation_clamp > 1.0) {
            return Err(ConfigError::DeviationClampTooSmall);
        }
        if !(self.hard_z > 1.0) {
            return Err(ConfigError::HardZTooSmall);
        }
        if !(self.outlier_z > 1.0) {
            return Err(ConfigError::OutlierZTooSmall);
        }
        if self.hard_consecutive < 1 {
            return Err(ConfigError::ZeroHardConsecutive);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FicsumConfig::default();
        assert_eq!(c.window_size, 75);
        assert_eq!(c.fingerprint_gap, 3);
        assert_eq!(c.repository_gap, 25);
        assert!((c.buffer_ratio - 0.25).abs() < 1e-12);
        assert_eq!(c.buffer_delay(), 19); // ceil(75 * 0.25)
        assert_eq!(c.validate(), Ok(()));
    }

    /// Every invalid-config arm maps to its dedicated error variant.
    #[test]
    fn each_invalid_arm_reports_its_error() {
        let base = FicsumConfig::default;
        let cases: Vec<(FicsumConfig, ConfigError)> = vec![
            (FicsumConfig { window_size: 2, ..base() }, ConfigError::WindowTooSmall),
            (FicsumConfig { buffer_ratio: 0.0, ..base() }, ConfigError::BufferRatioOutOfRange),
            (FicsumConfig { buffer_ratio: 2.5, ..base() }, ConfigError::BufferRatioOutOfRange),
            (
                FicsumConfig { buffer_ratio: f64::NAN, ..base() },
                ConfigError::BufferRatioOutOfRange,
            ),
            (FicsumConfig { fingerprint_gap: 0, ..base() }, ConfigError::ZeroFingerprintGap),
            (FicsumConfig { repository_gap: 0, ..base() }, ConfigError::ZeroRepositoryGap),
            (
                FicsumConfig { detector_delta: 0.0, ..base() },
                ConfigError::DetectorDeltaOutOfRange,
            ),
            (
                FicsumConfig { detector_delta: 1.0, ..base() },
                ConfigError::DetectorDeltaOutOfRange,
            ),
            (FicsumConfig { accept_sigma: 0.0, ..base() }, ConfigError::NonPositiveAcceptSigma),
            (FicsumConfig { sigma_floor: -1.0, ..base() }, ConfigError::NonPositiveSigmaFloor),
            (
                FicsumConfig { sim_sigma_floor: 0.0, ..base() },
                ConfigError::NonPositiveSimSigmaFloor,
            ),
            (FicsumConfig { sim_alpha: 0.0, ..base() }, ConfigError::SimAlphaOutOfRange),
            (FicsumConfig { sim_alpha: 1.5, ..base() }, ConfigError::SimAlphaOutOfRange),
            (
                FicsumConfig { deviation_clamp: 1.0, ..base() },
                ConfigError::DeviationClampTooSmall,
            ),
            (FicsumConfig { hard_z: 0.5, ..base() }, ConfigError::HardZTooSmall),
            (FicsumConfig { outlier_z: 1.0, ..base() }, ConfigError::OutlierZTooSmall),
            (FicsumConfig { hard_consecutive: 0, ..base() }, ConfigError::ZeroHardConsecutive),
        ];
        for (config, expected) in cases {
            assert_eq!(config.validate(), Err(expected), "{expected:?}");
        }
    }

    #[test]
    fn with_setters_replace_exactly_one_field() {
        let c = FicsumConfig::default()
            .with_window_size(50)
            .with_fingerprint_gap(5)
            .with_repository_gap(50)
            .with_max_repository(3)
            .with_second_check(false);
        assert_eq!(c.window_size, 50);
        assert_eq!(c.fingerprint_gap, 5);
        assert_eq!(c.repository_gap, 50);
        assert_eq!(c.max_repository, 3);
        assert!(!c.second_check);
        // Untouched fields keep their defaults.
        let d = FicsumConfig::default();
        assert_eq!(c.buffer_ratio, d.buffer_ratio);
        assert_eq!(c.detector_delta, d.detector_delta);
        assert_eq!(c.plasticity, d.plasticity);
    }

    #[test]
    fn errors_display_a_description() {
        let msg = ConfigError::WindowTooSmall.to_string();
        assert!(msg.contains("window_size"), "{msg}");
        let msg = ConfigError::FeatureCountMismatch { stream: 3, extractor: 5 }.to_string();
        assert!(msg.contains('3') && msg.contains('5'), "{msg}");
    }
}
