//! FiCSUM hyper-parameters.

/// Hyper-parameters of the FiCSUM framework (Algorithm 1).
///
/// Defaults follow the paper's tuned values (Section VI-2): `w = 75`,
/// buffer ratio `0.25`, `P_C = 3`, `P_S = 25`.
#[derive(Debug, Clone, Copy)]
pub struct FicsumConfig {
    /// Window size `w`: length of both the active window `A` and the stale
    /// buffer window `B`.
    pub window_size: usize,
    /// Buffer ratio: the buffer delay is `b = ceil(window_size * ratio)`,
    /// bounding the assumed drift-detection delay.
    pub buffer_ratio: f64,
    /// Gap `P_C` between fingerprint updates (drift checks).
    pub fingerprint_gap: usize,
    /// Gap `P_S` between repository (non-active) fingerprint updates used by
    /// the intra-classifier weight component.
    pub repository_gap: usize,
    /// ADWIN confidence for the similarity drift detector. The detector
    /// runs on the *standardised* similarity stream, whose stationary
    /// variance is tame, so a larger delta than ADWIN's usual 0.002 is
    /// appropriate; false alarms are cheap because model selection re-accepts
    /// the incumbent concept.
    pub detector_delta: f64,
    /// Exponential-forgetting factor of the recorded similarity
    /// distribution (mu_c, sigma_c). Larger = adapts faster, forgets the
    /// classifier-training transient sooner.
    pub sim_alpha: f64,
    /// Acceptance band width in standard deviations: a stored concept is a
    /// recurrence candidate when its similarity is within
    /// `accept_sigma * sigma` of its recorded mean (paper: 2).
    pub accept_sigma: f64,
    /// Floor on per-dimension standard deviation when computing
    /// `w_sigma = 1/sigma` (fingerprint values are normalised to [0, 1]).
    pub sigma_floor: f64,
    /// Floor on the standard deviation of the recorded similarity
    /// distribution when standardising the detector input.
    pub sim_sigma_floor: f64,
    /// Clamp (in standard deviations) on the standardised similarity fed to
    /// the drift detector. Cosine similarity over many non-negative
    /// dimensions is compressed near 1, so the detector monitors the
    /// *deviation from the recorded normal similarity* `(sim - mu_c) /
    /// sigma_c` — the quantity FiCSUM stores `mu_c`/`sigma_c` for — rather
    /// than the raw value.
    pub deviation_clamp: f64,
    /// Hard drift trigger: a deviation beyond `hard_z` standard deviations
    /// observed on `hard_consecutive` consecutive checks fires a drift
    /// immediately. This catches the short, sharp similarity dips a fast-
    /// adapting classifier produces, which are over before ADWIN's bound can
    /// cut; it operationalises the paper's "similarity significantly
    /// different to normal" (mu ± k sigma) directly.
    pub hard_z: f64,
    /// Consecutive extreme checks required by the hard trigger.
    pub hard_consecutive: u32,
    /// Outlier threshold (in standard deviations) above which a buffer
    /// window is *not* absorbed into the concept fingerprint or the
    /// similarity baseline. Lower than `hard_z`: absorption is conservative
    /// about concept purity, detection is balanced. Twenty consecutive
    /// skipped windows escalate to a drift.
    pub outlier_z: f64,
    /// Drift-check suppression after a *new* concept is created, in
    /// observations. A brand-new classifier changes behaviour rapidly while
    /// it bootstraps, which looks exactly like drift; checks resume once it
    /// has had this long to settle (reused concepts only get the short
    /// `w + b` window-turnover cooldown).
    pub new_concept_grace: usize,
    /// Maximum stored concepts; 0 = unbounded. When full, the least recently
    /// used concept is evicted.
    pub max_repository: usize,
    /// Whether to run the delayed second model-selection pass `w`
    /// observations after each drift (Section III-A).
    pub second_check: bool,
    /// Whether classifier growth events reset supervised meta-feature
    /// distributions (fingerprint plasticity, Section IV).
    pub plasticity: bool,
    /// Whether similarity records are re-based through retained fingerprint
    /// pairs when weights have moved (Section IV).
    pub rebase_similarity: bool,
}

impl Default for FicsumConfig {
    fn default() -> Self {
        Self {
            window_size: 75,
            buffer_ratio: 0.25,
            fingerprint_gap: 3,
            repository_gap: 25,
            detector_delta: 0.05,
            sim_alpha: 0.1,
            accept_sigma: 2.0,
            sigma_floor: 0.01,
            sim_sigma_floor: 0.002,
            deviation_clamp: 8.0,
            hard_z: 5.0,
            hard_consecutive: 3,
            outlier_z: 3.0,
            new_concept_grace: 300,
            max_repository: 0,
            second_check: true,
            plasticity: true,
            rebase_similarity: true,
        }
    }
}

impl FicsumConfig {
    /// The buffer delay `b` implied by the window size and buffer ratio.
    pub fn buffer_delay(&self) -> usize {
        ((self.window_size as f64 * self.buffer_ratio).ceil() as usize).max(1)
    }

    /// Validates parameter sanity, panicking with a description otherwise.
    pub fn validate(&self) {
        assert!(self.window_size >= 10, "window_size must be at least 10");
        assert!(
            self.buffer_ratio > 0.0 && self.buffer_ratio <= 2.0,
            "buffer_ratio must be in (0, 2]"
        );
        assert!(self.fingerprint_gap >= 1, "fingerprint_gap must be >= 1");
        assert!(self.repository_gap >= 1, "repository_gap must be >= 1");
        assert!(
            self.detector_delta > 0.0 && self.detector_delta < 1.0,
            "detector_delta must be in (0, 1)"
        );
        assert!(self.accept_sigma > 0.0, "accept_sigma must be positive");
        assert!(self.sigma_floor > 0.0, "sigma_floor must be positive");
        assert!(self.sim_sigma_floor > 0.0, "sim_sigma_floor must be positive");
        assert!(
            self.sim_alpha > 0.0 && self.sim_alpha <= 1.0,
            "sim_alpha must be in (0, 1]"
        );
        assert!(self.deviation_clamp > 1.0, "deviation_clamp must exceed 1");
        assert!(self.hard_z > 1.0, "hard_z must exceed 1");
        assert!(self.outlier_z > 1.0, "outlier_z must exceed 1");
        assert!(self.hard_consecutive >= 1, "hard_consecutive must be >= 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FicsumConfig::default();
        assert_eq!(c.window_size, 75);
        assert_eq!(c.fingerprint_gap, 3);
        assert_eq!(c.repository_gap, 25);
        assert!((c.buffer_ratio - 0.25).abs() < 1e-12);
        assert_eq!(c.buffer_delay(), 19); // ceil(75 * 0.25)
        c.validate();
    }

    #[test]
    #[should_panic(expected = "window_size")]
    fn tiny_window_rejected() {
        FicsumConfig { window_size: 2, ..FicsumConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "buffer_ratio")]
    fn zero_buffer_rejected() {
        FicsumConfig { buffer_ratio: 0.0, ..FicsumConfig::default() }.validate();
    }
}
