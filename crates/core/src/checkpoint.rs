//! Session checkpoints: full, dependency-free captures of a running
//! [`crate::Ficsum`] pipeline.
//!
//! A checkpoint is everything `process` reads or writes across steps — the
//! active concept (fingerprints, classifier, similarity baseline, retained
//! pairs), the stored repository, the frame ring, the drift detector, the
//! normaliser, the dynamic weights and every counter — deep-cloned into an
//! owned, `Send + Sync` value with no live borrows. Restoring it through
//! [`crate::SessionTemplate::restore`] yields a pipeline that continues
//! **bit-identically**: driven with the same observations it produces the
//! same [`crate::StepOutcome`]s as the uninterrupted original (pinned by
//! the snapshot→restore→replay property test).
//!
//! What is deliberately *not* captured:
//!
//! * pure caches and scratch buffers ([`crate::similarity::CachedFingerprint`],
//!   extraction scratch, the recurrence-scan worker pool) — they are
//!   recomputed on demand from captured state and the recomputation is
//!   bit-identical by construction;
//! * the observability recorder and clock — observers, not state; a
//!   restored session gets whatever the restoring template attaches.
//!
//! Classifiers cross the checkpoint boundary as [`Classifier::clone_box`]
//! deep copies: the trait requires `Send + Sync`, so a checkpoint is plain
//! data that can be handed between threads, parked on a session snapshot,
//! or shipped to a fresh server — without this crate growing a
//! serialisation dependency.

use ficsum_classifiers::Classifier;
use ficsum_drift::Adwin;
use ficsum_stream::{EwStats, FrameWindows};

use crate::config::FicsumConfig;
use crate::fingerprint::{ConceptFingerprint, FingerprintNormalizer};
use crate::framework::FicsumStats;
use crate::repository::{ConceptId, Repository, RetainedPair};
use crate::weights::DynamicWeights;

/// Why a checkpoint cannot be restored through a given template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RestoreError {
    /// The template's feature count differs from the checkpointed session's.
    FeatureCountMismatch {
        /// Features the template builds sessions for.
        template: usize,
        /// Features the checkpointed session was built for.
        checkpoint: usize,
    },
    /// The template's class count differs from the checkpointed session's.
    ClassCountMismatch {
        /// Classes the template builds sessions for.
        template: usize,
        /// Classes the checkpointed session was built for.
        checkpoint: usize,
    },
    /// The template's variant produces a different fingerprint schema.
    DimensionMismatch {
        /// Fingerprint dimensions of the template's extractor.
        template: usize,
        /// Fingerprint dimensions the checkpoint was captured with.
        checkpoint: usize,
    },
    /// The template's hyper-parameters differ from the checkpointed
    /// session's. Replaying under different hyper-parameters would diverge
    /// silently, so the mismatch is refused instead.
    ConfigMismatch,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::FeatureCountMismatch { template, checkpoint } => write!(
                f,
                "template serves {template}-feature streams but the checkpoint \
                 holds a {checkpoint}-feature session"
            ),
            RestoreError::ClassCountMismatch { template, checkpoint } => write!(
                f,
                "template serves {template}-class streams but the checkpoint \
                 holds a {checkpoint}-class session"
            ),
            RestoreError::DimensionMismatch { template, checkpoint } => write!(
                f,
                "template extractor produces {template} fingerprint dimensions \
                 but the checkpoint was captured with {checkpoint}"
            ),
            RestoreError::ConfigMismatch => {
                write!(f, "template hyper-parameters differ from the checkpointed session's")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// A complete capture of one session's learned and in-flight state.
///
/// Obtain one with [`crate::Ficsum::checkpoint`]; rehydrate it with
/// [`crate::SessionTemplate::restore`]. The value is self-contained and
/// `Send + Sync` — see the module docs for what is captured and why the
/// restored pipeline replays bit-identically.
#[derive(Clone)]
pub struct SessionCheckpoint {
    pub(crate) n_features: usize,
    pub(crate) n_classes: usize,
    pub(crate) config: FicsumConfig,

    pub(crate) active_id: ConceptId,
    pub(crate) active_fp: ConceptFingerprint,
    pub(crate) active_fp_sel: ConceptFingerprint,
    pub(crate) active_clf: Box<dyn Classifier>,
    pub(crate) active_sim: EwStats,
    pub(crate) active_retained: Vec<RetainedPair>,
    pub(crate) active_sc: ConceptFingerprint,

    pub(crate) repo: Repository,
    pub(crate) normalizer: FingerprintNormalizer,
    pub(crate) weights: DynamicWeights,
    pub(crate) weights_gen: u64,
    pub(crate) weights_stamp: Option<(u64, u64, u64)>,
    pub(crate) detector: Adwin,
    pub(crate) frames: FrameWindows,

    pub(crate) t: u64,
    pub(crate) pending_recheck: Option<(u64, bool)>,
    pub(crate) stats: FicsumStats,
    pub(crate) last_similarity: Option<f64>,
    pub(crate) extreme_streak: u32,
    pub(crate) last_plasticity: u64,
    pub(crate) baseline_outliers: u32,
    pub(crate) cooldown_until: u64,
}

impl SessionCheckpoint {
    /// Observation count at capture time.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Feature dimensionality the session was built for.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Class count the session was built for.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Fingerprint dimensions of the captured representation.
    pub fn dims(&self) -> usize {
        self.active_fp.dims()
    }

    /// The hyper-parameters the session ran with.
    pub fn config(&self) -> &FicsumConfig {
        &self.config
    }

    /// Concept active at capture time.
    pub fn active_concept(&self) -> ConceptId {
        self.active_id
    }

    /// Lifetime counters at capture time.
    pub fn stats(&self) -> FicsumStats {
        self.stats
    }

    /// Ids stored in the captured repository, ascending.
    pub fn stored_concepts(&self) -> Vec<ConceptId> {
        let mut ids: Vec<ConceptId> = self.repo.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids
    }
}

impl std::fmt::Debug for SessionCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionCheckpoint")
            .field("steps", &self.t)
            .field("n_features", &self.n_features)
            .field("n_classes", &self.n_classes)
            .field("dims", &self.dims())
            .field("active_concept", &self.active_id)
            .field("stored_concepts", &self.stored_concepts())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

// A checkpoint is plain data: it crosses thread boundaries in the serving
// layer (snapshot stores, restore at worker startup).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SessionCheckpoint>();
    assert_send_sync::<RestoreError>();
};

#[cfg(test)]
mod tests {
    use crate::config::FicsumConfig;
    use crate::template::SessionTemplate;
    use crate::variant::Variant;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};
    use ficsum_synth::{Labeller, StaggerLabeller};

    use super::RestoreError;

    fn quick_config() -> FicsumConfig {
        FicsumConfig {
            window_size: 50,
            fingerprint_gap: 5,
            repository_gap: 50,
            ..FicsumConfig::default()
        }
    }

    fn template() -> SessionTemplate {
        SessionTemplate::new(3, 2, quick_config(), Variant::Full).expect("valid config")
    }

    /// Deterministic drifting stream: STAGGER concepts alternating every
    /// `seg_len` observations.
    fn observation(rng: &mut Xoshiro256pp, step: usize, seg_len: usize) -> ([f64; 3], usize) {
        let x = [rng.random(), rng.random(), rng.random()];
        let concept = (step / seg_len) % 2;
        let y = StaggerLabeller::new(concept).label(&x);
        (x, y)
    }

    #[test]
    fn restored_session_replays_bit_identically() {
        let template = template();
        let mut original = template.instantiate();
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        // Drive through at least one drift so the checkpoint captures a
        // non-trivial repository, then checkpoint mid-segment.
        for step in 0..1100 {
            let (x, y) = observation(&mut rng, step, 400);
            original.process(&x, y);
        }
        let checkpoint = original.checkpoint();
        assert_eq!(checkpoint.steps(), 1100);
        assert_eq!(checkpoint.active_concept(), original.active_concept());
        let mut restored = template.restore(&checkpoint).expect("same template restores");
        // The tail crosses further drift boundaries; every outcome must be
        // bit-identical between the uninterrupted original and the restored
        // copy.
        for step in 1100..2600 {
            let (x, y) = observation(&mut rng, step, 400);
            let a = original.process(&x, y);
            let b = restored.process(&x, y);
            assert_eq!(a, b, "outcomes diverged at step {step}");
        }
        assert_eq!(original.stats(), restored.stats());
        assert!(
            original.stats().n_drifts >= 2,
            "test must exercise drift + selection on both sides of the \
             checkpoint: {:?}",
            original.stats()
        );
    }

    #[test]
    fn checkpoint_is_an_independent_deep_copy() {
        let template = template();
        let mut original = template.instantiate();
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        for step in 0..900 {
            let (x, y) = observation(&mut rng, step, 300);
            original.process(&x, y);
        }
        let checkpoint = original.checkpoint();
        let stats_at_capture = checkpoint.stats();
        // Mutating the original after capture must not leak into the
        // checkpoint: two restores bracketing further processing behave
        // identically.
        let mut restored_before = template.restore(&checkpoint).expect("restores");
        for step in 900..1400 {
            let (x, y) = observation(&mut rng, step, 300);
            original.process(&x, y);
        }
        let mut restored_after = template.restore(&checkpoint).expect("still restores");
        assert_eq!(checkpoint.stats(), stats_at_capture);
        let mut rng2 = Xoshiro256pp::seed_from_u64(99);
        for step in 0..600 {
            let (x, y) = observation(&mut rng2, step, 200);
            let a = restored_before.process(&x, y);
            let b = restored_after.process(&x, y);
            assert_eq!(a, b, "checkpoint mutated by original at step {step}");
        }
    }

    #[test]
    fn checkpoint_reports_repository_membership() {
        let template = template();
        let mut original = template.instantiate();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for step in 0..1700 {
            let (x, y) = observation(&mut rng, step, 400);
            original.process(&x, y);
        }
        let checkpoint = original.checkpoint();
        let mut expected: Vec<_> = original.repository().iter().map(|e| e.id).collect();
        expected.sort_unstable();
        assert_eq!(checkpoint.stored_concepts(), expected);
        assert_eq!(checkpoint.dims(), original.engine().schema().len());
        assert_eq!(checkpoint.n_features(), 3);
        assert_eq!(checkpoint.n_classes(), 2);
    }

    #[test]
    fn restore_validates_template_compatibility() {
        let checkpoint = {
            let mut f = template().instantiate();
            let mut rng = Xoshiro256pp::seed_from_u64(5);
            for step in 0..200 {
                let (x, y) = observation(&mut rng, step, 1000);
                f.process(&x, y);
            }
            f.checkpoint()
        };
        let wrong_features = SessionTemplate::new(4, 2, quick_config(), Variant::Full).unwrap();
        assert_eq!(
            wrong_features.restore(&checkpoint).err(),
            Some(RestoreError::FeatureCountMismatch { template: 4, checkpoint: 3 })
        );
        let wrong_classes = SessionTemplate::new(3, 3, quick_config(), Variant::Full).unwrap();
        assert_eq!(
            wrong_classes.restore(&checkpoint).err(),
            Some(RestoreError::ClassCountMismatch { template: 3, checkpoint: 2 })
        );
        let wrong_config = SessionTemplate::new(
            3,
            2,
            FicsumConfig { window_size: 80, ..quick_config() },
            Variant::Full,
        )
        .unwrap();
        assert_eq!(wrong_config.restore(&checkpoint).err(), Some(RestoreError::ConfigMismatch));
        let wrong_variant =
            SessionTemplate::new(3, 2, quick_config(), Variant::ErrorRate).unwrap();
        assert!(matches!(
            wrong_variant.restore(&checkpoint).err(),
            Some(RestoreError::DimensionMismatch { template: 1, .. })
        ));
        // And the compatible template still restores.
        assert!(template().restore(&checkpoint).is_ok());
    }
}
