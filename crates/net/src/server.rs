//! The TCP front-end: framed requests in, serving-core replies out.
//!
//! [`NetServer`] owns an accept loop plus one handler thread per
//! connection; handlers decode [`crate::wire`] frames and bridge them onto
//! a shared [`StreamServer`]. The bridge is deliberately thin — all
//! admission semantics (all-or-nothing backpressure, deadlines, shutdown)
//! come from the serving core and are *reported over the wire* instead of
//! being re-implemented or hidden: a full shard becomes a `REJECTED` frame
//! the client can retry verbatim, exactly as an in-process caller would
//! retry [`StreamServer::try_submit`].
//!
//! The front-end holds the core behind an `Arc`, so a direct in-process
//! caller can coexist with remote clients — including racing the
//! front-end on shutdown, which [`StreamServer::shutdown_in_place`] makes
//! safe and idempotent.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ficsum_obs::{NullRecorder, Recorder, StreamEvent};
use ficsum_serve::{ServeReport, SessionId, StreamServer, Submit};

use crate::codec::{read_frame, write_frame, Frame, PayloadReader, PayloadWriter};
use crate::error::{encode_serve_error, encode_step_error, NetError, ProtocolError};
use crate::metrics::{ConnRecorderFactory, MetricsLedger, NetMetrics};
use crate::snapshot::{encode_summaries, SnapshotSummary};
use crate::wire::{self, kind, submit_mode, MAGIC, PROTOCOL_VERSION};

/// Optional front-end facilities.
#[derive(Default)]
pub struct NetOptions {
    recorder_factory: Option<ConnRecorderFactory>,
}

impl NetOptions {
    /// Attaches a per-connection recorder factory (see
    /// [`ConnRecorderFactory`]). Handlers emit the network
    /// [`StreamEvent`]s (`connection_opened`, `connection_closed`,
    /// `batch_rejected`), per-connection batch counters and a
    /// queue-depth gauge after each accepted batch.
    #[must_use]
    pub fn with_recorder_factory(mut self, factory: ConnRecorderFactory) -> Self {
        self.recorder_factory = Some(factory);
        self
    }
}

impl std::fmt::Debug for NetOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetOptions")
            .field("recorder_factory", &self.recorder_factory.is_some())
            .finish()
    }
}

/// Everything a network server hands back at shutdown: the serving core's
/// report plus the transport-side metrics.
#[derive(Debug)]
#[non_exhaustive]
pub struct NetReport {
    /// The wrapped core's final report (snapshots + shard metrics). When a
    /// direct caller shut the core down first, the snapshots it drained
    /// are in *its* report, not this one — exactly-once holds across both.
    pub serve: ServeReport,
    /// Final transport metrics.
    pub net: NetMetrics,
}

/// State shared between the accept loop, connection handlers and the
/// shutdown path.
struct Shared {
    inner: Arc<StreamServer>,
    shutting_down: AtomicBool,
    metrics: MetricsLedger,
    recorder_factory: Option<ConnRecorderFactory>,
    next_conn: AtomicU64,
}

/// A live connection the shutdown path can interrupt: the handler's join
/// handle plus an independently owned handle to the same socket.
struct Conn {
    wake: TcpStream,
    handle: JoinHandle<()>,
}

/// A TCP front-end serving the wire protocol over a shared
/// [`StreamServer`].
///
/// Dropping the front-end closes the listener and every connection but
/// leaves the core running (other `Arc` holders may still be serving);
/// [`NetServer::shutdown`] additionally shuts the core down and returns
/// the combined [`NetReport`].
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<Conn>>>,
}

impl NetServer {
    /// Binds `addr` and starts accepting connections for `server`.
    ///
    /// Bind to port 0 to let the OS pick; [`NetServer::local_addr`] has
    /// the resolved address.
    pub fn bind(addr: impl ToSocketAddrs, server: Arc<StreamServer>) -> io::Result<Self> {
        Self::bind_with_options(addr, server, NetOptions::default())
    }

    /// Like [`NetServer::bind`], with observability attached.
    pub fn bind_with_options(
        addr: impl ToSocketAddrs,
        server: Arc<StreamServer>,
        options: NetOptions,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            inner: server,
            shutting_down: AtomicBool::new(false),
            metrics: MetricsLedger::default(),
            recorder_factory: options.recorder_factory,
            next_conn: AtomicU64::new(0),
        });
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = shared.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("ficsum-net-accept".into())
                .spawn(move || accept_loop(listener, shared, conns))
                .expect("spawn accept loop")
        };
        Ok(Self { shared, local_addr, accept: Some(accept), conns })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The serving core this front-end bridges onto.
    pub fn server(&self) -> &Arc<StreamServer> {
        &self.shared.inner
    }

    /// Current transport metrics.
    pub fn metrics(&self) -> NetMetrics {
        self.shared.metrics.snapshot()
    }

    /// Stops accepting, says goodbye to every connection (in-flight
    /// replies are written first), shuts the serving core down and
    /// returns the combined report.
    ///
    /// Safe against a direct caller racing
    /// [`StreamServer::shutdown_in_place`] on the shared core: whichever
    /// side closes first wins the core's snapshots; this report then
    /// carries the rest (possibly none).
    pub fn shutdown(mut self) -> NetReport {
        self.close_front_end();
        let serve = self.shared.inner.shutdown_in_place();
        NetReport { serve, net: self.shared.metrics.snapshot() }
    }

    /// Stops the accept loop and joins every handler. In-flight requests
    /// complete and their replies are written; blocked reads are
    /// interrupted by shutting the sockets' read halves, after which each
    /// handler sends its goodbye.
    fn close_front_end(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking `accept` with a throwaway connection; the
        // loop re-checks the flag before handling what it accepted.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let conns = std::mem::take(&mut *lock_recover(&self.conns));
        for conn in &conns {
            // Read half only: the handler wakes with EOF, finishes any
            // reply it owes, sends GOODBYE and exits.
            let _ = conn.wake.shutdown(Shutdown::Read);
        }
        for conn in conns {
            let _ = conn.handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.close_front_end();
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer").field("local_addr", &self.local_addr).finish()
    }
}

fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, conns: Arc<Mutex<Vec<Conn>>>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            // The wake-up connection (or a client racing shutdown).
            return;
        }
        let Ok(wake) = stream.try_clone() else {
            continue;
        };
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        let handler = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("ficsum-net-conn-{conn_id}"))
                .spawn(move || handle_connection(stream, conn_id, shared))
        };
        match handler {
            Ok(handle) => lock_recover(&conns).push(Conn { wake, handle }),
            Err(_) => drop(wake),
        }
    }
}

/// Runs one connection to completion: handshake, then a strict
/// request→reply loop until goodbye, disconnect, violation or shutdown.
fn handle_connection(mut stream: TcpStream, conn_id: u64, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let mut recorder: Box<dyn Recorder> = match &shared.recorder_factory {
        Some(factory) => factory(conn_id),
        None => Box::new(NullRecorder),
    };
    let mut batches: u64 = 0;
    let outcome = serve_connection(&mut stream, conn_id, &shared, recorder.as_mut(), &mut batches);
    // Report protocol violations to the peer before closing; for socket
    // errors there is nothing left to say.
    if let Err(NetError::Protocol(violation)) = &outcome {
        shared.metrics.update(|m| m.protocol_errors += 1);
        let (a, b) = violation.operands();
        let mut payload = PayloadWriter::new();
        payload.u16(violation.code()).u64(a).u64(b);
        let _ = write_frame(&mut stream, kind::ERROR, &payload.finish());
    }
    let _ = stream.shutdown(Shutdown::Both);
    recorder.event(batches, StreamEvent::ConnectionClosed { conn: conn_id, batches });
    shared.metrics.update(|m| m.connections_closed += 1);
}

/// The handshake plus request loop; any `Err` ends the connection (a
/// protocol error is additionally reported to the peer by the caller).
fn serve_connection(
    stream: &mut TcpStream,
    conn_id: u64,
    shared: &Shared,
    recorder: &mut dyn Recorder,
    batches: &mut u64,
) -> Result<(), NetError> {
    handshake(stream, shared)?;
    shared.metrics.update(|m| m.connections_opened += 1);
    recorder.event(0, StreamEvent::ConnectionOpened { conn: conn_id });
    loop {
        let frame = match read_frame(stream)? {
            Some(frame) => frame,
            None => {
                // EOF: the client vanished without a goodbye, or our own
                // shutdown path closed the read half. Say goodbye either
                // way; a gone peer simply won't read it.
                let _ = write_frame(stream, kind::GOODBYE, &[]);
                return Ok(());
            }
        };
        match frame.kind {
            kind::SUBMIT => {
                handle_submit(stream, &frame, conn_id, shared, recorder, batches)?;
            }
            kind::SNAPSHOTS => {
                PayloadReader::new(frame.kind, &frame.payload).expect_end()?;
                let summaries: Vec<SnapshotSummary> = shared
                    .inner
                    .drain_snapshots()
                    .iter()
                    .map(SnapshotSummary::of)
                    .collect();
                write_frame(stream, kind::SNAPSHOTS_REPLY, &encode_summaries(&summaries))?;
            }
            kind::GOODBYE => {
                let _ = write_frame(stream, kind::GOODBYE, &[]);
                return Ok(());
            }
            other => return Err(ProtocolError::UnexpectedFrame { kind: other }.into()),
        }
    }
}

/// Validates the client hello and answers with the authoritative schema.
fn handshake(stream: &mut TcpStream, shared: &Shared) -> Result<(), NetError> {
    let frame = read_frame(stream)?.ok_or(ProtocolError::Truncated)?;
    if frame.kind != kind::CLIENT_HELLO {
        return Err(ProtocolError::UnexpectedFrame { kind: frame.kind }.into());
    }
    let mut r = PayloadReader::new(frame.kind, &frame.payload);
    if r.bytes(4)? != MAGIC {
        return Err(ProtocolError::BadMagic.into());
    }
    let version = r.u16()?;
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs: version,
        }
        .into());
    }
    let n_features = r.u32()? as usize;
    let n_classes = r.u32()? as usize;
    r.expect_end()?;
    let template = shared.inner.template();
    // (0, 0) lets the client discover the schema from the server hello.
    if (n_features, n_classes) != (0, 0) {
        if n_features != template.n_features() {
            return Err(ProtocolError::SchemaMismatch {
                expected: template.n_features() as u64,
                got: n_features as u64,
            }
            .into());
        }
        if n_classes != template.n_classes() {
            return Err(ProtocolError::SchemaMismatch {
                expected: template.n_classes() as u64,
                got: n_classes as u64,
            }
            .into());
        }
    }
    let mut hello = PayloadWriter::new();
    hello
        .bytes(&MAGIC)
        .u16(PROTOCOL_VERSION)
        .u32(template.n_features() as u32)
        .u32(template.n_classes() as u32)
        .u32(shared.inner.config().shards as u32);
    write_frame(stream, kind::SERVER_HELLO, &hello.finish())
}

/// Decodes one `SUBMIT`, bridges it onto the core, writes `REPLY` or
/// `REJECTED`.
fn handle_submit(
    stream: &mut TcpStream,
    frame: &Frame,
    conn_id: u64,
    shared: &Shared,
    recorder: &mut dyn Recorder,
    batches: &mut u64,
) -> Result<(), NetError> {
    let batch = decode_submit_batch(frame)?;
    let received = Instant::now();
    let admitted = match batch.mode {
        submit_mode::TRY => shared.inner.try_submit(&batch.requests),
        submit_mode::DEADLINE => shared
            .inner
            .submit_with_deadline(&batch.requests, Duration::from_millis(batch.deadline_ms)),
        _ => return Err(ProtocolError::MalformedFrame { kind: kind::SUBMIT }.into()),
    };
    match admitted {
        Ok(reply) => {
            let results = reply.wait();
            let mut payload = PayloadWriter::new();
            payload.u32(results.len() as u32);
            for result in &results {
                match result {
                    Ok(outcome) => {
                        payload
                            .u8(0)
                            .u64(outcome.prediction as u64)
                            .u8(outcome.drift as u8)
                            .u8(outcome.concept_switched as u8)
                            .u64(outcome.active_concept as u64);
                    }
                    Err(step) => {
                        let (code, a, b) = encode_step_error(step);
                        payload.u8(1).u16(code).u64(a).u64(b);
                    }
                }
            }
            write_frame(stream, kind::REPLY, &payload.finish())?;
            let nanos = received.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            *batches += 1;
            shared.metrics.update(|m| {
                m.batches_accepted += 1;
                m.requests_served += results.len() as u64;
                m.latency.record(nanos);
            });
            recorder.counter("net.batches_accepted", 1);
            recorder.counter("net.requests_served", results.len() as u64);
            let depth: usize =
                shared.inner.metrics().iter().map(|shard| shard.queue_depth).sum();
            recorder.gauge("net.queue_depth", depth as f64);
            Ok(())
        }
        Err(refusal) => {
            let (code, a, b) = encode_serve_error(&refusal);
            let mut payload = PayloadWriter::new();
            payload.u16(code).u64(a).u64(b);
            write_frame(stream, kind::REJECTED, &payload.finish())?;
            shared.metrics.update(|m| m.batches_rejected += 1);
            recorder.counter("net.batches_rejected", 1);
            recorder.event(
                *batches,
                StreamEvent::BatchRejected { conn: conn_id, code: code as u64 },
            );
            Ok(())
        }
    }
}

#[derive(Debug)]
struct SubmitBatch {
    mode: u8,
    deadline_ms: u64,
    requests: Vec<Submit>,
}

fn decode_submit_batch(frame: &Frame) -> Result<SubmitBatch, NetError> {
    let mut r = PayloadReader::new(frame.kind, &frame.payload);
    let mode = r.u8()?;
    let deadline_ms = r.u64()?;
    let n = r.u32()? as usize;
    let mut requests = Vec::with_capacity(n.min(wire::MAX_FRAME_LEN as usize / 16));
    for _ in 0..n {
        let session = SessionId(r.u64()?);
        let label = r.u64()? as usize;
        let dims = r.u32()? as usize;
        let mut features = Vec::with_capacity(dims.min(wire::MAX_FRAME_LEN as usize / 8));
        for _ in 0..dims {
            features.push(r.f64()?);
        }
        requests.push(Submit::new(session, features, label));
    }
    r.expect_end()?;
    Ok(SubmitBatch { mode, deadline_ms, requests })
}

/// Encodes the public submit API onto a `SUBMIT` payload; shared with the
/// client so both sides use one grammar.
pub(crate) fn encode_submit_batch(mode: u8, deadline_ms: u64, batch: &[Submit]) -> Vec<u8> {
    let mut payload = PayloadWriter::new();
    payload.u8(mode).u64(deadline_ms).u32(batch.len() as u32);
    for submit in batch {
        payload.u64(submit.session_id.0).u64(submit.label as u64).u32(submit.features.len() as u32);
        for &feature in &submit.features {
            payload.f64(feature);
        }
    }
    payload.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_payloads_round_trip() {
        let batch = vec![
            Submit::new(SessionId(1), vec![0.25, -1.5], 1),
            Submit::new(SessionId(u64::MAX), vec![f64::MIN_POSITIVE], 0),
        ];
        let payload = encode_submit_batch(submit_mode::DEADLINE, 250, &batch);
        let frame = Frame { kind: kind::SUBMIT, payload };
        let decoded = decode_submit_batch(&frame).unwrap();
        assert_eq!(decoded.mode, submit_mode::DEADLINE);
        assert_eq!(decoded.deadline_ms, 250);
        assert_eq!(decoded.requests, batch);
    }

    #[test]
    fn truncated_submit_is_malformed() {
        let batch = vec![Submit::new(SessionId(1), vec![0.5; 4], 0)];
        let payload = encode_submit_batch(submit_mode::TRY, 0, &batch);
        let frame = Frame { kind: kind::SUBMIT, payload: payload[..payload.len() - 3].to_vec() };
        match decode_submit_batch(&frame) {
            Err(NetError::Protocol(ProtocolError::MalformedFrame { kind: k })) => {
                assert_eq!(k, kind::SUBMIT);
            }
            other => panic!("expected MalformedFrame, got {other:?}"),
        }
    }

    #[test]
    fn lying_length_prefix_cannot_force_allocation() {
        // A tiny payload claiming 4 billion requests must fail cleanly
        // (bounds-checked reads), not attempt a proportional allocation.
        let mut payload = PayloadWriter::new();
        payload.u8(submit_mode::TRY).u64(0).u32(u32::MAX);
        let frame = Frame { kind: kind::SUBMIT, payload: payload.finish() };
        assert!(decode_submit_batch(&frame).is_err());
    }
}
