//! Front-end metrics, aggregated across connections.

use std::sync::{Arc, Mutex};

use ficsum_obs::{LatencyHistogram, Recorder};

/// Builds one recorder per accepted connection, on the connection's own
/// handler thread — recorders themselves need not be `Send`. The argument
/// is the front-end-assigned connection ordinal (the `conn` field of the
/// network [`ficsum_obs::StreamEvent`]s). Share one sink across
/// connections by closing over an `Arc<Mutex<R>>`.
pub type ConnRecorderFactory = Arc<dyn Fn(u64) -> Box<dyn Recorder> + Send + Sync>;

/// Point-in-time view of a [`crate::NetServer`]'s transport health.
///
/// Complements [`ficsum_serve::ShardMetrics`] (which counts what happens
/// *inside* the serving core) with what happens at the socket boundary.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct NetMetrics {
    /// Connections that completed the handshake.
    pub connections_opened: u64,
    /// Connections that ended (goodbye, disconnect, violation, shutdown).
    pub connections_closed: u64,
    /// Batches accepted by the serving core and replied to.
    pub batches_accepted: u64,
    /// Batches refused eagerly and reported over the wire (`REJECTED`).
    pub batches_rejected: u64,
    /// Observations inside accepted batches.
    pub requests_served: u64,
    /// Connections dropped for violating the wire protocol.
    pub protocol_errors: u64,
    /// Submit-receipt → reply-written latency per accepted batch
    /// (log-bucketed nanoseconds).
    pub latency: LatencyHistogram,
}

/// Handler-side accumulator: one shared ledger all connection handlers
/// fold into.
#[derive(Default)]
pub(crate) struct MetricsLedger {
    inner: Mutex<NetMetrics>,
}

impl MetricsLedger {
    pub fn snapshot(&self) -> NetMetrics {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    pub fn update(&self, f: impl FnOnce(&mut NetMetrics)) {
        f(&mut self.inner.lock().unwrap_or_else(|p| p.into_inner()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_folds_updates() {
        let ledger = MetricsLedger::default();
        ledger.update(|m| {
            m.connections_opened += 1;
            m.batches_accepted += 2;
            m.latency.record(1_000);
        });
        ledger.update(|m| m.connections_closed += 1);
        let snap = ledger.snapshot();
        assert_eq!(snap.connections_opened, 1);
        assert_eq!(snap.connections_closed, 1);
        assert_eq!(snap.batches_accepted, 2);
        assert_eq!(snap.latency.count(), 1);
    }
}
