//! Network serving for FiCSUM: the wire protocol, the TCP front-end and
//! the client library.
//!
//! [`ficsum_serve::StreamServer`] turns one process into a multi-session
//! drift-detection service; this crate turns that service into a network
//! one, using only the standard library:
//!
//! * [`wire`] — a versioned, length-prefixed, little-endian frame
//!   protocol with stable error codes, so peers built at different times
//!   interoperate or fail loudly at handshake.
//! * [`NetServer`] — an accept loop plus per-connection handlers bridging
//!   framed requests onto shared [`ficsum_serve::StreamServer`] queues.
//!   The core's semantics cross the wire intact: backpressure is an
//!   explicit `REJECTED` answer (retry the batch verbatim), deadlines
//!   bound admission server-side, and a poisoned session fails only its
//!   own slots.
//! * [`NetClient`] — a blocking client with connection reuse and the same
//!   submit vocabulary as the in-process API (`submit`,
//!   `submit_with_deadline`, `submit_with_retry` under a
//!   [`ficsum_serve::RetryPolicy`]).
//!
//! Sessions served over TCP are **bit-identical** to local pipelines
//! built from the same template — features cross the wire as IEEE-754 bit
//! patterns, and the core's per-session ordering does the rest (pinned by
//! `tests/net_parity.rs` at the workspace root).
//!
//! ```no_run
//! use std::sync::Arc;
//! use ficsum_core::{FicsumConfig, SessionTemplate, Variant};
//! use ficsum_net::{NetClient, NetServer};
//! use ficsum_serve::{ServeConfig, SessionId, StreamServer, Submit};
//!
//! let template = SessionTemplate::new(2, 2, FicsumConfig::default(), Variant::Full)?;
//! let core = Arc::new(StreamServer::new(template, ServeConfig::default()));
//! let server = NetServer::bind("127.0.0.1:0", core)?;
//!
//! let mut client = NetClient::connect(server.local_addr())?;
//! let results = client.submit(&[Submit::new(SessionId(1), vec![0.2, 0.8], 1)])?;
//! assert_eq!(results.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod client;
mod codec;
mod error;
mod metrics;
mod server;
mod snapshot;
pub mod wire;

pub use client::{NetClient, RemoteOutcome, RemoteStepResult};
pub use error::{NetError, ProtocolError};
pub use metrics::{ConnRecorderFactory, NetMetrics};
pub use server::{NetOptions, NetReport, NetServer};
pub use snapshot::SnapshotSummary;

// Compile-time audit: the front-end is shared across its accept loop,
// handlers and the shutdown path; the client moves between threads in
// pooled callers.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<NetServer>();
    assert_send::<NetClient>();
    assert_send::<NetError>();
    assert_send::<NetMetrics>();
};
