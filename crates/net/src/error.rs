//! The unified network error surface and its wire-code mapping.
//!
//! Everything a [`crate::NetClient`] call can fail with is one
//! [`NetError`]; everything a peer can refuse is a stable `u16` code from
//! [`crate::wire::code`] plus two `u64` detail operands. The mapping
//! between the in-process error enums and the wire codes lives here, in
//! one place, so the two can never drift apart silently.

use std::fmt;

use ficsum_serve::{ServeError, SessionId, StepError};

use crate::wire::code;

/// A violation of the wire protocol itself — the bytes, not the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// A hello frame did not open with the protocol magic.
    BadMagic,
    /// The peer speaks an incompatible protocol version.
    VersionMismatch {
        /// Version this build speaks.
        ours: u16,
        /// Version the peer announced.
        theirs: u16,
    },
    /// The client-declared stream schema disagrees with the server's
    /// template (reported for whichever field mismatched first).
    SchemaMismatch {
        /// Value the server template requires.
        expected: u64,
        /// Value the client declared.
        got: u64,
    },
    /// A frame's payload could not be decoded as its kind's grammar.
    MalformedFrame {
        /// Kind byte of the offending frame.
        kind: u8,
    },
    /// A structurally valid frame arrived where the conversation does not
    /// allow it.
    UnexpectedFrame {
        /// Kind byte of the offending frame.
        kind: u8,
    },
    /// A frame announced a length beyond [`crate::wire::MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The announced length.
        len: u32,
    },
    /// The stream ended mid-frame (a clean close lands *between* frames).
    Truncated,
}

impl ProtocolError {
    /// The stable wire code for this violation (for `ERROR` frames).
    pub fn code(&self) -> u16 {
        match self {
            // A bad magic is indistinguishable from a foreign protocol;
            // report it as a version problem.
            ProtocolError::BadMagic => code::VERSION_MISMATCH,
            ProtocolError::VersionMismatch { .. } => code::VERSION_MISMATCH,
            ProtocolError::SchemaMismatch { .. } => code::SCHEMA_MISMATCH,
            ProtocolError::MalformedFrame { .. } => code::MALFORMED_FRAME,
            ProtocolError::UnexpectedFrame { .. } => code::UNEXPECTED_FRAME,
            ProtocolError::FrameTooLarge { .. } => code::FRAME_TOO_LARGE,
            ProtocolError::Truncated => code::MALFORMED_FRAME,
        }
    }

    /// The `(a, b)` detail operands accompanying [`ProtocolError::code`].
    pub fn operands(&self) -> (u64, u64) {
        match self {
            ProtocolError::VersionMismatch { ours, theirs } => (*ours as u64, *theirs as u64),
            ProtocolError::SchemaMismatch { expected, got } => (*expected, *got),
            ProtocolError::MalformedFrame { kind } | ProtocolError::UnexpectedFrame { kind } => {
                (*kind as u64, 0)
            }
            ProtocolError::FrameTooLarge { len } => (*len as u64, 0),
            ProtocolError::BadMagic | ProtocolError::Truncated => (0, 0),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic => write!(f, "hello frame does not start with the magic"),
            ProtocolError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: we speak {ours}, peer speaks {theirs}")
            }
            ProtocolError::SchemaMismatch { expected, got } => {
                write!(f, "stream schema mismatch: server requires {expected}, client declared {got}")
            }
            ProtocolError::MalformedFrame { kind } => {
                write!(f, "malformed payload in frame kind {kind:#04x}")
            }
            ProtocolError::UnexpectedFrame { kind } => {
                write!(f, "frame kind {kind:#04x} not allowed here")
            }
            ProtocolError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds the protocol cap")
            }
            ProtocolError::Truncated => write!(f, "stream ended mid-frame"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Why a network operation failed.
///
/// Mirrors the layering of the in-process API: [`NetError::Rejected`] is
/// the submit path (nothing was enqueued; the batch can be retried
/// verbatim, exactly as with [`ficsum_serve::StreamServer::try_submit`]),
/// per-slot [`StepError`]s ride inside the successful reply vector, and
/// everything else is transport or protocol failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// The socket failed (connect, read or write).
    Io(std::io::Error),
    /// The peer violated the wire protocol, or reported that we did.
    Protocol(ProtocolError),
    /// The server refused the batch eagerly; zero requests were enqueued
    /// and the batch may be retried verbatim. Transient refusals
    /// ([`ServeError::Overloaded`]) are what
    /// [`crate::NetClient::submit_with_retry`] backs off on.
    Rejected(ServeError),
    /// The peer reported an error code this build cannot map onto a
    /// typed variant (a newer peer, or a reserved code).
    Remote {
        /// The stable wire code.
        code: u16,
        /// First detail operand.
        a: u64,
        /// Second detail operand.
        b: u64,
    },
    /// The server said goodbye (front-end shutdown or orderly close)
    /// instead of answering; the connection is no longer usable.
    ServerClosed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
            NetError::Rejected(e) => write!(f, "batch rejected: {e}"),
            NetError::Remote { code, a, b } => {
                write!(f, "remote error code {code} (a={a}, b={b})")
            }
            NetError::ServerClosed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Protocol(e) => Some(e),
            NetError::Rejected(e) => Some(e),
            NetError::Remote { .. } | NetError::ServerClosed => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> Self {
        NetError::Protocol(e)
    }
}

/// Encodes a submit-path refusal as its wire `(code, a, b)` triple.
pub(crate) fn encode_serve_error(error: &ServeError) -> (u16, u64, u64) {
    match error {
        ServeError::Overloaded { shard } => (code::OVERLOADED, *shard as u64, 0),
        ServeError::DimensionMismatch { expected, got } => {
            (code::DIMENSION_MISMATCH, *expected as u64, *got as u64)
        }
        ServeError::ShutDown => (code::SHUT_DOWN, 0, 0),
        ServeError::EmptyBatch => (code::EMPTY_BATCH, 0, 0),
        ServeError::DeadlineExceeded => (code::DEADLINE_EXCEEDED, 0, 0),
        ServeError::IncompatibleCheckpoint { session, .. } => {
            (code::INCOMPATIBLE_CHECKPOINT, session.0, 0)
        }
        ServeError::MissingCheckpoint { session } => (code::MISSING_CHECKPOINT, session.0, 0),
        // `ServeError` is non_exhaustive: map variants this build does not
        // know onto the explicit unknown code rather than failing.
        _ => (code::UNKNOWN, 0, 0),
    }
}

/// Decodes a wire `(code, a, b)` triple back into the client-facing error.
///
/// Codes that round-trip onto [`ServeError`] become
/// [`NetError::Rejected`]; anything else (including the reserved restore
/// codes, whose `RestoreError` detail does not cross the wire) surfaces as
/// [`NetError::Remote`] so no information is silently dropped.
pub(crate) fn decode_rejection(code: u16, a: u64, b: u64) -> NetError {
    match code {
        code::OVERLOADED => NetError::Rejected(ServeError::Overloaded { shard: a as usize }),
        code::DIMENSION_MISMATCH => NetError::Rejected(ServeError::DimensionMismatch {
            expected: a as usize,
            got: b as usize,
        }),
        code::SHUT_DOWN => NetError::Rejected(ServeError::ShutDown),
        code::EMPTY_BATCH => NetError::Rejected(ServeError::EmptyBatch),
        code::DEADLINE_EXCEEDED => NetError::Rejected(ServeError::DeadlineExceeded),
        code::VERSION_MISMATCH => NetError::Protocol(ProtocolError::VersionMismatch {
            ours: a as u16,
            theirs: b as u16,
        }),
        code::SCHEMA_MISMATCH => {
            NetError::Protocol(ProtocolError::SchemaMismatch { expected: a, got: b })
        }
        code::MALFORMED_FRAME => {
            NetError::Protocol(ProtocolError::MalformedFrame { kind: a as u8 })
        }
        code::UNEXPECTED_FRAME => {
            NetError::Protocol(ProtocolError::UnexpectedFrame { kind: a as u8 })
        }
        code::FRAME_TOO_LARGE => NetError::Protocol(ProtocolError::FrameTooLarge { len: a as u32 }),
        other => NetError::Remote { code: other, a, b },
    }
}

/// Encodes a per-slot step failure as its wire `(code, a, b)` triple.
pub(crate) fn encode_step_error(error: &StepError) -> (u16, u64, u64) {
    match error {
        StepError::SessionPoisoned { session } => (code::SESSION_POISONED, session.0, 0),
        StepError::WorkerFailed { shard } => (code::WORKER_FAILED, *shard as u64, 0),
        _ => (code::UNKNOWN, 0, 0),
    }
}

/// Decodes a per-slot step failure; `None` when the code is not a known
/// step code (the caller surfaces it as a protocol-level problem).
pub(crate) fn decode_step_error(code: u16, a: u64, _b: u64) -> Option<StepError> {
    match code {
        code::SESSION_POISONED => Some(StepError::SessionPoisoned { session: SessionId(a) }),
        code::WORKER_FAILED => Some(StepError::WorkerFailed { shard: a as usize }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_errors_round_trip_over_the_wire() {
        let cases = [
            ServeError::Overloaded { shard: 3 },
            ServeError::DimensionMismatch { expected: 8, got: 5 },
            ServeError::ShutDown,
            ServeError::EmptyBatch,
            ServeError::DeadlineExceeded,
        ];
        for error in cases {
            let (code, a, b) = encode_serve_error(&error);
            match decode_rejection(code, a, b) {
                NetError::Rejected(back) => assert_eq!(back, error),
                other => panic!("expected Rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn step_errors_round_trip_over_the_wire() {
        let cases = [
            StepError::SessionPoisoned { session: SessionId(42) },
            StepError::WorkerFailed { shard: 2 },
        ];
        for error in cases {
            let (code, a, b) = encode_step_error(&error);
            assert_eq!(decode_step_error(code, a, b), Some(error));
        }
        assert_eq!(decode_step_error(code::UNKNOWN, 0, 0), None);
    }

    #[test]
    fn restore_codes_surface_as_remote_not_silently_dropped() {
        let (code, a, b) =
            encode_serve_error(&ServeError::MissingCheckpoint { session: SessionId(7) });
        match decode_rejection(code, a, b) {
            NetError::Remote { code: c, a: 7, .. } => assert_eq!(c, code),
            other => panic!("expected Remote, got {other:?}"),
        }
    }

    #[test]
    fn errors_format_and_chain() {
        let err = NetError::Rejected(ServeError::Overloaded { shard: 1 });
        assert!(err.to_string().contains("shard 1"));
        assert!(std::error::Error::source(&err).is_some());
        let err = NetError::Protocol(ProtocolError::Truncated);
        assert!(err.to_string().contains("mid-frame"));
    }
}
