//! Length-prefixed frame I/O and payload (de)serialisation.
//!
//! Integers are little-endian; floats are IEEE-754 bit patterns carried as
//! `u64`, so feature vectors and similarity values cross the wire
//! bit-exactly (a prerequisite for the loopback parity guarantee — the
//! served pipeline must see the identical `f64`s a local one would).

use std::io::{ErrorKind, Read, Write};

use crate::error::{NetError, ProtocolError};
use crate::wire::MAX_FRAME_LEN;

/// One decoded frame: the kind byte and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Frame {
    pub kind: u8,
    pub payload: Vec<u8>,
}

/// Writes `[len][kind][payload]` and flushes.
pub(crate) fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> Result<(), NetError> {
    let len = 1 + payload.len();
    if len > MAX_FRAME_LEN as usize {
        return Err(ProtocolError::FrameTooLarge { len: len as u32 }.into());
    }
    let mut header = [0u8; 5];
    header[..4].copy_from_slice(&(len as u32).to_le_bytes());
    header[4] = kind;
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` is a clean close (EOF exactly on a frame
/// boundary); EOF anywhere inside a frame is [`ProtocolError::Truncated`].
pub(crate) fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, NetError> {
    let mut len_bytes = [0u8; 4];
    match read_exact_or_eof(r, &mut len_bytes)? {
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge { len }.into());
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind).map_err(truncated)?;
    let mut payload = vec![0u8; len as usize - 1];
    r.read_exact(&mut payload).map_err(truncated)?;
    Ok(Some(Frame { kind: kind[0], payload }))
}

enum ReadOutcome {
    Filled,
    CleanEof,
}

/// `read_exact`, except EOF *before the first byte* is a clean close.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::CleanEof),
            Ok(0) => return Err(ProtocolError::Truncated.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Filled)
}

fn truncated(e: std::io::Error) -> NetError {
    if e.kind() == ErrorKind::UnexpectedEof {
        ProtocolError::Truncated.into()
    } else {
        e.into()
    }
}

/// Append-only payload builder.
#[derive(Default)]
pub(crate) struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a received payload. Every read is bounds-checked; running
/// past the end or leaving bytes behind is a malformed frame, attributed
/// to the frame kind the cursor was opened for.
pub(crate) struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
    kind: u8,
}

impl<'a> PayloadReader<'a> {
    pub fn new(kind: u8, buf: &'a [u8]) -> Self {
        Self { buf, pos: 0, kind }
    }

    fn malformed(&self) -> NetError {
        ProtocolError::MalformedFrame { kind: self.kind }.into()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(self.malformed()),
        }
    }

    pub fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, NetError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    pub fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn f64(&mut self) -> Result<f64, NetError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        self.take(n)
    }

    /// Declares decoding complete; trailing bytes are a malformed frame.
    pub fn expect_end(&self) -> Result<(), NetError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(self.malformed())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0x10, &[1, 2, 3]).unwrap();
        write_frame(&mut wire, 0x30, &[]).unwrap();
        let mut r = wire.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some(Frame { kind: 0x10, payload: vec![1, 2, 3] })
        );
        assert_eq!(read_frame(&mut r).unwrap(), Some(Frame { kind: 0x30, payload: vec![] }));
        assert_eq!(read_frame(&mut r).unwrap(), None, "EOF on a boundary is clean");
    }

    #[test]
    fn eof_inside_a_frame_is_truncation() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0x10, &[1, 2, 3, 4]).unwrap();
        for cut in 1..wire.len() {
            let mut r = &wire[..cut];
            match read_frame(&mut r) {
                Err(NetError::Protocol(ProtocolError::Truncated)) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_and_zero_lengths_are_refused() {
        let mut wire = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        wire.push(0x10);
        match read_frame(&mut wire.as_slice()) {
            Err(NetError::Protocol(ProtocolError::FrameTooLarge { .. })) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        let zero = 0u32.to_le_bytes();
        match read_frame(&mut zero.as_slice()) {
            Err(NetError::Protocol(ProtocolError::FrameTooLarge { len: 0 })) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn payload_scalars_round_trip_bit_exactly() {
        let mut w = PayloadWriter::new();
        w.u8(7).u16(65500).u32(123456).u64(u64::MAX).f64(-0.1).f64(f64::NAN);
        let buf = w.finish();
        let mut r = PayloadReader::new(0x10, &buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65500);
        assert_eq!(r.u32().unwrap(), 123456);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        r.expect_end().unwrap();
    }

    #[test]
    fn short_and_trailing_payloads_are_malformed() {
        let buf = [1u8, 2];
        let mut r = PayloadReader::new(0x11, &buf);
        assert!(matches!(
            r.u32(),
            Err(NetError::Protocol(ProtocolError::MalformedFrame { kind: 0x11 }))
        ));
        let mut r = PayloadReader::new(0x11, &buf);
        r.u8().unwrap();
        assert!(r.expect_end().is_err(), "one byte left behind");
    }
}
