//! The wire protocol: constants, frame kinds and stable error codes.
//!
//! ## Frame layout
//!
//! Every frame is length-prefixed, little-endian:
//!
//! ```text
//! [len: u32][kind: u8][payload: len-1 bytes]
//! ```
//!
//! `len` counts the kind byte plus the payload, so an empty-payload frame
//! has `len == 1`. A reader that sees EOF *between* frames has a clean
//! close; EOF *inside* a frame is a truncation error. Frames larger than
//! [`MAX_FRAME_LEN`] are refused without being read.
//!
//! ## Conversation shape
//!
//! One request is in flight per connection at a time:
//!
//! ```text
//! client                          server
//!   | -- CLIENT_HELLO ------------> |   magic, version, schema
//!   | <------------ SERVER_HELLO -- |   (or ERROR + close)
//!   | -- SUBMIT ------------------> |
//!   | <-- REPLY / REJECTED -------- |   per-slot results / eager refusal
//!   | -- SNAPSHOTS ---------------> |
//!   | <--------- SNAPSHOTS_REPLY -- |
//!   | -- GOODBYE -----------------> |
//!   | <-------------- GOODBYE ----- |   then both sides close
//! ```
//!
//! The server also sends an unsolicited `GOODBYE` when its front-end shuts
//! down, so a client mid-conversation observes an orderly close
//! ([`crate::NetError::ServerClosed`]) rather than a reset.

/// Magic bytes opening both hello frames.
pub const MAGIC: [u8; 4] = *b"FCSM";

/// Version of the frame grammar. Bumped on any incompatible change;
/// mismatches are refused at handshake with [`code::VERSION_MISMATCH`].
pub const PROTOCOL_VERSION: u16 = 1;

/// Hard cap on `len` (kind + payload) a peer will read: 16 MiB.
///
/// At 8 bytes per feature this admits batches of ~2M scalar features —
/// far beyond any sane submit — while bounding what a malformed or
/// malicious length prefix can make the peer allocate.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Frame kinds (the `kind` byte).
pub mod kind {
    /// Client → server: magic, protocol version, expected schema.
    pub const CLIENT_HELLO: u8 = 0x01;
    /// Server → client: magic, protocol version, authoritative schema.
    pub const SERVER_HELLO: u8 = 0x02;
    /// Client → server: one batch of observations.
    pub const SUBMIT: u8 = 0x10;
    /// Server → client: per-slot results for an accepted batch.
    pub const REPLY: u8 = 0x11;
    /// Server → client: the batch was refused eagerly (backpressure,
    /// validation, shutdown); nothing was enqueued and the client may
    /// retry the batch verbatim.
    pub const REJECTED: u8 = 0x12;
    /// Client → server: drain accumulated session snapshots.
    pub const SNAPSHOTS: u8 = 0x20;
    /// Server → client: snapshot summaries.
    pub const SNAPSHOTS_REPLY: u8 = 0x21;
    /// Either direction: orderly close. A client sends it before
    /// disconnecting; a server answers it, and also sends it unsolicited
    /// when the front-end shuts down.
    pub const GOODBYE: u8 = 0x30;
    /// Either direction: a protocol violation; the sender closes after.
    pub const ERROR: u8 = 0x40;
}

/// Stable error codes carried by `REJECTED`, `REPLY` error slots and
/// `ERROR` frames, with two optional `u64` detail operands `a`/`b`.
///
/// The code space is partitioned so a reader can classify an unknown code:
/// `1..=31` submit-path refusals ([`ficsum_serve::ServeError`]), `32..=63`
/// per-slot step failures ([`ficsum_serve::StepError`]), `128..=255`
/// protocol violations. Codes are append-only: a value is never reused
/// with a different meaning.
pub mod code {
    /// A shard queue was full (`a` = shard). Transient: back off, retry.
    pub const OVERLOADED: u16 = 1;
    /// Feature-count mismatch (`a` = expected, `b` = got).
    pub const DIMENSION_MISMATCH: u16 = 2;
    /// The serving core has shut down.
    pub const SHUT_DOWN: u16 = 3;
    /// The batch contained no requests.
    pub const EMPTY_BATCH: u16 = 4;
    /// A deadline submit timed out before the batch could be enqueued.
    pub const DEADLINE_EXCEEDED: u16 = 5;
    /// A restore checkpoint did not fit the server template (`a` =
    /// session). Not produced on the submit path; reserved.
    pub const INCOMPATIBLE_CHECKPOINT: u16 = 6;
    /// A restore snapshot carried no checkpoint (`a` = session). Not
    /// produced on the submit path; reserved.
    pub const MISSING_CHECKPOINT: u16 = 7;

    /// The request's session is quarantined (`a` = session).
    pub const SESSION_POISONED: u16 = 32;
    /// The owning shard worker failed permanently (`a` = shard).
    pub const WORKER_FAILED: u16 = 33;

    /// Peer speaks a different protocol version (`a` = ours, `b` = theirs).
    pub const VERSION_MISMATCH: u16 = 128;
    /// Client-declared schema disagrees with the server template
    /// (`a`/`b` = expected/got of whichever field mismatched first).
    pub const SCHEMA_MISMATCH: u16 = 129;
    /// A frame's payload could not be decoded.
    pub const MALFORMED_FRAME: u16 = 130;
    /// A structurally valid frame arrived where it cannot appear.
    pub const UNEXPECTED_FRAME: u16 = 131;
    /// A frame announced a length beyond [`super::MAX_FRAME_LEN`].
    pub const FRAME_TOO_LARGE: u16 = 132;

    /// A code this build does not know (forward compatibility).
    pub const UNKNOWN: u16 = 0xFFFF;
}

/// Submit admission modes (first payload byte of a `SUBMIT` frame).
pub mod submit_mode {
    /// Non-blocking `try_submit`: a full shard refuses immediately.
    pub const TRY: u8 = 0;
    /// `submit_with_deadline`: block up to the carried budget (ms) for
    /// queue space before refusing with
    /// [`super::code::DEADLINE_EXCEEDED`].
    pub const DEADLINE: u8 = 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_space_is_partitioned() {
        // Submit-path refusals.
        for c in [
            code::OVERLOADED,
            code::DIMENSION_MISMATCH,
            code::SHUT_DOWN,
            code::EMPTY_BATCH,
            code::DEADLINE_EXCEEDED,
            code::INCOMPATIBLE_CHECKPOINT,
            code::MISSING_CHECKPOINT,
        ] {
            assert!((1..=31).contains(&c));
        }
        // Step failures.
        for c in [code::SESSION_POISONED, code::WORKER_FAILED] {
            assert!((32..=63).contains(&c));
        }
        // Protocol violations.
        for c in [
            code::VERSION_MISMATCH,
            code::SCHEMA_MISMATCH,
            code::MALFORMED_FRAME,
            code::UNEXPECTED_FRAME,
            code::FRAME_TOO_LARGE,
        ] {
            assert!((128..=255).contains(&c));
        }
    }

    #[test]
    fn frame_kinds_are_distinct() {
        let kinds = [
            kind::CLIENT_HELLO,
            kind::SERVER_HELLO,
            kind::SUBMIT,
            kind::REPLY,
            kind::REJECTED,
            kind::SNAPSHOTS,
            kind::SNAPSHOTS_REPLY,
            kind::GOODBYE,
            kind::ERROR,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
