//! Wire form of session snapshots.
//!
//! Full [`SessionSnapshot`]s embed a [`ficsum_core::SessionCheckpoint`] —
//! deliberately opaque state whose serialisation is out of scope for the
//! wire protocol (checkpoints move between servers in-process, via
//! [`ficsum_serve::ServeOptions::with_restore`]). What crosses the wire is
//! the cheap-to-inspect summary: enough for a remote operator to see what
//! each drained session learned and whether its state was capturable.

use ficsum_serve::{EvictReason, SessionId, SessionSnapshot};

use crate::codec::{PayloadReader, PayloadWriter};
use crate::error::NetError;

/// Client-side view of one drained [`SessionSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct SnapshotSummary {
    /// The session the snapshot captured.
    pub session: SessionId,
    /// Observations the session had processed.
    pub steps: u64,
    /// Why the snapshot was taken.
    pub reason: EvictReason,
    /// Concept active when the capture happened.
    pub active_concept: u64,
    /// Concepts in the session's repository at capture.
    pub stored_concepts: u64,
    /// Whether the snapshot carries a full restorable checkpoint
    /// (server-side; checkpoints do not cross the wire).
    pub has_checkpoint: bool,
}

impl SnapshotSummary {
    /// The wire summary of a full server-side snapshot.
    pub fn of(snapshot: &SessionSnapshot) -> Self {
        Self {
            session: snapshot.session,
            steps: snapshot.steps,
            reason: snapshot.reason,
            active_concept: snapshot.active_concept as u64,
            stored_concepts: snapshot.stored_concepts.len() as u64,
            has_checkpoint: snapshot.checkpoint.is_some(),
        }
    }
}

fn reason_code(reason: EvictReason) -> u8 {
    match reason {
        EvictReason::Capacity => 0,
        EvictReason::Shutdown => 1,
        EvictReason::Poisoned => 2,
        // Forward compatibility with reasons this build does not know.
        _ => u8::MAX,
    }
}

fn reason_of(code: u8) -> EvictReason {
    match code {
        0 => EvictReason::Capacity,
        2 => EvictReason::Poisoned,
        // Unknown codes degrade to the mildest reason rather than failing
        // the whole summary frame.
        _ => EvictReason::Shutdown,
    }
}

/// Encodes a `SNAPSHOTS_REPLY` payload.
pub(crate) fn encode_summaries(summaries: &[SnapshotSummary]) -> Vec<u8> {
    let mut payload = PayloadWriter::new();
    payload.u32(summaries.len() as u32);
    for summary in summaries {
        payload
            .u64(summary.session.0)
            .u64(summary.steps)
            .u8(reason_code(summary.reason))
            .u64(summary.active_concept)
            .u64(summary.stored_concepts)
            .u8(summary.has_checkpoint as u8);
    }
    payload.finish()
}

/// Decodes a `SNAPSHOTS_REPLY` payload.
pub(crate) fn decode_summaries(kind: u8, payload: &[u8]) -> Result<Vec<SnapshotSummary>, NetError> {
    let mut r = PayloadReader::new(kind, payload);
    let n = r.u32()? as usize;
    let mut summaries = Vec::with_capacity(n.min(payload.len() / 16));
    for _ in 0..n {
        let session = SessionId(r.u64()?);
        let steps = r.u64()?;
        let reason = reason_of(r.u8()?);
        let active_concept = r.u64()?;
        let stored_concepts = r.u64()?;
        let has_checkpoint = r.u8()? != 0;
        summaries.push(SnapshotSummary {
            session,
            steps,
            reason,
            active_concept,
            stored_concepts,
            has_checkpoint,
        });
    }
    r.expect_end()?;
    Ok(summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::kind;

    #[test]
    fn summaries_round_trip() {
        let summaries = vec![
            SnapshotSummary {
                session: SessionId(9),
                steps: 1_000,
                reason: EvictReason::Capacity,
                active_concept: 3,
                stored_concepts: 4,
                has_checkpoint: true,
            },
            SnapshotSummary {
                session: SessionId(u64::MAX),
                steps: 0,
                reason: EvictReason::Poisoned,
                active_concept: 0,
                stored_concepts: 1,
                has_checkpoint: false,
            },
        ];
        let payload = encode_summaries(&summaries);
        let decoded = decode_summaries(kind::SNAPSHOTS_REPLY, &payload).unwrap();
        assert_eq!(decoded, summaries);
    }

    #[test]
    fn truncated_summaries_are_malformed() {
        let payload = encode_summaries(&[SnapshotSummary {
            session: SessionId(1),
            steps: 5,
            reason: EvictReason::Shutdown,
            active_concept: 0,
            stored_concepts: 0,
            has_checkpoint: true,
        }]);
        assert!(decode_summaries(kind::SNAPSHOTS_REPLY, &payload[..payload.len() - 1]).is_err());
    }
}
