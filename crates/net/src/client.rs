//! The blocking client: one reusable connection, the in-process submit
//! vocabulary, typed errors.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ficsum_serve::{RetryPolicy, ServeError, StepError, Submit};

use crate::codec::{read_frame, write_frame, Frame, PayloadReader, PayloadWriter};
use crate::error::{decode_rejection, decode_step_error, NetError, ProtocolError};
use crate::server::encode_submit_batch;
use crate::snapshot::{decode_summaries, SnapshotSummary};
use crate::wire::{kind, submit_mode, MAGIC, PROTOCOL_VERSION};

/// Client-side view of one processed observation.
///
/// Mirrors [`ficsum_core::StepOutcome`] field-for-field. It is a distinct
/// type because `StepOutcome` is constructed only by the framework (its
/// values *prove* a pipeline step happened); a remote outcome instead
/// attests what the server's pipeline reported over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct RemoteOutcome {
    /// Prequential prediction made before training on the observation.
    pub prediction: usize,
    /// Whether a concept drift was detected at this observation.
    pub drift: bool,
    /// Whether model selection switched the active concept.
    pub concept_switched: bool,
    /// Concept active after this observation.
    pub active_concept: u64,
}

/// What one reply slot resolves to on the client: the remote step's
/// outcome, or the serving core's reason it could not produce one.
pub type RemoteStepResult = Result<RemoteOutcome, StepError>;

/// A blocking connection to a [`crate::NetServer`].
///
/// The connection is established (and the handshake completed) at
/// construction and reused across calls; one request is in flight at a
/// time. All submit methods mirror the in-process
/// [`ficsum_serve::StreamServer`] family: a refused batch has enqueued
/// **zero** requests server-side and may be retried verbatim.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    n_features: usize,
    n_classes: usize,
    shards: usize,
}

impl NetClient {
    /// Connects and discovers the server's stream schema from its hello.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Self::handshake(addr, 0, 0)
    }

    /// Connects, declaring the schema the caller expects; the server
    /// refuses the handshake ([`ProtocolError::SchemaMismatch`]) if its
    /// template disagrees, so a misconfigured client fails at connect
    /// rather than on its first batch.
    pub fn connect_expecting(
        addr: impl ToSocketAddrs,
        n_features: usize,
        n_classes: usize,
    ) -> Result<Self, NetError> {
        Self::handshake(addr, n_features, n_classes)
    }

    fn handshake(
        addr: impl ToSocketAddrs,
        n_features: usize,
        n_classes: usize,
    ) -> Result<Self, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut hello = PayloadWriter::new();
        hello
            .bytes(&MAGIC)
            .u16(PROTOCOL_VERSION)
            .u32(n_features as u32)
            .u32(n_classes as u32);
        write_frame(&mut stream, kind::CLIENT_HELLO, &hello.finish())?;
        let frame = expect_frame(&mut stream)?;
        if frame.kind != kind::SERVER_HELLO {
            return Err(fail_frame(&frame, kind::SERVER_HELLO));
        }
        let mut r = PayloadReader::new(frame.kind, &frame.payload);
        if r.bytes(4)? != MAGIC {
            return Err(ProtocolError::BadMagic.into());
        }
        let version = r.u16()?;
        if version != PROTOCOL_VERSION {
            return Err(ProtocolError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: version,
            }
            .into());
        }
        let n_features = r.u32()? as usize;
        let n_classes = r.u32()? as usize;
        let shards = r.u32()? as usize;
        r.expect_end()?;
        Ok(Self { stream, n_features, n_classes, shards })
    }

    /// Features per observation the server's template was built for.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Label classes the server's template was built for.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Shard workers behind the server.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Submits a batch with `try_submit` semantics: the server refuses
    /// immediately ([`NetError::Rejected`] with
    /// [`ServeError::Overloaded`]) rather than queueing behind a full
    /// shard. On success the per-request results arrive in submission
    /// order.
    pub fn submit(&mut self, batch: &[Submit]) -> Result<Vec<RemoteStepResult>, NetError> {
        self.validate(batch)?;
        self.roundtrip(submit_mode::TRY, 0, batch)
    }

    /// Submits a batch, letting the server block up to `deadline` for
    /// queue space ([`ficsum_serve::StreamServer::submit_with_deadline`]).
    /// Refused with [`ServeError::DeadlineExceeded`] when space never
    /// opened; nothing was enqueued.
    pub fn submit_with_deadline(
        &mut self,
        batch: &[Submit],
        deadline: Duration,
    ) -> Result<Vec<RemoteStepResult>, NetError> {
        self.validate(batch)?;
        let ms = deadline.as_millis().min(u64::MAX as u128) as u64;
        self.roundtrip(submit_mode::DEADLINE, ms, batch)
    }

    /// Submits a batch, retrying transient refusals
    /// ([`ServeError::Overloaded`]) under `policy`'s bounded exponential
    /// backoff — the client-side mirror of
    /// [`ficsum_serve::StreamServer::submit_with_retry`]. Non-transient
    /// refusals, protocol errors and a server goodbye fail immediately.
    pub fn submit_with_retry(
        &mut self,
        batch: &[Submit],
        policy: RetryPolicy,
    ) -> Result<Vec<RemoteStepResult>, NetError> {
        self.validate(batch)?;
        let attempts = policy.max_attempts.max(1);
        let mut backoff = policy.initial_backoff;
        let mut last = NetError::Rejected(ServeError::EmptyBatch);
        for attempt in 0..attempts {
            match self.roundtrip(submit_mode::TRY, 0, batch) {
                Ok(results) => return Ok(results),
                Err(refused @ NetError::Rejected(ServeError::Overloaded { .. })) => {
                    last = refused;
                    if attempt + 1 < attempts {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(policy.max_backoff);
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Err(last)
    }

    /// Drains the server's accumulated session snapshots, returning their
    /// wire summaries (see [`SnapshotSummary`]; full checkpoints stay
    /// server-side). Shares the exactly-once contract of
    /// [`ficsum_serve::StreamServer::drain_snapshots`] with every other
    /// drainer of the same core.
    pub fn snapshot_summaries(&mut self) -> Result<Vec<SnapshotSummary>, NetError> {
        write_frame(&mut self.stream, kind::SNAPSHOTS, &[])?;
        let frame = expect_frame(&mut self.stream)?;
        if frame.kind != kind::SNAPSHOTS_REPLY {
            return Err(fail_frame(&frame, kind::SNAPSHOTS_REPLY));
        }
        decode_summaries(frame.kind, &frame.payload)
    }

    /// Says goodbye and closes the connection. The server keeps running;
    /// this releases only this client's handler.
    pub fn shutdown(mut self) -> Result<(), NetError> {
        write_frame(&mut self.stream, kind::GOODBYE, &[])?;
        let frame = expect_frame(&mut self.stream)?;
        if frame.kind == kind::GOODBYE {
            Ok(())
        } else {
            Err(fail_frame(&frame, kind::GOODBYE))
        }
    }

    /// Local mirror of the server's eager validation, saving a round trip
    /// for batches the server would certainly refuse.
    fn validate(&self, batch: &[Submit]) -> Result<(), NetError> {
        if batch.is_empty() {
            return Err(NetError::Rejected(ServeError::EmptyBatch));
        }
        for submit in batch {
            if submit.features.len() != self.n_features {
                return Err(NetError::Rejected(ServeError::DimensionMismatch {
                    expected: self.n_features,
                    got: submit.features.len(),
                }));
            }
        }
        Ok(())
    }

    /// One submit round trip: write the batch, decode `REPLY`, `REJECTED`
    /// or an unsolicited `GOODBYE` (server front-end shut down mid-
    /// conversation → [`NetError::ServerClosed`], so a client looping over
    /// batches observes an orderly end rather than a broken socket).
    fn roundtrip(
        &mut self,
        mode: u8,
        deadline_ms: u64,
        batch: &[Submit],
    ) -> Result<Vec<RemoteStepResult>, NetError> {
        let payload = encode_submit_batch(mode, deadline_ms, batch);
        write_frame(&mut self.stream, kind::SUBMIT, &payload)?;
        let frame = expect_frame(&mut self.stream)?;
        match frame.kind {
            kind::REPLY => decode_reply(&frame),
            kind::REJECTED => {
                let mut r = PayloadReader::new(frame.kind, &frame.payload);
                let (code, a, b) = (r.u16()?, r.u64()?, r.u64()?);
                r.expect_end()?;
                Err(decode_rejection(code, a, b))
            }
            _ => Err(fail_frame(&frame, kind::REPLY)),
        }
    }
}

/// Reads one frame; EOF (server gone without goodbye) is
/// [`ProtocolError::Truncated`] at this layer — the conversation expected
/// an answer.
fn expect_frame(stream: &mut TcpStream) -> Result<Frame, NetError> {
    read_frame(stream)?.ok_or_else(|| ProtocolError::Truncated.into())
}

/// Classifies a frame that was not the `expected` kind: goodbyes and
/// error reports become their typed errors, anything else is a protocol
/// violation.
fn fail_frame(frame: &Frame, expected: u8) -> NetError {
    debug_assert_ne!(frame.kind, expected);
    match frame.kind {
        kind::GOODBYE => NetError::ServerClosed,
        kind::ERROR => {
            let mut r = PayloadReader::new(frame.kind, &frame.payload);
            match (|| Ok::<_, NetError>((r.u16()?, r.u64()?, r.u64()?)))() {
                Ok((code, a, b)) => decode_rejection(code, a, b),
                Err(malformed) => malformed,
            }
        }
        other => ProtocolError::UnexpectedFrame { kind: other }.into(),
    }
}

fn decode_reply(frame: &Frame) -> Result<Vec<RemoteStepResult>, NetError> {
    let mut r = PayloadReader::new(frame.kind, &frame.payload);
    let n = r.u32()? as usize;
    let mut results = Vec::with_capacity(n.min(frame.payload.len() / 8));
    for _ in 0..n {
        match r.u8()? {
            0 => {
                let prediction = r.u64()? as usize;
                let drift = r.u8()? != 0;
                let concept_switched = r.u8()? != 0;
                let active_concept = r.u64()?;
                results.push(Ok(RemoteOutcome {
                    prediction,
                    drift,
                    concept_switched,
                    active_concept,
                }));
            }
            1 => {
                let (code, a, b) = (r.u16()?, r.u64()?, r.u64()?);
                let step = decode_step_error(code, a, b)
                    .ok_or(ProtocolError::MalformedFrame { kind: frame.kind })?;
                results.push(Err(step));
            }
            _ => return Err(ProtocolError::MalformedFrame { kind: frame.kind }.into()),
        }
    }
    r.expect_end()?;
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_serve::SessionId;

    #[test]
    fn goodbye_and_error_frames_classify_typed() {
        let goodbye = Frame { kind: kind::GOODBYE, payload: vec![] };
        assert!(matches!(fail_frame(&goodbye, kind::REPLY), NetError::ServerClosed));

        let mut payload = PayloadWriter::new();
        payload.u16(crate::wire::code::SHUT_DOWN).u64(0).u64(0);
        let error = Frame { kind: kind::ERROR, payload: payload.finish() };
        assert!(matches!(
            fail_frame(&error, kind::REPLY),
            NetError::Rejected(ServeError::ShutDown)
        ));

        let junk = Frame { kind: 0x7f, payload: vec![] };
        assert!(matches!(
            fail_frame(&junk, kind::REPLY),
            NetError::Protocol(ProtocolError::UnexpectedFrame { kind: 0x7f })
        ));
    }

    #[test]
    fn reply_slots_decode_outcomes_and_step_errors() {
        let mut payload = PayloadWriter::new();
        payload.u32(2);
        payload.u8(0).u64(3).u8(1).u8(0).u64(7);
        let (code, a, b) =
            crate::error::encode_step_error(&StepError::SessionPoisoned { session: SessionId(5) });
        payload.u8(1).u16(code).u64(a).u64(b);
        let frame = Frame { kind: kind::REPLY, payload: payload.finish() };
        let results = decode_reply(&frame).unwrap();
        assert_eq!(
            results[0],
            Ok(RemoteOutcome {
                prediction: 3,
                drift: true,
                concept_switched: false,
                active_concept: 7
            })
        );
        assert_eq!(results[1], Err(StepError::SessionPoisoned { session: SessionId(5) }));
    }

    #[test]
    fn reply_with_unknown_slot_tag_is_malformed() {
        let mut payload = PayloadWriter::new();
        payload.u32(1).u8(9);
        let frame = Frame { kind: kind::REPLY, payload: payload.finish() };
        assert!(matches!(
            decode_reply(&frame),
            Err(NetError::Protocol(ProtocolError::MalformedFrame { .. }))
        ));
    }
}
