//! Concept generators: a sampler/labeller pair (or a joint generator)
//! producing observations from one stationary distribution.

use ficsum_stream::Observation;
use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

use crate::labeller::Labeller;
use crate::sampler::FeatureSampler;

/// A generator of observations from a single stationary concept.
pub trait ConceptGenerator: Send {
    /// Feature dimensionality.
    fn dims(&self) -> usize;
    /// Number of classes.
    fn n_classes(&self) -> usize;
    /// Draws the next observation (concept annotation left at 0; the
    /// recurring-stream composer sets it).
    fn generate(&mut self) -> Observation;
    /// Called at segment boundaries (resets temporal state, not the RNG).
    fn restart_segment(&mut self) {}
}

/// The standard concept shape: features from a sampler, labels from a
/// labeller, with optional label noise.
pub struct LabelledConcept<S, L> {
    sampler: S,
    labeller: L,
    label_noise: f64,
    rng: Xoshiro256pp,
}

impl<S: FeatureSampler, L: Labeller> LabelledConcept<S, L> {
    /// Couples `sampler` and `labeller`; `label_noise` is the probability of
    /// replacing the true label with a uniformly random one.
    pub fn new(sampler: S, labeller: L, label_noise: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&label_noise));
        Self { sampler, labeller, label_noise, rng: Xoshiro256pp::seed_from_u64(seed) }
    }
}

impl<S: FeatureSampler, L: Labeller> ConceptGenerator for LabelledConcept<S, L> {
    fn dims(&self) -> usize {
        self.sampler.dims()
    }

    fn n_classes(&self) -> usize {
        self.labeller.n_classes()
    }

    fn generate(&mut self) -> Observation {
        let x = self.sampler.sample();
        let mut y = self.labeller.label(&x);
        if self.label_noise > 0.0 && self.rng.random::<f64>() < self.label_noise {
            y = self.rng.random_range(0..self.labeller.n_classes());
        }
        Observation::new(x, y)
    }

    fn restart_segment(&mut self) {
        self.sampler.restart_segment();
    }
}

/// The radial-basis-function generator (RBF): features and labels drawn
/// jointly from a mixture of Gaussian "centroids", each owning a class.
///
/// Reseeding the centroid layout is the concept-drift mechanism of the RBF
/// dataset: the labelling function (and the feature density) changes with
/// the centroids.
pub struct RbfConcept {
    centroids: Vec<(Vec<f64>, usize, f64, f64)>, // (centre, class, radius, weight)
    cumulative: Vec<f64>,
    dims: usize,
    n_classes: usize,
    rng: Xoshiro256pp,
}

impl RbfConcept {
    /// `n_centroids` Gaussian blobs over `dims` features and `n_classes`
    /// classes; `concept_seed` fixes the layout, `sample_seed` the draws.
    pub fn new(
        dims: usize,
        n_classes: usize,
        n_centroids: usize,
        concept_seed: u64,
        sample_seed: u64,
    ) -> Self {
        assert!(n_centroids >= n_classes && n_classes >= 2);
        let mut layout_rng = Xoshiro256pp::seed_from_u64(concept_seed);
        let centroids: Vec<(Vec<f64>, usize, f64, f64)> = (0..n_centroids)
            .map(|i| {
                let centre: Vec<f64> = (0..dims).map(|_| layout_rng.random()).collect();
                // Assign classes round-robin first so each class exists.
                let class = if i < n_classes { i } else { layout_rng.random_range(0..n_classes) };
                let radius = layout_rng.random_range(0.02..0.12);
                let weight = layout_rng.random_range(0.5..1.5);
                (centre, class, radius, weight)
            })
            .collect();
        let total: f64 = centroids.iter().map(|c| c.3).sum();
        let mut acc = 0.0;
        let cumulative = centroids
            .iter()
            .map(|c| {
                acc += c.3 / total;
                acc
            })
            .collect();
        Self { centroids, cumulative, dims, n_classes, rng: Xoshiro256pp::seed_from_u64(sample_seed) }
    }

    /// Approximate standard normal via the sum of 12 uniforms.
    fn gauss(rng: &mut Xoshiro256pp) -> f64 {
        (0..12).map(|_| rng.random::<f64>()).sum::<f64>() - 6.0
    }
}

impl ConceptGenerator for RbfConcept {
    fn dims(&self) -> usize {
        self.dims
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn generate(&mut self) -> Observation {
        let u: f64 = self.rng.random();
        let idx = self.cumulative.iter().position(|&c| u <= c).unwrap_or(0);
        let (centre, class, radius, _) = &self.centroids[idx];
        let x: Vec<f64> =
            centre.iter().map(|&c| c + Self::gauss(&mut self.rng) * radius).collect();
        Observation::new(x, *class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeller::StaggerLabeller;
    use crate::sampler::UniformSampler;

    #[test]
    fn labelled_concept_labels_match_labeller() {
        let mut c = LabelledConcept::new(
            UniformSampler::new(3, 1),
            StaggerLabeller::new(0),
            0.0,
            2,
        );
        for _ in 0..200 {
            let o = c.generate();
            assert_eq!(o.label, StaggerLabeller::new(0).label(&o.features));
        }
    }

    #[test]
    fn label_noise_flips_some_labels() {
        let mut clean =
            LabelledConcept::new(UniformSampler::new(3, 5), StaggerLabeller::new(2), 0.0, 6);
        let mut noisy =
            LabelledConcept::new(UniformSampler::new(3, 5), StaggerLabeller::new(2), 0.3, 6);
        let mut flips = 0;
        for _ in 0..1000 {
            let (a, b) = (clean.generate(), noisy.generate());
            assert_eq!(a.features, b.features);
            if a.label != b.label {
                flips += 1;
            }
        }
        assert!(flips > 50 && flips < 400, "flips {flips}");
    }

    #[test]
    fn rbf_produces_all_classes_and_bounded_features() {
        let mut rbf = RbfConcept::new(4, 3, 9, 42, 43);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let o = rbf.generate();
            assert_eq!(o.dims(), 4);
            seen.insert(o.label);
            assert!(o.features.iter().all(|v| (-1.0..2.0).contains(v)), "{:?}", o.features);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn rbf_same_concept_seed_same_layout() {
        let mut a = RbfConcept::new(3, 2, 6, 9, 100);
        let mut b = RbfConcept::new(3, 2, 6, 9, 100);
        for _ in 0..50 {
            let (oa, ob) = (a.generate(), b.generate());
            assert_eq!(oa.features, ob.features);
            assert_eq!(oa.label, ob.label);
        }
    }

    #[test]
    fn rbf_different_concepts_have_different_densities() {
        let mut a = RbfConcept::new(3, 2, 6, 1, 50);
        let mut b = RbfConcept::new(3, 2, 6, 2, 50);
        let mean = |c: &mut RbfConcept| -> Vec<f64> {
            let mut acc = vec![0.0; 3];
            for _ in 0..2000 {
                for (s, v) in acc.iter_mut().zip(c.generate().features) {
                    *s += v;
                }
            }
            acc.into_iter().map(|s| s / 2000.0).collect()
        };
        let (ma, mb) = (mean(&mut a), mean(&mut b));
        let dist: f64 = ma.iter().zip(&mb).map(|(x, y)| (x - y).abs()).sum();
        assert!(dist > 0.05, "layouts too similar: {ma:?} vs {mb:?}");
    }
}
