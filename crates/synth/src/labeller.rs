//! Labelling functions: deterministic maps from feature vectors to classes.
//!
//! A concept couples a feature *sampler* with a *labeller*. Changing the
//! labeller between concepts drifts `p(y|X)`; changing the sampler drifts
//! `p(X)`. The classic generators (STAGGER, random tree, hyperplane) are
//! labellers over uniform features.

use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

/// A deterministic labelling function with optional label noise applied by
/// the caller.
pub trait Labeller: Send + Sync {
    /// Label for feature vector `x`.
    fn label(&self, x: &[f64]) -> usize;
    /// Number of classes the labeller produces.
    fn n_classes(&self) -> usize;
}

/// The STAGGER boolean concepts (Schlimmer & Granger 1986).
///
/// Three categorical attributes — size, colour, shape — are encoded as
/// features in `[0, 1)` and discretised into three levels each. The three
/// classic concepts are:
///
/// 0. `size = small AND colour = red`
/// 1. `colour = green OR shape = circle`
/// 2. `size = medium OR size = large`
#[derive(Debug, Clone, Copy)]
pub struct StaggerLabeller {
    /// Which of the three STAGGER rules to apply (0..3).
    pub concept: usize,
}

impl StaggerLabeller {
    /// Rule `concept % 3`.
    pub fn new(concept: usize) -> Self {
        Self { concept: concept % 3 }
    }

    fn level(v: f64) -> usize {
        ((v * 3.0) as usize).min(2)
    }
}

impl Labeller for StaggerLabeller {
    fn label(&self, x: &[f64]) -> usize {
        let size = Self::level(x[0]);
        let colour = Self::level(x[1]);
        let shape = Self::level(x[2]);
        let positive = match self.concept {
            0 => size == 0 && colour == 0,
            1 => colour == 1 || shape == 0,
            _ => size == 1 || size == 2,
        };
        positive as usize
    }

    fn n_classes(&self) -> usize {
        2
    }
}

/// A random decision tree labeller (the RTREE generator).
///
/// A full binary tree of the configured depth with uniformly drawn split
/// features/thresholds and uniformly drawn leaf classes, over features in
/// `[0, 1)`. Reseeding produces a fresh labelling function — the concept
/// drift mechanism of the RTREE datasets.
#[derive(Debug, Clone)]
pub struct RandomTreeLabeller {
    splits: Vec<(usize, f64)>, // heap layout: node i has children 2i+1, 2i+2
    leaves: Vec<usize>,
    depth: usize,
    n_classes: usize,
}

impl RandomTreeLabeller {
    /// Random tree over `n_features` inputs, `n_classes` labels, given depth.
    pub fn new(n_features: usize, n_classes: usize, depth: usize, seed: u64) -> Self {
        Self::with_pool(n_features, n_features, n_classes, depth, seed)
    }

    /// Random tree whose splits only use a random subset of `pool`
    /// *informative* features. Real classification datasets rarely spread
    /// their signal across every input; restricting the pool keeps the
    /// labelling learnable when `n_features` is large.
    pub fn with_pool(
        n_features: usize,
        pool: usize,
        n_classes: usize,
        depth: usize,
        seed: u64,
    ) -> Self {
        assert!(n_features > 0 && n_classes >= 2 && depth >= 1);
        let pool = pool.clamp(1, n_features);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        // Choose the informative subset.
        let mut all: Vec<usize> = (0..n_features).collect();
        for i in (1..all.len()).rev() {
            let j = rng.random_range(0..=i);
            all.swap(i, j);
        }
        let informative = &all[..pool];
        let n_internal = (1usize << depth) - 1;
        let n_leaves = 1usize << depth;
        let splits = (0..n_internal)
            .map(|_| {
                (informative[rng.random_range(0..pool)], rng.random_range(0.2..0.8))
            })
            .collect();
        // Guarantee every class appears in some leaf so streams are
        // class-balanced enough to learn.
        let mut leaves: Vec<usize> = (0..n_leaves).map(|i| i % n_classes).collect();
        for i in (1..n_leaves).rev() {
            let j = rng.random_range(0..=i);
            leaves.swap(i, j);
        }
        Self { splits, leaves, depth, n_classes }
    }
}

impl Labeller for RandomTreeLabeller {
    fn label(&self, x: &[f64]) -> usize {
        let mut node = 0usize;
        for _ in 0..self.depth {
            let (f, t) = self.splits[node];
            node = if x[f.min(x.len() - 1)] <= t { 2 * node + 1 } else { 2 * node + 2 };
        }
        self.leaves[node - self.splits.len()]
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// The rotating hyperplane labeller (HPLANE).
///
/// `y = 1` iff `sum_i w_i x_i >= threshold`, with weights drawn per concept.
/// The threshold is set to the weighted midpoint so classes stay roughly
/// balanced under uniform features.
#[derive(Debug, Clone)]
pub struct HyperplaneLabeller {
    weights: Vec<f64>,
    threshold: f64,
}

impl HyperplaneLabeller {
    /// Random hyperplane over `n_features` uniform features.
    pub fn new(n_features: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let weights: Vec<f64> = (0..n_features).map(|_| rng.random_range(-1.0..1.0)).collect();
        let threshold = weights.iter().sum::<f64>() * 0.5;
        Self { weights, threshold }
    }
}

impl Labeller for HyperplaneLabeller {
    fn label(&self, x: &[f64]) -> usize {
        let s: f64 = self.weights.iter().zip(x).map(|(w, v)| w * v).sum();
        (s >= self.threshold) as usize
    }

    fn n_classes(&self) -> usize {
        2
    }
}

/// A linear-threshold labeller with multiple classes, used by the real-world
/// dataset stand-ins: a random projection of the features is binned into
/// `n_classes` quantile-ish intervals.
#[derive(Debug, Clone)]
pub struct LinearThresholdLabeller {
    weights: Vec<f64>,
    n_classes: usize,
    lo: f64,
    hi: f64,
}

impl LinearThresholdLabeller {
    /// Random projection labeller. The expected projection range under
    /// uniform `[0,1)` features is used to place the class bins.
    pub fn new(n_features: usize, n_classes: usize, seed: u64) -> Self {
        assert!(n_classes >= 2);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let weights: Vec<f64> = (0..n_features).map(|_| rng.random_range(-1.0..1.0)).collect();
        let pos: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        let neg: f64 = weights.iter().filter(|w| **w < 0.0).sum();
        Self { weights, n_classes, lo: neg, hi: pos }
    }
}

impl Labeller for LinearThresholdLabeller {
    fn label(&self, x: &[f64]) -> usize {
        let s: f64 = self.weights.iter().zip(x).map(|(w, v)| w * v).sum();
        let span = (self.hi - self.lo).max(1e-9);
        let t = ((s - self.lo) / span).clamp(0.0, 1.0 - 1e-9);
        (t * self.n_classes as f64) as usize
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stagger_rules() {
        // size small (x0 < 1/3), colour red (x1 < 1/3)
        let c0 = StaggerLabeller::new(0);
        assert_eq!(c0.label(&[0.1, 0.1, 0.9]), 1);
        assert_eq!(c0.label(&[0.9, 0.1, 0.9]), 0);
        // colour green (middle third) OR shape circle (first third)
        let c1 = StaggerLabeller::new(1);
        assert_eq!(c1.label(&[0.9, 0.5, 0.9]), 1);
        assert_eq!(c1.label(&[0.9, 0.9, 0.1]), 1);
        assert_eq!(c1.label(&[0.9, 0.9, 0.9]), 0);
        // size medium or large
        let c2 = StaggerLabeller::new(2);
        assert_eq!(c2.label(&[0.5, 0.0, 0.0]), 1);
        assert_eq!(c2.label(&[0.1, 0.0, 0.0]), 0);
    }

    #[test]
    fn stagger_concepts_disagree() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let (c0, c1) = (StaggerLabeller::new(0), StaggerLabeller::new(1));
        let disagreements = (0..1000)
            .filter(|_| {
                let x = [rng.random(), rng.random(), rng.random()];
                c0.label(&x) != c1.label(&x)
            })
            .count();
        assert!(disagreements > 200, "concepts too similar: {disagreements}");
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        let t1 = RandomTreeLabeller::new(5, 3, 4, 42);
        let t2 = RandomTreeLabeller::new(5, 3, 4, 42);
        let t3 = RandomTreeLabeller::new(5, 3, 4, 43);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut same = 0;
        let mut diff = 0;
        for _ in 0..500 {
            let x: Vec<f64> = (0..5).map(|_| rng.random()).collect();
            assert_eq!(t1.label(&x), t2.label(&x));
            if t1.label(&x) != t3.label(&x) {
                diff += 1;
            } else {
                same += 1;
            }
        }
        assert!(diff > 50, "different seeds should disagree: {same} same / {diff} diff");
    }

    #[test]
    fn random_tree_covers_all_classes() {
        let t = RandomTreeLabeller::new(4, 4, 4, 7);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let x: Vec<f64> = (0..4).map(|_| rng.random()).collect();
            seen.insert(t.label(&x));
        }
        assert_eq!(seen.len(), 4, "all classes should be reachable: {seen:?}");
    }

    #[test]
    fn hyperplane_is_roughly_balanced() {
        let h = HyperplaneLabeller::new(10, 11);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let pos = (0..5000)
            .filter(|_| {
                let x: Vec<f64> = (0..10).map(|_| rng.random()).collect();
                h.label(&x) == 1
            })
            .count();
        let frac = pos as f64 / 5000.0;
        assert!((0.2..=0.8).contains(&frac), "class balance {frac}");
    }

    #[test]
    fn linear_threshold_produces_all_classes() {
        let l = LinearThresholdLabeller::new(8, 3, 5);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            let x: Vec<f64> = (0..8).map(|_| rng.random()).collect();
            counts[l.label(&x)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "class counts {counts:?}");
    }
}
