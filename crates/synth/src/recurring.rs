//! Recurring-concept stream composition.
//!
//! The paper's evaluation protocol (Section VI-1): each dataset's concepts
//! are repeated nine times, with the order of appearance shuffled per seed.
//! The composer takes one [`ConceptGenerator`] per concept, builds the
//! shuffled schedule, draws `segment_len` observations per occurrence and
//! annotates every observation with its ground-truth concept id (consumed
//! only by the C-F1 evaluation).

use ficsum_stream::{Observation, VecStream};
use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

use crate::concept::ConceptGenerator;

/// Builds recurring-concept streams from per-concept generators.
#[derive(Debug, Clone, Copy)]
pub struct RecurringStreamBuilder {
    /// Observations per concept occurrence.
    pub segment_len: usize,
    /// How many times each concept appears (paper: 9).
    pub n_recurrences: usize,
    /// Seed for the appearance-order shuffle.
    pub seed: u64,
}

impl RecurringStreamBuilder {
    /// Composer with the paper's nine recurrences.
    pub fn new(segment_len: usize, seed: u64) -> Self {
        Self { segment_len, n_recurrences: 9, seed }
    }

    /// Overrides the number of recurrences.
    pub fn with_recurrences(mut self, n: usize) -> Self {
        self.n_recurrences = n;
        self
    }

    /// The shuffled schedule of concept ids, guaranteeing no concept
    /// immediately follows itself (a self-transition is not a drift).
    pub fn schedule(&self, n_concepts: usize) -> Vec<usize> {
        assert!(n_concepts > 0);
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed);
        let mut slots: Vec<usize> = (0..n_concepts)
            .flat_map(|c| std::iter::repeat_n(c, self.n_recurrences))
            .collect();
        // Fisher-Yates.
        for i in (1..slots.len()).rev() {
            let j = rng.random_range(0..=i);
            slots.swap(i, j);
        }
        // Repair adjacent duplicates by swapping with a compatible slot.
        if n_concepts > 1 {
            for i in 1..slots.len() {
                if slots[i] == slots[i - 1] {
                    if let Some(j) = (0..slots.len()).find(|&j| {
                        j != i
                            && slots[j] != slots[i]
                            && (j == 0 || slots[j - 1] != slots[i])
                            && (j + 1 >= slots.len() || slots[j + 1] != slots[i])
                    }) {
                        slots.swap(i, j);
                    }
                }
            }
        }
        slots
    }

    /// Draws the composed stream. Generators are reused across occurrences
    /// of their concept (their RNG keeps advancing, so every occurrence
    /// yields fresh draws from the same distribution).
    pub fn compose(&self, mut concepts: Vec<Box<dyn ConceptGenerator>>) -> VecStream {
        assert!(!concepts.is_empty());
        let dims = concepts[0].dims();
        let n_classes = concepts.iter().map(|c| c.n_classes()).max().unwrap_or(2);
        assert!(
            concepts.iter().all(|c| c.dims() == dims),
            "all concepts must share dimensionality"
        );
        let schedule = self.schedule(concepts.len());
        let mut data: Vec<Observation> =
            Vec::with_capacity(schedule.len() * self.segment_len);
        for &cid in &schedule {
            let gen = &mut concepts[cid];
            gen.restart_segment();
            for _ in 0..self.segment_len {
                let mut o = gen.generate();
                o.concept = cid;
                data.push(o);
            }
        }
        VecStream::with_classes(data, n_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::LabelledConcept;
    use crate::labeller::{Labeller, StaggerLabeller};
    use crate::sampler::UniformSampler;
    use ficsum_stream::{ConceptStream, StreamSource};

    fn stagger_concepts(seed: u64) -> Vec<Box<dyn ConceptGenerator>> {
        (0..3)
            .map(|c| {
                Box::new(LabelledConcept::new(
                    UniformSampler::new(3, seed * 10 + c as u64),
                    StaggerLabeller::new(c),
                    0.0,
                    seed * 100 + c as u64,
                )) as Box<dyn ConceptGenerator>
            })
            .collect()
    }

    #[test]
    fn schedule_has_each_concept_n_times() {
        let b = RecurringStreamBuilder::new(100, 7);
        let s = b.schedule(4);
        assert_eq!(s.len(), 36);
        for c in 0..4 {
            assert_eq!(s.iter().filter(|&&x| x == c).count(), 9);
        }
    }

    #[test]
    fn schedule_avoids_self_transitions() {
        for seed in 0..20 {
            let b = RecurringStreamBuilder::new(10, seed);
            let s = b.schedule(3);
            let repeats = s.windows(2).filter(|w| w[0] == w[1]).count();
            assert!(repeats <= 1, "seed {seed}: schedule {s:?} has {repeats} repeats");
        }
    }

    #[test]
    fn composed_stream_has_expected_shape() {
        let b = RecurringStreamBuilder::new(50, 3);
        let stream = b.compose(stagger_concepts(1));
        assert_eq!(stream.len(), 3 * 9 * 50);
        assert_eq!(stream.dims(), 3);
        assert_eq!(stream.n_concepts(), 3);
    }

    #[test]
    fn concept_annotations_match_schedule() {
        let b = RecurringStreamBuilder::new(20, 5);
        let schedule = b.schedule(3);
        let stream = b.compose(stagger_concepts(2));
        let obs = stream.observations();
        for (seg, &cid) in schedule.iter().enumerate() {
            for i in 0..20 {
                assert_eq!(obs[seg * 20 + i].concept, cid);
            }
        }
    }

    #[test]
    fn labels_are_consistent_with_annotated_concept() {
        let b = RecurringStreamBuilder::new(30, 11);
        let stream = b.compose(stagger_concepts(3));
        for o in stream.observations() {
            let expected = StaggerLabeller::new(o.concept).label(&o.features);
            assert_eq!(o.label, expected);
        }
    }

    #[test]
    fn different_seeds_shuffle_differently() {
        let a = RecurringStreamBuilder::new(10, 1).schedule(4);
        let b = RecurringStreamBuilder::new(10, 2).schedule(4);
        assert_ne!(a, b);
    }
}
