//! Feature samplers and per-channel modulation.
//!
//! Samplers produce the feature vectors of a concept. The
//! [`ChannelModulation`] wrapper injects controlled changes in the
//! *distribution* (mean/scale/skew), *autocorrelation* and *frequency* of
//! individual feature channels — the paper's mechanism for creating
//! unsupervised drift in the `HPLANE-U` / `RTREE-U` datasets (Section VI-1)
//! and the `Synth_{D,A,F}` family (Section VI-6).

use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

/// A source of feature vectors.
pub trait FeatureSampler: Send {
    /// Number of features produced.
    fn dims(&self) -> usize;
    /// Draws the next feature vector.
    fn sample(&mut self) -> Vec<f64>;
    /// Restarts the sampler's temporal state (called at segment boundaries);
    /// the RNG is *not* reset so successive segments see fresh draws.
    fn restart_segment(&mut self) {}
}

/// I.i.d. uniform `[0, 1)` features — the base sampler of the classic
/// generators.
#[derive(Debug, Clone)]
pub struct UniformSampler {
    dims: usize,
    rng: Xoshiro256pp,
}

impl UniformSampler {
    /// `dims` uniform features seeded with `seed`.
    pub fn new(dims: usize, seed: u64) -> Self {
        Self { dims, rng: Xoshiro256pp::seed_from_u64(seed) }
    }
}

impl FeatureSampler for UniformSampler {
    fn dims(&self) -> usize {
        self.dims
    }

    fn sample(&mut self) -> Vec<f64> {
        (0..self.dims).map(|_| self.rng.random()).collect()
    }
}

/// Per-channel modulation parameters.
///
/// Identity modulation leaves the channel untouched; each effect is applied
/// in the order skew → scale/shift → autocorrelation → sine overlay.
#[derive(Debug, Clone, Copy)]
pub struct ChannelModulation {
    /// Power-transform exponent (`x^gamma`), skewing the distribution.
    /// 1.0 = no skew; < 1 skews left, > 1 skews right (for `[0,1)` inputs).
    pub skew_gamma: f64,
    /// Multiplicative scale around the channel centre.
    pub scale: f64,
    /// Additive mean shift.
    pub shift: f64,
    /// AR(1) mixing coefficient in `[0, 1)`: `z_t = phi z_{t-1} + (1-phi) x_t`.
    pub ar_phi: f64,
    /// Amplitude of the sine overlay.
    pub sine_amp: f64,
    /// Angular frequency of the sine overlay (radians per observation).
    pub sine_freq: f64,
}

impl Default for ChannelModulation {
    fn default() -> Self {
        Self { skew_gamma: 1.0, scale: 1.0, shift: 0.0, ar_phi: 0.0, sine_amp: 0.0, sine_freq: 0.0 }
    }
}

impl ChannelModulation {
    /// Identity (no modulation).
    pub fn identity() -> Self {
        Self::default()
    }

    /// Random distributional change (mean / scale / skew) drawn per concept.
    pub fn random_distribution(rng: &mut Xoshiro256pp) -> Self {
        Self {
            skew_gamma: rng.random_range(0.4..2.5),
            scale: rng.random_range(0.5..1.8),
            shift: rng.random_range(-0.6..0.6),
            ..Self::default()
        }
    }

    /// Random autocorrelation change drawn per concept.
    pub fn random_autocorrelation(rng: &mut Xoshiro256pp) -> Self {
        Self { ar_phi: rng.random_range(0.3..0.95), ..Self::default() }
    }

    /// Random frequency overlay drawn per concept.
    pub fn random_frequency(rng: &mut Xoshiro256pp) -> Self {
        Self {
            sine_amp: rng.random_range(0.2..0.8),
            sine_freq: rng.random_range(0.05..0.8),
            ..Self::default()
        }
    }

    /// Merges another modulation's effects into this one (for combined
    /// `Synth_DA`-style drifts).
    pub fn combine(mut self, other: ChannelModulation) -> Self {
        if other.skew_gamma != 1.0 {
            self.skew_gamma = other.skew_gamma;
        }
        if other.scale != 1.0 {
            self.scale = other.scale;
        }
        if other.shift != 0.0 {
            self.shift = other.shift;
        }
        if other.ar_phi != 0.0 {
            self.ar_phi = other.ar_phi;
        }
        if other.sine_amp != 0.0 {
            self.sine_amp = other.sine_amp;
            self.sine_freq = other.sine_freq;
        }
        self
    }
}

/// Wraps a base sampler, applying one [`ChannelModulation`] per feature.
#[derive(Debug, Clone)]
pub struct ModulatedSampler<S> {
    base: S,
    channels: Vec<ChannelModulation>,
    ar_state: Vec<f64>,
    t: u64,
}

impl<S: FeatureSampler> ModulatedSampler<S> {
    /// Applies `channels[j]` to feature `j` of `base`. The channel list must
    /// match the base dimensionality.
    pub fn new(base: S, channels: Vec<ChannelModulation>) -> Self {
        assert_eq!(base.dims(), channels.len());
        let dims = base.dims();
        Self { base, channels, ar_state: vec![0.0; dims], t: 0 }
    }

    /// Uniform modulation on every channel.
    pub fn uniform(base: S, modulation: ChannelModulation) -> Self {
        let dims = base.dims();
        Self::new(base, vec![modulation; dims])
    }
}

impl<S: FeatureSampler> FeatureSampler for ModulatedSampler<S> {
    fn dims(&self) -> usize {
        self.base.dims()
    }

    fn sample(&mut self) -> Vec<f64> {
        let raw = self.base.sample();
        let t = self.t as f64;
        self.t += 1;
        raw.iter()
            .enumerate()
            .map(|(j, &x)| {
                let m = &self.channels[j];
                // Skew within [0,1), then scale/shift around 0.5.
                let mut v = x.clamp(0.0, 1.0).powf(m.skew_gamma);
                v = 0.5 + (v - 0.5) * m.scale + m.shift;
                // AR(1) smoothing.
                if m.ar_phi > 0.0 {
                    let prev = if self.t == 1 { v } else { self.ar_state[j] };
                    v = m.ar_phi * prev + (1.0 - m.ar_phi) * v;
                    self.ar_state[j] = v;
                }
                // Sinusoidal overlay.
                if m.sine_amp != 0.0 {
                    v += m.sine_amp * (m.sine_freq * t).sin();
                }
                v
            })
            .collect()
    }

    fn restart_segment(&mut self) {
        self.base.restart_segment();
        self.ar_state.iter_mut().for_each(|s| *s = 0.0);
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::RunningStats;

    fn column(sampler: &mut impl FeatureSampler, j: usize, n: usize) -> Vec<f64> {
        (0..n).map(|_| sampler.sample()[j]).collect()
    }

    fn acf1(xs: &[f64]) -> f64 {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let den: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
        let num: f64 = xs.windows(2).map(|w| (w[0] - m) * (w[1] - m)).sum();
        num / den.max(1e-12)
    }

    #[test]
    fn uniform_sampler_is_uniform() {
        let mut s = UniformSampler::new(3, 1);
        let xs = column(&mut s, 1, 5000);
        let mut st = RunningStats::new();
        xs.iter().for_each(|&x| st.push(x));
        assert!((st.mean() - 0.5).abs() < 0.02);
        assert!((st.std_dev() - (1.0f64 / 12.0).sqrt()).abs() < 0.02);
        assert!(acf1(&xs).abs() < 0.05);
    }

    #[test]
    fn identity_modulation_is_transparent() {
        let base = UniformSampler::new(2, 7);
        let mut plain = UniformSampler::new(2, 7);
        let mut modded = ModulatedSampler::uniform(base, ChannelModulation::identity());
        for _ in 0..100 {
            let (p, m) = (plain.sample(), modded.sample());
            for (a, b) in p.iter().zip(&m) {
                // identical up to rounding of the no-op arithmetic
                assert!((a - b).abs() < 1e-12, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn shift_moves_the_mean() {
        let m = ChannelModulation { shift: 0.4, ..ChannelModulation::identity() };
        let mut s = ModulatedSampler::uniform(UniformSampler::new(1, 2), m);
        let xs = column(&mut s, 0, 3000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.9).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ar_phi_raises_autocorrelation() {
        let m = ChannelModulation { ar_phi: 0.9, ..ChannelModulation::identity() };
        let mut s = ModulatedSampler::uniform(UniformSampler::new(1, 3), m);
        let xs = column(&mut s, 0, 5000);
        assert!(acf1(&xs) > 0.7, "acf1 {}", acf1(&xs));
    }

    #[test]
    fn sine_overlay_adds_oscillation() {
        let m = ChannelModulation {
            sine_amp: 0.5,
            sine_freq: 0.3,
            ..ChannelModulation::identity()
        };
        let mut s = ModulatedSampler::uniform(UniformSampler::new(1, 4), m);
        let xs = column(&mut s, 0, 2000);
        let mut st = RunningStats::new();
        xs.iter().for_each(|&x| st.push(x));
        // Variance grows by amp^2/2 over the uniform baseline 1/12.
        let expected = 1.0 / 12.0 + 0.125;
        assert!((st.variance() - expected).abs() < 0.02, "var {}", st.variance());
    }

    #[test]
    fn skew_gamma_skews() {
        let m = ChannelModulation { skew_gamma: 3.0, ..ChannelModulation::identity() };
        let mut s = ModulatedSampler::uniform(UniformSampler::new(1, 5), m);
        let xs = column(&mut s, 0, 3000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        // x^3 over U[0,1) has mean 0.25: mass pushed toward zero.
        assert!((mean - 0.25).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn restart_clears_temporal_state() {
        let m = ChannelModulation {
            ar_phi: 0.9,
            sine_amp: 0.5,
            sine_freq: 0.2,
            ..ChannelModulation::identity()
        };
        let mut s = ModulatedSampler::uniform(UniformSampler::new(1, 6), m);
        let _ = column(&mut s, 0, 100);
        s.restart_segment();
        assert_eq!(s.t, 0);
        assert_eq!(s.ar_state, vec![0.0]);
    }

    #[test]
    fn combine_overlays_effects() {
        let d = ChannelModulation { shift: 0.3, ..ChannelModulation::identity() };
        let a = ChannelModulation { ar_phi: 0.8, ..ChannelModulation::identity() };
        let c = d.combine(a);
        assert_eq!(c.shift, 0.3);
        assert_eq!(c.ar_phi, 0.8);
    }
}
