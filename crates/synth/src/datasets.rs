//! The paper's evaluation datasets (Table II) and the `Synth_{D,A,F}` family
//! (Table V).
//!
//! The six real-world datasets are unavailable in this environment, so each
//! is replaced by a *simulated equivalent* matching the length / feature /
//! context characteristics of Table II and — crucially — the drift character
//! the paper's results reveal for it: AQSex, AQTemp, STAGGER, RBF and RTREE
//! drift mainly in `p(y|X)` (supervised representations succeed there),
//! while Arabic, CMC, QG, UCI-Wine, HPLANE-U and RTREE-U drift mainly in
//! `p(X)` (unsupervised representations succeed). The evaluation only ever
//! consumes `(X, y, concept)` triples, so matching the drifting distribution
//! component preserves what every measured quantity depends on.

use ficsum_stream::VecStream;
use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

use crate::concept::{ConceptGenerator, LabelledConcept, RbfConcept};
use crate::labeller::{
    HyperplaneLabeller, Labeller, LinearThresholdLabeller, RandomTreeLabeller, StaggerLabeller,
};
use crate::recurring::RecurringStreamBuilder;
use crate::sampler::{ChannelModulation, ModulatedSampler, UniformSampler};

/// Cap on observations per concept occurrence. The AQ* and UCI-Wine
/// stand-ins would otherwise have multi-thousand-observation occurrences
/// (75% of a concept's share of the original dataset), which adds runtime
/// without changing any measured behaviour; the cap is documented in
/// EXPERIMENTS.md.
const MAX_SEGMENT: usize = 700;
/// Floor on observations per concept occurrence (QG's share would dip just
/// below a learnable window multiple).
const MIN_SEGMENT: usize = 250;

/// Static description of a dataset (the row it occupies in Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Total stream length from Table II.
    pub length: usize,
    /// Number of input features.
    pub n_features: usize,
    /// Number of ground-truth contexts (concepts).
    pub n_contexts: usize,
    /// Number of class labels in our stand-in.
    pub n_classes: usize,
    /// Whether concept drift is mainly in `p(y|X)` (true) or `p(X)` (false).
    pub supervised_drift: bool,
    /// Whether the Table II length refers to an original real dataset
    /// (occurrences take 75% of a concept's share, per Section VI-1) or to
    /// the generated stream itself (occurrences split the length evenly).
    pub real: bool,
}

impl DatasetSpec {
    /// Observations per concept occurrence.
    ///
    /// Real datasets: 75% of the concept's share of the original data (the
    /// paper's protocol for unbiased recurrences), clamped into
    /// `[MIN_SEGMENT, MAX_SEGMENT]`. Synthetic datasets: the declared
    /// stream length divided across `contexts x 9` occurrences.
    pub fn segment_len(&self) -> usize {
        if self.real {
            (self.length * 3 / (self.n_contexts * 4)).clamp(MIN_SEGMENT, MAX_SEGMENT)
        } else {
            (self.length / (self.n_contexts * 9)).max(MIN_SEGMENT)
        }
    }

    /// Total composed stream length (`segment_len x contexts x 9`).
    pub fn total_len(&self) -> usize {
        self.segment_len() * self.n_contexts * 9
    }
}

/// All eleven Table II datasets.
pub const ALL_DATASETS: [DatasetSpec; 11] = [
    DatasetSpec { name: "AQTemp", length: 24000, n_features: 25, n_contexts: 6, n_classes: 2, supervised_drift: true, real: true },
    DatasetSpec { name: "AQSex", length: 24000, n_features: 25, n_contexts: 6, n_classes: 2, supervised_drift: true, real: true },
    DatasetSpec { name: "Arabic", length: 8800, n_features: 10, n_contexts: 10, n_classes: 10, supervised_drift: false, real: true },
    DatasetSpec { name: "CMC", length: 1473, n_features: 8, n_contexts: 2, n_classes: 3, supervised_drift: false, real: true },
    DatasetSpec { name: "QG", length: 4010, n_features: 63, n_contexts: 10, n_classes: 2, supervised_drift: false, real: true },
    DatasetSpec { name: "UCI-Wine", length: 6498, n_features: 11, n_contexts: 2, n_classes: 2, supervised_drift: false, real: true },
    DatasetSpec { name: "RBF", length: 30000, n_features: 10, n_contexts: 6, n_classes: 3, supervised_drift: true, real: false },
    DatasetSpec { name: "RTREE", length: 30000, n_features: 10, n_contexts: 6, n_classes: 2, supervised_drift: true, real: false },
    DatasetSpec { name: "STAGGER", length: 30000, n_features: 3, n_contexts: 3, n_classes: 2, supervised_drift: true, real: false },
    DatasetSpec { name: "HPLANE-U", length: 30000, n_features: 10, n_contexts: 6, n_classes: 2, supervised_drift: false, real: false },
    DatasetSpec { name: "RTREE-U", length: 30000, n_features: 10, n_contexts: 6, n_classes: 2, supervised_drift: false, real: false },
];

/// Looks up a spec by (case-insensitive) name.
pub fn spec_by_name(name: &str) -> Option<DatasetSpec> {
    ALL_DATASETS.iter().find(|s| s.name.eq_ignore_ascii_case(name)).copied()
}

fn concept_seed(seed: u64, concept: usize, salt: u64) -> u64 {
    // Simple splitmix-style mixing keeps concept RNGs decorrelated.
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(concept as u64)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z
}

/// Random per-concept modulation combining the requested drift types.
fn drifted_modulation(drifts: &[SynthDrift], rng: &mut Xoshiro256pp) -> ChannelModulation {
    let mut m = ChannelModulation::identity();
    for d in drifts {
        m = m.combine(match d {
            SynthDrift::Distribution => ChannelModulation::random_distribution(rng),
            SynthDrift::Autocorrelation => ChannelModulation::random_autocorrelation(rng),
            SynthDrift::Frequency => ChannelModulation::random_frequency(rng),
        });
    }
    m
}

fn modulated_channels(
    n_features: usize,
    drifts: &[SynthDrift],
    rng: &mut Xoshiro256pp,
) -> Vec<ChannelModulation> {
    (0..n_features).map(|_| drifted_modulation(drifts, rng)).collect()
}

/// STAGGER: three boolean concepts over three categorical-ish features,
/// drift purely in the labelling function.
pub fn stagger_stream(seed: u64) -> VecStream {
    let spec = spec_by_name("STAGGER").expect("spec exists");
    let concepts: Vec<Box<dyn ConceptGenerator>> = (0..3)
        .map(|c| {
            Box::new(LabelledConcept::new(
                UniformSampler::new(3, concept_seed(seed, c, 1)),
                StaggerLabeller::new(c),
                0.0,
                concept_seed(seed, c, 2),
            )) as Box<dyn ConceptGenerator>
        })
        .collect();
    RecurringStreamBuilder::new(spec.segment_len(), concept_seed(seed, 99, 3)).compose(concepts)
}

/// RTREE: six random-tree labelling functions over shared uniform features.
pub fn rtree_stream(seed: u64) -> VecStream {
    let spec = spec_by_name("RTREE").expect("spec exists");
    let concepts: Vec<Box<dyn ConceptGenerator>> = (0..spec.n_contexts)
        .map(|c| {
            Box::new(LabelledConcept::new(
                UniformSampler::new(spec.n_features, concept_seed(seed, c, 4)),
                RandomTreeLabeller::with_pool(
                    spec.n_features,
                    5,
                    spec.n_classes,
                    5,
                    concept_seed(seed, c, 5),
                ),
                0.0,
                concept_seed(seed, c, 6),
            )) as Box<dyn ConceptGenerator>
        })
        .collect();
    RecurringStreamBuilder::new(spec.segment_len(), concept_seed(seed, 99, 7)).compose(concepts)
}

/// RBF: six centroid layouts; both density and labelling drift together.
pub fn rbf_stream(seed: u64) -> VecStream {
    let spec = spec_by_name("RBF").expect("spec exists");
    let concepts: Vec<Box<dyn ConceptGenerator>> = (0..spec.n_contexts)
        .map(|c| {
            Box::new(RbfConcept::new(
                spec.n_features,
                spec.n_classes,
                15,
                concept_seed(seed, c, 8),
                concept_seed(seed, c, 9),
            )) as Box<dyn ConceptGenerator>
        })
        .collect();
    RecurringStreamBuilder::new(spec.segment_len(), concept_seed(seed, 99, 10)).compose(concepts)
}

/// HPLANE-U: one fixed hyperplane labelling function; concepts differ only
/// in the feature sampling (distribution + autocorrelation + frequency).
pub fn hplane_u_stream(seed: u64) -> VecStream {
    let spec = spec_by_name("HPLANE-U").expect("spec exists");
    unsupervised_drift_stream(
        spec,
        HyperplaneLabeller::new(spec.n_features, concept_seed(seed, 1000, 11)),
        seed,
        12,
    )
}

/// RTREE-U: one fixed random-tree labeller; sampling drifts per concept.
pub fn rtree_u_stream(seed: u64) -> VecStream {
    let spec = spec_by_name("RTREE-U").expect("spec exists");
    unsupervised_drift_stream(
        spec,
        RandomTreeLabeller::with_pool(
            spec.n_features,
            5,
            spec.n_classes,
            5,
            concept_seed(seed, 1000, 13),
        ),
        seed,
        14,
    )
}

fn unsupervised_drift_stream<L: Labeller + Clone + 'static>(
    spec: DatasetSpec,
    labeller: L,
    seed: u64,
    salt: u64,
) -> VecStream {
    let all = [SynthDrift::Distribution, SynthDrift::Autocorrelation, SynthDrift::Frequency];
    let concepts: Vec<Box<dyn ConceptGenerator>> = (0..spec.n_contexts)
        .map(|c| {
            let mut mod_rng = Xoshiro256pp::seed_from_u64(concept_seed(seed, c, salt));
            let channels = modulated_channels(spec.n_features, &all, &mut mod_rng);
            let sampler = ModulatedSampler::new(
                UniformSampler::new(spec.n_features, concept_seed(seed, c, salt + 1)),
                channels,
            );
            Box::new(LabelledConcept::new(
                sampler,
                labeller.clone(),
                0.0,
                concept_seed(seed, c, salt + 2),
            )) as Box<dyn ConceptGenerator>
        })
        .collect();
    RecurringStreamBuilder::new(spec.segment_len(), concept_seed(seed, 99, salt + 3))
        .compose(concepts)
}

/// Profile of a simulated real-world dataset.
struct RealStandIn {
    spec: DatasetSpec,
    /// Magnitude of per-context feature modulation (p(X) drift).
    x_drift: f64,
    /// Whether the labelling function changes per context (p(y|X) drift).
    y_drift: bool,
    /// Label noise probability (controls the achievable kappa ceiling).
    label_noise: f64,
    /// Baseline sensor-style autocorrelation shared by all contexts.
    base_ar: f64,
    /// Whether the labelling function is tree-structured (learnable by the
    /// Hoeffding tree, like Arabic digits) or an oblique projection (hard
    /// for axis-aligned learners, matching the low kappa of CMC / UCI-Wine
    /// in the paper).
    learnable: bool,
}

/// Labelling function of a real-dataset stand-in.
#[derive(Clone)]
enum StandInLabeller {
    Tree(RandomTreeLabeller),
    Linear(LinearThresholdLabeller),
}

impl StandInLabeller {
    fn build(learnable: bool, n_features: usize, n_classes: usize, seed: u64) -> Self {
        if learnable {
            // Depth chosen so every class owns at least one leaf; splits
            // restricted to a handful of informative features.
            let depth = (usize::BITS - (n_classes - 1).leading_zeros()).max(4) as usize + 1;
            let pool = n_features.min(5);
            StandInLabeller::Tree(RandomTreeLabeller::with_pool(
                n_features, pool, n_classes, depth, seed,
            ))
        } else {
            StandInLabeller::Linear(LinearThresholdLabeller::new(n_features, n_classes, seed))
        }
    }
}

impl Labeller for StandInLabeller {
    fn label(&self, x: &[f64]) -> usize {
        match self {
            StandInLabeller::Tree(t) => t.label(x),
            StandInLabeller::Linear(l) => l.label(x),
        }
    }

    fn n_classes(&self) -> usize {
        match self {
            StandInLabeller::Tree(t) => t.n_classes(),
            StandInLabeller::Linear(l) => l.n_classes(),
        }
    }
}

fn real_stand_in(cfg: &RealStandIn, seed: u64, salt: u64) -> VecStream {
    let spec = cfg.spec;
    let fixed_labeller = StandInLabeller::build(
        cfg.learnable,
        spec.n_features,
        spec.n_classes,
        concept_seed(seed, 5000, salt),
    );
    let concepts: Vec<Box<dyn ConceptGenerator>> = (0..spec.n_contexts)
        .map(|c| {
            let mut mod_rng = Xoshiro256pp::seed_from_u64(concept_seed(seed, c, salt + 1));
            let channels: Vec<ChannelModulation> = (0..spec.n_features)
                .map(|_| {
                    // Context-specific p(X): shift/scale proportional to
                    // x_drift, on top of the shared sensor autocorrelation.
                    ChannelModulation {
                        shift: mod_rng.random_range(-1.0..1.0) * cfg.x_drift,
                        scale: 1.0 + mod_rng.random_range(-0.5..0.5) * cfg.x_drift,
                        skew_gamma: 1.0 + mod_rng.random_range(-0.4..0.8) * cfg.x_drift,
                        ar_phi: cfg.base_ar,
                        sine_amp: 0.0,
                        sine_freq: 0.0,
                    }
                })
                .collect();
            let sampler = ModulatedSampler::new(
                UniformSampler::new(spec.n_features, concept_seed(seed, c, salt + 2)),
                channels,
            );
            let labeller = if cfg.y_drift {
                StandInLabeller::build(
                    cfg.learnable,
                    spec.n_features,
                    spec.n_classes,
                    concept_seed(seed, c, salt + 3),
                )
            } else {
                fixed_labeller.clone()
            };
            Box::new(LabelledConcept::new(
                sampler,
                labeller,
                cfg.label_noise,
                concept_seed(seed, c, salt + 4),
            )) as Box<dyn ConceptGenerator>
        })
        .collect();
    RecurringStreamBuilder::new(spec.segment_len(), concept_seed(seed, 99, salt + 5))
        .compose(concepts)
}

/// AQSex stand-in: labelling function changes sharply per context, feature
/// distribution barely moves (supervised representations dominate).
pub fn aqsex_stream(seed: u64) -> VecStream {
    real_stand_in(
        &RealStandIn {
            spec: spec_by_name("AQSex").expect("spec"),
            x_drift: 0.08,
            y_drift: true,
            label_noise: 0.02,
            base_ar: 0.5,
            learnable: true,
        },
        seed,
        20,
    )
}

/// AQTemp stand-in: labelling drift with noisier labels and mild p(X) drift.
pub fn aqtemp_stream(seed: u64) -> VecStream {
    real_stand_in(
        &RealStandIn {
            spec: spec_by_name("AQTemp").expect("spec"),
            x_drift: 0.2,
            y_drift: true,
            label_noise: 0.2,
            base_ar: 0.5,
            learnable: true,
        },
        seed,
        30,
    )
}

/// Arabic stand-in: ten speakers = ten feature distributions, one fixed
/// digit-labelling function (unsupervised drift dominates).
pub fn arabic_stream(seed: u64) -> VecStream {
    real_stand_in(
        &RealStandIn {
            spec: spec_by_name("Arabic").expect("spec"),
            x_drift: 0.45,
            y_drift: false,
            label_noise: 0.05,
            base_ar: 0.3,
            learnable: true,
        },
        seed,
        40,
    )
}

/// CMC stand-in: two contexts differing in p(X), heavy label noise (the real
/// dataset is barely learnable — paper kappa ~0.25).
pub fn cmc_stream(seed: u64) -> VecStream {
    real_stand_in(
        &RealStandIn {
            spec: spec_by_name("CMC").expect("spec"),
            x_drift: 0.5,
            y_drift: false,
            label_noise: 0.4,
            base_ar: 0.2,
            learnable: false,
        },
        seed,
        50,
    )
}

/// QG stand-in: many weakly informative features, contexts differ in p(X).
pub fn qg_stream(seed: u64) -> VecStream {
    real_stand_in(
        &RealStandIn {
            spec: spec_by_name("QG").expect("spec"),
            x_drift: 0.35,
            y_drift: false,
            label_noise: 0.1,
            base_ar: 0.3,
            learnable: true,
        },
        seed,
        60,
    )
}

/// UCI-Wine stand-in: two strongly separated feature distributions (red vs
/// white), shared low-signal labelling (paper kappa ~0.23).
pub fn uci_wine_stream(seed: u64) -> VecStream {
    real_stand_in(
        &RealStandIn {
            spec: spec_by_name("UCI-Wine").expect("spec"),
            x_drift: 0.6,
            y_drift: false,
            label_noise: 0.38,
            base_ar: 0.2,
            learnable: false,
        },
        seed,
        70,
    )
}

/// Builds any Table II dataset by name.
pub fn dataset_by_name(name: &str, seed: u64) -> Option<VecStream> {
    let canonical = spec_by_name(name)?.name;
    Some(match canonical {
        "AQTemp" => aqtemp_stream(seed),
        "AQSex" => aqsex_stream(seed),
        "Arabic" => arabic_stream(seed),
        "CMC" => cmc_stream(seed),
        "QG" => qg_stream(seed),
        "UCI-Wine" => uci_wine_stream(seed),
        "RBF" => rbf_stream(seed),
        "RTREE" => rtree_stream(seed),
        "STAGGER" => stagger_stream(seed),
        "HPLANE-U" => hplane_u_stream(seed),
        "RTREE-U" => rtree_u_stream(seed),
        _ => unreachable!("spec_by_name covers all datasets"),
    })
}

/// The drift types injected in the `Synth_*` datasets of Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthDrift {
    /// Change feature mean / scale / skew per concept.
    Distribution,
    /// Change feature autocorrelation per concept.
    Autocorrelation,
    /// Overlay a per-concept sine wave (amplitude + frequency).
    Frequency,
}

impl SynthDrift {
    /// Parses a combination string like `"DA"` or `"f"`.
    pub fn parse_combo(s: &str) -> Vec<SynthDrift> {
        s.chars()
            .filter_map(|c| match c.to_ascii_uppercase() {
                'D' => Some(SynthDrift::Distribution),
                'A' => Some(SynthDrift::Autocorrelation),
                'F' => Some(SynthDrift::Frequency),
                _ => None,
            })
            .collect()
    }
}

/// The seven Table V combinations, in paper column order.
pub const SYNTH_COMBOS: [&str; 7] = ["A", "AF", "D", "DA", "DAF", "DF", "F"];

/// A `Synth_*` stream: the default random-tree labelling function held fixed
/// across concepts, with the requested drift types injected into the feature
/// sampling of each concept.
pub fn synth_stream(drifts: &[SynthDrift], n_concepts: usize, segment_len: usize, seed: u64) -> VecStream {
    assert!(!drifts.is_empty() && n_concepts >= 2);
    let n_features = 5;
    let labeller =
        RandomTreeLabeller::with_pool(n_features, n_features, 2, 4, concept_seed(seed, 2000, 80));
    let concepts: Vec<Box<dyn ConceptGenerator>> = (0..n_concepts)
        .map(|c| {
            let mut mod_rng = Xoshiro256pp::seed_from_u64(concept_seed(seed, c, 81));
            let channels = modulated_channels(n_features, drifts, &mut mod_rng);
            let sampler = ModulatedSampler::new(
                UniformSampler::new(n_features, concept_seed(seed, c, 82)),
                channels,
            );
            Box::new(LabelledConcept::new(sampler, labeller.clone(), 0.0, concept_seed(seed, c, 83)))
                as Box<dyn ConceptGenerator>
        })
        .collect();
    RecurringStreamBuilder::new(segment_len, concept_seed(seed, 99, 84)).compose(concepts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::{ConceptStream, StreamSource};

    #[test]
    fn specs_match_table_two() {
        assert_eq!(ALL_DATASETS.len(), 11);
        let arabic = spec_by_name("arabic").unwrap();
        assert_eq!((arabic.length, arabic.n_features, arabic.n_contexts), (8800, 10, 10));
        let stagger = spec_by_name("STAGGER").unwrap();
        assert_eq!((stagger.length, stagger.n_features, stagger.n_contexts), (30000, 3, 3));
    }

    #[test]
    fn every_dataset_builds_with_declared_shape() {
        for spec in ALL_DATASETS {
            let stream = dataset_by_name(spec.name, 7).expect(spec.name);
            assert_eq!(stream.dims(), spec.n_features, "{}", spec.name);
            assert_eq!(stream.n_concepts(), spec.n_contexts, "{}", spec.name);
            assert_eq!(
                stream.len(),
                spec.segment_len() * spec.n_contexts * 9,
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn unknown_dataset_is_none() {
        assert!(dataset_by_name("nope", 1).is_none());
    }

    #[test]
    fn seeds_change_the_stream() {
        let a = stagger_stream(1);
        let b = stagger_stream(2);
        assert_ne!(a.observations()[0].features, b.observations()[0].features);
    }

    #[test]
    fn rtree_u_label_function_is_stable_across_concepts() {
        // In RTREE-U the labeller is fixed: identical features always imply
        // identical labels regardless of concept.
        let stream = rtree_u_stream(3);
        let labeller = RandomTreeLabeller::with_pool(10, 5, 2, 5, concept_seed(3, 1000, 13));
        for o in stream.observations().iter().take(2000) {
            assert_eq!(o.label, labeller.label(&o.features));
        }
    }

    #[test]
    fn hplane_u_concepts_differ_in_feature_means() {
        let stream = hplane_u_stream(4);
        let mut sums = vec![vec![0.0f64; 10]; 6];
        let mut counts = [0usize; 6];
        for o in stream.observations() {
            counts[o.concept] += 1;
            for (s, v) in sums[o.concept].iter_mut().zip(&o.features) {
                *s += v;
            }
        }
        let mean0: Vec<f64> = sums[0].iter().map(|s| s / counts[0] as f64).collect();
        let mean1: Vec<f64> = sums[1].iter().map(|s| s / counts[1] as f64).collect();
        let dist: f64 = mean0.iter().zip(&mean1).map(|(a, b)| (a - b).abs()).sum();
        assert!(dist > 0.3, "concepts should differ in p(X): {dist}");
    }

    #[test]
    fn synth_combo_parsing() {
        assert_eq!(SynthDrift::parse_combo("DA").len(), 2);
        assert_eq!(SynthDrift::parse_combo("daf").len(), 3);
        assert!(SynthDrift::parse_combo("xyz").is_empty());
    }

    #[test]
    fn synth_stream_builds_all_combos() {
        for combo in SYNTH_COMBOS {
            let drifts = SynthDrift::parse_combo(combo);
            let s = synth_stream(&drifts, 3, 100, 5);
            assert_eq!(s.len(), 3 * 9 * 100, "combo {combo}");
            assert_eq!(s.n_concepts(), 3);
        }
    }

    #[test]
    fn stagger_labels_follow_annotated_concept_rule() {
        let stream = stagger_stream(9);
        for o in stream.observations().iter().take(3000) {
            assert_eq!(o.label, StaggerLabeller::new(o.concept).label(&o.features));
        }
    }
}
