//! Synthetic data streams with controllable concept drift.
//!
//! Everything the paper's evaluation consumes is generated here:
//!
//! * classic stream generators — [`labeller::StaggerLabeller`] (STAGGER),
//!   [`labeller::RandomTreeLabeller`] (RTREE), [`labeller::HyperplaneLabeller`]
//!   (HPLANE) and the [`concept::RbfConcept`] radial-basis generator — ported
//!   from their scikit-multiflow / MOA parameterisations,
//! * per-channel feature **modulation** ([`sampler::ChannelModulation`]):
//!   injected changes in distribution (D), autocorrelation (A) and frequency
//!   (F), used for the `-U` datasets and the `Synth_{D,A,F}` family of
//!   Table V,
//! * a **recurring-concept composer** ([`recurring::RecurringStreamBuilder`])
//!   that repeats each concept nine times in shuffled order, as in the
//!   paper's evaluation protocol,
//! * **dataset stand-ins** ([`datasets`]): simulated equivalents of the six
//!   real datasets (AQTemp, AQSex, Arabic, CMC, QG, UCI-Wine) matching the
//!   length / feature / context characteristics of Table II and the drift
//!   character (p(X) vs p(y|X)) the paper reports for each.

pub mod concept;
pub mod datasets;
pub mod labeller;
pub mod recurring;
pub mod sampler;

pub use concept::{ConceptGenerator, LabelledConcept, RbfConcept};
pub use datasets::{
    aqsex_stream, aqtemp_stream, arabic_stream, cmc_stream, dataset_by_name, hplane_u_stream,
    qg_stream, rbf_stream, rtree_stream, rtree_u_stream, spec_by_name, stagger_stream,
    synth_stream, uci_wine_stream, DatasetSpec, SynthDrift, ALL_DATASETS, SYNTH_COMBOS,
};
pub use labeller::{
    HyperplaneLabeller, Labeller, LinearThresholdLabeller, RandomTreeLabeller, StaggerLabeller,
};
pub use recurring::RecurringStreamBuilder;
pub use sampler::{ChannelModulation, FeatureSampler, ModulatedSampler, UniformSampler};
