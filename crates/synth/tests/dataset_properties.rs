//! Statistical properties of the generated datasets: drift is in the
//! declared distribution component, recurrences are genuine, seeds vary
//! the streams but not the declared shape.

use ficsum_stream::ConceptStream;
use ficsum_synth::{dataset_by_name, spec_by_name, synth_stream, SynthDrift, ALL_DATASETS};

/// Per-concept mean of feature `j`.
fn concept_feature_means(name: &str, seed: u64, j: usize) -> Vec<f64> {
    let stream = dataset_by_name(name, seed).unwrap();
    let spec = spec_by_name(name).unwrap();
    let mut sums = vec![0.0; spec.n_contexts];
    let mut counts = vec![0usize; spec.n_contexts];
    for o in stream.observations() {
        sums[o.concept] += o.features[j];
        counts[o.concept] += 1;
    }
    sums.iter().zip(&counts).map(|(s, &c)| s / c.max(1) as f64).collect()
}

fn spread(values: &[f64]) -> f64 {
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

#[test]
fn unsupervised_datasets_move_feature_means_more_than_supervised_ones() {
    // STAGGER/RTREE share a fixed sampler: per-concept feature means are
    // nearly identical. The -U datasets move them by construction.
    let stagger = spread(&concept_feature_means("STAGGER", 5, 0));
    let rtree_u = spread(&concept_feature_means("RTREE-U", 5, 0));
    assert!(stagger < 0.05, "STAGGER p(X) is stationary: {stagger}");
    assert!(rtree_u > 0.1, "RTREE-U p(X) must drift: {rtree_u}");
}

#[test]
fn class_labels_cover_declared_range() {
    for spec in ALL_DATASETS {
        let stream = dataset_by_name(spec.name, 2).unwrap();
        let mut seen = std::collections::HashSet::new();
        for o in stream.observations() {
            seen.insert(o.label);
            assert!(o.label < spec.n_classes, "{}", spec.name);
        }
        assert!(
            seen.len() >= 2,
            "{} must produce at least two classes, saw {seen:?}",
            spec.name
        );
    }
}

#[test]
fn concept_annotations_cover_all_contexts_nine_times() {
    for spec in ALL_DATASETS {
        let stream = dataset_by_name(spec.name, 4).unwrap();
        let mut counts = vec![0usize; spec.n_contexts];
        for o in stream.observations() {
            counts[o.concept] += 1;
        }
        for (c, &n) in counts.iter().enumerate() {
            assert_eq!(
                n,
                spec.segment_len() * 9,
                "{} concept {c} occurrence mass",
                spec.name
            );
        }
    }
}

#[test]
fn different_seeds_produce_different_schedules_same_shape() {
    let a = dataset_by_name("RBF", 1).unwrap();
    let b = dataset_by_name("RBF", 2).unwrap();
    assert_eq!(a.len(), b.len());
    assert_eq!(a.n_concepts(), b.n_concepts());
    let first_diff = a
        .observations()
        .iter()
        .zip(b.observations())
        .any(|(x, y)| x.features != y.features || x.concept != y.concept);
    assert!(first_diff, "seeds must change the stream");
}

#[test]
fn synth_family_injects_the_declared_drift_type() {
    // Distribution drift moves per-concept means; pure frequency drift
    // leaves means nearly unchanged (sine averages out) but adds variance.
    let d_stream = synth_stream(&[SynthDrift::Distribution], 3, 400, 9);
    let f_stream = synth_stream(&[SynthDrift::Frequency], 3, 400, 9);
    let per_concept = |s: &ficsum_stream::VecStream| -> Vec<f64> {
        let mut sums = [0.0; 3];
        let mut counts = vec![0usize; 3];
        for o in s.observations() {
            sums[o.concept] += o.features[0];
            counts[o.concept] += 1;
        }
        sums.iter().zip(&counts).map(|(x, &c)| x / c as f64).collect()
    };
    let d_spread = spread(&per_concept(&d_stream));
    let f_spread = spread(&per_concept(&f_stream));
    assert!(d_spread > f_spread + 0.05, "D {d_spread} vs F {f_spread}");
}
