//! Caller-supplied time sources for span measurement.
//!
//! The pipeline never calls [`std::time::Instant::now`] directly: it reads
//! whatever [`Clock`] it was given. Production code uses
//! [`MonotonicClock`]; tests use [`ManualClock`] and advance it explicitly,
//! so latency histograms and JSONL span records are bit-reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
///
/// `Send + Sync` so a single clock can be shared across the fingerprint
/// engine's worker threads, `Debug` so holders can stay `#[derive(Debug)]`.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed since an arbitrary (but fixed) origin.
    fn now_nanos(&self) -> u64;
}

/// Wall-clock monotonic time, anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock anchored at "now".
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A deterministic clock that only moves when told to.
///
/// Interior-mutable (atomic) so it satisfies [`Clock`]'s shared-reference
/// interface; tests hold an `Arc<ManualClock>` and call
/// [`ManualClock::advance`] between pipeline steps.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at `nanos`.
    pub fn starting_at(nanos: u64) -> Self {
        Self { now: AtomicU64::new(nanos) }
    }

    /// Moves the clock forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.now.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Sets the absolute time. Panics if this would move time backwards.
    pub fn set(&self, nanos: u64) {
        let prev = self.now.swap(nanos, Ordering::Relaxed);
        assert!(nanos >= prev, "ManualClock must be monotonic: {prev} -> {nanos}");
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_explicit() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(250);
        assert_eq!(c.now_nanos(), 250);
        c.set(1_000);
        assert_eq!(c.now_nanos(), 1_000);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn manual_clock_rejects_time_travel() {
        let c = ManualClock::starting_at(500);
        c.set(100);
    }
}
