//! Typed events and stage names emitted by the pipeline.

/// The four pipeline stages whose cost is tracked with monotonic spans.
///
/// Names are stable: they key the per-stage histograms of
/// [`crate::InMemoryRecorder`] and the `"stage"` field of the JSONL schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Meta-feature extraction of a window (the fingerprint engine).
    Extract,
    /// Fingerprint similarity computation and baseline maintenance.
    Similarity,
    /// Feeding the detector and deciding whether a drift fired.
    DriftCheck,
    /// Repository work after a drift: model selection, re-checks and the
    /// periodic non-active fingerprint refresh.
    RepositoryReassess,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 4] =
        [Stage::Extract, Stage::Similarity, Stage::DriftCheck, Stage::RepositoryReassess];

    /// Stable snake-case name (used in the JSONL schema).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Extract => "extract",
            Stage::Similarity => "similarity",
            Stage::DriftCheck => "drift_check",
            Stage::RepositoryReassess => "repository_reassess",
        }
    }
}

/// Which mechanism confirmed a drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftTrigger {
    /// The ADWIN detector over the standardised similarity stream.
    Detector,
    /// Several consecutive checks far outside the recorded normal band.
    HardStreak,
    /// A long run of baseline-outlier windows.
    OutlierRun,
}

impl DriftTrigger {
    /// Stable snake-case name.
    pub fn name(&self) -> &'static str {
        match self {
            DriftTrigger::Detector => "detector",
            DriftTrigger::HardStreak => "hard_streak",
            DriftTrigger::OutlierRun => "outlier_run",
        }
    }
}

/// A typed event on the observation stream.
///
/// Events carry concept identifiers as plain `u64` so this crate stays
/// independent of `ficsum-core`; the framework's `ConceptId` converts
/// losslessly. The observation index `t` at which an event happened is
/// passed alongside the event in [`crate::Recorder::event`], not stored in
/// the event itself.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A concept drift was confirmed.
    DriftDetected {
        /// What confirmed it.
        trigger: DriftTrigger,
    },
    /// The detector entered its warning zone (detectors that have one).
    DetectorWarning,
    /// Model selection switched the active concept.
    ConceptSwitch {
        /// Concept active before the switch.
        from: u64,
        /// Concept active after the switch.
        to: u64,
        /// Similarity the winning concept scored during selection
        /// (`None` when a brand-new concept was created).
        similarity: Option<f64>,
    },
    /// A fingerprint was extracted from a window.
    FingerprintExtracted {
        /// Dimensions of the fingerprint vector.
        dims: u64,
    },
    /// The similarity `Sim(F_c, F_A)` fed to the drift detector.
    SimilarityObserved {
        /// The weighted-cosine similarity value.
        value: f64,
    },
    /// A buffered-window similarity was absorbed into the active concept's
    /// normal-similarity distribution `(mu_c, sigma_c)`.
    BaselineAbsorbed {
        /// The absorbed similarity value.
        value: f64,
    },
    /// The dynamic meta-feature weights were recomputed.
    WeightsRecomputed {
        /// Number of weight dimensions.
        dims: u64,
        /// `max(w) - min(w)` after mean-normalisation — how far from
        /// uniform the weighting currently is.
        spread: f64,
    },
    /// A stored concept was evicted from the bounded repository.
    RepositoryEvicted {
        /// Identifier of the evicted concept.
        id: u64,
    },
    /// Classifier-dependent fingerprint dimensions were reset after a
    /// significant classifier change (Section IV plasticity).
    PlasticityReset,
    /// A serving shard created a new session from the config template.
    SessionCreated {
        /// Shard that owns the session.
        shard: u64,
        /// Identifier of the created session.
        session: u64,
    },
    /// A serving shard evicted a session (LRU under a capacity cap, or an
    /// explicit close); a snapshot of its repository/stats was taken.
    SessionEvicted {
        /// Shard that owned the session.
        shard: u64,
        /// Identifier of the evicted session.
        session: u64,
    },
    /// A serving shard finished processing one submitted batch.
    BatchProcessed {
        /// Shard that processed the batch.
        shard: u64,
        /// Number of observations in the batch.
        len: u64,
    },
    /// A session's pipeline panicked while processing a request; the
    /// session was quarantined (its last-good checkpoint snapshotted) and
    /// the shard kept serving its other sessions.
    SessionPoisoned {
        /// Shard that owned the session.
        shard: u64,
        /// Identifier of the poisoned session.
        session: u64,
    },
    /// A crashed shard worker thread was respawned; the surviving session
    /// table carried over to the new incarnation.
    WorkerRestarted {
        /// Shard whose worker was restarted.
        shard: u64,
        /// Restart ordinal for this shard (1 = first restart).
        incarnation: u64,
        /// Sessions that survived into the new incarnation.
        sessions: u64,
    },
    /// A session was rehydrated from a checkpoint (server-startup restore
    /// or explicit re-admission of an evicted/quarantined session).
    SessionRestored {
        /// Shard that now owns the session.
        shard: u64,
        /// Identifier of the restored session.
        session: u64,
        /// Observation count the restored pipeline resumed from.
        steps: u64,
    },
    /// A network front-end accepted a client connection and completed the
    /// protocol handshake.
    ConnectionOpened {
        /// Front-end-assigned connection ordinal.
        conn: u64,
    },
    /// A network connection ended (client goodbye, disconnect, protocol
    /// violation or front-end shutdown).
    ConnectionClosed {
        /// Front-end-assigned connection ordinal.
        conn: u64,
        /// Batches the connection successfully submitted over its life.
        batches: u64,
    },
    /// A network front-end refused a submitted batch and reported the
    /// refusal to the remote client (backpressure, validation or shutdown
    /// surfaced over the wire instead of dropping the connection).
    BatchRejected {
        /// Connection whose batch was refused.
        conn: u64,
        /// Stable wire error code sent to the client.
        code: u64,
    },
}

impl StreamEvent {
    /// Stable snake-case event name (the `"event"` field of the JSONL
    /// schema and the per-event counters of [`crate::InMemoryRecorder`]).
    pub fn name(&self) -> &'static str {
        match self {
            StreamEvent::DriftDetected { .. } => "drift_detected",
            StreamEvent::DetectorWarning => "detector_warning",
            StreamEvent::ConceptSwitch { .. } => "concept_switch",
            StreamEvent::FingerprintExtracted { .. } => "fingerprint_extracted",
            StreamEvent::SimilarityObserved { .. } => "similarity_observed",
            StreamEvent::BaselineAbsorbed { .. } => "baseline_absorbed",
            StreamEvent::WeightsRecomputed { .. } => "weights_recomputed",
            StreamEvent::RepositoryEvicted { .. } => "repository_evicted",
            StreamEvent::PlasticityReset => "plasticity_reset",
            StreamEvent::SessionCreated { .. } => "session_created",
            StreamEvent::SessionEvicted { .. } => "session_evicted",
            StreamEvent::BatchProcessed { .. } => "batch_processed",
            StreamEvent::SessionPoisoned { .. } => "session_poisoned",
            StreamEvent::WorkerRestarted { .. } => "worker_restarted",
            StreamEvent::SessionRestored { .. } => "session_restored",
            StreamEvent::ConnectionOpened { .. } => "connection_opened",
            StreamEvent::ConnectionClosed { .. } => "connection_closed",
            StreamEvent::BatchRejected { .. } => "batch_rejected",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["extract", "similarity", "drift_check", "repository_reassess"]);
    }

    #[test]
    fn event_names_are_snake_case() {
        let ev = StreamEvent::ConceptSwitch { from: 0, to: 1, similarity: Some(0.9) };
        assert_eq!(ev.name(), "concept_switch");
        assert_eq!(StreamEvent::DriftDetected { trigger: DriftTrigger::Detector }.name(), "drift_detected");
    }

    #[test]
    fn serving_event_names_are_stable() {
        assert_eq!(StreamEvent::SessionCreated { shard: 0, session: 1 }.name(), "session_created");
        assert_eq!(StreamEvent::SessionEvicted { shard: 0, session: 1 }.name(), "session_evicted");
        assert_eq!(StreamEvent::BatchProcessed { shard: 2, len: 64 }.name(), "batch_processed");
    }

    #[test]
    fn fault_event_names_are_stable() {
        assert_eq!(StreamEvent::SessionPoisoned { shard: 0, session: 9 }.name(), "session_poisoned");
        assert_eq!(
            StreamEvent::WorkerRestarted { shard: 1, incarnation: 1, sessions: 7 }.name(),
            "worker_restarted"
        );
        assert_eq!(
            StreamEvent::SessionRestored { shard: 0, session: 9, steps: 1000 }.name(),
            "session_restored"
        );
    }

    #[test]
    fn network_event_names_are_stable() {
        assert_eq!(StreamEvent::ConnectionOpened { conn: 3 }.name(), "connection_opened");
        assert_eq!(
            StreamEvent::ConnectionClosed { conn: 3, batches: 12 }.name(),
            "connection_closed"
        );
        assert_eq!(StreamEvent::BatchRejected { conn: 3, code: 1 }.name(), "batch_rejected");
    }
}
