//! The `Recorder` trait and its no-op / shared adapters.

use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use crate::event::{Stage, StreamEvent};

/// Sink for everything the pipeline can observe about itself.
///
/// Four signal kinds, mirroring what the paper's analysis consumes
/// (Section V) and what a production deployment would scrape:
///
/// * **events** — typed [`StreamEvent`]s tagged with the observation index
///   `t` at which they happened,
/// * **counters** — monotonically increasing named totals,
/// * **gauges** — last-value-wins named readings,
/// * **spans** — nanosecond durations of the four pipeline [`Stage`]s,
///   aggregated into log-bucketed histograms by retaining recorders.
///
/// All methods have empty default bodies, so a custom recorder implements
/// only what it cares about. [`Recorder::enabled`] lets emitters skip the
/// *preparation* of a signal (clock reads, derived statistics) when the
/// recorder would discard it anyway; correctness must never depend on a
/// signal being delivered.
pub trait Recorder {
    /// Records a typed event at observation index `t`.
    fn event(&mut self, t: u64, event: StreamEvent) {
        let _ = (t, event);
    }

    /// Adds `delta` to the named counter.
    fn counter(&mut self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the named gauge to `value`.
    fn gauge(&mut self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Records one `stage` execution that took `nanos` nanoseconds.
    fn span(&mut self, stage: Stage, nanos: u64) {
        let _ = (stage, nanos);
    }

    /// Whether this recorder retains anything. Emitters may use `false` to
    /// skip preparing signals (most importantly clock reads for spans).
    fn enabled(&self) -> bool {
        true
    }

    /// Downcasting hook for recorders that expose their retained state
    /// (e.g. [`crate::InMemoryRecorder`]); `None` for write-only sinks.
    fn as_any(&self) -> Option<&dyn Any> {
        None
    }
}

/// The inlined no-op default: records nothing, reports itself disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn event(&mut self, _t: u64, _event: StreamEvent) {}
    #[inline(always)]
    fn counter(&mut self, _name: &str, _delta: u64) {}
    #[inline(always)]
    fn gauge(&mut self, _name: &str, _value: f64) {}
    #[inline(always)]
    fn span(&mut self, _stage: Stage, _nanos: u64) {}
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// A recorder handle that can be held by both the caller and the pipeline:
/// attach `Box::new(shared.clone())` and keep `shared` to inspect results.
pub type SharedRecorder<R> = Rc<RefCell<R>>;

/// Builds a [`SharedRecorder`] around `recorder`.
pub fn shared<R: Recorder>(recorder: R) -> SharedRecorder<R> {
    Rc::new(RefCell::new(recorder))
}

impl<R: Recorder + 'static> Recorder for SharedRecorder<R> {
    fn event(&mut self, t: u64, event: StreamEvent) {
        self.borrow_mut().event(t, event);
    }

    fn counter(&mut self, name: &str, delta: u64) {
        self.borrow_mut().counter(name, delta);
    }

    fn gauge(&mut self, name: &str, value: f64) {
        self.borrow_mut().gauge(name, value);
    }

    fn span(&mut self, stage: Stage, nanos: u64) {
        self.borrow_mut().span(stage, nanos);
    }

    fn enabled(&self) -> bool {
        self.borrow().enabled()
    }
}

/// Thread-safe sharing for recorders crossed between threads.
impl<R: Recorder + Send + 'static> Recorder for Arc<Mutex<R>> {
    fn event(&mut self, t: u64, event: StreamEvent) {
        self.lock().expect("recorder mutex poisoned").event(t, event);
    }

    fn counter(&mut self, name: &str, delta: u64) {
        self.lock().expect("recorder mutex poisoned").counter(name, delta);
    }

    fn gauge(&mut self, name: &str, value: f64) {
        self.lock().expect("recorder mutex poisoned").gauge(name, value);
    }

    fn span(&mut self, stage: Stage, nanos: u64) {
        self.lock().expect("recorder mutex poisoned").span(stage, nanos);
    }

    fn enabled(&self) -> bool {
        self.lock().expect("recorder mutex poisoned").enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryRecorder;

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.event(0, StreamEvent::PlasticityReset);
        r.counter("x", 1);
        assert!(r.as_any().is_none());
    }

    #[test]
    fn shared_recorder_forwards_to_the_kept_handle() {
        let keep = shared(InMemoryRecorder::new());
        let mut attached: Box<dyn Recorder> = Box::new(keep.clone());
        attached.counter("drifts", 2);
        attached.event(7, StreamEvent::PlasticityReset);
        assert!(attached.enabled());
        assert_eq!(keep.borrow().counter_value("drifts"), 2);
        assert_eq!(keep.borrow().events().len(), 1);
    }

    #[test]
    fn arc_mutex_recorder_forwards() {
        let keep = Arc::new(Mutex::new(InMemoryRecorder::new()));
        let mut attached: Box<dyn Recorder> = Box::new(keep.clone());
        attached.gauge("g", 1.5);
        assert_eq!(keep.lock().unwrap().gauge_value("g"), Some(1.5));
    }
}
