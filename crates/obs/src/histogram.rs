//! Log-bucketed latency histograms.

/// A latency histogram with power-of-two nanosecond buckets.
///
/// Bucket `i` counts durations in `[2^i, 2^(i+1))` nanoseconds (bucket 0
/// also absorbs 0 ns). 64 buckets cover every representable `u64`
/// duration, so recording never saturates or drops; memory is a flat
/// 64-entry array regardless of how many spans are recorded. Quantiles are
/// answered to within a factor of two — ample for "which stage dominates"
/// questions — while count/sum/min/max are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; 64], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Index of the bucket holding `nanos`.
    fn bucket_of(nanos: u64) -> usize {
        (63 - nanos.max(1).leading_zeros()) as usize
    }

    /// Records one duration.
    pub fn record(&mut self, nanos: u64) {
        self.buckets[Self::bucket_of(nanos)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded spans.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum
    }

    /// Exact minimum recorded duration; 0 when empty.
    pub fn min_nanos(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded duration.
    pub fn max_nanos(&self) -> u64 {
        self.max
    }

    /// Mean duration in nanoseconds; 0 when empty.
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the geometric midpoint of
    /// the first bucket whose cumulative count reaches `q * count`.
    /// Accurate to within a factor of two by construction.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = 1u64 << i;
                let hi = lo.saturating_mul(2).saturating_sub(1);
                // Clamp the representative into the observed range so tiny
                // histograms answer sensibly.
                return (lo + (hi - lo) / 2).clamp(self.min_nanos(), self.max_nanos());
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower_bound_nanos, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(4), 2);
        assert_eq!(LatencyHistogram::bucket_of(1023), 9);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [10, 20, 30, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_nanos(), 1060);
        assert_eq!(h.min_nanos(), 10);
        assert_eq!(h.max_nanos(), 1000);
        assert!((h.mean_nanos() - 265.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_within_a_factor_of_two() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(100_000);
        let p50 = h.quantile_nanos(0.5);
        assert!((64..=128).contains(&p50), "p50 {p50}");
        let p999 = h.quantile_nanos(0.999);
        assert!(p999 >= 65_536, "p999 {p999}");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        a.record(5);
        let mut b = LatencyHistogram::new();
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_nanos(), 5);
        assert_eq!(a.max_nanos(), 500);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_nanos(0.5), 0);
        assert_eq!(h.min_nanos(), 0);
        assert_eq!(h.mean_nanos(), 0.0);
    }
}
