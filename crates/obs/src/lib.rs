//! Observability layer for the FiCSUM reproduction.
//!
//! Every quantity the paper's analysis reads off the pipeline — similarity
//! traces, drift points, per-stage cost, weight recomputations, repository
//! churn (Section V) — flows through one interface: the [`Recorder`] trait.
//! The framework emits typed [`StreamEvent`]s, named counters and gauges,
//! and monotonic stage spans; what happens to them is the recorder's
//! business:
//!
//! * [`NullRecorder`] — the inlined no-op default. All methods are empty
//!   and [`Recorder::enabled`] returns `false`, letting hot paths skip even
//!   the clock reads that would feed a span.
//! * [`InMemoryRecorder`] — retains everything (events in arrival order,
//!   counter totals, last gauge values, per-stage latency histograms) for
//!   tests and the evaluation runner.
//! * [`JsonlSink`] — streams each signal as one JSON line to any
//!   [`std::io::Write`], for experiment binaries and offline analysis.
//!
//! Timing never reads the wall clock directly: stage spans are measured
//! against a caller-supplied [`Clock`] ([`MonotonicClock`] in production,
//! [`ManualClock`] in tests) so latency observability itself stays
//! deterministic and testable.
//!
//! The crate is dependency-free and knows nothing about the rest of the
//! workspace; every other crate depends on it, never the reverse.

pub mod clock;
pub mod event;
pub mod histogram;
pub mod jsonl;
pub mod memory;
pub mod recorder;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use event::{DriftTrigger, Stage, StreamEvent};
pub use histogram::LatencyHistogram;
pub use jsonl::JsonlSink;
pub use memory::InMemoryRecorder;
pub use recorder::{shared, NullRecorder, Recorder, SharedRecorder};
