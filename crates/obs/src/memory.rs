//! The retaining recorder used by tests and the evaluation runner.

use std::any::Any;
use std::collections::BTreeMap;

use crate::event::{Stage, StreamEvent};
use crate::histogram::LatencyHistogram;
use crate::recorder::Recorder;

/// Retains every signal: events in arrival order, counter totals, last
/// gauge values and one latency histogram per pipeline stage.
///
/// `BTreeMap`s keep iteration deterministic, so reports built from a
/// recorded run are reproducible byte-for-byte.
#[derive(Debug, Default)]
pub struct InMemoryRecorder {
    events: Vec<(u64, StreamEvent)>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    spans: BTreeMap<Stage, LatencyHistogram>,
}

impl InMemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every recorded `(t, event)` pair, in arrival order.
    pub fn events(&self) -> &[(u64, StreamEvent)] {
        &self.events
    }

    /// Counter total (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Last value of a gauge, if it was ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The latency histogram of one stage, if any span was recorded.
    pub fn stage_histogram(&self, stage: Stage) -> Option<&LatencyHistogram> {
        self.spans.get(&stage)
    }

    /// Stages with at least one recorded span, in [`Stage`] order.
    pub fn stages(&self) -> impl Iterator<Item = (Stage, &LatencyHistogram)> + '_ {
        self.spans.iter().map(|(&s, h)| (s, h))
    }

    /// Observation indices at which [`StreamEvent::DriftDetected`] was
    /// recorded — the recorder-side reconstruction of the framework's
    /// legacy `drift_points()` accessor.
    pub fn drift_points(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, StreamEvent::DriftDetected { .. }))
            .map(|&(t, _)| t)
            .collect()
    }

    /// The `(t, similarity)` pairs of every
    /// [`StreamEvent::SimilarityObserved`] — the recorder-side
    /// reconstruction of the legacy `similarity_trace()` accessor.
    pub fn similarity_trace(&self) -> Vec<(u64, f64)> {
        self.events
            .iter()
            .filter_map(|&(t, ref e)| match e {
                StreamEvent::SimilarityObserved { value } => Some((t, *value)),
                _ => None,
            })
            .collect()
    }

    /// The concept-switch sequence as `(t, from, to)` triples.
    pub fn concept_switches(&self) -> Vec<(u64, u64, u64)> {
        self.events
            .iter()
            .filter_map(|&(t, ref e)| match e {
                StreamEvent::ConceptSwitch { from, to, .. } => Some((t, *from, *to)),
                _ => None,
            })
            .collect()
    }

    /// Count of recorded events with the given stable name.
    pub fn event_count(&self, name: &str) -> usize {
        self.events.iter().filter(|(_, e)| e.name() == name).count()
    }

    /// Drops all retained signals.
    pub fn clear(&mut self) {
        self.events.clear();
        self.counters.clear();
        self.gauges.clear();
        self.spans.clear();
    }
}

impl Recorder for InMemoryRecorder {
    fn event(&mut self, t: u64, event: StreamEvent) {
        self.events.push((t, event));
    }

    fn counter(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                self.counters.insert(name.to_owned(), delta);
            }
        }
    }

    fn gauge(&mut self, name: &str, value: f64) {
        match self.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                self.gauges.insert(name.to_owned(), value);
            }
        }
    }

    fn span(&mut self, stage: Stage, nanos: u64) {
        self.spans.entry(stage).or_default().record(nanos);
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DriftTrigger;

    #[test]
    fn retains_all_signal_kinds() {
        let mut r = InMemoryRecorder::new();
        r.event(10, StreamEvent::DriftDetected { trigger: DriftTrigger::Detector });
        r.event(10, StreamEvent::ConceptSwitch { from: 0, to: 1, similarity: None });
        r.event(15, StreamEvent::SimilarityObserved { value: 0.93 });
        r.counter("drifts", 1);
        r.counter("drifts", 1);
        r.gauge("sim.mean", 0.9);
        r.gauge("sim.mean", 0.95);
        r.span(Stage::Extract, 1_000);
        r.span(Stage::Extract, 3_000);

        assert_eq!(r.events().len(), 3);
        assert_eq!(r.counter_value("drifts"), 2);
        assert_eq!(r.gauge_value("sim.mean"), Some(0.95));
        assert_eq!(r.stage_histogram(Stage::Extract).unwrap().count(), 2);
        assert!(r.stage_histogram(Stage::Similarity).is_none());
        assert_eq!(r.drift_points(), vec![10]);
        assert_eq!(r.similarity_trace(), vec![(15, 0.93)]);
        assert_eq!(r.concept_switches(), vec![(10, 0, 1)]);
        assert_eq!(r.event_count("drift_detected"), 1);
    }

    #[test]
    fn downcast_through_as_any() {
        let r = InMemoryRecorder::new();
        let dynref: &dyn Recorder = &r;
        assert!(dynref.as_any().unwrap().downcast_ref::<InMemoryRecorder>().is_some());
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = InMemoryRecorder::new();
        r.counter("x", 3);
        r.event(1, StreamEvent::PlasticityReset);
        r.clear();
        assert_eq!(r.counter_value("x"), 0);
        assert!(r.events().is_empty());
    }
}
