//! Streaming JSONL sink: one JSON object per signal, one signal per line.
//!
//! ## Schema
//!
//! Every line carries a `"kind"` discriminator:
//!
//! ```text
//! {"kind":"event","t":1200,"event":"drift_detected","trigger":"detector"}
//! {"kind":"event","t":1200,"event":"concept_switch","from":0,"to":1,"similarity":0.91}
//! {"kind":"counter","name":"ficsum.drifts","delta":1}
//! {"kind":"gauge","name":"ficsum.sim.mean","value":0.9731}
//! {"kind":"span","stage":"extract","nanos":18231}
//! ```
//!
//! Event payload fields are flattened into the object. Non-finite floats
//! serialise as `null` (JSON has no NaN). The writer is hand-rolled —
//! this crate takes no dependencies — but emits strict JSON.

use std::io::Write;

use crate::event::{Stage, StreamEvent};
use crate::recorder::Recorder;

/// A minimal JSON scalar for line records.
#[derive(Debug, Clone, Copy)]
pub enum JsonValue<'a> {
    /// A string (will be escaped).
    Str(&'a str),
    /// A float; non-finite values serialise as `null`.
    Num(f64),
    /// An unsigned integer.
    Int(u64),
    /// A boolean.
    Bool(bool),
}

/// Escapes `s` into `out` as JSON string contents (no surrounding quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn value_into(out: &mut String, v: &JsonValue<'_>) {
    match v {
        JsonValue::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        JsonValue::Num(n) => {
            if n.is_finite() {
                // `{:?}` round-trips f64 exactly and always includes a
                // decimal point or exponent, which keeps the value a JSON
                // number distinguishable from an integer count.
                out.push_str(&format!("{n:?}"));
            } else {
                out.push_str("null");
            }
        }
        JsonValue::Int(i) => out.push_str(&format!("{i}")),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Formats one `{"k":v,...}` line (without trailing newline) from pairs.
pub fn format_record(fields: &[(&str, JsonValue<'_>)]) -> String {
    let mut out = String::with_capacity(64);
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, k);
        out.push_str("\":");
        value_into(&mut out, v);
    }
    out.push('}');
    out
}

/// Writes one JSONL record (with newline) to `w`.
pub fn write_record<W: Write>(w: &mut W, fields: &[(&str, JsonValue<'_>)]) -> std::io::Result<()> {
    writeln!(w, "{}", format_record(fields))
}

/// A [`Recorder`] that streams every signal as one JSON line.
///
/// Write errors are counted (see [`JsonlSink::write_errors`]) rather than
/// panicking: observability must never take down the pipeline.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    write_errors: u64,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing to `writer`.
    pub fn new(writer: W) -> Self {
        Self { writer, write_errors: 0 }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }

    /// Number of line writes that failed.
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }

    fn emit(&mut self, fields: &[(&str, JsonValue<'_>)]) {
        if write_record(&mut self.writer, fields).is_err() {
            self.write_errors += 1;
        }
    }
}

/// Sink receiving one flattened JSONL record as `(key, value)` fields.
type RecordSink<'a> = dyn FnMut(&[(&str, JsonValue<'_>)]) + 'a;

/// Flattens an event's payload into JSONL fields and emits the line.
fn event_fields(t: u64, event: &StreamEvent, emit: &mut RecordSink<'_>) {
    let kind = ("kind", JsonValue::Str("event"));
    let ts = ("t", JsonValue::Int(t));
    let name = ("event", JsonValue::Str(event.name()));
    match event {
        StreamEvent::DriftDetected { trigger } => {
            emit(&[kind, ts, name, ("trigger", JsonValue::Str(trigger.name()))]);
        }
        StreamEvent::ConceptSwitch { from, to, similarity } => {
            let sim = match similarity {
                Some(s) => JsonValue::Num(*s),
                None => JsonValue::Num(f64::NAN), // serialises as null
            };
            emit(&[
                kind,
                ts,
                name,
                ("from", JsonValue::Int(*from)),
                ("to", JsonValue::Int(*to)),
                ("similarity", sim),
            ]);
        }
        StreamEvent::FingerprintExtracted { dims } => {
            emit(&[kind, ts, name, ("dims", JsonValue::Int(*dims))]);
        }
        StreamEvent::SimilarityObserved { value } | StreamEvent::BaselineAbsorbed { value } => {
            emit(&[kind, ts, name, ("value", JsonValue::Num(*value))]);
        }
        StreamEvent::WeightsRecomputed { dims, spread } => {
            emit(&[
                kind,
                ts,
                name,
                ("dims", JsonValue::Int(*dims)),
                ("spread", JsonValue::Num(*spread)),
            ]);
        }
        StreamEvent::RepositoryEvicted { id } => {
            emit(&[kind, ts, name, ("id", JsonValue::Int(*id))]);
        }
        StreamEvent::SessionCreated { shard, session }
        | StreamEvent::SessionEvicted { shard, session }
        | StreamEvent::SessionPoisoned { shard, session } => {
            emit(&[
                kind,
                ts,
                name,
                ("shard", JsonValue::Int(*shard)),
                ("session", JsonValue::Int(*session)),
            ]);
        }
        StreamEvent::BatchProcessed { shard, len } => {
            emit(&[
                kind,
                ts,
                name,
                ("shard", JsonValue::Int(*shard)),
                ("len", JsonValue::Int(*len)),
            ]);
        }
        StreamEvent::WorkerRestarted { shard, incarnation, sessions } => {
            emit(&[
                kind,
                ts,
                name,
                ("shard", JsonValue::Int(*shard)),
                ("incarnation", JsonValue::Int(*incarnation)),
                ("sessions", JsonValue::Int(*sessions)),
            ]);
        }
        StreamEvent::SessionRestored { shard, session, steps } => {
            emit(&[
                kind,
                ts,
                name,
                ("shard", JsonValue::Int(*shard)),
                ("session", JsonValue::Int(*session)),
                ("steps", JsonValue::Int(*steps)),
            ]);
        }
        StreamEvent::ConnectionOpened { conn } => {
            emit(&[kind, ts, name, ("conn", JsonValue::Int(*conn))]);
        }
        StreamEvent::ConnectionClosed { conn, batches } => {
            emit(&[
                kind,
                ts,
                name,
                ("conn", JsonValue::Int(*conn)),
                ("batches", JsonValue::Int(*batches)),
            ]);
        }
        StreamEvent::BatchRejected { conn, code } => {
            emit(&[
                kind,
                ts,
                name,
                ("conn", JsonValue::Int(*conn)),
                ("code", JsonValue::Int(*code)),
            ]);
        }
        StreamEvent::DetectorWarning | StreamEvent::PlasticityReset => {
            emit(&[kind, ts, name]);
        }
    }
}

impl<W: Write> Recorder for JsonlSink<W> {
    fn event(&mut self, t: u64, event: StreamEvent) {
        let mut emit = |fields: &[(&str, JsonValue<'_>)]| {
            if write_record(&mut self.writer, fields).is_err() {
                self.write_errors += 1;
            }
        };
        event_fields(t, &event, &mut emit);
    }

    fn counter(&mut self, name: &str, delta: u64) {
        self.emit(&[
            ("kind", JsonValue::Str("counter")),
            ("name", JsonValue::Str(name)),
            ("delta", JsonValue::Int(delta)),
        ]);
    }

    fn gauge(&mut self, name: &str, value: f64) {
        self.emit(&[
            ("kind", JsonValue::Str("gauge")),
            ("name", JsonValue::Str(name)),
            ("value", JsonValue::Num(value)),
        ]);
    }

    fn span(&mut self, stage: Stage, nanos: u64) {
        self.emit(&[
            ("kind", JsonValue::Str("span")),
            ("stage", JsonValue::Str(stage.name())),
            ("nanos", JsonValue::Int(nanos)),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DriftTrigger;

    fn lines_of(sink: JsonlSink<Vec<u8>>) -> Vec<String> {
        String::from_utf8(sink.into_inner())
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn events_flatten_their_payload() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.event(5, StreamEvent::DriftDetected { trigger: DriftTrigger::HardStreak });
        sink.event(5, StreamEvent::ConceptSwitch { from: 2, to: 0, similarity: Some(0.5) });
        sink.event(9, StreamEvent::ConceptSwitch { from: 0, to: 3, similarity: None });
        let lines = lines_of(sink);
        assert_eq!(
            lines[0],
            r#"{"kind":"event","t":5,"event":"drift_detected","trigger":"hard_streak"}"#
        );
        assert_eq!(
            lines[1],
            r#"{"kind":"event","t":5,"event":"concept_switch","from":2,"to":0,"similarity":0.5}"#
        );
        assert_eq!(
            lines[2],
            r#"{"kind":"event","t":9,"event":"concept_switch","from":0,"to":3,"similarity":null}"#
        );
    }

    #[test]
    fn metrics_serialise_with_kind_discriminators() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.counter("ficsum.drifts", 1);
        sink.gauge("sim.mean", 0.25);
        sink.span(Stage::DriftCheck, 42);
        let lines = lines_of(sink);
        assert_eq!(lines[0], r#"{"kind":"counter","name":"ficsum.drifts","delta":1}"#);
        assert_eq!(lines[1], r#"{"kind":"gauge","name":"sim.mean","value":0.25}"#);
        assert_eq!(lines[2], r#"{"kind":"span","stage":"drift_check","nanos":42}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let s = format_record(&[("k", JsonValue::Str("a\"b\\c\nd"))]);
        assert_eq!(s, r#"{"k":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let s = format_record(&[("v", JsonValue::Num(f64::INFINITY))]);
        assert_eq!(s, r#"{"v":null}"#);
    }
}
