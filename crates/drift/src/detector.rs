//! The common drift-detector interface.

/// Tri-state output of a drift detector after each update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DetectorState {
    /// No evidence of change.
    #[default]
    Stable,
    /// Change is suspected (warning zone); learners may start training a
    /// background model.
    Warning,
    /// Change confirmed; the monitored distribution has drifted.
    Drift,
}

/// An online change detector over a univariate stream.
///
/// Implementations consume one value per call to [`DriftDetector::add`] and
/// expose their current state. Detectors that operate on classification
/// errors (DDM, EDDM, HDDM-A) interpret the value as an error indicator
/// (anything `>= 0.5` counts as an error); ADWIN accepts arbitrary bounded
/// real values, which is what lets FiCSUM run it over fingerprint
/// similarities.
pub trait DriftDetector {
    /// Consumes one value and returns the resulting state.
    fn add(&mut self, value: f64) -> DetectorState;

    /// State after the most recent update.
    fn state(&self) -> DetectorState;

    /// Whether the most recent update confirmed a drift.
    fn drift_detected(&self) -> bool {
        self.state() == DetectorState::Drift
    }

    /// Whether the most recent update entered the warning zone.
    fn warning_detected(&self) -> bool {
        self.state() == DetectorState::Warning
    }

    /// Resets all internal state, forgetting everything seen so far.
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Always(DetectorState);
    impl DriftDetector for Always {
        fn add(&mut self, _v: f64) -> DetectorState {
            self.0
        }
        fn state(&self) -> DetectorState {
            self.0
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn default_flag_helpers() {
        assert!(Always(DetectorState::Drift).drift_detected());
        assert!(!Always(DetectorState::Drift).warning_detected());
        assert!(Always(DetectorState::Warning).warning_detected());
        assert!(!Always(DetectorState::Stable).drift_detected());
    }
}
