//! DDM — Drift Detection Method (Gama et al., SBIA 2004).
//!
//! DDM monitors the classifier's online error rate `p_i` together with its
//! binomial standard deviation `s_i = sqrt(p_i (1 - p_i) / i)`. In
//! stationary conditions `p_i + s_i` decreases; DDM records the minimum
//! `p_min + s_min` and raises a warning when `p_i + s_i > p_min + 2 s_min`
//! and a drift when it exceeds `p_min + 3 s_min`.

use crate::detector::{DetectorState, DriftDetector};

/// The DDM error-rate drift detector.
#[derive(Debug, Clone)]
pub struct Ddm {
    min_instances: u64,
    warning_level: f64,
    drift_level: f64,
    n: u64,
    errors: u64,
    p_min: f64,
    s_min: f64,
    state: DetectorState,
}

impl Default for Ddm {
    fn default() -> Self {
        Self::new(30, 2.0, 3.0)
    }
}

impl Ddm {
    /// `min_instances` observations are required before alarms can fire;
    /// `warning_level` / `drift_level` are the multiples of `s_min` above
    /// `p_min` that trigger each state (2 and 3 in the paper).
    pub fn new(min_instances: u64, warning_level: f64, drift_level: f64) -> Self {
        assert!(drift_level > warning_level && warning_level > 0.0);
        Self {
            min_instances,
            warning_level,
            drift_level,
            n: 0,
            errors: 0,
            p_min: f64::INFINITY,
            s_min: f64::INFINITY,
            state: DetectorState::Stable,
        }
    }

    /// Current running error rate.
    pub fn error_rate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.errors as f64 / self.n as f64
        }
    }
}

impl DriftDetector for Ddm {
    fn add(&mut self, value: f64) -> DetectorState {
        // After a drift the detector restarts from scratch.
        if self.state == DetectorState::Drift {
            self.reset();
        }
        self.n += 1;
        if value >= 0.5 {
            self.errors += 1;
        }
        let p = self.error_rate();
        let s = (p * (1.0 - p) / self.n as f64).sqrt();

        self.state = DetectorState::Stable;
        if self.n < self.min_instances {
            return self.state;
        }
        if p + s <= self.p_min + self.s_min {
            self.p_min = p;
            self.s_min = s;
        }
        if p + s > self.p_min + self.drift_level * self.s_min {
            self.state = DetectorState::Drift;
        } else if p + s > self.p_min + self.warning_level * self.s_min {
            self.state = DetectorState::Warning;
        }
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        let (mi, wl, dl) = (self.min_instances, self.warning_level, self.drift_level);
        *self = Ddm::new(mi, wl, dl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds a deterministic pattern with one error every `period`
    /// observations; returns the index at which drift fired, if any.
    fn feed_periodic(d: &mut Ddm, period: usize, n: usize) -> Option<usize> {
        for i in 0..n {
            let err = if (i + 1) % period == 0 { 1.0 } else { 0.0 };
            if d.add(err) == DetectorState::Drift {
                return Some(i);
            }
        }
        None
    }

    #[test]
    fn detects_error_rate_jump() {
        let mut ddm = Ddm::default();
        assert!(feed_periodic(&mut ddm, 10, 2000).is_none());
        // Error rate jumps from 0.1 to every observation being wrong.
        let at = feed_periodic(&mut ddm, 1, 2000).expect("jump must fire");
        assert!(at < 300, "detection too slow: {at}");
    }

    #[test]
    fn stationary_periodic_errors_are_stable() {
        let mut ddm = Ddm::default();
        assert!(feed_periodic(&mut ddm, 5, 5000).is_none());
    }

    #[test]
    fn warning_precedes_drift() {
        let mut ddm = Ddm::default();
        feed_periodic(&mut ddm, 10, 2000);
        let mut saw_warning = false;
        for i in 0..2000 {
            // Moderate degradation: one error every 3 observations.
            let err = if i % 3 == 0 { 1.0 } else { 0.0 };
            match ddm.add(err) {
                DetectorState::Warning => saw_warning = true,
                DetectorState::Drift => break,
                DetectorState::Stable => {}
            }
        }
        assert!(saw_warning, "expected a warning zone before drift");
    }

    #[test]
    fn resets_after_drift_automatically() {
        let mut ddm = Ddm::default();
        assert!(feed_periodic(&mut ddm, 10, 1000).is_none());
        feed_periodic(&mut ddm, 1, 1000).expect("must fire");
        // The detector restarts its statistics on the next update and must be
        // able to fire again on a fresh jump.
        assert!(feed_periodic(&mut ddm, 10, 1000).is_none(), "should restart cleanly");
        assert!(feed_periodic(&mut ddm, 1, 1000).is_some(), "must fire again after reset");
    }

    #[test]
    fn error_rate_tracks_inputs() {
        let mut ddm = Ddm::default();
        for _ in 0..10 {
            ddm.add(1.0);
        }
        for _ in 0..10 {
            ddm.add(0.0);
        }
        assert!((ddm.error_rate() - 0.5).abs() < 1e-12);
    }
}
