//! Concept drift detectors.
//!
//! FiCSUM feeds a stream of *similarity values* into an explicit drift
//! detector (the paper uses ADWIN); the baseline frameworks feed *error
//! indicators* into ADWIN, DDM or EDDM. All detectors implement the common
//! [`DriftDetector`] trait over a stream of real values.
//!
//! Implemented detectors:
//!
//! * [`Adwin`] — ADaptive WINdowing (Bifet & Gavaldà, SDM 2007), with the
//!   exponential-histogram bucket compression scheme,
//! * [`Ddm`] — Drift Detection Method (Gama et al., SBIA 2004),
//! * [`Eddm`] — Early Drift Detection Method (Baena-García et al., 2006),
//!   based on the distance between classification errors,
//! * [`HddmA`] — Hoeffding's-bound drift detection on averages
//!   (Frías-Blanco et al., TKDE 2015),
//! * [`PageHinkley`] — the classic Page–Hinkley sequential test.

pub mod adwin;
pub mod ddm;
pub mod detector;
pub mod eddm;
pub mod hddm;
pub mod page_hinkley;
pub mod recorded;

pub use adwin::Adwin;
pub use ddm::Ddm;
pub use detector::{DetectorState, DriftDetector};
pub use eddm::Eddm;
pub use hddm::HddmA;
pub use page_hinkley::PageHinkley;
pub use recorded::RecordedDetector;
