//! Page–Hinkley test for change detection.
//!
//! A classic sequential change detector over a real-valued stream: it
//! accumulates the deviation of each observation from the running mean
//! (minus a tolerance `delta`) and alarms when the accumulated drift rises
//! more than `lambda` above its historical minimum. Cheap (O(1)/update),
//! one-sided (detects mean *increases*, e.g. of an error rate), and a
//! common companion baseline to DDM/ADWIN in the drift literature.

use crate::detector::{DetectorState, DriftDetector};

/// The Page–Hinkley change detector.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    /// Tolerance subtracted from each deviation (absorbs noise).
    delta: f64,
    /// Alarm threshold on the test statistic.
    lambda: f64,
    /// Warning threshold (fraction of `lambda`).
    warning_fraction: f64,
    n: u64,
    mean: f64,
    cumulative: f64,
    minimum: f64,
    state: DetectorState,
}

impl Default for PageHinkley {
    fn default() -> Self {
        Self::new(0.005, 50.0)
    }
}

impl PageHinkley {
    /// Detector with tolerance `delta` and threshold `lambda` (both > 0).
    pub fn new(delta: f64, lambda: f64) -> Self {
        assert!(delta >= 0.0 && lambda > 0.0);
        Self {
            delta,
            lambda,
            warning_fraction: 0.75,
            n: 0,
            mean: 0.0,
            cumulative: 0.0,
            minimum: f64::INFINITY,
            state: DetectorState::Stable,
        }
    }

    /// Current test statistic (distance above the historical minimum).
    pub fn statistic(&self) -> f64 {
        if self.minimum.is_finite() {
            self.cumulative - self.minimum
        } else {
            0.0
        }
    }
}

impl DriftDetector for PageHinkley {
    fn add(&mut self, value: f64) -> DetectorState {
        if self.state == DetectorState::Drift {
            self.reset();
        }
        self.n += 1;
        self.mean += (value - self.mean) / self.n as f64;
        self.cumulative += value - self.mean - self.delta;
        if self.cumulative < self.minimum {
            self.minimum = self.cumulative;
        }
        let stat = self.statistic();
        self.state = if stat > self.lambda {
            DetectorState::Drift
        } else if stat > self.lambda * self.warning_fraction {
            DetectorState::Warning
        } else {
            DetectorState::Stable
        };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        let (d, l) = (self.delta, self.lambda);
        *self = PageHinkley::new(d, l);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_periodic(d: &mut PageHinkley, period: usize, n: usize) -> Option<usize> {
        for i in 0..n {
            let err = if (i + 1) % period == 0 { 1.0 } else { 0.0 };
            if d.add(err) == DetectorState::Drift {
                return Some(i);
            }
        }
        None
    }

    #[test]
    fn stationary_stream_is_stable() {
        let mut ph = PageHinkley::default();
        assert!(feed_periodic(&mut ph, 5, 10_000).is_none());
    }

    #[test]
    fn detects_mean_increase() {
        let mut ph = PageHinkley::default();
        assert!(feed_periodic(&mut ph, 10, 2000).is_none());
        let at = feed_periodic(&mut ph, 2, 2000).expect("jump must fire");
        assert!(at < 400, "detection too slow: {at}");
    }

    #[test]
    fn ignores_mean_decrease() {
        let mut ph = PageHinkley::default();
        feed_periodic(&mut ph, 2, 2000);
        // improvement: errors thin out -> statistic shrinks, no alarm
        let mut fired = false;
        for i in 0..4000 {
            let err = if i % 20 == 0 { 1.0 } else { 0.0 };
            if ph.add(err) == DetectorState::Drift {
                fired = true;
            }
        }
        assert!(!fired, "one-sided detector must not alarm on improvement");
    }

    #[test]
    fn statistic_is_nonnegative_and_resets() {
        let mut ph = PageHinkley::new(0.01, 10.0);
        for i in 0..500 {
            ph.add(if i % 3 == 0 { 1.0 } else { 0.0 });
            assert!(ph.statistic() >= -1e-12);
        }
        ph.reset();
        assert_eq!(ph.statistic(), 0.0);
        assert_eq!(ph.state(), DetectorState::Stable);
    }

    #[test]
    fn warning_precedes_drift() {
        let mut ph = PageHinkley::new(0.005, 50.0);
        feed_periodic(&mut ph, 10, 1000);
        let mut saw_warning = false;
        for i in 0..4000 {
            match ph.add(if i % 2 == 0 { 1.0 } else { 0.0 }) {
                DetectorState::Warning => saw_warning = true,
                DetectorState::Drift => break,
                DetectorState::Stable => {}
            }
        }
        assert!(saw_warning);
    }
}
