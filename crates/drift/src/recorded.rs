//! Observability wrapper for drift detectors.

use ficsum_obs::{DriftTrigger, Recorder, StreamEvent};

use crate::detector::{DetectorState, DriftDetector};

/// Wraps any [`DriftDetector`] and mirrors its state transitions into a
/// [`Recorder`]: a [`StreamEvent::DriftDetected`] on every fire, a
/// [`StreamEvent::DetectorWarning`] on every entry into the warning zone,
/// plus `drift.fired` / `drift.warnings` counters and a `drift.input`
/// gauge of the last monitored value.
///
/// The event timestamp is the number of values consumed so far (the
/// detector's own notion of time); hosts that know a richer stream index
/// should emit their own events instead — this wrapper serves detectors
/// run standalone, e.g. the baseline frameworks and detector comparisons.
pub struct RecordedDetector<D: DriftDetector, R: Recorder> {
    detector: D,
    recorder: R,
    t: u64,
    /// Edge-trigger memory: a warning is emitted only on the transition
    /// into [`DetectorState::Warning`], not on every update inside it.
    was_warning: bool,
}

impl<D: DriftDetector, R: Recorder> RecordedDetector<D, R> {
    /// Wraps `detector`, mirroring transitions into `recorder`.
    pub fn new(detector: D, recorder: R) -> Self {
        Self { detector, recorder, t: 0, was_warning: false }
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &D {
        &self.detector
    }

    /// The recorder (e.g. to hand back a shared handle).
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Values consumed so far.
    pub fn observed(&self) -> u64 {
        self.t
    }

    /// Unwraps into the detector and recorder.
    pub fn into_parts(self) -> (D, R) {
        (self.detector, self.recorder)
    }
}

impl<D: DriftDetector, R: Recorder> DriftDetector for RecordedDetector<D, R> {
    fn add(&mut self, value: f64) -> DetectorState {
        let state = self.detector.add(value);
        self.t += 1;
        if self.recorder.enabled() {
            self.recorder.gauge("drift.input", value);
            match state {
                DetectorState::Drift => {
                    self.recorder
                        .event(self.t, StreamEvent::DriftDetected { trigger: DriftTrigger::Detector });
                    self.recorder.counter("drift.fired", 1);
                    self.was_warning = false;
                }
                DetectorState::Warning => {
                    if !self.was_warning {
                        self.recorder.event(self.t, StreamEvent::DetectorWarning);
                        self.recorder.counter("drift.warnings", 1);
                    }
                    self.was_warning = true;
                }
                DetectorState::Stable => self.was_warning = false,
            }
        }
        state
    }

    fn state(&self) -> DetectorState {
        self.detector.state()
    }

    fn reset(&mut self) {
        self.detector.reset();
        self.was_warning = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddm::Ddm;
    use ficsum_obs::{shared, InMemoryRecorder};

    #[test]
    fn mirrors_fires_and_warnings_with_edge_triggering() {
        let keep = shared(InMemoryRecorder::new());
        let mut det = RecordedDetector::new(Ddm::default(), keep.clone());
        // Low error rate, then a burst: DDM passes through warning into
        // drift.
        for i in 0..80 {
            det.add(if i % 10 == 0 { 1.0 } else { 0.0 });
        }
        let mut fired = false;
        for _ in 0..200 {
            if det.add(1.0) == DetectorState::Drift {
                fired = true;
                break;
            }
        }
        assert!(fired, "DDM must fire on an error burst");
        let rec = keep.borrow();
        assert_eq!(rec.counter_value("drift.fired"), 1);
        assert!(rec.counter_value("drift.warnings") >= 1);
        // Edge triggering: consecutive warning updates emit one event.
        assert_eq!(
            rec.event_count("detector_warning") as u64,
            rec.counter_value("drift.warnings")
        );
        let points = rec.drift_points();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0], det.observed());
    }

    #[test]
    fn wrapper_is_behaviourally_transparent() {
        let mut plain = Ddm::default();
        let mut wrapped = RecordedDetector::new(Ddm::default(), InMemoryRecorder::new());
        for i in 0..500 {
            let v = if (i / 7) % 9 == 0 { 1.0 } else { 0.0 };
            assert_eq!(plain.add(v), wrapped.add(v), "step {i}");
        }
        assert_eq!(plain.state(), wrapped.state());
    }
}
