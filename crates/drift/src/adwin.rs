//! ADWIN — ADaptive WINdowing (Bifet & Gavaldà, SDM 2007).
//!
//! ADWIN maintains a variable-length window of recent values and shrinks it
//! whenever two "large enough" sub-windows exhibit "distinct enough"
//! averages, using a Hoeffding-style bound with Bonferroni correction. The
//! window is stored as an exponential histogram: buckets of exponentially
//! growing size with at most `M + 1` buckets per size class, giving
//! logarithmic memory in the window length.
//!
//! This is the detector FiCSUM runs over its fingerprint-similarity stream
//! (Algorithm 1, line 24) and the detector HTCD/ARF run over error
//! indicators.

use std::collections::VecDeque;

use crate::detector::{DetectorState, DriftDetector};

/// One exponential-histogram bucket summarising `count` consecutive values.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    count: u64,
    sum: f64,
    /// Sum of squared deviations from the bucket mean (Welford M2), enabling
    /// exact variance maintenance under merges and deletions.
    m2: f64,
}

impl Bucket {
    fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Merges two buckets via the parallel-Welford identity.
    fn merge(a: Bucket, b: Bucket) -> Bucket {
        let count = a.count + b.count;
        let delta = b.mean() - a.mean();
        let m2 = a.m2 + b.m2 + delta * delta * (a.count as f64 * b.count as f64) / count as f64;
        Bucket { count, sum: a.sum + b.sum, m2 }
    }
}

/// The ADWIN change detector.
///
/// `delta` is the confidence parameter: smaller values make detection more
/// conservative. The default matches the common `delta = 0.002`.
#[derive(Debug, Clone)]
pub struct Adwin {
    delta: f64,
    /// Max buckets per size class before two are merged upward.
    max_buckets: usize,
    /// Minimum sub-window length considered for a cut.
    min_sub_window: u64,
    /// How often (in updates) the cut test runs; 1 = every update.
    clock: u64,
    /// rows[i] holds buckets of capacity 2^i, front = oldest.
    rows: Vec<VecDeque<Bucket>>,
    width: u64,
    sum: f64,
    m2: f64,
    ticks: u64,
    n_detections: u64,
    state: DetectorState,
}

impl Default for Adwin {
    fn default() -> Self {
        Self::new(0.002)
    }
}

impl Adwin {
    /// Creates a detector with confidence `delta` (must be in `(0, 1)`).
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        Self {
            delta,
            max_buckets: 5,
            min_sub_window: 5,
            clock: 1,
            rows: vec![VecDeque::new()],
            width: 0,
            sum: 0.0,
            m2: 0.0,
            ticks: 0,
            n_detections: 0,
            state: DetectorState::Stable,
        }
    }

    /// Sets how many updates pass between cut tests (default 1). Raising this
    /// trades detection latency for speed, exactly like MOA's `clock`.
    pub fn with_clock(mut self, clock: u64) -> Self {
        assert!(clock >= 1);
        self.clock = clock;
        self
    }

    /// Current window length.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Mean of the current window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.width == 0 {
            0.0
        } else {
            self.sum / self.width as f64
        }
    }

    /// Population variance of the current window.
    pub fn variance(&self) -> f64 {
        if self.width < 2 {
            0.0
        } else {
            self.m2 / self.width as f64
        }
    }

    /// Total number of drifts detected since construction/reset.
    pub fn n_detections(&self) -> u64 {
        self.n_detections
    }

    fn insert(&mut self, value: f64) {
        // Whole-window Welford update.
        let old_mean = if self.width == 0 { value } else { self.sum / self.width as f64 };
        self.width += 1;
        self.sum += value;
        let new_mean = self.sum / self.width as f64;
        self.m2 += (value - old_mean) * (value - new_mean);

        // New size-1 bucket, newest end of row 0.
        self.rows[0].push_back(Bucket { count: 1, sum: value, m2: 0.0 });
        self.compress();
    }

    /// Merge oldest pairs upward whenever a row exceeds `max_buckets + 1`.
    fn compress(&mut self) {
        let mut row = 0;
        while row < self.rows.len() {
            if self.rows[row].len() > self.max_buckets + 1 {
                if row + 1 == self.rows.len() {
                    self.rows.push(VecDeque::new());
                }
                let a = self.rows[row].pop_front().expect("len checked");
                let b = self.rows[row].pop_front().expect("len checked");
                self.rows[row + 1].push_back(Bucket::merge(a, b));
            } else {
                row += 1;
            }
        }
    }

    /// Removes the oldest bucket, reversing its contribution to the window
    /// aggregates.
    fn drop_oldest_bucket(&mut self) {
        let row = self
            .rows
            .iter()
            .rposition(|r| !r.is_empty())
            .expect("drop called on non-empty window");
        let bucket = self.rows[row].pop_front().expect("row non-empty");
        let n = self.width as f64;
        let n2 = bucket.count as f64;
        let n1 = n - n2;
        if n1 <= 0.0 {
            self.width = 0;
            self.sum = 0.0;
            self.m2 = 0.0;
            return;
        }
        let mean = self.sum / n;
        let mean2 = bucket.mean();
        let mean1 = (n * mean - n2 * mean2) / n1;
        let delta = mean2 - mean1;
        self.m2 = (self.m2 - bucket.m2 - delta * delta * n1 * n2 / n).max(0.0);
        self.sum -= bucket.sum;
        self.width -= bucket.count;
    }

    /// Runs the cut test, shrinking the window while any split point shows a
    /// significant difference in means. Returns whether anything was cut.
    fn detect_change(&mut self) -> bool {
        let mut changed = false;
        loop {
            if self.width < 2 * self.min_sub_window {
                break;
            }
            let total_n = self.width as f64;
            let total_sum = self.sum;
            let v = self.variance();
            // Bonferroni-style correction: delta' = delta / ln(n).
            let dd = (2.0 * (total_n.ln().max(1.0)) / self.delta).ln();

            let mut cut = false;
            let mut n0: f64 = 0.0;
            let mut sum0: f64 = 0.0;
            // Oldest buckets live at the back rows' fronts; iterate oldest to
            // newest: highest row first, each row front-to-back.
            'outer: for row in (0..self.rows.len()).rev() {
                for (i, bucket) in self.rows[row].iter().enumerate() {
                    n0 += bucket.count as f64;
                    sum0 += bucket.sum;
                    let n1 = total_n - n0;
                    // Never cut inside the newest bucket or below min width.
                    let is_last = row == 0 && i + 1 == self.rows[0].len();
                    if is_last {
                        break 'outer;
                    }
                    if n0 < self.min_sub_window as f64 || n1 < self.min_sub_window as f64 {
                        continue;
                    }
                    let mu0 = sum0 / n0;
                    let mu1 = (total_sum - sum0) / n1;
                    let m = 1.0 / n0 + 1.0 / n1;
                    let epsilon = (2.0 * m * v * dd).sqrt() + (2.0 / 3.0) * m * dd;
                    if (mu0 - mu1).abs() > epsilon {
                        cut = true;
                        break 'outer;
                    }
                }
            }
            if cut {
                self.drop_oldest_bucket();
                changed = true;
            } else {
                break;
            }
        }
        changed
    }
}

impl DriftDetector for Adwin {
    fn add(&mut self, value: f64) -> DetectorState {
        self.insert(value);
        self.ticks += 1;
        self.state = DetectorState::Stable;
        if self.ticks.is_multiple_of(self.clock) && self.detect_change() {
            self.n_detections += 1;
            self.state = DetectorState::Drift;
        }
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        let delta = self.delta;
        let clock = self.clock;
        *self = Adwin::new(delta).with_clock(clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    #[test]
    fn stable_stream_rarely_alarms() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut adwin = Adwin::new(0.002);
        let mut drifts = 0;
        for _ in 0..5000 {
            let v: f64 = rng.random::<f64>(); // uniform [0,1), stationary
            if adwin.add(v) == DetectorState::Drift {
                drifts += 1;
            }
        }
        assert!(drifts <= 2, "too many false alarms: {drifts}");
        assert!(adwin.width() > 1000, "window should grow under stationarity");
    }

    #[test]
    fn abrupt_shift_is_detected_quickly() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut adwin = Adwin::new(0.002);
        for _ in 0..1000 {
            adwin.add(rng.random::<f64>() * 0.2);
        }
        let mut detected_at = None;
        for i in 0..500 {
            if adwin.add(0.8 + rng.random::<f64>() * 0.2) == DetectorState::Drift {
                detected_at = Some(i);
                break;
            }
        }
        let at = detected_at.expect("shift of 0.6 must be detected");
        assert!(at < 100, "detection too slow: {at}");
        // Keep feeding the new regime: the window converges to its mean.
        for _ in 0..500 {
            adwin.add(0.8 + rng.random::<f64>() * 0.2);
        }
        assert!(adwin.mean() > 0.5, "window mean {} stuck on old regime", adwin.mean());
    }

    #[test]
    fn window_mean_tracks_input() {
        let mut adwin = Adwin::new(0.01);
        for _ in 0..100 {
            adwin.add(1.0);
        }
        assert_eq!(adwin.width(), 100);
        assert!((adwin.mean() - 1.0).abs() < 1e-12);
        assert!(adwin.variance() < 1e-12);
    }

    #[test]
    fn gradual_drift_shrinks_window() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut adwin = Adwin::new(0.002);
        for i in 0..4000 {
            let level = if i < 2000 { 0.2 } else { 0.2 + (i - 2000) as f64 * 0.0005 };
            adwin.add(level + rng.random::<f64>() * 0.1);
        }
        // Window must not contain the whole stream: old mean was cut away.
        assert!(adwin.width() < 3000);
        assert!(adwin.n_detections() >= 1);
    }

    #[test]
    fn reset_clears_state() {
        let mut adwin = Adwin::new(0.002);
        for _ in 0..50 {
            adwin.add(0.5);
        }
        adwin.reset();
        assert_eq!(adwin.width(), 0);
        assert_eq!(adwin.mean(), 0.0);
        assert_eq!(adwin.state(), DetectorState::Stable);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn invalid_delta_panics() {
        let _ = Adwin::new(1.5);
    }

    #[test]
    fn variance_maintenance_is_exact_under_compression() {
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let mut adwin = Adwin::new(1e-9); // effectively never cut
        let mut values = Vec::new();
        for _ in 0..777 {
            let v = rng.random::<f64>() * 3.0 - 1.0;
            values.push(v);
            adwin.add(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert_eq!(adwin.width(), 777);
        assert!((adwin.mean() - mean).abs() < 1e-9);
        assert!((adwin.variance() - var).abs() < 1e-9);
    }
}
