//! EDDM — Early Drift Detection Method (Baena-García et al., 2006).
//!
//! Where DDM watches the error *rate*, EDDM watches the *distance between
//! consecutive errors*. Under a stable concept the average distance `p'` (and
//! `p' + 2 s'`) grows; when a drift degrades the classifier, errors bunch up
//! and the ratio `(p' + 2 s') / (p'_max + 2 s'_max)` falls below the drift
//! threshold `beta` (warning threshold `alpha`). This is the error-distance
//! behaviour source FiCSUM also fingerprints.

use ficsum_stream::RunningStats;

use crate::detector::{DetectorState, DriftDetector};

/// The EDDM error-distance drift detector.
#[derive(Debug, Clone)]
pub struct Eddm {
    alpha: f64,
    beta: f64,
    min_errors: u64,
    distance: RunningStats,
    since_last_error: u64,
    n: u64,
    max_level: f64,
    state: DetectorState,
}

impl Default for Eddm {
    fn default() -> Self {
        Self::new(0.95, 0.90, 30)
    }
}

impl Eddm {
    /// `alpha` is the warning threshold, `beta < alpha` the drift threshold,
    /// and `min_errors` the number of errors required before alarms fire.
    pub fn new(alpha: f64, beta: f64, min_errors: u64) -> Self {
        assert!(beta < alpha && alpha < 1.0 && beta > 0.0);
        Self {
            alpha,
            beta,
            min_errors,
            distance: RunningStats::new(),
            since_last_error: 0,
            n: 0,
            max_level: 0.0,
            state: DetectorState::Stable,
        }
    }

    /// Mean observed distance between errors.
    pub fn mean_distance(&self) -> f64 {
        self.distance.mean()
    }
}

impl DriftDetector for Eddm {
    fn add(&mut self, value: f64) -> DetectorState {
        if self.state == DetectorState::Drift {
            self.reset();
        }
        self.n += 1;
        self.since_last_error += 1;
        self.state = DetectorState::Stable;
        if value < 0.5 {
            return self.state; // correct prediction: just extend the gap
        }

        self.distance.push(self.since_last_error as f64);
        self.since_last_error = 0;

        let level = self.distance.mean() + 2.0 * self.distance.std_dev();
        if level > self.max_level {
            self.max_level = level;
        }
        if self.distance.count() < self.min_errors || self.max_level <= 0.0 {
            return self.state;
        }
        let ratio = level / self.max_level;
        if ratio < self.beta {
            self.state = DetectorState::Drift;
        } else if ratio < self.alpha {
            self.state = DetectorState::Warning;
        }
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        let (a, b, m) = (self.alpha, self.beta, self.min_errors);
        *self = Eddm::new(a, b, m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One error every `period` observations (deterministic); returns index
    /// at which drift fired, if any.
    fn feed_periodic(d: &mut Eddm, period: usize, n: usize) -> Option<usize> {
        for i in 0..n {
            let err = if (i + 1) % period == 0 { 1.0 } else { 0.0 };
            if d.add(err) == DetectorState::Drift {
                return Some(i);
            }
        }
        None
    }

    #[test]
    fn detects_errors_bunching_up() {
        let mut eddm = Eddm::default();
        // 40 errors at distance 50: stable high-water mark.
        assert!(feed_periodic(&mut eddm, 50, 2000).is_none());
        // Errors on every observation: distances collapse to 1.
        let at = feed_periodic(&mut eddm, 1, 2000).expect("bunching must fire");
        assert!(at < 1000, "detection too slow: {at}");
    }

    #[test]
    fn constant_error_distance_is_stable() {
        let mut eddm = Eddm::default();
        assert!(feed_periodic(&mut eddm, 10, 10_000).is_none());
    }

    #[test]
    fn growing_distance_is_stable() {
        // Improving classifier: errors thin out; ratio stays at its max.
        let mut eddm = Eddm::default();
        let mut fired = None;
        let mut gap = 5usize;
        let mut budget = 5000usize;
        let mut i = 0usize;
        while budget > 0 {
            i += 1;
            budget -= 1;
            let err = if i.is_multiple_of(gap) {
                gap += 1; // next gap is larger
                i = 0;
                1.0
            } else {
                0.0
            };
            if eddm.add(err) == DetectorState::Drift {
                fired = Some(budget);
                break;
            }
        }
        assert!(fired.is_none(), "improvement must not alarm");
    }

    #[test]
    fn tracks_mean_distance() {
        let mut eddm = Eddm::default();
        // error every 5th observation
        for i in 1..=100 {
            eddm.add(if i % 5 == 0 { 1.0 } else { 0.0 });
        }
        assert!((eddm.mean_distance() - 5.0).abs() < 1e-9);
    }
}
