//! HDDM-A — drift detection with Hoeffding's inequality on averages
//! (Frías-Blanco et al., IEEE TKDE 2015).
//!
//! HDDM-A compares the running average of the whole sequence against the
//! prefix whose Hoeffding upper bound was smallest (for detecting an
//! *increase*, e.g. in error rate). A drift fires when the difference of the
//! two averages exceeds the Hoeffding bound for the suffix at the drift
//! confidence; a warning fires at the (looser) warning confidence.

use crate::detector::{DetectorState, DriftDetector};

/// The HDDM-A change detector (one-sided, increase in mean).
#[derive(Debug, Clone)]
pub struct HddmA {
    drift_confidence: f64,
    warning_confidence: f64,
    n: u64,
    sum: f64,
    n_min: u64,
    sum_min: f64,
    eps_min: f64,
    state: DetectorState,
}

impl Default for HddmA {
    fn default() -> Self {
        Self::new(0.001, 0.005)
    }
}

impl HddmA {
    /// `drift_confidence < warning_confidence`, both in `(0, 1)`.
    pub fn new(drift_confidence: f64, warning_confidence: f64) -> Self {
        assert!(drift_confidence < warning_confidence);
        assert!(drift_confidence > 0.0 && warning_confidence < 1.0);
        Self {
            drift_confidence,
            warning_confidence,
            n: 0,
            sum: 0.0,
            n_min: 0,
            sum_min: 0.0,
            eps_min: f64::INFINITY,
            state: DetectorState::Stable,
        }
    }

    fn hoeffding_eps(n: f64, confidence: f64) -> f64 {
        ((1.0 / (2.0 * n)) * (1.0 / confidence).ln()).sqrt()
    }

    /// Does the suffix after the stored minimum prefix show a significant
    /// increase at `confidence`?
    fn mean_increased(&self, confidence: f64) -> bool {
        if self.n_min == 0 || self.n_min == self.n {
            return false;
        }
        let (n, n_min) = (self.n as f64, self.n_min as f64);
        let m = (n - n_min) / (n_min * n);
        let bound = (m / 2.0 * (2.0 / confidence).ln()).sqrt();
        let mean_total = self.sum / n;
        let mean_min = self.sum_min / n_min;
        mean_total - mean_min >= bound
    }
}

impl DriftDetector for HddmA {
    fn add(&mut self, value: f64) -> DetectorState {
        if self.state == DetectorState::Drift {
            self.reset();
        }
        self.n += 1;
        self.sum += value;
        let eps = Self::hoeffding_eps(self.n as f64, self.drift_confidence);
        let upper = self.sum / self.n as f64 + eps;
        if self.n_min == 0 || upper < self.sum_min / self.n_min as f64 + self.eps_min {
            self.n_min = self.n;
            self.sum_min = self.sum;
            self.eps_min = eps;
        }

        self.state = if self.mean_increased(self.drift_confidence) {
            DetectorState::Drift
        } else if self.mean_increased(self.warning_confidence) {
            DetectorState::Warning
        } else {
            DetectorState::Stable
        };
        self.state
    }

    fn state(&self) -> DetectorState {
        self.state
    }

    fn reset(&mut self) {
        let (d, w) = (self.drift_confidence, self.warning_confidence);
        *self = HddmA::new(d, w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

    fn feed(d: &mut HddmA, rng: &mut Xoshiro256pp, p: f64, n: usize) -> Option<usize> {
        for i in 0..n {
            let err = if rng.random::<f64>() < p { 1.0 } else { 0.0 };
            if d.add(err) == DetectorState::Drift {
                return Some(i);
            }
        }
        None
    }

    #[test]
    fn detects_mean_increase() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let mut h = HddmA::default();
        assert!(feed(&mut h, &mut rng, 0.1, 2000).is_none());
        let at = feed(&mut h, &mut rng, 0.5, 2000).expect("increase must fire");
        assert!(at < 200, "detection too slow: {at}");
    }

    #[test]
    fn no_alarm_on_stationary() {
        let mut rng = Xoshiro256pp::seed_from_u64(18);
        let mut h = HddmA::default();
        assert!(feed(&mut h, &mut rng, 0.2, 10_000).is_none());
    }

    #[test]
    fn decrease_does_not_alarm() {
        let mut rng = Xoshiro256pp::seed_from_u64(19);
        let mut h = HddmA::default();
        feed(&mut h, &mut rng, 0.5, 2000);
        assert!(feed(&mut h, &mut rng, 0.05, 2000).is_none());
    }
}
