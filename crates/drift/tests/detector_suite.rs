//! Cross-detector behavioural suite: every detector is exercised on the
//! same scenarios (abrupt jump, gradual ramp, long stationarity) and must
//! satisfy the same contract: bounded false alarms under stationarity and
//! bounded delay after a large abrupt change.

use ficsum_drift::{Adwin, Ddm, DetectorState, DriftDetector, Eddm, HddmA, PageHinkley};
use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

fn detectors() -> Vec<(&'static str, Box<dyn DriftDetector>)> {
    vec![
        ("ADWIN", Box::new(Adwin::new(0.002))),
        ("DDM", Box::new(Ddm::default())),
        ("EDDM", Box::new(Eddm::default())),
        ("HDDM-A", Box::new(HddmA::default())),
        ("PH", Box::new(PageHinkley::default())),
    ]
}

/// Bernoulli error stream with rate `p`.
fn bernoulli(rng: &mut Xoshiro256pp, p: f64) -> f64 {
    if rng.random::<f64>() < p {
        1.0
    } else {
        0.0
    }
}

#[test]
fn abrupt_jump_is_detected_by_every_detector() {
    for (name, mut det) in detectors() {
        let mut rng = Xoshiro256pp::seed_from_u64(101);
        for _ in 0..3000 {
            det.add(bernoulli(&mut rng, 0.05));
        }
        let mut delay = None;
        for i in 0..3000 {
            if det.add(bernoulli(&mut rng, 0.6)) == DetectorState::Drift {
                delay = Some(i);
                break;
            }
        }
        let delay = delay.unwrap_or_else(|| panic!("{name} missed a 0.05 -> 0.6 jump"));
        assert!(delay < 1500, "{name} took {delay} observations");
    }
}

#[test]
fn long_stationary_streams_rarely_alarm() {
    for (name, mut det) in detectors() {
        let mut rng = Xoshiro256pp::seed_from_u64(202);
        let mut alarms = 0;
        for _ in 0..20_000 {
            if det.add(bernoulli(&mut rng, 0.2)) == DetectorState::Drift {
                alarms += 1;
            }
        }
        // EDDM's high-water-mark scheme is known to fire spuriously at
        // moderate error rates (its own paper targets low-error regimes);
        // across seeds it alarms tens of times per 20k at p = 0.2, so it
        // gets a documented looser budget (< 0.5% of observations).
        let budget = if name == "EDDM" { 100 } else { 3 };
        assert!(alarms <= budget, "{name} false-alarmed {alarms} times in 20k");
    }
}

#[test]
fn gradual_ramp_is_eventually_detected_by_adwin_and_hddm() {
    // DDM/EDDM are weaker on slow ramps; the mean-based detectors must fire.
    for (name, mut det) in [
        ("ADWIN", Box::new(Adwin::new(0.002)) as Box<dyn DriftDetector>),
        ("HDDM-A", Box::new(HddmA::default())),
        ("PH", Box::new(PageHinkley::default())),
    ] {
        let mut rng = Xoshiro256pp::seed_from_u64(303);
        let mut fired = false;
        for i in 0..12_000 {
            let p = 0.05 + 0.45 * (i as f64 / 12_000.0);
            if det.add(bernoulli(&mut rng, p)) == DetectorState::Drift {
                fired = true;
                break;
            }
        }
        assert!(fired, "{name} missed the gradual ramp");
    }
}

#[test]
fn reset_restores_fresh_behaviour() {
    for (name, mut det) in detectors() {
        let mut rng = Xoshiro256pp::seed_from_u64(404);
        for _ in 0..1000 {
            det.add(bernoulli(&mut rng, 0.4));
        }
        det.reset();
        assert_eq!(det.state(), DetectorState::Stable, "{name} state after reset");
        // A freshly reset detector should survive a short quiet stream.
        for _ in 0..200 {
            assert_ne!(
                det.add(0.0),
                DetectorState::Drift,
                "{name} alarmed immediately after reset"
            );
        }
    }
}

#[test]
fn adwin_window_shrinks_at_change_and_grows_in_stationarity() {
    let mut adwin = Adwin::new(0.002);
    let mut rng = Xoshiro256pp::seed_from_u64(505);
    for _ in 0..4000 {
        adwin.add(bernoulli(&mut rng, 0.1));
    }
    let before = adwin.width();
    for _ in 0..1500 {
        adwin.add(bernoulli(&mut rng, 0.8));
    }
    assert!(adwin.n_detections() >= 1, "change must be detected");
    assert!(adwin.width() < before, "window must shrink after the cut");
}
