//! Criterion micro-benchmarks for the hot paths of the FiCSUM pipeline:
//! meta-feature extraction (full fingerprint, EMD, mutual information),
//! the ADWIN detector, Hoeffding-tree training/prediction and the weighted
//! similarity/weight computations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use ficsum_classifiers::{Classifier, HoeffdingTree};
use ficsum_core::{weighted_cosine, ConceptFingerprint, DynamicWeights, FingerprintNormalizer, Repository};
use ficsum_drift::{Adwin, DriftDetector};
use ficsum_meta::{imf_entropies, lagged_mutual_information, EmdConfig, FingerprintExtractor};
use ficsum_stream::LabeledObservation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn window(n: usize, d: usize, seed: u64) -> Vec<LabeledObservation> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..d).map(|_| rng.random()).collect();
            LabeledObservation::new(x, rng.random_range(0..2), rng.random_range(0..2))
        })
        .collect()
}

fn trained_tree(d: usize) -> HoeffdingTree {
    let mut rng = StdRng::seed_from_u64(7);
    let mut tree = HoeffdingTree::new(d, 2);
    for _ in 0..2000 {
        let x: Vec<f64> = (0..d).map(|_| rng.random()).collect();
        let y = (x[0] > 0.5) as usize;
        tree.train(&x, y);
    }
    tree
}

fn bench_extraction(c: &mut Criterion) {
    let w = window(75, 10, 1);
    let tree = trained_tree(10);
    let full = FingerprintExtractor::full(10);
    c.bench_function("fingerprint_extract_full_w75_d10", |b| {
        b.iter(|| black_box(full.extract(black_box(&w), Some(&tree))))
    });
    let er = FingerprintExtractor::error_rate_only(10);
    c.bench_function("fingerprint_extract_er_w75_d10", |b| {
        b.iter(|| black_box(er.extract(black_box(&w), None)))
    });
}

fn bench_meta_functions(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let xs: Vec<f64> = (0..75).map(|_| rng.random()).collect();
    c.bench_function("emd_imf_entropies_n75", |b| {
        b.iter(|| black_box(imf_entropies(black_box(&xs), &EmdConfig::default())))
    });
    c.bench_function("mutual_information_n75", |b| {
        b.iter(|| black_box(lagged_mutual_information(black_box(&xs), 1, 8)))
    });
}

fn bench_adwin(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let values: Vec<f64> = (0..10_000).map(|_| rng.random()).collect();
    c.bench_function("adwin_10k_updates", |b| {
        b.iter_batched(
            || Adwin::new(0.002),
            |mut adwin| {
                for &v in &values {
                    black_box(adwin.add(v));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_hoeffding(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let data: Vec<(Vec<f64>, usize)> = (0..5000)
        .map(|_| {
            let x: Vec<f64> = (0..10).map(|_| rng.random()).collect();
            let y = (x[0] > 0.5) as usize;
            (x, y)
        })
        .collect();
    c.bench_function("hoeffding_train_5k_d10", |b| {
        b.iter_batched(
            || HoeffdingTree::new(10, 2),
            |mut tree| {
                for (x, y) in &data {
                    tree.train(x, *y);
                }
            },
            BatchSize::SmallInput,
        )
    });
    let tree = trained_tree(10);
    let x: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
    c.bench_function("hoeffding_predict_d10", |b| b.iter(|| black_box(tree.predict(black_box(&x)))));
    c.bench_function("hoeffding_contributions_d10", |b| {
        b.iter(|| black_box(tree.feature_contributions(black_box(&x))))
    });
}

fn bench_similarity(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let a: Vec<f64> = (0..172).map(|_| rng.random()).collect();
    let bv: Vec<f64> = (0..172).map(|_| rng.random()).collect();
    let w: Vec<f64> = (0..172).map(|_| rng.random::<f64>() * 2.0).collect();
    c.bench_function("weighted_cosine_d172", |b| {
        b.iter(|| black_box(weighted_cosine(black_box(&a), black_box(&bv), black_box(&w))))
    });

    let mut active = ConceptFingerprint::new(172);
    let mut normalizer = FingerprintNormalizer::new(172);
    for _ in 0..50 {
        let v: Vec<f64> = (0..172).map(|_| rng.random()).collect();
        normalizer.observe(&v);
        active.incorporate(&v);
    }
    let repo = Repository::new(0);
    c.bench_function("dynamic_weights_d172", |b| {
        b.iter(|| black_box(DynamicWeights::compute(&active, &repo, &normalizer, 0.01)))
    });
}

criterion_group!(
    benches,
    bench_extraction,
    bench_meta_functions,
    bench_adwin,
    bench_hoeffding,
    bench_similarity
);
criterion_main!(benches);
