//! Std-only micro-benchmarks for the hot paths of the FiCSUM pipeline:
//! meta-feature extraction (legacy extractor and the fingerprint engine,
//! EMD, mutual information), the ADWIN detector, Hoeffding-tree
//! training/prediction and the weighted similarity/weight computations.
//!
//! No external harness: timing comes from
//! [`ficsum_bench::harness::time_throughput`], and randomness from the
//! repo's own [`Xoshiro256pp`]. Gated behind the off-by-default
//! `property-tests` feature so `cargo test`/`cargo bench` stay fast:
//!
//! ```text
//! cargo bench -p ficsum-bench --features property-tests
//! ```

use std::hint::black_box;

use ficsum_bench::harness::{synthetic_window, time_throughput};
use ficsum_classifiers::{Classifier, HoeffdingTree};
use ficsum_core::{
    weighted_cosine, ConceptFingerprint, DynamicWeights, FingerprintNormalizer, Repository,
};
use ficsum_drift::{Adwin, DriftDetector};
use ficsum_meta::{
    imf_entropies, lagged_mutual_information, EmdConfig, FingerprintEngine, FingerprintExtractor,
};
use ficsum_stream::rng::{RandomSource, Xoshiro256pp};

const SECS_PER_CASE: f64 = 0.4;

fn report(name: &str, f: impl FnMut()) {
    let t = time_throughput(SECS_PER_CASE, 1, f);
    let per = t.secs_per_iter();
    let (value, unit) = if per < 1e-6 {
        (per * 1e9, "ns")
    } else if per < 1e-3 {
        (per * 1e6, "us")
    } else {
        (per * 1e3, "ms")
    };
    println!("{name:<40} {value:>10.2} {unit}/iter  ({} iters)", t.iterations);
}

fn trained_tree(d: usize) -> HoeffdingTree {
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let mut tree = HoeffdingTree::new(d, 2);
    for _ in 0..2000 {
        let x: Vec<f64> = (0..d).map(|_| rng.random()).collect();
        let y = (x[0] > 0.5) as usize;
        tree.train(&x, y);
    }
    tree
}

fn bench_extraction() {
    let w = synthetic_window(75, 10, 1);
    let tree = trained_tree(10);
    let full = FingerprintExtractor::full(10);
    report("fingerprint_extract_full_w75_d10", || {
        black_box(full.extract(black_box(&w), Some(&tree)));
    });
    let mut engine = FingerprintEngine::new(full.clone());
    report("fingerprint_engine_full_w75_d10", || {
        black_box(engine.extract_repredicted(black_box(&w), &tree));
    });
    let er = FingerprintExtractor::error_rate_only(10);
    report("fingerprint_extract_er_w75_d10", || {
        black_box(er.extract(black_box(&w), None));
    });
}

fn bench_meta_functions() {
    let mut rng = Xoshiro256pp::seed_from_u64(2);
    let xs: Vec<f64> = (0..75).map(|_| rng.random()).collect();
    report("emd_imf_entropies_n75", || {
        black_box(imf_entropies(black_box(&xs), &EmdConfig::default()));
    });
    report("mutual_information_n75", || {
        black_box(lagged_mutual_information(black_box(&xs), 1, 8));
    });
}

fn bench_adwin() {
    let mut rng = Xoshiro256pp::seed_from_u64(3);
    let values: Vec<f64> = (0..10_000).map(|_| rng.random()).collect();
    report("adwin_10k_updates", || {
        let mut adwin = Adwin::new(0.002);
        for &v in &values {
            black_box(adwin.add(v));
        }
    });
}

fn bench_hoeffding() {
    let mut rng = Xoshiro256pp::seed_from_u64(4);
    let data: Vec<(Vec<f64>, usize)> = (0..5000)
        .map(|_| {
            let x: Vec<f64> = (0..10).map(|_| rng.random()).collect();
            let y = (x[0] > 0.5) as usize;
            (x, y)
        })
        .collect();
    report("hoeffding_train_5k_d10", || {
        let mut tree = HoeffdingTree::new(10, 2);
        for (x, y) in &data {
            tree.train(x, *y);
        }
        black_box(&tree);
    });
    let tree = trained_tree(10);
    let x: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
    report("hoeffding_predict_d10", || {
        black_box(tree.predict(black_box(&x)));
    });
    report("hoeffding_contributions_d10", || {
        black_box(tree.feature_contributions(black_box(&x)));
    });
}

fn bench_similarity() {
    let mut rng = Xoshiro256pp::seed_from_u64(5);
    let a: Vec<f64> = (0..172).map(|_| rng.random()).collect();
    let bv: Vec<f64> = (0..172).map(|_| rng.random()).collect();
    let w: Vec<f64> = (0..172).map(|_| rng.random::<f64>() * 2.0).collect();
    report("weighted_cosine_d172", || {
        black_box(weighted_cosine(black_box(&a), black_box(&bv), black_box(&w)));
    });

    let mut active = ConceptFingerprint::new(172);
    let mut normalizer = FingerprintNormalizer::new(172);
    for _ in 0..50 {
        let v: Vec<f64> = (0..172).map(|_| rng.random()).collect();
        normalizer.observe(&v);
        active.incorporate(&v);
    }
    let repo = Repository::new(0);
    report("dynamic_weights_d172", || {
        black_box(DynamicWeights::compute(&active, &repo, &normalizer, 0.01));
    });
}

fn main() {
    println!("std-only micro-benchmarks ({SECS_PER_CASE:.1}s per case)");
    bench_extraction();
    bench_adwin();
    bench_meta_functions();
    bench_hoeffding();
    bench_similarity();
}
