//! JSONL result streaming for the experiment binaries (`--jsonl PATH`).
//!
//! Reuses the hand-rolled writer from `ficsum-obs` so the line format
//! matches the pipeline's own [`ficsum_obs::JsonlSink`] schema family:
//! every line is one JSON object with a `"kind"` discriminator —
//! `"result"` for run metrics, `"obs"` for a run's recorder-derived drift
//! accounting, `"stage_cost"` for one pipeline stage's cost in that run,
//! and `"throughput"` for micro-benchmark measurements.

use std::fs::File;
use std::io::{BufWriter, Stdout, Write};

use ficsum_eval::RunResult;
use ficsum_obs::jsonl::{write_record, JsonValue};

use crate::harness::{Options, Throughput};

enum Sink {
    Stdout(Stdout),
    File(BufWriter<File>),
}

impl Write for Sink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Sink::Stdout(s) => s.write(buf),
            Sink::File(f) => f.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Sink::Stdout(s) => s.flush(),
            Sink::File(f) => f.flush(),
        }
    }
}

/// Streams experiment results as JSONL (see module docs for the schema).
pub struct JsonlReporter {
    out: Sink,
    experiment: &'static str,
}

impl JsonlReporter {
    /// A reporter for `experiment`, honouring `--jsonl PATH` (`-` =
    /// stdout). `None` when the flag was not given.
    pub fn from_options(experiment: &'static str, opts: &Options) -> Option<Self> {
        let path = opts.jsonl.as_deref()?;
        let out = if path == "-" {
            Sink::Stdout(std::io::stdout())
        } else {
            Sink::File(BufWriter::new(
                File::create(path).unwrap_or_else(|e| panic!("--jsonl {path}: {e}")),
            ))
        };
        Some(Self { out, experiment })
    }

    /// Writes one run's metrics, plus its observability summary when the
    /// run was recorded.
    pub fn record(&mut self, dataset: &str, result: &RunResult) {
        let _ = write_record(
            &mut self.out,
            &[
                ("kind", JsonValue::Str("result")),
                ("experiment", JsonValue::Str(self.experiment)),
                ("dataset", JsonValue::Str(dataset)),
                ("system", JsonValue::Str(&result.system)),
                ("seed", JsonValue::Int(result.seed)),
                ("kappa", JsonValue::Num(result.kappa)),
                ("accuracy", JsonValue::Num(result.accuracy)),
                ("c_f1", JsonValue::Num(result.c_f1)),
                (
                    "discrimination",
                    JsonValue::Num(result.discrimination.unwrap_or(f64::NAN)),
                ),
                ("runtime_s", JsonValue::Num(result.runtime_s)),
                ("n_observations", JsonValue::Int(result.n_observations)),
                ("n_models", JsonValue::Int(result.n_models as u64)),
            ],
        );
        let Some(obs) = &result.observability else { return };
        let _ = write_record(
            &mut self.out,
            &[
                ("kind", JsonValue::Str("obs")),
                ("experiment", JsonValue::Str(self.experiment)),
                ("dataset", JsonValue::Str(dataset)),
                ("system", JsonValue::Str(&result.system)),
                ("seed", JsonValue::Int(result.seed)),
                ("n_events", JsonValue::Int(obs.n_events as u64)),
                ("drifts", JsonValue::Int(obs.n_drifts)),
                ("switches", JsonValue::Int(obs.n_switches)),
                ("truth_changes", JsonValue::Int(obs.n_truth_changes)),
                ("detected", JsonValue::Int(obs.detected)),
                ("missed", JsonValue::Int(obs.missed)),
                ("false_alarms", JsonValue::Int(obs.false_alarms)),
                (
                    "mean_detection_delay",
                    JsonValue::Num(obs.mean_detection_delay.unwrap_or(f64::NAN)),
                ),
            ],
        );
        for cost in &obs.stage_costs {
            let _ = write_record(
                &mut self.out,
                &[
                    ("kind", JsonValue::Str("stage_cost")),
                    ("experiment", JsonValue::Str(self.experiment)),
                    ("dataset", JsonValue::Str(dataset)),
                    ("system", JsonValue::Str(&result.system)),
                    ("seed", JsonValue::Int(result.seed)),
                    ("stage", JsonValue::Str(cost.stage.name())),
                    ("count", JsonValue::Int(cost.count)),
                    ("total_nanos", JsonValue::Int(cost.total_nanos)),
                    ("mean_nanos", JsonValue::Num(cost.mean_nanos)),
                    ("p90_nanos", JsonValue::Int(cost.p90_nanos)),
                ],
            );
        }
    }

    /// Writes one micro-benchmark throughput measurement.
    pub fn record_throughput(&mut self, label: &str, t: &Throughput) {
        let _ = write_record(
            &mut self.out,
            &[
                ("kind", JsonValue::Str("throughput")),
                ("experiment", JsonValue::Str(self.experiment)),
                ("label", JsonValue::Str(label)),
                ("iterations", JsonValue::Int(t.iterations)),
                ("seconds", JsonValue::Num(t.seconds)),
                ("units_per_iter", JsonValue::Int(t.units_per_iter)),
                ("units_per_sec", JsonValue::Num(t.units_per_sec())),
            ],
        );
    }

    /// Flushes the sink.
    pub fn finish(mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts_to(path: &str) -> Options {
        Options { seeds: 1, quick: true, only: None, jsonl: Some(path.into()) }
    }

    #[test]
    fn absent_flag_disables_reporting() {
        let opts = Options { seeds: 1, quick: true, only: None, jsonl: None };
        assert!(JsonlReporter::from_options("t", &opts).is_none());
    }

    #[test]
    fn records_are_one_json_object_per_line() {
        let dir = std::env::temp_dir().join("ficsum_jsonl_out_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let path_s = path.to_str().unwrap().to_owned();
        let mut rep = JsonlReporter::from_options("unit", &opts_to(&path_s)).unwrap();
        let result = RunResult {
            system: "FiCSUM".into(),
            kappa: 0.5,
            accuracy: 0.75,
            c_f1: 0.25,
            discrimination: None,
            runtime_s: 0.1,
            n_observations: 100,
            n_models: 2,
            seed: 3,
            observability: None,
        };
        rep.record("STAGGER", &result);
        rep.record_throughput(
            "extract",
            &Throughput { iterations: 10, seconds: 1.0, units_per_iter: 500 },
        );
        rep.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"kind":"result","experiment":"unit","dataset":"STAGGER""#));
        assert!(lines[0].contains(r#""discrimination":null"#));
        assert!(lines[1].starts_with(r#"{"kind":"throughput""#));
        assert!(lines[1].contains(r#""units_per_sec":5000.0"#));
        std::fs::remove_file(&path).ok();
    }
}
