//! Table II: dataset characteristics, as composed by this reproduction.

use ficsum_eval::Table;
use ficsum_synth::ALL_DATASETS;

fn main() {
    let mut table = Table::new(&[
        "Dataset", "Length", "#features", "#contexts", "#classes", "seg/occurrence", "drift",
    ]);
    for spec in ALL_DATASETS {
        table.add_row(
            spec.name,
            vec![
                format!("{} (composed {})", spec.length, spec.total_len()),
                spec.n_features.to_string(),
                spec.n_contexts.to_string(),
                spec.n_classes.to_string(),
                spec.segment_len().to_string(),
                if spec.supervised_drift { "p(y|X)".into() } else { "p(X)".into() },
            ],
        );
    }
    println!("Table II — dataset characteristics (paper length vs composed stream)\n");
    println!("{}", table.render());
}
