//! Table V: per-meta-function kappa / C-F1 / discrimination under injected
//! drift in distribution (D), autocorrelation (A) and frequency (F).

use ficsum_baselines::FicsumSystem;
use ficsum_bench::harness::{run_options, truncate, Options};
use ficsum_bench::jsonl_out::JsonlReporter;
use ficsum_core::Variant;
use ficsum_eval::{evaluate_with, format_cell, Table};
use ficsum_meta::MetaFunction;
use ficsum_stream::StreamSource;
use ficsum_synth::{synth_stream, SynthDrift, SYNTH_COMBOS};

fn rows() -> Vec<(String, Variant)> {
    let mut rows: Vec<(String, Variant)> = vec![(
        "Shapley(FI)".into(),
        Variant::SingleFunction(MetaFunction::FeatureImportance),
    )];
    for f in MetaFunction::SEQUENCE_FUNCTIONS {
        rows.push((f.name().to_string(), Variant::SingleFunction(f)));
    }
    rows.push(("FiCSUM".into(), Variant::Full));
    rows
}

fn main() {
    let opts = Options::from_args();
    let mut reporter = JsonlReporter::from_options("table5_meta_functions", &opts);
    let n_concepts = 4;
    let segment = if opts.quick { 250 } else { 400 };

    let headers: Vec<String> =
        std::iter::once("Function".to_string()).chain(SYNTH_COMBOS.iter().map(|c| format!("Synth_{c}"))).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut kappa_table = Table::new(&header_refs);
    let mut cf1_table = Table::new(&header_refs);
    let mut disc_table = Table::new(&header_refs);

    for (label, variant) in rows() {
        let mut kappa_cells = Vec::new();
        let mut cf1_cells = Vec::new();
        let mut disc_cells = Vec::new();
        for combo in SYNTH_COMBOS {
            let drifts = SynthDrift::parse_combo(combo);
            let mut kappas = Vec::new();
            let mut cf1s = Vec::new();
            let mut discs = Vec::new();
            for seed in 0..opts.seeds {
                let stream = synth_stream(&drifts, n_concepts, segment, seed + 1);
                let mut stream = truncate(stream, opts.stream_cap());
                let (d, k) = (stream.dims(), stream.n_classes());
                let mut system = FicsumSystem::new(d, k, variant);
                let r = evaluate_with(&mut system, &mut stream, &run_options(k, seed + 1, &opts));
                if let Some(rep) = reporter.as_mut() {
                    rep.record(&format!("Synth_{combo}"), &r);
                }
                kappas.push(r.kappa);
                cf1s.push(r.c_f1);
                discs.push(r.discrimination.unwrap_or(0.0));
            }
            kappa_cells.push(format_cell(&kappas));
            cf1_cells.push(format_cell(&cf1s));
            disc_cells.push(format_cell(&discs));
        }
        kappa_table.add_row(&label, kappa_cells);
        cf1_table.add_row(&label, cf1_cells);
        disc_table.add_row(&label, disc_cells);
        eprintln!("[table5] {label} done");
    }

    println!("Table V — kappa statistic per meta-information function\n");
    println!("{}", kappa_table.render());
    println!("Table V — C-F1 per meta-information function\n");
    println!("{}", cf1_table.render());
    println!("Table V — discrimination ability per meta-information function\n");
    println!("{}", disc_table.render());
    if let Some(rep) = reporter {
        rep.finish();
    }
}
