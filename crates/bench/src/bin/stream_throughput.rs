//! End-to-end streaming throughput: `Ficsum::process` steps/sec, drift-scan
//! latency and (under `--features alloc-count`) allocations per step on a
//! default synthetic stream.
//!
//! This is the perf trajectory's anchor benchmark: `--out BENCH_stream.json`
//! records the numbers the CI perf smoke regresses against, and
//! `--check BENCH_stream.json` fails (exit 1) when end-to-end throughput
//! drops more than 20% below the committed baseline.
//!
//! Usage:
//!
//! ```sh
//! stream_throughput [--dataset NAME] [--seed S] [--steps N] [--threads T]
//!                   [--incremental] [--emd-stride K] [--repeat R]
//!                   [--out PATH] [--append PATH] [--check PATH]
//!                   [--min-ratio F]
//! ```
//!
//! Defaults: STAGGER, seed 42, the full stream once, sequential, batch
//! (bit-exact) extraction, no file output. `--incremental` switches the
//! pipeline to incremental statistic substitution (with `--emd-stride`
//! bounding IMF re-sifting); `--append` adds this run's line to an existing
//! baseline file so one file can carry both modes. `--check` compares
//! against the line in the baseline whose `mode` matches this run.
//! Latency per processed observation is sampled with a per-step monotonic
//! clock read (~tens of ns against a multi-µs step).

use std::time::Instant;

use ficsum_core::{FicsumBuilder, FicsumConfig, Variant};
use ficsum_stream::StreamSource;
use ficsum_synth::dataset_by_name;

#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: ficsum_bench::alloc_count::CountingAllocator =
    ficsum_bench::alloc_count::CountingAllocator;

#[derive(Debug)]
struct Args {
    dataset: String,
    seed: u64,
    steps: usize,
    threads: usize,
    incremental: bool,
    emd_stride: u32,
    repeat: usize,
    out: Option<String>,
    append: Option<String>,
    check: Option<String>,
    min_ratio: f64,
    stages: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut a = Args {
        dataset: "STAGGER".into(),
        seed: 42,
        steps: usize::MAX,
        threads: 1,
        incremental: false,
        emd_stride: 1,
        repeat: 3,
        out: None,
        append: None,
        check: None,
        min_ratio: 0.8,
        stages: false,
    };
    let mut i = 1;
    while i < argv.len() {
        let val = |i: usize| {
            argv.get(i + 1).unwrap_or_else(|| panic!("{} requires a value", argv[i])).clone()
        };
        match argv[i].as_str() {
            "--dataset" => a.dataset = val(i),
            "--seed" => a.seed = val(i).parse().expect("--seed"),
            "--steps" => a.steps = val(i).parse().expect("--steps"),
            "--threads" => a.threads = val(i).parse().expect("--threads"),
            "--incremental" => {
                a.incremental = true;
                i += 1;
                continue;
            }
            "--emd-stride" => a.emd_stride = val(i).parse().expect("--emd-stride"),
            "--repeat" => a.repeat = val(i).parse().expect("--repeat"),
            "--out" => a.out = Some(val(i)),
            "--append" => a.append = Some(val(i)),
            "--check" => a.check = Some(val(i)),
            "--min-ratio" => a.min_ratio = val(i).parse().expect("--min-ratio"),
            "--stages" => {
                a.stages = true;
                i += 1;
                continue;
            }
            other => panic!("unknown option {other}"),
        }
        i += 2;
    }
    a
}

#[derive(Debug, Default, Clone)]
struct Measurement {
    steps: usize,
    seconds: f64,
    drifts: usize,
    /// Wall-clock of every step that reported a drift (the repository scan
    /// plus model selection dominate these steps).
    drift_step_secs: Vec<f64>,
    accuracy: f64,
    /// Allocation calls per step over the steady-state tail (after
    /// warm-up), when the counting allocator is compiled in. Drift steps
    /// are excluded: storing/restoring concepts at a drift allocates by
    /// design (classifier clones enter the repository), and folding those
    /// event-time allocations into the per-step figure would hide
    /// regressions on the quiescent path the budget actually targets.
    steady_allocs_per_step: Option<f64>,
    /// Allocation calls per *drift* step (event-time allocations).
    drift_allocs_per_step: Option<f64>,
    /// Fraction of steady-state steps that performed *zero* allocations.
    /// The complement is structural-growth events (tree node splits,
    /// detector bucket growth), not per-step churn.
    steady_zero_frac: Option<f64>,
    /// Total allocation calls per step over the whole run.
    total_allocs_per_step: Option<f64>,
}

#[cfg(feature = "alloc-count")]
fn alloc_sample() -> u64 {
    ficsum_bench::alloc_count::allocations()
}

#[cfg(not(feature = "alloc-count"))]
fn alloc_sample() -> u64 {
    0
}

fn run_once(args: &Args) -> Measurement {
    let stream = dataset_by_name(&args.dataset, args.seed)
        .unwrap_or_else(|| panic!("unknown dataset {}", args.dataset));
    let data: Vec<_> = stream.observations().iter().take(args.steps).cloned().collect();
    let mut builder = FicsumBuilder::new(stream.dims(), stream.n_classes())
        .variant(Variant::Full)
        .config(FicsumConfig::default())
        .parallelism(args.threads)
        .incremental_stats(args.incremental)
        .emd_stride(args.emd_stride);
    if args.stages {
        builder = builder.recorder(Box::new(ficsum_obs::InMemoryRecorder::new()));
    }
    let mut system = builder.build().expect("default configuration is valid");

    // Steady state begins once windows are full and the first concepts
    // exist; everything before is warm-up for the allocation accounting.
    let warmup = 2_000.min(data.len() / 4);
    let mut m = Measurement { steps: data.len(), ..Default::default() };
    let mut correct = 0usize;
    let alloc_start = alloc_sample();
    let mut steady_allocs = 0u64;
    let mut steady_steps = 0u64;
    let mut drift_allocs = 0u64;
    let mut drift_steps = 0u64;
    let mut steady_zero = 0u64;
    let t_run = Instant::now();
    for (i, o) in data.iter().enumerate() {
        let steady = i >= warmup;
        let a0 = if steady { alloc_sample() } else { 0 };
        let t0 = Instant::now();
        let out = system.process(&o.features, o.label);
        let dt = t0.elapsed().as_secs_f64();
        if steady {
            let da = alloc_sample() - a0;
            if out.drift {
                drift_allocs += da;
                drift_steps += 1;
            } else {
                steady_allocs += da;
                steady_steps += 1;
                steady_zero += (da == 0) as u64;
            }
        }
        if out.drift {
            m.drifts += 1;
            m.drift_step_secs.push(dt);
        }
        correct += (out.prediction == o.label) as usize;
    }
    m.seconds = t_run.elapsed().as_secs_f64();
    m.accuracy = correct as f64 / m.steps.max(1) as f64;
    if args.stages {
        if let Some(rec) = system
            .recorder()
            .as_any()
            .and_then(|a| a.downcast_ref::<ficsum_obs::InMemoryRecorder>())
        {
            eprintln!("stage spans over {:.2}s wall:", m.seconds);
            let mut by_source = system.engine().source_timings();
            by_source.sort_by_key(|&(_, nanos)| std::cmp::Reverse(nanos));
            for (name, nanos) in by_source {
                eprintln!("  source {:<24} {:>8.1} ms", name, nanos as f64 / 1e6);
            }
            for (stage, h) in rec.stages() {
                eprintln!(
                    "  {:<20} {:>9} spans, total {:>8.1} ms, mean {:>7.1} us, p99 {:>7.1} us",
                    stage.name(),
                    h.count(),
                    h.sum_nanos() as f64 / 1e6,
                    h.mean_nanos() / 1e3,
                    h.quantile_nanos(0.99) as f64 / 1e3,
                );
            }
        }
    }
    if cfg!(feature = "alloc-count") {
        m.steady_allocs_per_step = Some(steady_allocs as f64 / steady_steps.max(1) as f64);
        m.drift_allocs_per_step = Some(drift_allocs as f64 / drift_steps.max(1) as f64);
        m.steady_zero_frac = Some(steady_zero as f64 / steady_steps.max(1) as f64);
        m.total_allocs_per_step =
            Some((alloc_sample() - alloc_start) as f64 / m.steps.max(1) as f64);
    }
    m
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn json_line(args: &Args, m: &Measurement, steps_per_sec: f64) -> String {
    let drift_mean_us = mean(&m.drift_step_secs) * 1e6;
    let drift_max_us = m.drift_step_secs.iter().copied().fold(0.0f64, f64::max) * 1e6;
    let mut s = format!(
        "{{\"bench\":\"stream_throughput\",\"mode\":\"{}\",\"emd_stride\":{},\
         \"dataset\":\"{}\",\"seed\":{},\"steps\":{},\
         \"threads\":{},\"steps_per_sec\":{:.1},\"drifts\":{},\
         \"drift_step_us_mean\":{:.1},\"drift_step_us_max\":{:.1},\"accuracy\":{:.6}",
        if args.incremental { "incremental" } else { "batch" },
        args.emd_stride,
        args.dataset,
        args.seed,
        m.steps,
        args.threads,
        steps_per_sec,
        m.drifts,
        drift_mean_us,
        drift_max_us,
        m.accuracy
    );
    if let (Some(steady), Some(total)) = (m.steady_allocs_per_step, m.total_allocs_per_step) {
        let drift = m.drift_allocs_per_step.unwrap_or(0.0);
        let zero = m.steady_zero_frac.unwrap_or(0.0);
        s.push_str(&format!(
            ",\"steady_allocs_per_step\":{steady:.4},\"drift_allocs_per_step\":{drift:.1},\
             \"steady_zero_frac\":{zero:.4},\"total_allocs_per_step\":{total:.4}"
        ));
    }
    s.push('}');
    s
}

/// Picks the baseline line matching this run's mode out of a (possibly
/// multi-line) baseline file. Falls back to the first non-empty line for
/// single-mode baselines written before the `mode` field existed.
fn baseline_line<'a>(contents: &'a str, mode: &str) -> Option<&'a str> {
    let key = format!("\"mode\":\"{mode}\"");
    contents
        .lines()
        .find(|l| l.contains(&key))
        .or_else(|| contents.lines().find(|l| !l.trim().is_empty()))
}

/// Pulls a numeric field out of a single-object JSON line without a JSON
/// dependency (the file is machine-written by this binary).
fn json_field(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let at = json.find(&key)? + key.len();
    let rest = &json[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args = parse_args();
    // Best-of-R repeats: throughput noise is one-sided (scheduling stalls
    // only ever slow a run down), so the max is the honest estimate.
    let mut best: Option<(f64, Measurement)> = None;
    for _ in 0..args.repeat.max(1) {
        let m = run_once(&args);
        let sps = m.steps as f64 / m.seconds;
        if best.as_ref().is_none_or(|(b, _)| sps > *b) {
            best = Some((sps, m));
        }
    }
    let (steps_per_sec, m) = best.expect("at least one repeat");

    println!(
        "stream_throughput: {} x{} steps, threads={} -> {:.0} steps/sec, \
         {} drifts (drift-step mean {:.1} us, max {:.1} us), accuracy {:.4}",
        args.dataset,
        m.steps,
        args.threads,
        steps_per_sec,
        m.drifts,
        mean(&m.drift_step_secs) * 1e6,
        m.drift_step_secs.iter().copied().fold(0.0f64, f64::max) * 1e6,
        m.accuracy
    );
    if let Some(steady) = m.steady_allocs_per_step {
        println!(
            "allocations: steady-state {:.4}/step ({:.2}% of steps zero-alloc), \
             drift steps {:.1}/step, whole-run {:.4}/step",
            steady,
            m.steady_zero_frac.unwrap_or(0.0) * 100.0,
            m.drift_allocs_per_step.unwrap_or(0.0),
            m.total_allocs_per_step.unwrap_or(0.0)
        );
    }

    let line = json_line(&args, &m, steps_per_sec);
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{line}\n")).unwrap_or_else(|e| panic!("--out {path}: {e}"));
        println!("wrote {path}");
    }
    if let Some(path) = &args.append {
        let mut contents = std::fs::read_to_string(path).unwrap_or_default();
        if !contents.is_empty() && !contents.ends_with('\n') {
            contents.push('\n');
        }
        contents.push_str(&line);
        contents.push('\n');
        std::fs::write(path, contents).unwrap_or_else(|e| panic!("--append {path}: {e}"));
        println!("appended to {path}");
    }

    if let Some(path) = &args.check {
        let contents = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("--check {path}: {e}"));
        let mode = if args.incremental { "incremental" } else { "batch" };
        let baseline = baseline_line(&contents, mode)
            .unwrap_or_else(|| panic!("--check {path}: empty baseline file"));
        let base_sps = json_field(baseline, "steps_per_sec")
            .unwrap_or_else(|| panic!("--check {path}: no steps_per_sec field"));
        let ratio = steps_per_sec / base_sps;
        println!(
            "perf check: {steps_per_sec:.0} steps/sec vs baseline {base_sps:.0} \
             (ratio {ratio:.2}, floor {:.2})",
            args.min_ratio
        );
        if ratio < args.min_ratio {
            eprintln!("PERF REGRESSION: throughput ratio {ratio:.2} below {:.2}", args.min_ratio);
            std::process::exit(1);
        }
    }
}
