//! Network serving throughput: aggregate steps/sec through the full wire
//! path — client encode → loopback TCP → frame decode → shard queues →
//! reply encode → client decode — plus submit→reply tail latency.
//!
//! `--out BENCH_net.json` records the committed baseline; `--check
//! BENCH_net.json` fails (exit 1) when throughput drops more than 20%
//! below it or p99 latency grows past its ceiling. The `cores` field
//! keeps baselines honest across machines.
//!
//! Usage:
//!
//! ```sh
//! net_throughput [--sessions N] [--clients C] [--shards S] [--steps K]
//!                [--seed S] [--repeat R] [--out PATH] [--check PATH]
//!                [--min-ratio F] [--max-p99-ratio F]
//! ```
//!
//! Defaults: 32 sessions over 4 clients and 4 shards, 300 steps per
//! session, best of 3.

use std::sync::Arc;
use std::time::Instant;

use ficsum_core::{FicsumConfig, SessionTemplate, Variant};
use ficsum_net::{NetClient, NetServer};
use ficsum_serve::{ServeConfig, SessionId, StreamServer, Submit};
use ficsum_stream::StreamSource;
use ficsum_synth::dataset_by_name;

#[derive(Debug)]
struct Args {
    sessions: usize,
    clients: usize,
    shards: usize,
    steps: usize,
    seed: u64,
    repeat: usize,
    out: Option<String>,
    check: Option<String>,
    min_ratio: f64,
    max_p99_ratio: f64,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut a = Args {
        sessions: 32,
        clients: 4,
        shards: 4,
        steps: 300,
        seed: 42,
        repeat: 3,
        out: None,
        check: None,
        min_ratio: 0.8,
        max_p99_ratio: 3.0,
    };
    let mut i = 1;
    while i < argv.len() {
        let val = |i: usize| {
            argv.get(i + 1).unwrap_or_else(|| panic!("{} requires a value", argv[i])).clone()
        };
        match argv[i].as_str() {
            "--sessions" => a.sessions = val(i).parse().expect("--sessions"),
            "--clients" => a.clients = val(i).parse().expect("--clients"),
            "--shards" => a.shards = val(i).parse().expect("--shards"),
            "--steps" => a.steps = val(i).parse().expect("--steps"),
            "--seed" => a.seed = val(i).parse().expect("--seed"),
            "--repeat" => a.repeat = val(i).parse().expect("--repeat"),
            "--out" => a.out = Some(val(i)),
            "--check" => a.check = Some(val(i)),
            "--min-ratio" => a.min_ratio = val(i).parse().expect("--min-ratio"),
            "--max-p99-ratio" => a.max_p99_ratio = val(i).parse().expect("--max-p99-ratio"),
            other => panic!("unknown option {other}"),
        }
        i += 2;
    }
    assert!(a.clients >= 1, "--clients must be at least 1");
    assert!(a.sessions >= a.clients, "--sessions must be >= --clients");
    a
}

#[derive(Debug, Clone)]
struct Measurement {
    served_steps: usize,
    seconds: f64,
    p50_us: f64,
    p99_us: f64,
    batches: u64,
}

fn template() -> SessionTemplate {
    SessionTemplate::new(3, 2, FicsumConfig::default(), Variant::Full)
        .expect("default config is valid")
}

/// One tape of STAGGER observations shared by every session, so runs are
/// deterministic and comparable across baselines.
fn tape(seed: u64, steps: usize) -> Vec<(Vec<f64>, usize)> {
    let mut stream = dataset_by_name("STAGGER", seed).expect("STAGGER exists");
    (0..steps)
        .map(|_| {
            let o = stream.next_observation().expect("synthetic streams are infinite");
            (o.features.clone(), o.label)
        })
        .collect()
}

fn run_once(args: &Args) -> Measurement {
    let data = tape(args.seed, args.steps);
    let total = args.sessions * args.steps;
    let core = Arc::new(StreamServer::new(
        template(),
        ServeConfig::default()
            .with_shards(args.shards)
            // Room for the whole run: the bench measures wire + processing
            // throughput, not backpressure.
            .with_queue_capacity(total)
            .with_max_sessions_per_shard(args.sessions),
    ));
    let net = NetServer::bind("127.0.0.1:0", core).expect("bind loopback");
    let addr = net.local_addr();

    // Each client owns sessions ≡ c (mod clients) and submits one wave
    // per step — a strict request/reply conversation per connection, with
    // waves from different clients in flight concurrently.
    let t_run = Instant::now();
    let served: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let data = &data;
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).expect("handshake");
                    let mine: Vec<u64> = (0..args.sessions as u64)
                        .filter(|s| *s as usize % args.clients == c)
                        .collect();
                    let mut served = 0usize;
                    for (features, label) in data {
                        let wave: Vec<Submit> = mine
                            .iter()
                            .map(|&s| Submit::new(SessionId(s), features.clone(), *label))
                            .collect();
                        let results =
                            client.submit(&wave).expect("queue sized for the whole run");
                        for result in results {
                            result.expect("no faults in a clean benchmark run");
                            served += 1;
                        }
                    }
                    client.shutdown().expect("orderly goodbye");
                    served
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).sum()
    });
    let seconds = t_run.elapsed().as_secs_f64();
    assert_eq!(served, total, "every submitted request must be served");

    let report = net.shutdown();
    Measurement {
        served_steps: served,
        seconds,
        p50_us: report.net.latency.quantile_nanos(0.50) as f64 / 1e3,
        p99_us: report.net.latency.quantile_nanos(0.99) as f64 / 1e3,
        batches: report.net.batches_accepted,
    }
}

fn json_line(args: &Args, m: &Measurement, steps_per_sec: f64, cores: usize) -> String {
    format!(
        "{{\"bench\":\"net_throughput\",\"sessions\":{},\"clients\":{},\"shards\":{},\
         \"steps\":{},\"seed\":{},\"cores\":{},\"steps_per_sec\":{:.1},\
         \"latency_p50_us\":{:.1},\"latency_p99_us\":{:.1},\"batches\":{}}}",
        args.sessions,
        args.clients,
        args.shards,
        args.steps,
        args.seed,
        cores,
        steps_per_sec,
        m.p50_us,
        m.p99_us,
        m.batches
    )
}

/// Pulls a numeric field out of a single-object JSON line without a JSON
/// dependency (the file is machine-written by this binary).
fn json_field(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let at = json.find(&key)? + key.len();
    let rest = &json[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Best-of-R repeats: throughput noise is one-sided (scheduling stalls
    // only ever slow a run down), so the max is the honest estimate.
    let mut best: Option<(f64, Measurement)> = None;
    for _ in 0..args.repeat.max(1) {
        let m = run_once(&args);
        let sps = m.served_steps as f64 / m.seconds;
        if best.as_ref().is_none_or(|(b, _)| sps > *b) {
            best = Some((sps, m));
        }
    }
    let (steps_per_sec, m) = best.expect("at least one repeat");

    println!(
        "net_throughput: {} sessions x {} steps over {} clients / {} shards ({cores} cores) \
         -> {:.0} steps/sec through loopback TCP, \
         batch latency p50 {:.1} us p99 {:.1} us ({} batches)",
        args.sessions, args.steps, args.clients, args.shards, steps_per_sec, m.p50_us, m.p99_us, m.batches
    );

    let line = json_line(&args, &m, steps_per_sec, cores);
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{line}\n")).unwrap_or_else(|e| panic!("--out {path}: {e}"));
        println!("wrote {path}");
    }

    if let Some(path) = &args.check {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--check {path}: {e}"));
        let base_sps = json_field(&baseline, "steps_per_sec")
            .unwrap_or_else(|| panic!("--check {path}: no steps_per_sec field"));
        let ratio = steps_per_sec / base_sps;
        println!(
            "perf check: {steps_per_sec:.0} steps/sec vs baseline {base_sps:.0} \
             (ratio {ratio:.2}, floor {:.2})",
            args.min_ratio
        );
        if ratio < args.min_ratio {
            eprintln!("PERF REGRESSION: throughput ratio {ratio:.2} below {:.2}", args.min_ratio);
            std::process::exit(1);
        }
        // Tail latency, with more headroom than throughput: loopback p99
        // is dominated by scheduling noise at these batch sizes.
        if let Some(base_p99) = json_field(&baseline, "latency_p99_us") {
            let p99_ratio = m.p99_us / base_p99;
            println!(
                "perf check: latency p99 {:.0} us vs baseline {base_p99:.0} \
                 (ratio {p99_ratio:.2}, ceiling {:.2})",
                m.p99_us, args.max_p99_ratio
            );
            if p99_ratio > args.max_p99_ratio {
                eprintln!(
                    "PERF REGRESSION: latency p99 ratio {p99_ratio:.2} above {:.2}",
                    args.max_p99_ratio
                );
                std::process::exit(1);
            }
        }
    }
}
