//! Table III: discrimination ability of ER / S-MI / U-MI / FiCSUM.
//!
//! Discrimination is measured as the mean gap between the active concept's
//! similarity and each stored concept's similarity, in units of the normal
//! similarity deviation (see `Ficsum::discrimination_probe`); the paper's
//! unbounded similarity units differ, so compare *ranks within a row*, not
//! absolute magnitudes.

use ficsum_bench::harness::{metric, run_variant, Options, VARIANT_COLUMNS};
use ficsum_bench::jsonl_out::JsonlReporter;
use ficsum_eval::{format_cell, Table};
use ficsum_synth::ALL_DATASETS;

fn main() {
    let opts = Options::from_args();
    let mut reporter = JsonlReporter::from_options("table3_discrimination", &opts);
    let mut table = Table::new(&["Dataset", "ER", "S-MI", "U-MI", "FiCSUM"]);
    for spec in ALL_DATASETS {
        if !opts.selected(spec.name) {
            continue;
        }
        let mut cells = Vec::new();
        for variant in VARIANT_COLUMNS {
            let results: Vec<_> = (0..opts.seeds)
                .map(|seed| run_variant(spec.name, variant, seed + 1, &opts))
                .collect();
            if let Some(rep) = reporter.as_mut() {
                for r in &results {
                    rep.record(spec.name, r);
                }
            }
            let discs = metric(&results, |r| r.discrimination.unwrap_or(0.0));
            cells.push(format_cell(&discs));
        }
        table.add_row(spec.name, cells);
        eprintln!("[table3] {} done", spec.name);
    }
    println!("Table III — discrimination ability (mean gap to impostor concepts, sigma units)\n");
    println!("{}", table.render());
    if let Some(rep) = reporter {
        rep.finish();
    }
}
