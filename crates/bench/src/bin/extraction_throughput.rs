//! Fingerprint extraction throughput: the pre-engine framework path
//! (materialise the tracked window into an owned `Vec`, clone-and-relabel
//! every observation, then run [`FingerprintExtractor::extract`]) against the
//! reusable [`FingerprintEngine`] reading the [`TrackedWindow`] directly,
//! on the 20-feature / 100-observation window the engine's parity tests
//! use.
//!
//! The two paths are timed in short interleaved rounds rather than one
//! long block each: clock-frequency drift and background scheduling noise
//! then hit both paths almost equally instead of biasing whichever path
//! happened to run during the quiet stretch.
//!
//! A third interleaved round times the engine with the observability
//! clock attached (per-source span timing on), so the cost of
//! instrumentation is measured against the disabled default in the same
//! noise environment. With no clock attached (the `NullRecorder`
//! default) the obs layer costs one branch per extraction.
//!
//! Usage: `extraction_throughput [--secs S] [--d D] [--window W] [--reps R]
//! [--jsonl PATH]` (defaults: 0.25 s per round, 8 rounds per path,
//! d = 20, w = 100).

use std::sync::Arc;

use ficsum_bench::harness::{synthetic_window, time_throughput, Options, Throughput};
use ficsum_bench::jsonl_out::JsonlReporter;
use ficsum_classifiers::{Classifier, HoeffdingTree};
use ficsum_meta::{FingerprintEngine, FingerprintExtractor};
use ficsum_obs::MonotonicClock;
use ficsum_stream::rng::{RandomSource, Xoshiro256pp};
use ficsum_stream::{LabeledObservation, TrackedWindow};

fn interleaved(
    rounds: usize,
    secs: f64,
    units: u64,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (Throughput, Throughput) {
    let mut acc_a = Throughput { iterations: 0, seconds: 0.0, units_per_iter: units };
    let mut acc_b = Throughput { iterations: 0, seconds: 0.0, units_per_iter: units };
    for _ in 0..rounds {
        let ra = time_throughput(secs, units, &mut a);
        let rb = time_throughput(secs, units, &mut b);
        acc_a.iterations += ra.iterations;
        acc_a.seconds += ra.seconds;
        acc_b.iterations += rb.iterations;
        acc_b.seconds += rb.seconds;
    }
    (acc_a, acc_b)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut secs = 0.25f64;
    let mut d = 20usize;
    let mut w = 100usize;
    let mut reps = 8usize;
    let mut jsonl: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--jsonl" => {
                jsonl = Some(args[i + 1].clone());
                i += 1;
            }
            "--secs" => {
                secs = args[i + 1].parse().expect("--secs requires a number");
                i += 1;
            }
            "--d" => {
                d = args[i + 1].parse().expect("--d requires a number");
                i += 1;
            }
            "--window" => {
                w = args[i + 1].parse().expect("--window requires a number");
                i += 1;
            }
            "--reps" => {
                reps = args[i + 1].parse().expect("--reps requires a number");
                i += 1;
            }
            other => panic!("unknown option {other}"),
        }
        i += 1;
    }

    let mut tracked = TrackedWindow::new(w, d);
    for obs in synthetic_window(w, d, 42) {
        tracked.push(obs);
    }
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let mut tree = HoeffdingTree::new(d, 2);
    for _ in 0..2000 {
        let x: Vec<f64> = (0..d).map(|_| rng.random()).collect();
        tree.train(&x, (x[0] > 0.5) as usize);
    }

    let extractor = FingerprintExtractor::full(d);
    let mut engine = FingerprintEngine::new(extractor.clone());
    let mut timed_engine = FingerprintEngine::new(extractor.clone());
    timed_engine.set_clock(Some(Arc::new(MonotonicClock::new())));

    // Parity first: a benchmark comparing two paths is only meaningful if
    // they compute the same thing.
    let relabel = |win: &[LabeledObservation], clf: &HoeffdingTree| -> Vec<LabeledObservation> {
        win.iter()
            .map(|o| o.observation.clone().labeled(clf.predict(o.features())))
            .collect()
    };
    let contents: Vec<LabeledObservation> = tracked.iter().cloned().collect();
    let legacy_fp = extractor.extract(&relabel(&contents, &tree), Some(&tree));
    let engine_fp = engine.extract_tracked_repredicted(&tracked, &tree);
    assert_eq!(legacy_fp, engine_fp, "engine must be bit-identical to the legacy path");

    println!(
        "extraction throughput: d = {d}, window = {w} observations, \
         {reps} interleaved rounds x {secs:.2}s per path"
    );
    println!("{:<28} {:>14} {:>14}", "path", "obs/sec", "ms/window");

    let (legacy, fast) = interleaved(
        reps,
        secs,
        w as u64,
        || {
            let window: Vec<LabeledObservation> = tracked.iter().cloned().collect();
            let relabeled = relabel(&window, &tree);
            std::hint::black_box(extractor.extract(&relabeled, Some(&tree)));
        },
        || {
            std::hint::black_box(engine.extract_tracked_repredicted(&tracked, &tree));
        },
    );
    println!(
        "{:<28} {:>14.0} {:>14.3}",
        "legacy (clone + relabel)",
        legacy.units_per_sec(),
        legacy.secs_per_iter() * 1e3
    );
    println!(
        "{:<28} {:>14.0} {:>14.3}",
        "engine (tracked window)",
        fast.units_per_sec(),
        fast.secs_per_iter() * 1e3
    );

    // Instrumentation cost: the same engine path with the obs clock
    // attached, interleaved against the disabled default so both see the
    // same scheduling noise. The disabled path is what every run without
    // a recorder (the `NullRecorder` default) pays.
    let (plain, timed) = interleaved(
        reps,
        secs,
        w as u64,
        || {
            std::hint::black_box(engine.extract_tracked_repredicted(&tracked, &tree));
        },
        || {
            std::hint::black_box(timed_engine.extract_tracked_repredicted(&tracked, &tree));
        },
    );
    println!(
        "{:<28} {:>14.0} {:>14.3}",
        "engine (timing enabled)",
        timed.units_per_sec(),
        timed.secs_per_iter() * 1e3
    );

    let speedup = fast.units_per_sec() / legacy.units_per_sec();
    println!("speedup: {speedup:.2}x");
    let overhead_pct = 100.0 * (plain.units_per_sec() / timed.units_per_sec() - 1.0);
    println!(
        "obs timing overhead: {overhead_pct:.2}% (clock attached vs NullRecorder default)"
    );

    if jsonl.is_some() {
        let opts = Options { seeds: 0, quick: false, only: None, jsonl };
        let mut rep = JsonlReporter::from_options("extraction_throughput", &opts)
            .expect("--jsonl was given");
        rep.record_throughput("legacy", &legacy);
        rep.record_throughput("engine", &fast);
        rep.record_throughput("engine_untimed", &plain);
        rep.record_throughput("engine_timed", &timed);
        rep.finish();
    }
}
