//! Fingerprint extraction throughput: the pre-engine framework path
//! (materialise the tracked window into an owned `Vec`, clone-and-relabel
//! every observation, then run [`FingerprintExtractor::extract`]) against the
//! reusable [`FingerprintEngine`] reading the [`TrackedWindow`] directly,
//! on the 20-feature / 100-observation window the engine's parity tests
//! use.
//!
//! The two paths are timed in short interleaved rounds rather than one
//! long block each: clock-frequency drift and background scheduling noise
//! then hit both paths almost equally instead of biasing whichever path
//! happened to run during the quiet stretch.
//!
//! A third interleaved round times the engine with the observability
//! clock attached (per-source span timing on), so the cost of
//! instrumentation is measured against the disabled default in the same
//! noise environment. With no clock attached (the `NullRecorder`
//! default) the obs layer costs one branch per extraction.
//!
//! A fourth interleaved round compares steady-state *streaming* extraction
//! (push one frame, fingerprint the window) through the batch engine
//! against the incremental-statistics engine, which is the configuration
//! the CI perf gate regresses: `--out PATH` records the baseline,
//! `--check PATH` fails (exit 1) when either engine path drops more than
//! 20% below it, and `--assert-zero-alloc` (requires the `alloc-count`
//! feature) fails when the incremental steady state allocates at all.
//!
//! Usage: `extraction_throughput [--secs S] [--d D] [--window W] [--reps R]
//! [--jsonl PATH] [--out PATH] [--check PATH] [--min-ratio F]
//! [--assert-zero-alloc]` (defaults: 0.25 s per round, 8 rounds per path,
//! d = 20, w = 100).

use std::sync::Arc;

use ficsum_bench::harness::{synthetic_window, time_throughput, Options, Throughput};
use ficsum_bench::jsonl_out::JsonlReporter;
use ficsum_classifiers::{Classifier, HoeffdingTree};
use ficsum_meta::{FingerprintEngine, FingerprintExtractor};
use ficsum_obs::MonotonicClock;
use ficsum_stream::rng::{RandomSource, Xoshiro256pp};
use ficsum_stream::{FrameWindows, LabeledObservation, TrackedWindow};

#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: ficsum_bench::alloc_count::CountingAllocator =
    ficsum_bench::alloc_count::CountingAllocator;

fn interleaved(
    rounds: usize,
    secs: f64,
    units: u64,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (Throughput, Throughput) {
    let mut acc_a = Throughput { iterations: 0, seconds: 0.0, units_per_iter: units };
    let mut acc_b = Throughput { iterations: 0, seconds: 0.0, units_per_iter: units };
    for _ in 0..rounds {
        let ra = time_throughput(secs, units, &mut a);
        let rb = time_throughput(secs, units, &mut b);
        acc_a.iterations += ra.iterations;
        acc_a.seconds += ra.seconds;
        acc_b.iterations += rb.iterations;
        acc_b.seconds += rb.seconds;
    }
    (acc_a, acc_b)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut secs = 0.25f64;
    let mut d = 20usize;
    let mut w = 100usize;
    let mut reps = 8usize;
    let mut jsonl: Option<String> = None;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut min_ratio = 0.8f64;
    let mut assert_zero_alloc = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--jsonl" => {
                jsonl = Some(args[i + 1].clone());
                i += 1;
            }
            "--out" => {
                out = Some(args[i + 1].clone());
                i += 1;
            }
            "--check" => {
                check = Some(args[i + 1].clone());
                i += 1;
            }
            "--min-ratio" => {
                min_ratio = args[i + 1].parse().expect("--min-ratio requires a number");
                i += 1;
            }
            "--assert-zero-alloc" => assert_zero_alloc = true,
            "--secs" => {
                secs = args[i + 1].parse().expect("--secs requires a number");
                i += 1;
            }
            "--d" => {
                d = args[i + 1].parse().expect("--d requires a number");
                i += 1;
            }
            "--window" => {
                w = args[i + 1].parse().expect("--window requires a number");
                i += 1;
            }
            "--reps" => {
                reps = args[i + 1].parse().expect("--reps requires a number");
                i += 1;
            }
            other => panic!("unknown option {other}"),
        }
        i += 1;
    }

    let mut tracked = TrackedWindow::new(w, d);
    for obs in synthetic_window(w, d, 42) {
        tracked.push(obs);
    }
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let mut tree = HoeffdingTree::new(d, 2);
    for _ in 0..2000 {
        let x: Vec<f64> = (0..d).map(|_| rng.random()).collect();
        tree.train(&x, (x[0] > 0.5) as usize);
    }

    let extractor = FingerprintExtractor::full(d);
    let mut engine = FingerprintEngine::new(extractor.clone());
    let mut timed_engine = FingerprintEngine::new(extractor.clone());
    timed_engine.set_clock(Some(Arc::new(MonotonicClock::new())));

    // Parity first: a benchmark comparing two paths is only meaningful if
    // they compute the same thing.
    let relabel = |win: &[LabeledObservation], clf: &HoeffdingTree| -> Vec<LabeledObservation> {
        win.iter()
            .map(|o| o.observation.clone().labeled(clf.predict(o.features())))
            .collect()
    };
    let contents: Vec<LabeledObservation> = tracked.iter().cloned().collect();
    let legacy_fp = extractor.extract(&relabel(&contents, &tree), Some(&tree));
    let engine_fp = engine.extract_tracked_repredicted(&tracked, &tree);
    assert_eq!(legacy_fp, engine_fp, "engine must be bit-identical to the legacy path");

    println!(
        "extraction throughput: d = {d}, window = {w} observations, \
         {reps} interleaved rounds x {secs:.2}s per path"
    );
    println!("{:<28} {:>14} {:>14}", "path", "obs/sec", "ms/window");

    let (legacy, fast) = interleaved(
        reps,
        secs,
        w as u64,
        || {
            let window: Vec<LabeledObservation> = tracked.iter().cloned().collect();
            let relabeled = relabel(&window, &tree);
            std::hint::black_box(extractor.extract(&relabeled, Some(&tree)));
        },
        || {
            std::hint::black_box(engine.extract_tracked_repredicted(&tracked, &tree));
        },
    );
    println!(
        "{:<28} {:>14.0} {:>14.3}",
        "legacy (clone + relabel)",
        legacy.units_per_sec(),
        legacy.secs_per_iter() * 1e3
    );
    println!(
        "{:<28} {:>14.0} {:>14.3}",
        "engine (tracked window)",
        fast.units_per_sec(),
        fast.secs_per_iter() * 1e3
    );

    // Instrumentation cost: the same engine path with the obs clock
    // attached, interleaved against the disabled default so both see the
    // same scheduling noise. The disabled path is what every run without
    // a recorder (the `NullRecorder` default) pays.
    let (plain, timed) = interleaved(
        reps,
        secs,
        w as u64,
        || {
            std::hint::black_box(engine.extract_tracked_repredicted(&tracked, &tree));
        },
        || {
            std::hint::black_box(timed_engine.extract_tracked_repredicted(&tracked, &tree));
        },
    );
    println!(
        "{:<28} {:>14.0} {:>14.3}",
        "engine (timing enabled)",
        timed.units_per_sec(),
        timed.secs_per_iter() * 1e3
    );

    let speedup = fast.units_per_sec() / legacy.units_per_sec();
    println!("speedup: {speedup:.2}x");
    let overhead_pct = 100.0 * (plain.units_per_sec() / timed.units_per_sec() - 1.0);
    println!(
        "obs timing overhead: {overhead_pct:.2}% (clock attached vs NullRecorder default)"
    );

    // Streaming steady state: each iteration pushes one frame into a ring
    // window and fingerprints it — the framework's per-extraction shape.
    // Batch engine vs incremental-statistics engine (the CI-gated mode,
    // EMD stride 4 as in the BENCH_stream incremental configuration).
    let tape: Vec<LabeledObservation> = synthetic_window(w * 4, d, 9)
        .into_iter()
        .map(|o| {
            let p = tree.predict(o.features());
            o.observation.labeled(p)
        })
        .collect();
    let mut batch_fw = FrameWindows::new(w, 0, d);
    let mut incr_fw = FrameWindows::new(w, 0, d);
    incr_fw.enable_stats(extractor.mi_bins());
    for o in tape.iter().take(w) {
        batch_fw.push(o.features(), o.label(), o.prediction);
        incr_fw.push(o.features(), o.label(), o.prediction);
    }
    let mut incr_engine = FingerprintEngine::new(extractor.clone())
        .with_incremental_stats(true)
        .with_emd_stride(4);
    let mut fp_b = Vec::new();
    let mut fp_i = Vec::new();
    let (mut bi, mut ii) = (0usize, 0usize);
    let (stream_batch, stream_incr) = interleaved(
        reps,
        secs,
        w as u64,
        || {
            let o = &tape[bi % tape.len()];
            bi += 1;
            batch_fw.push(o.features(), o.label(), o.prediction);
            engine.extract_tracked_frames_repredicted_into(
                &batch_fw.a_tracked(),
                &tree,
                &mut fp_b,
            );
            std::hint::black_box(&fp_b);
        },
        || {
            let o = &tape[ii % tape.len()];
            ii += 1;
            incr_fw.push(o.features(), o.label(), o.prediction);
            incr_engine.extract_tracked_frames_repredicted_into(
                &incr_fw.a_tracked(),
                &tree,
                &mut fp_i,
            );
            std::hint::black_box(&fp_i);
        },
    );
    println!(
        "{:<28} {:>14.0} {:>14.3}",
        "stream (batch engine)",
        stream_batch.units_per_sec(),
        stream_batch.secs_per_iter() * 1e3
    );
    println!(
        "{:<28} {:>14.0} {:>14.3}",
        "stream (incremental stats)",
        stream_incr.units_per_sec(),
        stream_incr.secs_per_iter() * 1e3
    );
    let incr_speedup = stream_incr.units_per_sec() / stream_batch.units_per_sec();
    println!("incremental speedup: {incr_speedup:.2}x");

    if assert_zero_alloc {
        if !cfg!(feature = "alloc-count") {
            eprintln!(
                "--assert-zero-alloc needs the alloc-count feature \
                 (cargo run --features alloc-count ...)"
            );
            std::process::exit(1);
        }
        // Warm the scratch buffers, then demand a fully allocation-free
        // steady state: push + incremental extraction must stay inside
        // reused capacity even across EMD re-sift strides.
        let iters = 256usize;
        for _ in 0..64 {
            let o = &tape[ii % tape.len()];
            ii += 1;
            incr_fw.push(o.features(), o.label(), o.prediction);
            incr_engine.extract_tracked_frames_repredicted_into(
                &incr_fw.a_tracked(),
                &tree,
                &mut fp_i,
            );
        }
        let a0 = alloc_sample();
        for _ in 0..iters {
            let o = &tape[ii % tape.len()];
            ii += 1;
            incr_fw.push(o.features(), o.label(), o.prediction);
            incr_engine.extract_tracked_frames_repredicted_into(
                &incr_fw.a_tracked(),
                &tree,
                &mut fp_i,
            );
        }
        let allocs = alloc_sample() - a0;
        println!("zero-alloc assertion: {allocs} allocations over {iters} steady-state steps");
        if allocs != 0 {
            eprintln!(
                "ALLOC REGRESSION: incremental steady-state extraction allocated \
                 {allocs} times over {iters} steps (expected 0)"
            );
            std::process::exit(1);
        }
    }

    let line = format!(
        "{{\"bench\":\"extraction_throughput\",\"d\":{d},\"window\":{w},\
         \"legacy_obs_per_sec\":{:.1},\"engine_obs_per_sec\":{:.1},\
         \"stream_batch_obs_per_sec\":{:.1},\"stream_incremental_obs_per_sec\":{:.1},\
         \"incremental_speedup\":{:.3}}}",
        legacy.units_per_sec(),
        fast.units_per_sec(),
        stream_batch.units_per_sec(),
        stream_incr.units_per_sec(),
        incr_speedup
    );
    if let Some(path) = &out {
        std::fs::write(path, format!("{line}\n")).unwrap_or_else(|e| panic!("--out {path}: {e}"));
        println!("wrote {path}");
    }
    if let Some(path) = &check {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--check {path}: {e}"));
        let mut failed = false;
        for (field, current) in [
            ("engine_obs_per_sec", fast.units_per_sec()),
            ("stream_incremental_obs_per_sec", stream_incr.units_per_sec()),
        ] {
            let base = json_field(&baseline, field)
                .unwrap_or_else(|| panic!("--check {path}: no {field} field"));
            let ratio = current / base;
            println!(
                "perf check: {field} {current:.0} vs baseline {base:.0} \
                 (ratio {ratio:.2}, floor {min_ratio:.2})"
            );
            if ratio < min_ratio {
                eprintln!("PERF REGRESSION: {field} ratio {ratio:.2} below {min_ratio:.2}");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }

    if jsonl.is_some() {
        let opts = Options { seeds: 0, quick: false, only: None, jsonl };
        let mut rep = JsonlReporter::from_options("extraction_throughput", &opts)
            .expect("--jsonl was given");
        rep.record_throughput("legacy", &legacy);
        rep.record_throughput("engine", &fast);
        rep.record_throughput("engine_untimed", &plain);
        rep.record_throughput("engine_timed", &timed);
        rep.record_throughput("stream_batch", &stream_batch);
        rep.record_throughput("stream_incremental", &stream_incr);
        rep.finish();
    }
}

#[cfg(feature = "alloc-count")]
fn alloc_sample() -> u64 {
    ficsum_bench::alloc_count::allocations()
}

#[cfg(not(feature = "alloc-count"))]
fn alloc_sample() -> u64 {
    0
}

/// Pulls a numeric field out of a single-object JSON line without a JSON
/// dependency (the file is machine-written by this binary).
fn json_field(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let at = json.find(&key)? + key.len();
    let rest = &json[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
