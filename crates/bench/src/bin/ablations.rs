//! Ablation study over the design choices DESIGN.md calls out: dynamic
//! weighting, buffered incorporation, the delayed second selection pass,
//! and fingerprint plasticity.

use ficsum_baselines::FicsumSystem;
use ficsum_bench::harness::{build_stream, metric, run_options, Options};
use ficsum_bench::jsonl_out::JsonlReporter;
use ficsum_core::{FicsumConfig, Variant};
use ficsum_eval::{evaluate_with, format_cell, Table};
use ficsum_stream::StreamSource;

const DATASETS: [&str; 4] = ["STAGGER", "RTREE-U", "Arabic", "RBF"];

fn variants() -> Vec<(&'static str, FicsumConfig)> {
    let base = FicsumConfig::default();
    vec![
        ("full", base),
        ("no second check", base.with_second_check(false)),
        ("no plasticity", base.with_plasticity(false)),
        ("no rebase", base.with_rebase_similarity(false)),
        ("no buffer (b=1)", base.with_buffer_ratio(0.014)),
    ]
}

fn main() {
    let opts = Options::from_args();
    let mut reporter = JsonlReporter::from_options("ablations", &opts);
    let headers: Vec<&str> = std::iter::once("Configuration")
        .chain(DATASETS.iter().copied())
        .collect();
    let mut kappa_table = Table::new(&headers);
    let mut cf1_table = Table::new(&headers);
    for (label, config) in variants() {
        let mut kappa_cells = Vec::new();
        let mut cf1_cells = Vec::new();
        for name in DATASETS {
            let results: Vec<_> = (0..opts.seeds)
                .map(|seed| {
                    let mut stream = build_stream(name, seed + 1, &opts);
                    let (d, k) = (stream.dims(), stream.n_classes());
                    let mut system = FicsumSystem::with_config(d, k, Variant::Full, config);
                    evaluate_with(&mut system, &mut stream, &run_options(k, seed + 1, &opts))
                })
                .collect();
            if let Some(rep) = reporter.as_mut() {
                for r in &results {
                    rep.record(name, r);
                }
            }
            kappa_cells.push(format_cell(&metric(&results, |r| r.kappa)));
            cf1_cells.push(format_cell(&metric(&results, |r| r.c_f1)));
        }
        kappa_table.add_row(label, kappa_cells);
        cf1_table.add_row(label, cf1_cells);
        eprintln!("[ablations] {label} done");
    }
    println!("Ablations — kappa statistic\n");
    println!("{}", kappa_table.render());
    println!("Ablations — C-F1\n");
    println!("{}", cf1_table.render());
    if let Some(rep) = reporter {
        rep.finish();
    }
}
