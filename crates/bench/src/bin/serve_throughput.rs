//! Multi-session serving throughput: aggregate `StreamServer` steps/sec
//! across sessions × shards, submit→reply latency, and the scaling ratio
//! against a single standalone pipeline on the same tape.
//!
//! `--out BENCH_serve.json` records the committed baseline; `--check
//! BENCH_serve.json` fails (exit 1) when aggregate throughput drops more
//! than 20% below it. The `cores` field keeps baselines honest: scaling
//! beyond 1x is only expected when the machine actually has spare cores
//! (the ≥3x target presumes ≥4), so the check regresses throughput on the
//! same machine rather than asserting an absolute ratio.
//!
//! The submit loop is a bounded closed loop: at most `--in-flight` waves
//! (one wave = one submit batch covering every session) are outstanding at
//! any moment, and the next wave is only submitted after the oldest one
//! drains. An unbounded loop that enqueues the whole run up front measures
//! queue residency, not serving latency — the p50 converges on half the
//! run's wall clock regardless of how fast the shards actually are.
//!
//! Usage:
//!
//! ```sh
//! serve_throughput [--sessions N] [--shards S] [--steps K] [--seed S]
//!                  [--in-flight W] [--repeat R] [--out PATH] [--check PATH]
//!                  [--min-ratio F] [--max-p99-ratio F]
//! ```
//!
//! Defaults: 64 sessions over 4 shards, 400 steps per session, 4 waves in
//! flight, best of 3.

use std::time::Instant;

use ficsum_core::{FicsumConfig, SessionTemplate, Variant};
use ficsum_serve::{ServeConfig, SessionId, StreamServer, Submit};
use ficsum_stream::StreamSource;
use ficsum_synth::dataset_by_name;

#[derive(Debug)]
struct Args {
    sessions: usize,
    shards: usize,
    steps: usize,
    seed: u64,
    in_flight: usize,
    repeat: usize,
    out: Option<String>,
    check: Option<String>,
    min_ratio: f64,
    max_p99_ratio: f64,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut a = Args {
        sessions: 64,
        shards: 4,
        steps: 400,
        seed: 42,
        in_flight: 4,
        repeat: 3,
        out: None,
        check: None,
        min_ratio: 0.8,
        max_p99_ratio: 3.0,
    };
    let mut i = 1;
    while i < argv.len() {
        let val = |i: usize| {
            argv.get(i + 1).unwrap_or_else(|| panic!("{} requires a value", argv[i])).clone()
        };
        match argv[i].as_str() {
            "--sessions" => a.sessions = val(i).parse().expect("--sessions"),
            "--shards" => a.shards = val(i).parse().expect("--shards"),
            "--steps" => a.steps = val(i).parse().expect("--steps"),
            "--seed" => a.seed = val(i).parse().expect("--seed"),
            "--in-flight" => a.in_flight = val(i).parse().expect("--in-flight"),
            "--repeat" => a.repeat = val(i).parse().expect("--repeat"),
            "--out" => a.out = Some(val(i)),
            "--check" => a.check = Some(val(i)),
            "--min-ratio" => a.min_ratio = val(i).parse().expect("--min-ratio"),
            "--max-p99-ratio" => a.max_p99_ratio = val(i).parse().expect("--max-p99-ratio"),
            other => panic!("unknown option {other}"),
        }
        i += 2;
    }
    a
}

#[derive(Debug, Clone)]
struct Measurement {
    served_steps: usize,
    seconds: f64,
    single_steps_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    max_queue_depth: usize,
}

fn template() -> SessionTemplate {
    SessionTemplate::new(3, 2, FicsumConfig::default(), Variant::Full)
        .expect("default config is valid")
}

/// One tape of STAGGER observations shared by every session: each session
/// runs the same workload, so aggregate throughput divides cleanly by the
/// single-pipeline figure.
fn tape(seed: u64, steps: usize) -> Vec<(Vec<f64>, usize)> {
    let mut stream = dataset_by_name("STAGGER", seed).expect("STAGGER exists");
    (0..steps)
        .map(|_| {
            let o = stream.next_observation().expect("synthetic streams are infinite");
            (o.features.clone(), o.label)
        })
        .collect()
}

fn run_once(args: &Args) -> Measurement {
    let data = tape(args.seed, args.steps);

    // Reference: the same tape through one standalone pipeline.
    let mut single = template().instantiate();
    let t_single = Instant::now();
    for (features, label) in &data {
        single.process(features, *label);
    }
    let single_steps_per_sec = args.steps as f64 / t_single.elapsed().as_secs_f64();

    let total = args.sessions * args.steps;
    let in_flight = args.in_flight.max(1);
    let server = StreamServer::new(
        template(),
        ServeConfig::default()
            .with_shards(args.shards)
            // Room for the in-flight window only: latency should measure
            // serving time, not residency in an unbounded queue.
            .with_queue_capacity(args.sessions * (in_flight + 1))
            .with_max_sessions_per_shard(args.sessions.max(1)),
    );
    let t_run = Instant::now();
    let mut served_steps = 0usize;
    let mut pending = std::collections::VecDeque::with_capacity(in_flight);
    for (features, label) in &data {
        if pending.len() == in_flight {
            let reply: ficsum_serve::BatchReply = pending.pop_front().expect("non-empty");
            for result in reply.wait() {
                result.expect("no faults in a clean benchmark run");
                served_steps += 1;
            }
        }
        let wave: Vec<Submit> = (0..args.sessions)
            .map(|s| Submit::new(SessionId(s as u64), features.clone(), *label))
            .collect();
        pending.push_back(server.try_submit(&wave).expect("queue sized for the in-flight window"));
    }
    for reply in pending {
        for result in reply.wait() {
            result.expect("no faults in a clean benchmark run");
            served_steps += 1;
        }
    }
    let seconds = t_run.elapsed().as_secs_f64();
    assert_eq!(served_steps, total, "every submitted request must be served");

    let report = server.shutdown();
    let mut latency = ficsum_obs::LatencyHistogram::new();
    let mut max_queue_depth = 0usize;
    for m in &report.metrics {
        latency.merge(&m.latency);
        max_queue_depth = max_queue_depth.max(m.max_queue_depth);
    }
    Measurement {
        served_steps,
        seconds,
        single_steps_per_sec,
        p50_us: latency.quantile_nanos(0.50) as f64 / 1e3,
        p99_us: latency.quantile_nanos(0.99) as f64 / 1e3,
        max_queue_depth,
    }
}

fn json_line(args: &Args, m: &Measurement, steps_per_sec: f64, cores: usize) -> String {
    let scaling = steps_per_sec / m.single_steps_per_sec;
    format!(
        "{{\"bench\":\"serve_throughput\",\"sessions\":{},\"shards\":{},\"steps\":{},\
         \"seed\":{},\"in_flight\":{},\"cores\":{},\"steps_per_sec\":{:.1},\
         \"single_steps_per_sec\":{:.1},\
         \"scaling\":{:.3},\"latency_p50_us\":{:.1},\"latency_p99_us\":{:.1},\
         \"max_queue_depth\":{}}}",
        args.sessions,
        args.shards,
        args.steps,
        args.seed,
        args.in_flight,
        cores,
        steps_per_sec,
        m.single_steps_per_sec,
        scaling,
        m.p50_us,
        m.p99_us,
        m.max_queue_depth
    )
}

/// Pulls a numeric field out of a single-object JSON line without a JSON
/// dependency (the file is machine-written by this binary).
fn json_field(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let at = json.find(&key)? + key.len();
    let rest = &json[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Best-of-R repeats: throughput noise is one-sided (scheduling stalls
    // only ever slow a run down), so the max is the honest estimate.
    let mut best: Option<(f64, Measurement)> = None;
    for _ in 0..args.repeat.max(1) {
        let m = run_once(&args);
        let sps = m.served_steps as f64 / m.seconds;
        if best.as_ref().is_none_or(|(b, _)| sps > *b) {
            best = Some((sps, m));
        }
    }
    let (steps_per_sec, m) = best.expect("at least one repeat");
    let scaling = steps_per_sec / m.single_steps_per_sec;

    println!(
        "serve_throughput: {} sessions x {} steps over {} shards ({cores} cores) -> \
         {:.0} steps/sec aggregate ({:.2}x one pipeline at {:.0}), \
         latency p50 {:.1} us p99 {:.1} us, max queue depth {}",
        args.sessions,
        args.steps,
        args.shards,
        steps_per_sec,
        scaling,
        m.single_steps_per_sec,
        m.p50_us,
        m.p99_us,
        m.max_queue_depth
    );
    if cores >= 4 && args.shards >= 4 && scaling < 3.0 {
        eprintln!(
            "note: scaling {scaling:.2}x is below the 3x target expected with \
             {cores} cores; investigate shard balance before committing a baseline"
        );
    }

    let line = json_line(&args, &m, steps_per_sec, cores);
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{line}\n")).unwrap_or_else(|e| panic!("--out {path}: {e}"));
        println!("wrote {path}");
    }

    if let Some(path) = &args.check {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--check {path}: {e}"));
        let base_sps = json_field(&baseline, "steps_per_sec")
            .unwrap_or_else(|| panic!("--check {path}: no steps_per_sec field"));
        let ratio = steps_per_sec / base_sps;
        println!(
            "perf check: {steps_per_sec:.0} steps/sec vs baseline {base_sps:.0} \
             (ratio {ratio:.2}, floor {:.2})",
            args.min_ratio
        );
        if ratio < args.min_ratio {
            eprintln!("PERF REGRESSION: throughput ratio {ratio:.2} below {:.2}", args.min_ratio);
            std::process::exit(1);
        }
        // Tail latency gates too, with more headroom than throughput: even
        // with the bounded in-flight window, p99 includes residency behind
        // up to `in_flight` earlier waves and is noisier than throughput.
        if let Some(base_p99) = json_field(&baseline, "latency_p99_us") {
            let p99_ratio = m.p99_us / base_p99;
            println!(
                "perf check: latency p99 {:.0} us vs baseline {base_p99:.0} \
                 (ratio {p99_ratio:.2}, ceiling {:.2})",
                m.p99_us, args.max_p99_ratio
            );
            if p99_ratio > args.max_p99_ratio {
                eprintln!(
                    "PERF REGRESSION: p99 latency ratio {p99_ratio:.2} above {:.2}",
                    args.max_p99_ratio
                );
                std::process::exit(1);
            }
        }
    }
}
