//! Table IV: kappa statistic and C-F1 for ER / S-MI / U-MI / FiCSUM over all
//! datasets, with average ranks and Friedman/Nemenyi significance tests.

use ficsum_bench::harness::{metric, run_variant, Options, VARIANT_COLUMNS};
use ficsum_bench::jsonl_out::JsonlReporter;
use ficsum_eval::{
    format_cell, friedman_test, mean_std, nemenyi_critical_difference, Table,
};
use ficsum_synth::ALL_DATASETS;

fn main() {
    let opts = Options::from_args();
    let mut reporter = JsonlReporter::from_options("table4_performance", &opts);
    let mut kappa_table = Table::new(&["Dataset", "ER", "S-MI", "U-MI", "FiCSUM"]);
    let mut cf1_table = Table::new(&["Dataset", "ER", "S-MI", "U-MI", "FiCSUM"]);
    let mut kappa_rows: Vec<Vec<f64>> = Vec::new();
    let mut cf1_rows: Vec<Vec<f64>> = Vec::new();

    for spec in ALL_DATASETS {
        if !opts.selected(spec.name) {
            continue;
        }
        let mut kappa_cells = Vec::new();
        let mut cf1_cells = Vec::new();
        let mut kappa_row = Vec::new();
        let mut cf1_row = Vec::new();
        for variant in VARIANT_COLUMNS {
            let results: Vec<_> = (0..opts.seeds)
                .map(|seed| run_variant(spec.name, variant, seed + 1, &opts))
                .collect();
            if let Some(rep) = reporter.as_mut() {
                for r in &results {
                    rep.record(spec.name, r);
                }
            }
            let kappas = metric(&results, |r| r.kappa);
            let cf1s = metric(&results, |r| r.c_f1);
            kappa_row.push(mean_std(&kappas).0);
            cf1_row.push(mean_std(&cf1s).0);
            kappa_cells.push(format_cell(&kappas));
            cf1_cells.push(format_cell(&cf1s));
        }
        kappa_table.add_row(spec.name, kappa_cells);
        cf1_table.add_row(spec.name, cf1_cells);
        kappa_rows.push(kappa_row);
        cf1_rows.push(cf1_row);
        eprintln!("[table4] {} done", spec.name);
    }

    println!("Table IV — kappa statistic\n");
    println!("{}", kappa_table.render());
    println!("Table IV — co-occurrence F1 (C-F1)\n");
    println!("{}", cf1_table.render());

    for (label, rows) in [("kappa", &kappa_rows), ("C-F1", &cf1_rows)] {
        if rows.len() >= 2 {
            let outcome = friedman_test(rows);
            let cd = nemenyi_critical_difference(4, rows.len());
            println!(
                "{label}: avg ranks ER={:.2} S-MI={:.2} U-MI={:.2} FiCSUM={:.2} | Friedman chi2={:.2} p={:.4} | Nemenyi CD(0.05)={:.2}",
                outcome.average_ranks[0],
                outcome.average_ranks[1],
                outcome.average_ranks[2],
                outcome.average_ranks[3],
                outcome.chi_square,
                outcome.p_value,
                cd
            );
        }
    }
    if let Some(rep) = reporter {
        rep.finish();
    }
}
