//! Table VI: kappa / C-F1 / runtime of HTCD, RCD, ER, DWM, ARF and FiCSUM
//! over the nine framework-comparison datasets.

use ficsum_bench::harness::{metric, run_framework, Framework, Options};
use ficsum_bench::jsonl_out::JsonlReporter;
use ficsum_eval::{format_cell, Table};

/// The nine datasets of the paper's Table VI (columns there; rows here).
const DATASETS: [&str; 9] =
    ["AQSex", "CMC", "UCI-Wine", "RBF", "RTREE-U", "Arabic", "HPLANE-U", "QG", "STAGGER"];

fn main() {
    let opts = Options::from_args();
    let mut reporter = JsonlReporter::from_options("table6_frameworks", &opts);
    let headers: Vec<&str> =
        std::iter::once("Dataset").chain(Framework::ALL.iter().map(|f| f.name())).collect();
    let mut kappa_table = Table::new(&headers);
    let mut cf1_table = Table::new(&headers);
    let mut runtime_table = Table::new(&headers);

    for name in DATASETS {
        if !opts.selected(name) {
            continue;
        }
        let mut kappa_cells = Vec::new();
        let mut cf1_cells = Vec::new();
        let mut rt_cells = Vec::new();
        for framework in Framework::ALL {
            let results: Vec<_> = (0..opts.seeds)
                .map(|seed| run_framework(name, framework, seed + 1, &opts))
                .collect();
            if let Some(rep) = reporter.as_mut() {
                for r in &results {
                    rep.record(name, r);
                }
            }
            kappa_cells.push(format_cell(&metric(&results, |r| r.kappa)));
            cf1_cells.push(format_cell(&metric(&results, |r| r.c_f1)));
            rt_cells.push(format_cell(&metric(&results, |r| r.runtime_s)));
        }
        kappa_table.add_row(name, kappa_cells);
        cf1_table.add_row(name, cf1_cells);
        runtime_table.add_row(name, rt_cells);
        eprintln!("[table6] {name} done");
    }

    println!("Table VI — kappa statistic per framework\n");
    println!("{}", kappa_table.render());
    println!("Table VI — C-F1 per framework\n");
    println!("{}", cf1_table.render());
    println!("Table VI — runtime (seconds) per framework\n");
    println!("{}", runtime_table.render());
    if let Some(rep) = reporter {
        rep.finish();
    }
}
