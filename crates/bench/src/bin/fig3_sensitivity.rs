//! Figure 3: sensitivity of accuracy and runtime to the four FiCSUM
//! parameters (window size w, buffer ratio, P_C, P_S) on the Arabic
//! stand-in. Values are proportions relative to the base configuration
//! (w=75, ratio=0.25, P_C=3, P_S=25), exactly like the paper's plot.

use ficsum_baselines::FicsumSystem;
use ficsum_bench::harness::{build_stream, run_options, Options};
use ficsum_bench::jsonl_out::JsonlReporter;
use ficsum_core::{FicsumConfig, Variant};
use ficsum_eval::{evaluate_with, Table};
use ficsum_stream::StreamSource;

fn run(config: FicsumConfig, opts: &Options, reporter: &mut Option<JsonlReporter>) -> (f64, f64) {
    let mut acc = 0.0;
    let mut rt = 0.0;
    for seed in 0..opts.seeds {
        let mut stream = build_stream("Arabic", seed + 1, opts);
        let (d, k) = (stream.dims(), stream.n_classes());
        let mut system = FicsumSystem::with_config(d, k, Variant::Full, config);
        let r = evaluate_with(&mut system, &mut stream, &run_options(k, seed + 1, opts));
        if let Some(rep) = reporter.as_mut() {
            rep.record("Arabic", &r);
        }
        acc += r.accuracy;
        rt += r.runtime_s;
    }
    (acc / opts.seeds as f64, rt / opts.seeds as f64)
}

fn main() {
    let opts = Options::from_args();
    let mut reporter = JsonlReporter::from_options("fig3_sensitivity", &opts);
    let base_config = FicsumConfig::default();
    let (base_acc, base_rt) = run(base_config, &opts, &mut reporter);
    println!(
        "base (w=75, ratio=0.25, P_C=3, P_S=25): accuracy={base_acc:.3} runtime={base_rt:.1}s\n"
    );

    let mut table = Table::new(&["Parameter", "Value", "Accuracy (prop of base)", "Runtime (prop)"]);
    let sweeps: Vec<(&str, Vec<FicsumConfig>)> = vec![
        (
            "window w",
            [25usize, 50, 100, 150]
                .iter()
                .map(|&w| base_config.with_window_size(w))
                .collect(),
        ),
        (
            "buffer ratio",
            [0.05f64, 0.15, 0.5, 1.0]
                .iter()
                .map(|&r| base_config.with_buffer_ratio(r))
                .collect(),
        ),
        (
            "P_C",
            [1usize, 6, 12, 24]
                .iter()
                .map(|&p| base_config.with_fingerprint_gap(p))
                .collect(),
        ),
        (
            "P_S",
            [5usize, 50, 100, 200]
                .iter()
                .map(|&p| base_config.with_repository_gap(p))
                .collect(),
        ),
    ];
    for (label, configs) in sweeps {
        for config in configs {
            let value = match label {
                "window w" => config.window_size.to_string(),
                "buffer ratio" => format!("{:.2}", config.buffer_ratio),
                "P_C" => config.fingerprint_gap.to_string(),
                _ => config.repository_gap.to_string(),
            };
            let (acc, rt) = run(config, &opts, &mut reporter);
            table.add_row(
                label,
                vec![value, format!("{:.3}", acc / base_acc), format!("{:.3}", rt / base_rt)],
            );
            eprintln!("[fig3] {label} point done");
        }
    }
    println!("Figure 3 — parameter sensitivity on Arabic\n");
    println!("{}", table.render());
    if let Some(rep) = reporter {
        rep.finish();
    }
}
