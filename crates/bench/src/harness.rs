//! Shared experiment harness: CLI options, system construction, seed
//! aggregation, stream truncation and a std-only throughput timer.

use std::time::Instant;

use ficsum_baselines::{EnsembleSystem, FicsumSystem, Htcd, Rcd};
use ficsum_core::{FicsumConfig, Variant};
use ficsum_eval::{evaluate_with, EvaluatedSystem, RunOptions, RunResult};
use ficsum_stream::rng::{RandomSource, Xoshiro256pp};
use ficsum_stream::{LabeledObservation, StreamSource, VecStream};
use ficsum_synth::dataset_by_name;

/// Common experiment options parsed from `std::env::args`.
#[derive(Debug, Clone)]
pub struct Options {
    /// Number of seeds per configuration (paper: 20; default here: 2 —
    /// single-core budget).
    pub seeds: u64,
    /// Quick mode: 1 seed and streams truncated to 12k observations.
    pub quick: bool,
    /// Optional dataset filter (case-insensitive substring).
    pub only: Option<String>,
    /// Optional JSONL output path (`-` = stdout): every run result (and,
    /// for systems that support recorders, its observability summary) is
    /// streamed as one JSON object per line.
    pub jsonl: Option<String>,
}

impl Options {
    /// Parses `--seeds N`, `--quick`, `--only NAME`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut opts = Options { seeds: 2, quick: false, only: None, jsonl: None };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--seeds" => {
                    opts.seeds = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--seeds requires a number");
                    i += 1;
                }
                "--quick" => opts.quick = true,
                "--only" => {
                    opts.only = args.get(i + 1).cloned();
                    i += 1;
                }
                "--jsonl" => {
                    opts.jsonl = Some(args.get(i + 1).cloned().expect("--jsonl requires a path"));
                    i += 1;
                }
                other => {
                    panic!(
                        "unknown option {other}; supported: --seeds N, --quick, --only NAME, \
                         --jsonl PATH"
                    )
                }
            }
            i += 1;
        }
        if opts.quick {
            opts.seeds = 1;
        }
        opts
    }

    /// Effective stream cap.
    pub fn stream_cap(&self) -> usize {
        if self.quick {
            12_000
        } else {
            usize::MAX
        }
    }

    /// Whether `name` passes the dataset filter.
    pub fn selected(&self, name: &str) -> bool {
        match &self.only {
            Some(f) => name.to_lowercase().contains(&f.to_lowercase()),
            None => true,
        }
    }
}

/// Builds a dataset stream, truncated to the option cap.
pub fn build_stream(name: &str, seed: u64, opts: &Options) -> VecStream {
    let stream = dataset_by_name(name, seed).unwrap_or_else(|| panic!("unknown dataset {name}"));
    truncate(stream, opts.stream_cap())
}

/// Truncates a stream to at most `cap` observations.
pub fn truncate(stream: VecStream, cap: usize) -> VecStream {
    if stream.len() <= cap {
        return stream;
    }
    let n_classes = stream.n_classes();
    let data: Vec<_> = stream.observations().iter().take(cap).cloned().collect();
    VecStream::with_classes(data, n_classes)
}

/// The four fingerprint variants of Tables III and IV, in paper column
/// order.
pub const VARIANT_COLUMNS: [Variant; 4] =
    [Variant::ErrorRate, Variant::Supervised, Variant::Unsupervised, Variant::Full];

/// Evaluation options for one dataset/seed run: observability is switched
/// on exactly when the run's signals will be consumed (`--jsonl`).
pub fn run_options(n_classes: usize, seed: u64, opts: &Options) -> RunOptions {
    let mut ro = RunOptions::new(n_classes).seed(seed);
    ro.observability = opts.jsonl.is_some();
    ro
}

/// Runs one FiCSUM variant over one dataset/seed.
pub fn run_variant(name: &str, variant: Variant, seed: u64, opts: &Options) -> RunResult {
    let mut stream = build_stream(name, seed, opts);
    let (d, k) = (stream.dims(), stream.n_classes());
    let mut system = FicsumSystem::with_config(d, k, variant, FicsumConfig::default());
    evaluate_with(&mut system, &mut stream, &run_options(k, seed, opts))
}

/// A framework row of Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framework {
    /// Hoeffding tree + ADWIN reset.
    Htcd,
    /// Recurring Concept Drift framework.
    Rcd,
    /// FiCSUM restricted to error rate.
    ErrorRate,
    /// Dynamic Weighted Majority.
    Dwm,
    /// Adaptive Random Forest.
    Arf,
    /// Full FiCSUM.
    Ficsum,
}

impl Framework {
    /// All Table VI rows, in paper order.
    pub const ALL: [Framework; 6] = [
        Framework::Htcd,
        Framework::Rcd,
        Framework::ErrorRate,
        Framework::Dwm,
        Framework::Arf,
        Framework::Ficsum,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Framework::Htcd => "HTCD",
            Framework::Rcd => "RCD",
            Framework::ErrorRate => "ER",
            Framework::Dwm => "DWM",
            Framework::Arf => "ARF",
            Framework::Ficsum => "FiCSUM",
        }
    }

    /// Builds the system for a `d`-feature, `k`-class stream.
    pub fn build(&self, d: usize, k: usize) -> Box<dyn EvaluatedSystem> {
        match self {
            Framework::Htcd => Box::new(Htcd::new(d, k)),
            Framework::Rcd => Box::new(Rcd::new(d, k)),
            Framework::ErrorRate => Box::new(FicsumSystem::new(d, k, Variant::ErrorRate)),
            Framework::Dwm => Box::new(EnsembleSystem::dwm(d, k)),
            Framework::Arf => Box::new(EnsembleSystem::arf(d, k)),
            Framework::Ficsum => Box::new(FicsumSystem::new(d, k, Variant::Full)),
        }
    }
}

/// Runs a framework over one dataset/seed.
pub fn run_framework(name: &str, framework: Framework, seed: u64, opts: &Options) -> RunResult {
    let mut stream = build_stream(name, seed, opts);
    let (d, k) = (stream.dims(), stream.n_classes());
    let mut system = framework.build(d, k);
    evaluate_with(&mut system, &mut stream, &run_options(k, seed, opts))
}

/// Extracts one metric across per-seed results.
pub fn metric(results: &[RunResult], f: impl Fn(&RunResult) -> f64) -> Vec<f64> {
    results.iter().map(f).collect()
}

/// Result of one [`time_throughput`] measurement.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Iterations actually timed (after warm-up).
    pub iterations: u64,
    /// Wall-clock seconds over those iterations.
    pub seconds: f64,
    /// Work units (e.g. observations) per iteration.
    pub units_per_iter: u64,
}

impl Throughput {
    /// Work units per second.
    pub fn units_per_sec(&self) -> f64 {
        self.units_per_iter as f64 * self.iterations as f64 / self.seconds
    }

    /// Mean wall-clock seconds per iteration.
    pub fn secs_per_iter(&self) -> f64 {
        self.seconds / self.iterations as f64
    }
}

/// Std-only throughput timer (no external benchmark harness): runs `f` for
/// a short warm-up, then repeatedly for at least `min_seconds` of wall
/// clock, and reports iterations, elapsed time and derived rates.
/// `units_per_iter` sets the work-unit denominator (observations per call,
/// say) so results can be read as obs/sec.
pub fn time_throughput(
    min_seconds: f64,
    units_per_iter: u64,
    mut f: impl FnMut(),
) -> Throughput {
    // Warm-up: populate caches/scratch buffers and estimate per-call cost.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed().as_secs_f64() < min_seconds * 0.1 || warm_iters < 3 {
        f();
        warm_iters += 1;
    }
    let start = Instant::now();
    let mut iterations = 0u64;
    loop {
        f();
        iterations += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_seconds {
            return Throughput { iterations, seconds: elapsed, units_per_iter };
        }
    }
}

/// Deterministic synthetic window for extraction benchmarks: `n`
/// observations of `d` uniform features, binary labels correlated with the
/// first feature and ~15% prediction errors.
pub fn synthetic_window(n: usize, d: usize, seed: u64) -> Vec<LabeledObservation> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..d).map(|_| rng.random()).collect();
            let y = (x[0] > 0.5) as usize;
            let pred = if rng.random_bool(0.15) { 1 - y } else { y };
            LabeledObservation::new(x, y, pred)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_caps_length() {
        let s = build_stream("CMC", 1, &Options { seeds: 1, quick: false, only: None, jsonl: None });
        let t = truncate(s.clone(), 100);
        assert_eq!(t.len(), 100);
        let untouched = truncate(s.clone(), usize::MAX);
        assert_eq!(untouched.len(), s.len());
    }

    #[test]
    fn frameworks_build_for_any_shape() {
        for f in Framework::ALL {
            let mut sys = f.build(4, 3);
            let (p, _) = sys.step(&[0.1, 0.2, 0.3, 0.4], 1);
            assert!(p < 3);
            assert_eq!(sys.name(), f.name());
        }
    }

    #[test]
    fn selection_filter() {
        let o = Options { seeds: 1, quick: false, only: Some("stag".into()), jsonl: None };
        assert!(o.selected("STAGGER"));
        assert!(!o.selected("RBF"));
        let all = Options { seeds: 1, quick: false, only: None, jsonl: None };
        assert!(all.selected("anything"));
    }
}
