//! Experiment binaries reproducing the paper's tables and figures.
//! See the `bin/` directory; shared helpers live in [`harness`].

pub mod harness;
pub mod jsonl_out;
#[cfg(feature = "alloc-count")]
pub mod alloc_count;
