//! A counting global allocator for allocation-budget benchmarks.
//!
//! Compiled only under the `alloc-count` feature so the default benchmark
//! binaries keep the system allocator untouched. The `stream_throughput`
//! binary registers [`CountingAllocator`] as the global allocator and
//! samples [`allocations`] around steady-state `process()` calls to report
//! allocations-per-step; the hot-path budget (DESIGN.md "Hot path &
//! allocation budget") is **zero** in steady state.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Wraps the system allocator, counting every `alloc`/`realloc` call.
/// Frees are not counted: the budget is about acquiring memory on the hot
/// path, and a free implies a matching earlier count.
pub struct CountingAllocator;

// SAFETY: defers every operation to `System`; the counter is a relaxed
// atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocation calls since process start. Subtract two samples to
/// count the allocations a code region performed.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
