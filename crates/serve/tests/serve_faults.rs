//! Fault-tolerance harness: deterministic fail-point injection against a
//! live `StreamServer` (requires `--features fault-injection`).
//!
//! Each test scripts or seeds faults at exact shard-local request ordinals
//! and then pins the *blast radius*: a session panic must poison exactly
//! one session, a worker crash must lose exactly the in-flight request, a
//! stall must be observable through `wait_timeout` without corrupting
//! anything — and in every case all reply slots complete and all surviving
//! state remains bit-identical to an undisturbed run.

#![cfg(feature = "fault-injection")]

use std::sync::Arc;
use std::time::Duration;

use ficsum_core::{FicsumConfig, SessionTemplate, Variant};
use ficsum_serve::{
    EvictReason, FaultAction, ScriptedFaults, SeededFaults, ServeConfig, ServeOptions, SessionId,
    StepError, StreamServer, Submit,
};

fn template() -> SessionTemplate {
    SessionTemplate::new(2, 2, FicsumConfig::default(), Variant::ErrorRate).unwrap()
}

fn one_shard() -> ServeConfig {
    ServeConfig::default().with_shards(1)
}

/// The observation both streams feed at round `i` — deterministic, mildly
/// varied so pipelines actually learn something.
fn obs(i: u64) -> (Vec<f64>, usize) {
    (vec![0.13 * (i % 7) as f64, 0.71 * (i % 5) as f64], (i % 2) as usize)
}

/// An injected session panic poisons exactly that session: its later
/// requests fail, its sibling on the same shard never notices, and the
/// quarantine checkpoint restores a pipeline bit-identical to one that
/// replayed only the successful steps.
#[test]
fn injected_panic_poisons_one_session_and_restores_bit_identically() {
    // One shard serving sessions 7 and 8 alternately: shard-local request
    // ordinals are 2r (session 7) and 2r+1 (session 8) for round r. Panic
    // session 7 at its 4th request (ordinal 6, round 3).
    let faults = Arc::new(ScriptedFaults::new().at(0, 6, FaultAction::PanicSession));
    let server = StreamServer::with_options(
        template(),
        one_shard(),
        ServeOptions::default().with_fault_injector(faults),
    )
    .unwrap();
    let rounds = 10u64;
    let mut results = Vec::new();
    for i in 0..rounds {
        let (x, y) = obs(i);
        let batch =
            [Submit::new(SessionId(7), x.clone(), y), Submit::new(SessionId(8), x.clone(), y)];
        results.push(server.try_submit(&batch).unwrap().wait());
    }
    for (round, pair) in results.iter().enumerate() {
        if round < 3 {
            assert!(pair[0].is_ok(), "session 7 healthy before the fault (round {round})");
        } else {
            assert_eq!(
                pair[0],
                Err(StepError::SessionPoisoned { session: SessionId(7) }),
                "session 7 poisoned from the faulted round on (round {round})"
            );
        }
        assert!(pair[1].is_ok(), "session 8 must never notice (round {round})");
    }

    let report = server.shutdown();
    assert_eq!(report.metrics[0].sessions_poisoned, 1);
    assert_eq!(report.metrics[0].worker_restarts, 0, "session panic stays session-scoped");
    assert_eq!(report.metrics[0].processed, 2 * rounds, "every slot completed");
    let poisoned: Vec<_> =
        report.snapshots.iter().filter(|s| s.reason == EvictReason::Poisoned).collect();
    assert_eq!(poisoned.len(), 1);
    let snap = poisoned[0];
    assert_eq!(snap.session, SessionId(7));
    assert_eq!(snap.steps, 3, "the faulted request itself never processed");
    let survivor: Vec<_> =
        report.snapshots.iter().filter(|s| s.reason == EvictReason::Shutdown).collect();
    assert_eq!(survivor.len(), 1);
    assert_eq!(survivor[0].session, SessionId(8));
    assert_eq!(survivor[0].steps, rounds);

    // The quarantine checkpoint is the clean last-good state: restoring it
    // must equal a fresh pipeline that replayed only the successful steps.
    let template = template();
    let mut restored =
        template.restore(snap.checkpoint.as_ref().expect("clean capture")).unwrap();
    let mut reference = template.instantiate();
    for i in 0..3 {
        let (x, y) = obs(i);
        reference.process(&x, y);
    }
    for i in 0..200u64 {
        let (x, y) = obs(i.wrapping_mul(31).wrapping_add(5));
        assert_eq!(restored.process(&x, y), reference.process(&x, y), "diverged at step {i}");
    }
}

/// An injected worker crash loses exactly the in-flight request. The
/// supervisor restarts the worker with its session table and backlog
/// intact, so every other request — including later ones for the same
/// sessions — completes normally.
#[test]
fn worker_crash_restarts_with_sessions_and_backlog_intact() {
    let faults = Arc::new(ScriptedFaults::new().at(0, 4, FaultAction::CrashWorker));
    let server = StreamServer::with_options(
        template(),
        one_shard(),
        ServeOptions::default().with_fault_injector(faults),
    )
    .unwrap();
    let rounds = 10u64;
    let mut results = Vec::new();
    for i in 0..rounds {
        let (x, y) = obs(i);
        let batch =
            [Submit::new(SessionId(7), x.clone(), y), Submit::new(SessionId(8), x.clone(), y)];
        results.push(server.try_submit(&batch).unwrap().wait());
    }
    // Ordinal 4 = round 2, session 7: that one request failed, all else ok.
    for (round, pair) in results.iter().enumerate() {
        if round == 2 {
            assert_eq!(pair[0], Err(StepError::WorkerFailed { shard: 0 }));
        } else {
            assert!(pair[0].is_ok(), "round {round} session 7");
        }
        assert!(pair[1].is_ok(), "round {round} session 8");
    }
    let report = server.shutdown();
    assert_eq!(report.metrics[0].worker_restarts, 1);
    assert_eq!(report.metrics[0].sessions_poisoned, 0);
    assert_eq!(report.snapshots.len(), 2, "both sessions survived the crash");
    let steps: u64 = report.snapshots.iter().map(|s| s.steps).sum();
    assert_eq!(steps, 2 * rounds - 1, "exactly the crashed request is missing");

    // The surviving state is bit-identical to an undisturbed run over the
    // same successful observations.
    let template = template();
    for snap in &report.snapshots {
        let mut restored =
            template.restore(snap.checkpoint.as_ref().expect("clean capture")).unwrap();
        let mut reference = template.instantiate();
        for i in 0..rounds {
            if snap.session == SessionId(7) && i == 2 {
                continue; // the crashed request never processed
            }
            let (x, y) = obs(i);
            reference.process(&x, y);
        }
        for i in 0..100u64 {
            let (x, y) = obs(i.wrapping_mul(17).wrapping_add(3));
            assert_eq!(
                restored.process(&x, y),
                reference.process(&x, y),
                "{} diverged at step {i}",
                snap.session
            );
        }
    }
}

/// A stalled shard is observable without being fatal: `wait_timeout`
/// returns the handle at its deadline, the stall backs the queue up into
/// `Overloaded` for non-blocking submitters, and every request still
/// completes once the stall ends.
#[test]
fn stall_is_bounded_by_wait_timeout_and_surfaces_as_overload() {
    let faults = Arc::new(ScriptedFaults::new().at(0, 0, FaultAction::Stall(Duration::from_secs(1))));
    let server = StreamServer::with_options(
        template(),
        one_shard().with_queue_capacity(2),
        ServeOptions::default().with_fault_injector(faults),
    )
    .unwrap();
    let (x, y) = obs(0);
    // First submit hits the scripted stall while being processed.
    let stalled = server.try_submit(&[Submit::new(SessionId(1), x.clone(), y)]).unwrap();
    let stalled = stalled
        .wait_timeout(Duration::from_millis(100))
        .expect_err("worker is mid-stall; the deadline must fire first");
    // The worker is asleep, so the queue (capacity 2) backs up...
    let q1 = server.try_submit(&[Submit::new(SessionId(2), x.clone(), y)]).unwrap();
    let q2 = server.try_submit(&[Submit::new(SessionId(3), x.clone(), y)]).unwrap();
    // ...and overload becomes visible to non-blocking submitters.
    assert_eq!(
        server.try_submit(&[Submit::new(SessionId(4), x.clone(), y)]).map(|_| ()),
        Err(ficsum_serve::ServeError::Overloaded { shard: 0 })
    );
    // A deadline submitter simply waits out the stall.
    let q3 = server
        .submit_with_deadline(&[Submit::new(SessionId(4), x.clone(), y)], Duration::from_secs(30))
        .expect("space frees once the stall ends");
    // Everything completes once the worker wakes.
    for reply in [q1, q2, q3] {
        assert!(reply.wait().into_iter().all(|r| r.is_ok()));
    }
    assert!(stalled.wait_timeout(Duration::from_secs(30)).expect("stall over")[0].is_ok());
    let report = server.shutdown();
    assert_eq!(report.metrics[0].processed, 4);
    assert_eq!(report.metrics[0].worker_restarts, 0);
}

/// Seeded chaos is replayable: two servers driven by the same seed over the
/// same submission sequence produce identical per-request results and
/// identical final session state.
#[test]
fn seeded_faults_replay_identically() {
    let run = || {
        let faults = Arc::new(SeededFaults::new(42, 9, 0));
        let server = StreamServer::with_options(
            template(),
            one_shard(),
            ServeOptions::default().with_fault_injector(faults),
        )
        .unwrap();
        let mut pattern = Vec::new();
        for i in 0..40u64 {
            let (x, y) = obs(i);
            let batch: Vec<Submit> =
                (0..4).map(|s| Submit::new(SessionId(s), x.clone(), y)).collect();
            // Waiting each round keeps the worker's batch boundaries — and
            // therefore the fault ordinals — identical across runs.
            let results = server.try_submit(&batch).unwrap().wait();
            pattern.extend(results.into_iter().map(|r| r.is_ok()));
        }
        let mut report = server.shutdown();
        report.snapshots.sort_by_key(|s| s.session);
        let state: Vec<(u64, u64)> =
            report.snapshots.iter().map(|s| (s.session.0, s.steps)).collect();
        (pattern, state)
    };
    let (pattern_a, state_a) = run();
    let (pattern_b, state_b) = run();
    assert!(pattern_a.iter().any(|ok| !ok), "seed 42 at 1/9 must fire within 160 requests");
    assert_eq!(pattern_a, pattern_b, "per-request results replay");
    assert_eq!(state_a, state_b, "final session state replays");
}
