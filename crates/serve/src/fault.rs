//! Deterministic fail-point injection (feature `fault-injection`).
//!
//! Fault tolerance that is only exercised by real faults is untested fault
//! tolerance. This module gives tests and the `serve_faults` harness a
//! deterministic way to make specific requests panic, crash a whole
//! worker, or stall a shard — at chosen, reproducible points.
//!
//! The entire module (and the single hook the shard loop calls) only
//! exists under the `fault-injection` cargo feature: release builds carry
//! zero fault machinery on the hot path. Decisions must be deterministic —
//! scripted ([`ScriptedFaults`]) or derived from a seed by a stateless
//! hash ([`SeededFaults`]) — so a failing fault test replays exactly.
//!
//! Injected session panics fire *after* the session is touched but
//! *before* its pipeline processes the request, so the quarantine snapshot
//! captures clean last-good state — which is what lets the harness pin
//! that a quarantined session restores bit-identically.

use std::time::Duration;

/// Where in the request lifecycle a fault decision is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FailPoint {
    /// About to process one request. `step` is the shard-local request
    /// ordinal (0-based, monotone per shard across restarts).
    BeforeProcess {
        /// Shard handling the request.
        shard: usize,
        /// Session the request addresses.
        session: u64,
        /// Shard-local request ordinal.
        step: u64,
    },
}

/// What the injector wants to happen at a fail point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultAction {
    /// No fault; process normally.
    Proceed,
    /// Panic inside the per-request guard: the session is quarantined, the
    /// slot completes with [`crate::StepError::SessionPoisoned`], and the
    /// shard keeps serving its other sessions.
    PanicSession,
    /// Panic outside the per-request guard: the worker thread dies and the
    /// supervisor restarts it from the surviving session table.
    CrashWorker,
    /// Sleep before processing, simulating a stalled shard (slow I/O, GC
    /// pause, noisy neighbour). Requests queue up behind the stall; clients
    /// observe it through `wait_timeout` and `Overloaded`.
    Stall(Duration),
}

/// Decides, deterministically, whether a fault fires at a fail point.
///
/// Implementations must be `Send + Sync` (one injector is shared by every
/// shard) and pure enough to replay: same construction, same decisions.
pub trait FaultInjector: Send + Sync {
    /// The action to take at `point`.
    fn decide(&self, point: FailPoint) -> FaultAction;
}

/// Scripted faults: an explicit `(shard, step) → action` table.
///
/// `step` is the shard-local request ordinal, which is deterministic for a
/// fixed submission sequence — the harness scripts "the 8th request shard 0
/// processes panics its session" and gets exactly that, every run.
#[derive(Debug, Default)]
pub struct ScriptedFaults {
    script: Vec<(usize, u64, FaultAction)>,
}

impl ScriptedFaults {
    /// An empty script (every decision is [`FaultAction::Proceed`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `action` at the given shard-local request ordinal.
    #[must_use]
    pub fn at(mut self, shard: usize, step: u64, action: FaultAction) -> Self {
        self.script.push((shard, step, action));
        self
    }
}

impl FaultInjector for ScriptedFaults {
    fn decide(&self, point: FailPoint) -> FaultAction {
        let FailPoint::BeforeProcess { shard, step, .. } = point;
        self.script
            .iter()
            .find(|(s, t, _)| *s == shard && *t == step)
            .map(|(_, _, action)| *action)
            .unwrap_or(FaultAction::Proceed)
    }
}

/// Seeded pseudo-random faults: each fail point hashes `(seed, shard,
/// step)` through SplitMix64 — stateless, so decisions depend only on the
/// construction parameters, never on thread timing or call order.
#[derive(Debug, Clone, Copy)]
pub struct SeededFaults {
    seed: u64,
    /// Panic a session roughly once per this many requests (0 = never).
    panic_every: u64,
    /// Crash a worker roughly once per this many requests (0 = never).
    crash_every: u64,
}

impl SeededFaults {
    /// Faults driven by `seed`: sessions panic about once per
    /// `panic_every` requests and workers crash about once per
    /// `crash_every` requests (0 disables either).
    pub fn new(seed: u64, panic_every: u64, crash_every: u64) -> Self {
        Self { seed, panic_every, crash_every }
    }
}

impl FaultInjector for SeededFaults {
    fn decide(&self, point: FailPoint) -> FaultAction {
        let FailPoint::BeforeProcess { shard, step, .. } = point;
        let h = splitmix64(self.seed ^ (shard as u64).rotate_left(32) ^ step);
        if self.crash_every > 0 && h % self.crash_every == 0 {
            return FaultAction::CrashWorker;
        }
        // Decorrelate from the crash draw with a second mix.
        let h2 = splitmix64(h);
        if self.panic_every > 0 && h2 % self.panic_every == 0 {
            return FaultAction::PanicSession;
        }
        FaultAction::Proceed
    }
}

/// SplitMix64 finalizer (same mix the server uses for shard hashing).
fn splitmix64(value: u64) -> u64 {
    let mut x = value.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_faults_fire_exactly_where_scripted() {
        let faults = ScriptedFaults::new()
            .at(0, 3, FaultAction::PanicSession)
            .at(1, 0, FaultAction::CrashWorker);
        let at = |shard, step| faults.decide(FailPoint::BeforeProcess { shard, session: 9, step });
        assert_eq!(at(0, 3), FaultAction::PanicSession);
        assert_eq!(at(0, 2), FaultAction::Proceed);
        assert_eq!(at(1, 0), FaultAction::CrashWorker);
        assert_eq!(at(2, 3), FaultAction::Proceed);
    }

    #[test]
    fn seeded_faults_are_deterministic_and_seed_sensitive() {
        let a = SeededFaults::new(42, 7, 13);
        let b = SeededFaults::new(42, 7, 13);
        let c = SeededFaults::new(43, 7, 13);
        let decisions = |f: &SeededFaults| {
            (0..200u64)
                .map(|step| f.decide(FailPoint::BeforeProcess { shard: 0, session: 0, step }))
                .collect::<Vec<_>>()
        };
        assert_eq!(decisions(&a), decisions(&b), "same seed, same faults");
        assert_ne!(decisions(&a), decisions(&c), "different seed, different faults");
        assert!(
            decisions(&a).iter().any(|d| *d != FaultAction::Proceed),
            "rates of 1/7 and 1/13 must fire within 200 draws"
        );
    }
}
