//! Session identity, lifecycle, and eviction snapshots.
//!
//! Each shard worker owns a [`SessionTable`]: session id → live [`Ficsum`]
//! pipeline. Sessions are created lazily from the server's shared
//! [`ficsum_core::SessionTemplate`] on first sight and evicted
//! least-recently-used when the shard's capacity cap is reached. Eviction
//! is destructive for the pipeline (classifiers are not serialisable), so
//! the table captures a [`SessionSnapshot`] of the learned state's summary
//! — step count, counters, repository contents — before dropping it.

use std::collections::HashMap;

use ficsum_core::{ConceptId, Ficsum, FicsumStats, SessionTemplate, StepOutcome};

/// Identifies one logical stream (one pipeline) within a server.
///
/// Ids are chosen by the caller; the server maps them to shards with a
/// fixed hash, so a session's requests always reach the same worker — the
/// ordering and determinism guarantee hangs off that stickiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// Why a snapshot was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// The shard hit its session cap and this was the least recently used.
    Capacity,
    /// The server shut down with the session still live.
    Shutdown,
}

/// Summary of a session's learned state, captured when its pipeline is
/// dropped.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SessionSnapshot {
    /// The evicted session.
    pub session: SessionId,
    /// Observations this session processed.
    pub steps: u64,
    /// The pipeline's lifetime counters.
    pub stats: FicsumStats,
    /// Concept active at eviction time.
    pub active_concept: ConceptId,
    /// Ids stored in the concept repository, ascending.
    pub stored_concepts: Vec<ConceptId>,
    /// What triggered the snapshot.
    pub reason: EvictReason,
}

struct Entry {
    pipeline: Ficsum,
    steps: u64,
    last_used: u64,
}

fn snapshot(session: SessionId, entry: &Entry, reason: EvictReason) -> SessionSnapshot {
    let mut stored: Vec<ConceptId> = entry.pipeline.repository().iter().map(|e| e.id).collect();
    stored.sort_unstable();
    SessionSnapshot {
        session,
        steps: entry.steps,
        stats: entry.pipeline.stats(),
        active_concept: entry.pipeline.active_concept(),
        stored_concepts: stored,
        reason,
    }
}

/// The per-shard map of live sessions with LRU eviction.
pub(crate) struct SessionTable {
    sessions: HashMap<SessionId, Entry>,
    capacity: usize,
    tick: u64,
}

/// What touching a session did to the table.
pub(crate) struct Touched {
    pub(crate) created: bool,
    pub(crate) evicted: Option<SessionSnapshot>,
}

impl SessionTable {
    pub(crate) fn new(capacity: usize) -> Self {
        Self { sessions: HashMap::new(), capacity: capacity.max(1), tick: 0 }
    }

    pub(crate) fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Ensures `session` is live, creating it from `template` (and evicting
    /// the least-recently-used session first if the shard is at capacity).
    /// The LRU search is a linear scan — caps are small (hundreds) and
    /// eviction is rare relative to processing, so an ordered index isn't
    /// worth its bookkeeping on the hot path.
    pub(crate) fn touch(&mut self, session: SessionId, template: &SessionTemplate) -> Touched {
        self.tick += 1;
        if let Some(entry) = self.sessions.get_mut(&session) {
            entry.last_used = self.tick;
            return Touched { created: false, evicted: None };
        }
        let evicted = if self.sessions.len() >= self.capacity {
            let lru = self
                .sessions
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(id, _)| *id)
                .expect("table at capacity is non-empty");
            let entry = self.sessions.remove(&lru).expect("lru key came from the map");
            Some(snapshot(lru, &entry, EvictReason::Capacity))
        } else {
            None
        };
        self.sessions.insert(
            session,
            Entry { pipeline: template.instantiate(), steps: 0, last_used: self.tick },
        );
        Touched { created: true, evicted }
    }

    /// Feeds one observation to a live session. Callers must `touch` first.
    pub(crate) fn process(
        &mut self,
        session: SessionId,
        features: &[f64],
        label: usize,
    ) -> StepOutcome {
        let entry = self.sessions.get_mut(&session).expect("session touched before process");
        entry.steps += 1;
        entry.pipeline.process(features, label)
    }

    /// Snapshots and drops every live session (shutdown path), ascending by
    /// session id so reports are stable.
    pub(crate) fn drain_all(&mut self) -> Vec<SessionSnapshot> {
        let mut out: Vec<SessionSnapshot> = self
            .sessions
            .drain()
            .map(|(id, entry)| snapshot(id, &entry, EvictReason::Shutdown))
            .collect();
        out.sort_by_key(|snap| snap.session);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_core::{FicsumConfig, Variant};

    fn template() -> SessionTemplate {
        SessionTemplate::new(2, 2, FicsumConfig::default(), Variant::ErrorRate).unwrap()
    }

    #[test]
    fn lru_eviction_snapshots_the_coldest_session() {
        let template = template();
        let mut table = SessionTable::new(2);
        assert!(table.touch(SessionId(1), &template).created);
        table.process(SessionId(1), &[0.1, 0.2], 0);
        assert!(table.touch(SessionId(2), &template).created);
        table.process(SessionId(2), &[0.1, 0.2], 1);
        // Re-touch 1 so 2 becomes the LRU.
        assert!(!table.touch(SessionId(1), &template).created);
        let touched = table.touch(SessionId(3), &template);
        assert!(touched.created);
        let snap = touched.evicted.expect("capacity 2 must evict");
        assert_eq!(snap.session, SessionId(2));
        assert_eq!(snap.steps, 1);
        assert_eq!(snap.reason, EvictReason::Capacity);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn drain_reports_all_sessions_in_id_order() {
        let template = template();
        let mut table = SessionTable::new(8);
        for id in [5u64, 1, 3] {
            table.touch(SessionId(id), &template);
            table.process(SessionId(id), &[0.0, 1.0], 0);
        }
        let snaps = table.drain_all();
        let ids: Vec<u64> = snaps.iter().map(|s| s.session.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert!(snaps.iter().all(|s| s.reason == EvictReason::Shutdown && s.steps == 1));
        assert_eq!(table.len(), 0);
    }
}
