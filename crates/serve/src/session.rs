//! Session identity, lifecycle, eviction snapshots and quarantine.
//!
//! Each shard worker owns a [`SessionTable`]: session id → live [`Ficsum`]
//! pipeline. Sessions are created lazily from the server's shared
//! [`ficsum_core::SessionTemplate`] on first sight and evicted
//! least-recently-used when the shard's capacity cap is reached.
//!
//! Eviction drops the live pipeline, but it is no longer lossy: every
//! snapshot carries a full [`SessionCheckpoint`] — repository fingerprints,
//! classifiers, weights, detector, frame ring — from which
//! [`ficsum_core::SessionTemplate::restore`] rehydrates a bit-identical
//! pipeline, on this server or a fresh one.
//!
//! A session whose pipeline panics is **quarantined**: its entry is
//! removed (with a best-effort snapshot of its state), and further
//! requests for it complete with [`crate::StepError::SessionPoisoned`]
//! instead of silently re-creating a blank session — recreating would make
//! a fault look like a brand-new stream and corrupt the caller's picture
//! of what the session has learned.

use std::collections::{HashMap, HashSet};

use ficsum_core::{ConceptId, Ficsum, FicsumStats, SessionCheckpoint, SessionTemplate, StepOutcome};

/// Identifies one logical stream (one pipeline) within a server.
///
/// Ids are chosen by the caller; the server maps them to shards with a
/// fixed hash, so a session's requests always reach the same worker — the
/// ordering and determinism guarantee hangs off that stickiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// Why a snapshot was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvictReason {
    /// The shard hit its session cap and this was the least recently used.
    Capacity,
    /// The server shut down with the session still live.
    Shutdown,
    /// The session's pipeline panicked and was quarantined. The snapshot
    /// holds the state captured *after* the panic was caught — clean when
    /// the panic fired before the pipeline mutated (as injected faults do),
    /// otherwise the best available capture (`checkpoint` is `None` if even
    /// capturing panicked).
    Poisoned,
}

/// Capture of a session's learned state, taken when its live pipeline is
/// dropped (eviction, shutdown or quarantine).
///
/// The summary fields are cheap to inspect; `checkpoint` is the full state
/// and is what [`ficsum_core::SessionTemplate::restore`] (or
/// [`crate::ServeOptions::with_restore`]) rehydrates from.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SessionSnapshot {
    /// The evicted session.
    pub session: SessionId,
    /// Observations this session processed (cumulative across restores).
    pub steps: u64,
    /// The pipeline's lifetime counters.
    pub stats: FicsumStats,
    /// Concept active at eviction time.
    pub active_concept: ConceptId,
    /// Ids stored in the concept repository, ascending.
    pub stored_concepts: Vec<ConceptId>,
    /// What triggered the snapshot.
    pub reason: EvictReason,
    /// Full state capture for rehydration. Always present for capacity and
    /// shutdown snapshots; `None` only when a quarantined pipeline was too
    /// broken to capture (the capture itself panicked).
    pub checkpoint: Option<SessionCheckpoint>,
}

struct Entry {
    pipeline: Ficsum,
    steps: u64,
    last_used: u64,
}

fn snapshot(session: SessionId, entry: &Entry, reason: EvictReason) -> SessionSnapshot {
    snapshot_with(session, entry, reason, Some(entry.pipeline.checkpoint()))
}

fn snapshot_with(
    session: SessionId,
    entry: &Entry,
    reason: EvictReason,
    checkpoint: Option<SessionCheckpoint>,
) -> SessionSnapshot {
    let mut stored: Vec<ConceptId> = entry.pipeline.repository().iter().map(|e| e.id).collect();
    stored.sort_unstable();
    SessionSnapshot {
        session,
        steps: entry.steps,
        stats: entry.pipeline.stats(),
        active_concept: entry.pipeline.active_concept(),
        stored_concepts: stored,
        reason,
        checkpoint,
    }
}

/// The per-shard map of live sessions with LRU eviction and a quarantine
/// set for poisoned sessions.
pub(crate) struct SessionTable {
    sessions: HashMap<SessionId, Entry>,
    quarantined: HashSet<SessionId>,
    capacity: usize,
    tick: u64,
}

/// What touching a session did to the table.
pub(crate) struct Touched {
    pub(crate) created: bool,
    pub(crate) evicted: Option<SessionSnapshot>,
}

impl SessionTable {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            sessions: HashMap::new(),
            quarantined: HashSet::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether `session` has been quarantined after a pipeline panic.
    pub(crate) fn is_quarantined(&self, session: SessionId) -> bool {
        self.quarantined.contains(&session)
    }

    /// Ensures `session` is live, creating it from `template` (and evicting
    /// the least-recently-used session first if the shard is at capacity).
    /// The LRU search is a linear scan — caps are small (hundreds) and
    /// eviction is rare relative to processing, so an ordered index isn't
    /// worth its bookkeeping on the hot path.
    pub(crate) fn touch(&mut self, session: SessionId, template: &SessionTemplate) -> Touched {
        self.tick += 1;
        if let Some(entry) = self.sessions.get_mut(&session) {
            entry.last_used = self.tick;
            return Touched { created: false, evicted: None };
        }
        let evicted = self.evict_lru_if_full();
        self.sessions.insert(
            session,
            Entry { pipeline: template.instantiate(), steps: 0, last_used: self.tick },
        );
        Touched { created: true, evicted }
    }

    /// Admits a session rehydrated from a checkpoint (server-startup
    /// restore). The restored pipeline resumes from the checkpoint's step
    /// count, so later snapshots keep counting cumulatively. Evicts LRU
    /// exactly like creation does; restoring also clears any quarantine
    /// mark (the restored state predates the poisoning).
    pub(crate) fn restore(
        &mut self,
        session: SessionId,
        steps: u64,
        pipeline: Ficsum,
    ) -> Option<SessionSnapshot> {
        self.tick += 1;
        self.quarantined.remove(&session);
        let evicted = self.evict_lru_if_full();
        self.sessions.insert(session, Entry { pipeline, steps, last_used: self.tick });
        evicted
    }

    fn evict_lru_if_full(&mut self) -> Option<SessionSnapshot> {
        if self.sessions.len() < self.capacity {
            return None;
        }
        let lru = self
            .sessions
            .iter()
            .min_by_key(|(_, entry)| entry.last_used)
            .map(|(id, _)| *id)
            .expect("table at capacity is non-empty");
        let entry = self.sessions.remove(&lru).expect("lru key came from the map");
        Some(snapshot(lru, &entry, EvictReason::Capacity))
    }

    /// Feeds one observation to a live session. Callers must `touch` first.
    pub(crate) fn process(
        &mut self,
        session: SessionId,
        features: &[f64],
        label: usize,
    ) -> StepOutcome {
        let entry = self.sessions.get_mut(&session).expect("session touched before process");
        // Count the step only once it completes: if the pipeline panics
        // mid-step, the quarantine snapshot must report the number of
        // *finished* observations, matching its checkpoint.
        let outcome = entry.pipeline.process(features, label);
        entry.steps += 1;
        outcome
    }

    /// Removes `session` after its pipeline panicked and marks it
    /// quarantined; further [`SessionTable::is_quarantined`] checks return
    /// true until the id is restored. Returns a [`EvictReason::Poisoned`]
    /// snapshot of the captured state, or `None` if the session was not
    /// live (poisoned before its entry existed).
    ///
    /// The checkpoint capture runs under its own panic guard: a pipeline
    /// broken enough that even *reading* its state panics still quarantines
    /// cleanly, with `checkpoint: None`.
    pub(crate) fn quarantine(&mut self, session: SessionId) -> Option<SessionSnapshot> {
        self.quarantined.insert(session);
        let entry = self.sessions.remove(&session)?;
        let snap = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            snapshot(session, &entry, EvictReason::Poisoned)
        }))
        .unwrap_or_else(|_| snapshot_with(session, &entry, EvictReason::Poisoned, None));
        // Dropping a half-broken pipeline may itself panic; never let that
        // take the worker down with it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(entry)));
        Some(snap)
    }

    /// Snapshots and drops every live session (shutdown path), ascending by
    /// session id so reports are stable.
    pub(crate) fn drain_all(&mut self) -> Vec<SessionSnapshot> {
        let mut out: Vec<SessionSnapshot> = self
            .sessions
            .drain()
            .map(|(id, entry)| snapshot(id, &entry, EvictReason::Shutdown))
            .collect();
        out.sort_by_key(|snap| snap.session);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_core::{FicsumConfig, Variant};

    fn template() -> SessionTemplate {
        SessionTemplate::new(2, 2, FicsumConfig::default(), Variant::ErrorRate).unwrap()
    }

    #[test]
    fn lru_eviction_snapshots_the_coldest_session() {
        let template = template();
        let mut table = SessionTable::new(2);
        assert!(table.touch(SessionId(1), &template).created);
        table.process(SessionId(1), &[0.1, 0.2], 0);
        assert!(table.touch(SessionId(2), &template).created);
        table.process(SessionId(2), &[0.1, 0.2], 1);
        // Re-touch 1 so 2 becomes the LRU.
        assert!(!table.touch(SessionId(1), &template).created);
        let touched = table.touch(SessionId(3), &template);
        assert!(touched.created);
        let snap = touched.evicted.expect("capacity 2 must evict");
        assert_eq!(snap.session, SessionId(2));
        assert_eq!(snap.steps, 1);
        assert_eq!(snap.reason, EvictReason::Capacity);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn drain_reports_all_sessions_in_id_order() {
        let template = template();
        let mut table = SessionTable::new(8);
        for id in [5u64, 1, 3] {
            table.touch(SessionId(id), &template);
            table.process(SessionId(id), &[0.0, 1.0], 0);
        }
        let snaps = table.drain_all();
        let ids: Vec<u64> = snaps.iter().map(|s| s.session.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert!(snaps.iter().all(|s| s.reason == EvictReason::Shutdown && s.steps == 1));
        assert_eq!(table.len(), 0);
    }

    #[test]
    fn snapshots_carry_restorable_checkpoints() {
        let template = template();
        let mut table = SessionTable::new(4);
        table.touch(SessionId(7), &template);
        for i in 0..40 {
            table.process(SessionId(7), &[0.1 * (i % 9) as f64, 0.5], i % 2);
        }
        let snaps = table.drain_all();
        let checkpoint = snaps[0].checkpoint.as_ref().expect("shutdown snapshot has state");
        assert_eq!(checkpoint.steps(), 40);
        let mut restored = template.restore(checkpoint).expect("same template restores");
        let mut reference = template.instantiate();
        for i in 0..40 {
            reference.process(&[0.1 * (i % 9) as f64, 0.5], i % 2);
        }
        for i in 0..60 {
            let x = [0.07 * (i % 11) as f64, 0.3];
            let y = (i % 3 == 0) as usize;
            assert_eq!(restored.process(&x, y), reference.process(&x, y));
        }
    }

    #[test]
    fn quarantine_removes_and_marks_the_session() {
        let template = template();
        let mut table = SessionTable::new(4);
        table.touch(SessionId(1), &template);
        table.process(SessionId(1), &[0.1, 0.2], 0);
        table.touch(SessionId(2), &template);
        assert!(!table.is_quarantined(SessionId(1)));
        let snap = table.quarantine(SessionId(1)).expect("live session yields a snapshot");
        assert_eq!(snap.reason, EvictReason::Poisoned);
        assert_eq!(snap.steps, 1);
        assert!(snap.checkpoint.is_some(), "healthy state is captured");
        assert!(table.is_quarantined(SessionId(1)));
        assert_eq!(table.len(), 1, "sibling session survives");
        // Quarantining an id that never went live still marks it.
        assert!(table.quarantine(SessionId(99)).is_none());
        assert!(table.is_quarantined(SessionId(99)));
        // Restoring clears the mark.
        let pipeline = template.instantiate();
        table.restore(SessionId(1), 0, pipeline);
        assert!(!table.is_quarantined(SessionId(1)));
    }
}
