//! Poison-recovering lock helpers.
//!
//! A `std::sync::Mutex` is *poisoned* when a thread panics while holding
//! it. Before the supervision layer existed this crate treated poison as
//! unrecoverable (`lock().expect(..)`), which let one panic cascade: the
//! panicking worker poisons a shared lock, then every client touching that
//! lock — `metrics()`, `drain_snapshots()`, even `BatchReply::wait` —
//! panics too.
//!
//! Recovery is sound here because every critical section in this crate is
//! *panic-consistent*: the protected state's invariants hold at every point
//! a panic can escape (pushes happen after capacity checks, counters are
//! plain increments, reply slots are filled before `pending` is
//! decremented). Poison therefore carries no information beyond "some
//! thread panicked" — which worker supervision already observes and
//! handles — so these helpers strip the flag and hand back the guard.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks, recovering from poison.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait`, recovering from poison.
pub(crate) fn wait_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait_timeout`, recovering from poison.
pub(crate) fn wait_timeout_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    condvar.wait_timeout(guard, timeout).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recover_survives_a_poisoning_panic() {
        let mutex = Arc::new(Mutex::new(7usize));
        let poisoner = Arc::clone(&mutex);
        std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join()
        .unwrap_err();
        assert!(mutex.lock().is_err(), "lock must actually be poisoned");
        assert_eq!(*lock_recover(&mutex), 7);
    }
}
