//! The shard worker loop.
//!
//! One thread per shard, owning that shard's sessions outright. The worker
//! is the only consumer of its queue, so requests for a given session are
//! processed in exactly their submission order — this is what lets the
//! parity suite pin served outcomes bit-exact against a single-threaded
//! reference run. Pipelines are built *on this thread* from the shared
//! `SessionTemplate`; nothing non-`Send` ever crosses the channel.

use std::sync::{Arc, Mutex};

use ficsum_core::SessionTemplate;
use ficsum_obs::{LatencyHistogram, Recorder, StreamEvent};

use crate::queue::ShardQueue;
use crate::session::{SessionSnapshot, SessionTable};

/// Counters a worker maintains about itself; the server merges these with
/// queue-side gauges into the public `ShardMetrics`.
pub(crate) struct ShardStats {
    pub(crate) processed: u64,
    pub(crate) batches: u64,
    pub(crate) sessions_created: u64,
    pub(crate) sessions_evicted: u64,
    pub(crate) live_sessions: usize,
    /// Submit→reply latency per request, log-bucketed.
    pub(crate) latency: LatencyHistogram,
}

impl ShardStats {
    pub(crate) fn new() -> Self {
        Self {
            processed: 0,
            batches: 0,
            sessions_created: 0,
            sessions_evicted: 0,
            live_sessions: 0,
            latency: LatencyHistogram::new(),
        }
    }
}

pub(crate) struct ShardContext {
    pub(crate) shard: usize,
    pub(crate) queue: Arc<ShardQueue>,
    pub(crate) template: SessionTemplate,
    pub(crate) max_sessions: usize,
    pub(crate) stats: Arc<Mutex<ShardStats>>,
    pub(crate) snapshots: Arc<Mutex<Vec<SessionSnapshot>>>,
}

/// Runs a shard to completion: drains the queue until it is closed *and*
/// empty, then snapshots every surviving session. `recorder` is built on
/// this thread (recorders need not be `Send`); pass `None` to serve dark.
pub(crate) fn run(ctx: ShardContext, mut recorder: Option<Box<dyn Recorder>>) {
    let shard = ctx.shard as u64;
    let mut table = SessionTable::new(ctx.max_sessions);
    let depth_gauge = format!("serve.shard{}.queue_depth", ctx.shard);
    let sessions_gauge = format!("serve.shard{}.live_sessions", ctx.shard);
    // Event index: requests this shard has processed, so each shard's event
    // stream is internally ordered just like a pipeline's observation index.
    let mut t: u64 = 0;
    while let Some(requests) = ctx.queue.pop_all() {
        let len = requests.len() as u64;
        let mut created = 0u64;
        let mut evicted = 0u64;
        let mut latencies: Vec<u64> = Vec::with_capacity(requests.len());
        for request in requests {
            let touched = table.touch(request.session, &ctx.template);
            if let Some(snapshot) = touched.evicted {
                evicted += 1;
                if let Some(rec) = recorder.as_deref_mut() {
                    rec.event(
                        t,
                        StreamEvent::SessionEvicted { shard, session: snapshot.session.0 },
                    );
                }
                ctx.snapshots.lock().expect("snapshot store poisoned").push(snapshot);
            }
            if touched.created {
                created += 1;
                if let Some(rec) = recorder.as_deref_mut() {
                    rec.event(t, StreamEvent::SessionCreated { shard, session: request.session.0 });
                }
            }
            let outcome = table.process(request.session, &request.features, request.label);
            latencies.push(request.submitted_at.elapsed().as_nanos() as u64);
            request.batch.fill(request.slot, outcome);
            t += 1;
        }
        if let Some(rec) = recorder.as_deref_mut() {
            rec.event(t, StreamEvent::BatchProcessed { shard, len });
            rec.counter("serve.requests", len);
            if created > 0 {
                rec.counter("serve.sessions_created", created);
            }
            if evicted > 0 {
                rec.counter("serve.sessions_evicted", evicted);
            }
            if rec.enabled() {
                rec.gauge(&depth_gauge, ctx.queue.depth() as f64);
                rec.gauge(&sessions_gauge, table.len() as f64);
            }
        }
        let mut stats = ctx.stats.lock().expect("shard stats poisoned");
        stats.processed += len;
        stats.batches += 1;
        stats.sessions_created += created;
        stats.sessions_evicted += evicted;
        stats.live_sessions = table.len();
        for nanos in latencies {
            stats.latency.record(nanos);
        }
    }
    // Shutdown: every queue item has been replied to; capture what the
    // surviving sessions learned before their pipelines are dropped.
    let survivors = table.drain_all();
    if let Some(rec) = recorder.as_deref_mut() {
        for snapshot in &survivors {
            rec.event(t, StreamEvent::SessionEvicted { shard, session: snapshot.session.0 });
        }
    }
    let mut stats = ctx.stats.lock().expect("shard stats poisoned");
    stats.live_sessions = 0;
    drop(stats);
    ctx.snapshots.lock().expect("snapshot store poisoned").extend(survivors);
}
