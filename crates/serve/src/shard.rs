//! The shard worker loop, wrapped in a supervisor.
//!
//! One thread per shard, owning that shard's sessions outright. The worker
//! is the only consumer of its queue, so requests for a given session are
//! processed in exactly their submission order — this is what lets the
//! parity suite pin served outcomes bit-exact against a single-threaded
//! reference run. Pipelines are built *on this thread* from the shared
//! `SessionTemplate`; nothing non-`Send` ever crosses the channel.
//!
//! # Supervision
//!
//! Faults are contained at two nested levels, and at both of them every
//! affected reply slot is *completed with an error* rather than abandoned
//! — a client blocked in [`crate::BatchReply::wait`] can always return:
//!
//! 1. **Per request** — `touch`/`process` run under `catch_unwind`. A
//!    panicking pipeline quarantines only its own session
//!    ([`crate::EvictReason::Poisoned`] snapshot, further requests answered
//!    with [`StepError::SessionPoisoned`]); sibling sessions on the shard
//!    keep serving.
//! 2. **Per worker** — the serve loop itself runs under the supervisor's
//!    `catch_unwind`. If a panic escapes the per-request guard (recorder
//!    callbacks, injected worker crashes), the supervisor — which owns the
//!    session table and the backlog *outside* the guard — restarts the
//!    loop with all sessions and unprocessed requests intact, emitting a
//!    `worker_restarted` event. Restarts that make no progress are capped:
//!    after [`MAX_FRUITLESS_RESTARTS`] consecutive zero-progress crashes
//!    the shard fails permanently — its queue closes, every unprocessed
//!    request completes with [`StepError::WorkerFailed`], and surviving
//!    sessions are snapshotted.
//!
//! The ordering rule that makes restarts hang-free: a request's reply slot
//! is filled **before** any fallible post-processing (recorder events,
//! batch bookkeeping) runs for it, and a request is popped from the
//! backlog only in the same step that fills it. A crash therefore never
//! strands a popped-but-unfilled request.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use ficsum_core::{SessionCheckpoint, SessionTemplate};
use ficsum_obs::{LatencyHistogram, Recorder, StreamEvent};

use crate::error::StepError;
use crate::queue::{Request, ShardQueue};
use crate::server::RecorderFactory;
use crate::session::{SessionId, SessionSnapshot, SessionTable};
use crate::sync::lock_recover;

#[cfg(feature = "fault-injection")]
use crate::fault::{FailPoint, FaultAction, FaultInjector};

/// Consecutive worker restarts without a single completed request before
/// the shard gives up. Progress resets the counter, so a long-lived shard
/// can absorb any number of *spaced* crashes; only a tight crash loop
/// (e.g. a recorder that panics on every event) trips the cap.
pub(crate) const MAX_FRUITLESS_RESTARTS: u32 = 3;

/// Counters a worker maintains about itself; the server merges these with
/// queue-side gauges into the public `ShardMetrics`.
pub(crate) struct ShardStats {
    pub(crate) processed: u64,
    pub(crate) batches: u64,
    pub(crate) sessions_created: u64,
    pub(crate) sessions_evicted: u64,
    pub(crate) sessions_poisoned: u64,
    pub(crate) sessions_restored: u64,
    pub(crate) worker_restarts: u64,
    pub(crate) live_sessions: usize,
    /// Submit→reply latency per request, log-bucketed.
    pub(crate) latency: LatencyHistogram,
}

impl ShardStats {
    pub(crate) fn new() -> Self {
        Self {
            processed: 0,
            batches: 0,
            sessions_created: 0,
            sessions_evicted: 0,
            sessions_poisoned: 0,
            sessions_restored: 0,
            worker_restarts: 0,
            live_sessions: 0,
            latency: LatencyHistogram::new(),
        }
    }
}

pub(crate) struct ShardContext {
    pub(crate) shard: usize,
    pub(crate) queue: Arc<ShardQueue>,
    pub(crate) template: SessionTemplate,
    pub(crate) max_sessions: usize,
    pub(crate) stats: Arc<Mutex<ShardStats>>,
    pub(crate) snapshots: Arc<Mutex<Vec<SessionSnapshot>>>,
    /// Checkpointed sessions to rehydrate before serving (validated by the
    /// server against the template at construction).
    pub(crate) restore: Vec<(SessionId, u64, SessionCheckpoint)>,
    #[cfg(feature = "fault-injection")]
    pub(crate) injector: Option<Arc<dyn FaultInjector>>,
}

/// Runs a shard to completion under supervision: restores checkpointed
/// sessions, then drains the queue until it is closed *and* empty,
/// restarting the serve loop after escaped panics. `factory` builds the
/// recorder on this thread, once per incarnation (recorders need not be
/// `Send`, and the previous incarnation's recorder died with it); pass
/// `None` to serve dark.
pub(crate) fn run(mut ctx: ShardContext, factory: Option<RecorderFactory>) {
    let shard = ctx.shard as u64;
    let mut table = SessionTable::new(ctx.max_sessions);
    // Backlog of accepted-but-unprocessed requests. Owned here — outside
    // the supervised loop — so a crash mid-batch hands the unprocessed
    // remainder to the next incarnation instead of dropping it.
    let mut backlog: VecDeque<Request> = VecDeque::new();
    // Event index: requests this shard has completed, so each shard's event
    // stream is internally ordered just like a pipeline's observation
    // index. Survives restarts.
    let mut t: u64 = 0;

    // Rehydrate checkpointed sessions before serving. Checkpoints were
    // validated against the template at server construction, so restore
    // cannot fail here; the guard is belt-and-braces.
    let restore = std::mem::take(&mut ctx.restore);
    let mut restored: Vec<(u64, u64)> = Vec::new();
    for (session, steps, checkpoint) in restore {
        if let Ok(pipeline) = ctx.template.restore(&checkpoint) {
            if let Some(evicted) = table.restore(session, steps, pipeline) {
                lock_recover(&ctx.snapshots).push(evicted);
            }
            restored.push((session.0, steps));
        }
    }
    {
        let mut stats = lock_recover(&ctx.stats);
        stats.sessions_restored += restored.len() as u64;
        stats.live_sessions = table.len();
    }

    let mut incarnation: u64 = 0;
    let mut fruitless_restarts: u32 = 0;
    loop {
        let mut progress: u64 = 0;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut recorder = factory.as_ref().map(|make| make(ctx.shard));
            if let Some(rec) = recorder.as_deref_mut() {
                if incarnation == 0 {
                    for &(session, steps) in &restored {
                        rec.event(t, StreamEvent::SessionRestored { shard, session, steps });
                    }
                    if !restored.is_empty() {
                        rec.counter("serve.sessions_restored", restored.len() as u64);
                    }
                } else {
                    rec.event(
                        t,
                        StreamEvent::WorkerRestarted {
                            shard,
                            incarnation,
                            sessions: table.len() as u64,
                        },
                    );
                    rec.counter("serve.worker_restarts", 1);
                }
            }
            serve_loop(&ctx, &mut table, &mut backlog, &mut t, &mut progress, recorder)
        }));
        match outcome {
            // Clean exit: queue closed and drained, survivors snapshotted.
            Ok(()) => return,
            Err(_) => {
                incarnation += 1;
                lock_recover(&ctx.stats).worker_restarts += 1;
                if progress > 0 {
                    fruitless_restarts = 0;
                } else {
                    fruitless_restarts += 1;
                    if fruitless_restarts >= MAX_FRUITLESS_RESTARTS {
                        give_up(&ctx, &mut table, &mut backlog);
                        return;
                    }
                }
            }
        }
    }
}

/// The supervised serve loop of one worker incarnation. Returns when the
/// queue is closed and fully drained, after snapshotting every surviving
/// session; panics escape to the supervisor.
fn serve_loop(
    ctx: &ShardContext,
    table: &mut SessionTable,
    backlog: &mut VecDeque<Request>,
    t: &mut u64,
    progress: &mut u64,
    mut recorder: Option<Box<dyn Recorder>>,
) {
    let shard = ctx.shard as u64;
    let depth_gauge = format!("serve.shard{}.queue_depth", ctx.shard);
    let sessions_gauge = format!("serve.shard{}.live_sessions", ctx.shard);
    loop {
        if backlog.is_empty() {
            match ctx.queue.pop_all() {
                Some(requests) => *backlog = requests,
                None => {
                    // Shutdown epilogue. Push survivors into the store
                    // *before* emitting events: snapshots survive even if a
                    // recorder panic forces one more incarnation (which
                    // will find the table empty and re-run this epilogue
                    // as a no-op).
                    let survivors = table.drain_all();
                    let mut stats = lock_recover(&ctx.stats);
                    stats.live_sessions = 0;
                    drop(stats);
                    let ids: Vec<u64> = survivors.iter().map(|s| s.session.0).collect();
                    lock_recover(&ctx.snapshots).extend(survivors);
                    if let Some(rec) = recorder.as_deref_mut() {
                        for session in ids {
                            rec.event(*t, StreamEvent::SessionEvicted { shard, session });
                        }
                    }
                    return;
                }
            }
        }
        let len = backlog.len() as u64;
        let mut created = 0u64;
        let mut evicted = 0u64;
        let mut poisoned = 0u64;
        let mut latencies: Vec<u64> = Vec::with_capacity(backlog.len());
        // Per-request events are buffered and emitted only after the
        // request's reply slot is filled — a recorder panic can crash the
        // incarnation, but never strand a popped-yet-unfilled request.
        let mut events: Vec<StreamEvent> = Vec::new();
        while let Some(request) = backlog.pop_front() {
            if table.is_quarantined(request.session) {
                request
                    .batch
                    .fill(request.slot, Err(StepError::SessionPoisoned { session: request.session }));
                latencies.push(request.submitted_at.elapsed().as_nanos() as u64);
                *t += 1;
                *progress += 1;
                continue;
            }
            #[cfg(feature = "fault-injection")]
            let mut injected_session_panic = false;
            #[cfg(feature = "fault-injection")]
            if let Some(injector) = ctx.injector.as_deref() {
                let point = FailPoint::BeforeProcess {
                    shard: ctx.shard,
                    session: request.session.0,
                    step: *t,
                };
                match injector.decide(point) {
                    FaultAction::Proceed => {}
                    FaultAction::PanicSession => injected_session_panic = true,
                    FaultAction::CrashWorker => {
                        // The in-flight request dies with the worker — its
                        // slot must complete first so no caller hangs; the
                        // rest of the backlog survives into the restarted
                        // incarnation.
                        request
                            .batch
                            .fill(request.slot, Err(StepError::WorkerFailed { shard: ctx.shard }));
                        *t += 1;
                        panic!("fault-injection: worker crash on shard {}", ctx.shard);
                    }
                    FaultAction::Stall(duration) => std::thread::sleep(duration),
                }
            }
            let handled = catch_unwind(AssertUnwindSafe(|| {
                let touched = table.touch(request.session, &ctx.template);
                #[cfg(feature = "fault-injection")]
                if injected_session_panic {
                    // Fires after `touch` (the session exists, untrained
                    // state and all) but before `process` mutates it, so
                    // the quarantine snapshot is the clean last-good state.
                    panic!("fault-injection: session panic for {}", request.session);
                }
                let outcome = table.process(request.session, &request.features, request.label);
                (touched, outcome)
            }));
            let result = match handled {
                Ok((touched, outcome)) => {
                    if let Some(snapshot) = touched.evicted {
                        evicted += 1;
                        events.push(StreamEvent::SessionEvicted {
                            shard,
                            session: snapshot.session.0,
                        });
                        lock_recover(&ctx.snapshots).push(snapshot);
                    }
                    if touched.created {
                        created += 1;
                        events
                            .push(StreamEvent::SessionCreated { shard, session: request.session.0 });
                    }
                    Ok(outcome)
                }
                Err(_) => {
                    poisoned += 1;
                    events.push(StreamEvent::SessionPoisoned { shard, session: request.session.0 });
                    if let Some(snapshot) = table.quarantine(request.session) {
                        lock_recover(&ctx.snapshots).push(snapshot);
                    }
                    Err(StepError::SessionPoisoned { session: request.session })
                }
            };
            latencies.push(request.submitted_at.elapsed().as_nanos() as u64);
            request.batch.fill(request.slot, result);
            *t += 1;
            *progress += 1;
            if let Some(rec) = recorder.as_deref_mut() {
                for event in events.drain(..) {
                    rec.event(*t, event);
                }
            }
        }
        // Counters first — the stats lock cannot panic, so batch
        // bookkeeping stays accurate even if a recorder call below crashes
        // this incarnation.
        {
            let mut stats = lock_recover(&ctx.stats);
            stats.processed += len;
            stats.batches += 1;
            stats.sessions_created += created;
            stats.sessions_evicted += evicted;
            stats.sessions_poisoned += poisoned;
            stats.live_sessions = table.len();
            for nanos in latencies {
                stats.latency.record(nanos);
            }
        }
        if let Some(rec) = recorder.as_deref_mut() {
            rec.event(*t, StreamEvent::BatchProcessed { shard, len });
            rec.counter("serve.requests", len);
            if created > 0 {
                rec.counter("serve.sessions_created", created);
            }
            if evicted > 0 {
                rec.counter("serve.sessions_evicted", evicted);
            }
            if poisoned > 0 {
                rec.counter("serve.sessions_poisoned", poisoned);
            }
            if rec.enabled() {
                rec.gauge(&depth_gauge, ctx.queue.depth() as f64);
                rec.gauge(&sessions_gauge, table.len() as f64);
            }
        }
    }
}

/// Permanent-failure path: the restart budget is exhausted. Close the
/// queue, complete every unprocessed request with
/// [`StepError::WorkerFailed`] (backlog first, then whatever is still
/// queued), and snapshot the surviving sessions. Other shards — and the
/// server's metrics/shutdown paths — keep working; only this shard refuses
/// further submits.
fn give_up(ctx: &ShardContext, table: &mut SessionTable, backlog: &mut VecDeque<Request>) {
    ctx.queue.close();
    let error = StepError::WorkerFailed { shard: ctx.shard };
    for request in backlog.drain(..) {
        request.batch.fill(request.slot, Err(error));
    }
    while let Some(requests) = ctx.queue.pop_all() {
        for request in requests {
            request.batch.fill(request.slot, Err(error));
        }
    }
    let survivors = table.drain_all();
    let mut stats = lock_recover(&ctx.stats);
    stats.live_sessions = 0;
    drop(stats);
    lock_recover(&ctx.snapshots).extend(survivors);
}
