//! Bounded per-shard request queues (std-only MPSC).
//!
//! One queue per shard, one consumer (the shard worker) per queue. The
//! submit side is strictly non-blocking: capacity is checked under the
//! queue lock and a full queue rejects the batch instead of waiting.
//!
//! A batch that spans several shards must be all-or-nothing — enqueueing
//! half a batch and then failing would leave its [`BatchReply`] waiting on
//! slots no worker will ever fill. [`try_submit_all`] therefore locks every
//! involved queue (in ascending shard order, so concurrent submitters
//! cannot deadlock), verifies capacity on all of them, and only then
//! pushes.
//!
//! [`BatchReply`]: crate::BatchReply

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::error::ServeError;
use crate::reply::BatchShared;
use crate::session::SessionId;

/// One enqueued observation, addressed to a session and a reply slot.
pub(crate) struct Request {
    pub(crate) session: SessionId,
    pub(crate) features: Vec<f64>,
    pub(crate) label: usize,
    pub(crate) slot: usize,
    pub(crate) batch: Arc<BatchShared>,
    pub(crate) submitted_at: Instant,
}

pub(crate) struct QueueState {
    items: VecDeque<Request>,
    closed: bool,
    /// Total requests ever accepted (for metrics).
    enqueued: u64,
    /// High-water mark of `items.len()` (for metrics).
    max_depth: usize,
}

pub(crate) struct ShardQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

impl ShardQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                enqueued: 0,
                max_depth: 0,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Blocks until requests are available and takes all of them, or
    /// returns `None` once the queue is closed *and* drained. Draining
    /// everything in one lock acquisition is what makes the worker's
    /// per-batch bookkeeping cheap.
    pub(crate) fn pop_all(&self) -> Option<VecDeque<Request>> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if !state.items.is_empty() {
                return Some(std::mem::take(&mut state.items));
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: pending requests will still be drained, further
    /// submits are refused with [`ServeError::ShutDown`].
    pub(crate) fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Current depth and lifetime counters, for metrics snapshots.
    pub(crate) fn gauges(&self) -> (usize, u64, usize) {
        let state = self.state.lock().expect("queue poisoned");
        (state.items.len(), state.enqueued, state.max_depth)
    }

    /// Current queue depth (the worker reports this as a gauge).
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }
}

/// Atomically enqueues a batch grouped per shard: either every request in
/// every group is accepted, or nothing is enqueued and the error names the
/// first obstacle. `grouped` must be sorted by ascending shard index —
/// [`std::collections::BTreeMap`] iteration order satisfies this — so that
/// concurrent multi-shard submitters acquire locks in one global order.
pub(crate) fn try_submit_all(
    queues: &[Arc<ShardQueue>],
    grouped: Vec<(usize, Vec<Request>)>,
) -> Result<(), ServeError> {
    debug_assert!(grouped.windows(2).all(|w| w[0].0 < w[1].0), "groups must ascend by shard");
    let mut guards: Vec<MutexGuard<'_, QueueState>> = Vec::with_capacity(grouped.len());
    for (shard, requests) in &grouped {
        let state = queues[*shard].state.lock().expect("queue poisoned");
        if state.closed {
            return Err(ServeError::ShutDown);
        }
        if state.items.len() + requests.len() > queues[*shard].capacity {
            return Err(ServeError::Overloaded { shard: *shard });
        }
        guards.push(state);
    }
    // Every involved queue has room; the pushes cannot fail.
    let shards: Vec<usize> = grouped.iter().map(|(shard, _)| *shard).collect();
    for (state, (_, requests)) in guards.iter_mut().zip(grouped) {
        state.enqueued += requests.len() as u64;
        for request in requests {
            state.items.push_back(request);
        }
        state.max_depth = state.max_depth.max(state.items.len());
    }
    drop(guards);
    for shard in shards {
        queues[shard].ready.notify_one();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(slot: usize, batch: &Arc<BatchShared>) -> Request {
        Request {
            session: SessionId(slot as u64),
            features: vec![0.0],
            label: 0,
            slot,
            batch: batch.clone(),
            submitted_at: Instant::now(),
        }
    }

    #[test]
    fn overload_is_all_or_nothing_across_shards() {
        let queues = vec![Arc::new(ShardQueue::new(2)), Arc::new(ShardQueue::new(1))];
        let batch = BatchShared::new(3);
        // Shard 1 has capacity 1; asking it for 2 must refuse the whole
        // submit, leaving shard 0 untouched as well.
        let grouped = vec![
            (0usize, vec![request(0, &batch)]),
            (1usize, vec![request(1, &batch), request(2, &batch)]),
        ];
        assert_eq!(
            try_submit_all(&queues, grouped),
            Err(ServeError::Overloaded { shard: 1 })
        );
        assert_eq!(queues[0].depth(), 0, "no partial enqueue");
        assert_eq!(queues[1].depth(), 0);
        // A batch that fits everywhere goes through whole.
        let ok = vec![
            (0usize, vec![request(0, &batch)]),
            (1usize, vec![request(1, &batch)]),
        ];
        assert_eq!(try_submit_all(&queues, ok), Ok(()));
        assert_eq!(queues[0].depth(), 1);
        assert_eq!(queues[1].depth(), 1);
    }

    #[test]
    fn closed_queue_refuses_and_drains() {
        let queue = Arc::new(ShardQueue::new(4));
        let batch = BatchShared::new(1);
        let queues = vec![queue.clone()];
        try_submit_all(&queues, vec![(0, vec![request(0, &batch)])]).unwrap();
        queue.close();
        assert_eq!(
            try_submit_all(&queues, vec![(0, vec![request(0, &batch)])]),
            Err(ServeError::ShutDown)
        );
        // The request accepted before close is still delivered...
        assert_eq!(queue.pop_all().map(|items| items.len()), Some(1));
        // ...and only then does the consumer see end-of-stream.
        assert!(queue.pop_all().is_none());
    }
}
