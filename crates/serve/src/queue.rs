//! Bounded per-shard request queues (std-only MPSC).
//!
//! One queue per shard, one consumer (the shard worker) per queue. The
//! non-blocking submit path checks capacity under the queue lock and
//! refuses a full queue instead of waiting; the blocking submit path parks
//! on a dedicated `space` condvar that the worker signals whenever it
//! drains the queue — and that [`ShardQueue::close`] also signals, so a
//! submitter blocked for space during shutdown errors out promptly instead
//! of waiting on a wakeup that would never come.
//!
//! A batch that spans several shards must be all-or-nothing — enqueueing
//! half a batch and then failing would leave its [`BatchReply`] waiting on
//! slots no worker will ever fill. [`try_submit_all`] therefore locks every
//! involved queue (in ascending shard order, so concurrent submitters
//! cannot deadlock), verifies capacity on all of them, and only then
//! pushes. On failure the caller keeps the grouped batch untouched and can
//! retry it verbatim.
//!
//! [`BatchReply`]: crate::BatchReply

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::error::ServeError;
use crate::reply::BatchShared;
use crate::session::SessionId;
use crate::sync::{lock_recover, wait_recover, wait_timeout_recover};

/// One enqueued observation, addressed to a session and a reply slot.
pub(crate) struct Request {
    pub(crate) session: SessionId,
    pub(crate) features: Vec<f64>,
    pub(crate) label: usize,
    pub(crate) slot: usize,
    pub(crate) batch: Arc<BatchShared>,
    pub(crate) submitted_at: Instant,
}

pub(crate) struct QueueState {
    items: VecDeque<Request>,
    closed: bool,
    /// Total requests ever accepted (for metrics).
    enqueued: u64,
    /// High-water mark of `items.len()` (for metrics).
    max_depth: usize,
}

pub(crate) struct ShardQueue {
    state: Mutex<QueueState>,
    /// Signalled when items arrive or the queue closes (consumer side).
    ready: Condvar,
    /// Signalled when the worker drains items or the queue closes
    /// (blocking-submitter side).
    space: Condvar,
    capacity: usize,
}

impl ShardQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                enqueued: 0,
                max_depth: 0,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
        }
    }

    /// Blocks until requests are available and takes all of them, or
    /// returns `None` once the queue is closed *and* drained. Draining
    /// everything in one lock acquisition is what makes the worker's
    /// per-batch bookkeeping cheap.
    pub(crate) fn pop_all(&self) -> Option<VecDeque<Request>> {
        let mut state = lock_recover(&self.state);
        loop {
            if !state.items.is_empty() {
                let items = std::mem::take(&mut state.items);
                drop(state);
                // The queue is now empty: every parked blocking submitter
                // may have room.
                self.space.notify_all();
                return Some(items);
            }
            if state.closed {
                return None;
            }
            state = wait_recover(&self.ready, state);
        }
    }

    /// Closes the queue: pending requests will still be drained, further
    /// submits are refused with [`ServeError::ShutDown`]. Wakes the
    /// consumer *and* every submitter blocked waiting for space — a closed
    /// queue never frees space again, so those waiters must error out now.
    pub(crate) fn close(&self) {
        lock_recover(&self.state).closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Blocks until the queue has room for `needed` more requests, the
    /// queue closes ([`ServeError::ShutDown`]) or `deadline` passes
    /// ([`ServeError::DeadlineExceeded`]).
    ///
    /// A successful return is advisory: the lock is released before the
    /// caller retries its submit, so the room may be gone again. The caller
    /// loops submit→wait until its deadline, which bounds the race.
    pub(crate) fn wait_for_space(
        &self,
        needed: usize,
        deadline: Instant,
    ) -> Result<(), ServeError> {
        let mut state = lock_recover(&self.state);
        loop {
            if state.closed {
                return Err(ServeError::ShutDown);
            }
            if state.items.len() + needed <= self.capacity {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::DeadlineExceeded);
            }
            (state, _) = wait_timeout_recover(&self.space, state, deadline - now);
        }
    }

    /// Current depth and lifetime counters, for metrics snapshots.
    pub(crate) fn gauges(&self) -> (usize, u64, usize) {
        let state = lock_recover(&self.state);
        (state.items.len(), state.enqueued, state.max_depth)
    }

    /// Current queue depth (the worker reports this as a gauge).
    pub(crate) fn depth(&self) -> usize {
        lock_recover(&self.state).items.len()
    }
}

/// Atomically enqueues a batch grouped per shard: either every request in
/// every group is accepted (the groups are drained), or nothing is enqueued
/// — `grouped` is left intact so the caller can retry the identical batch —
/// and the error names the first obstacle. `grouped` must be sorted by
/// ascending shard index — [`std::collections::BTreeMap`] iteration order
/// satisfies this — so that concurrent multi-shard submitters acquire locks
/// in one global order.
pub(crate) fn try_submit_all(
    queues: &[Arc<ShardQueue>],
    grouped: &mut [(usize, Vec<Request>)],
) -> Result<(), ServeError> {
    debug_assert!(grouped.windows(2).all(|w| w[0].0 < w[1].0), "groups must ascend by shard");
    let mut guards: Vec<MutexGuard<'_, QueueState>> = Vec::with_capacity(grouped.len());
    for (shard, requests) in grouped.iter() {
        let state = lock_recover(&queues[*shard].state);
        if state.closed {
            return Err(ServeError::ShutDown);
        }
        if state.items.len() + requests.len() > queues[*shard].capacity {
            return Err(ServeError::Overloaded { shard: *shard });
        }
        guards.push(state);
    }
    // Every involved queue has room; the pushes cannot fail.
    let shards: Vec<usize> = grouped.iter().map(|(shard, _)| *shard).collect();
    for (state, (_, requests)) in guards.iter_mut().zip(grouped.iter_mut()) {
        state.enqueued += requests.len() as u64;
        for request in requests.drain(..) {
            state.items.push_back(request);
        }
        state.max_depth = state.max_depth.max(state.items.len());
    }
    drop(guards);
    for shard in shards {
        queues[shard].ready.notify_one();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn request(slot: usize, batch: &Arc<BatchShared>) -> Request {
        Request {
            session: SessionId(slot as u64),
            features: vec![0.0],
            label: 0,
            slot,
            batch: batch.clone(),
            submitted_at: Instant::now(),
        }
    }

    #[test]
    fn overload_is_all_or_nothing_across_shards() {
        let queues = vec![Arc::new(ShardQueue::new(2)), Arc::new(ShardQueue::new(1))];
        let batch = BatchShared::new(3);
        // Shard 1 has capacity 1; asking it for 2 must refuse the whole
        // submit, leaving shard 0 untouched as well.
        let mut grouped = vec![
            (0usize, vec![request(0, &batch)]),
            (1usize, vec![request(1, &batch), request(2, &batch)]),
        ];
        assert_eq!(
            try_submit_all(&queues, &mut grouped),
            Err(ServeError::Overloaded { shard: 1 })
        );
        assert_eq!(queues[0].depth(), 0, "no partial enqueue");
        assert_eq!(queues[1].depth(), 0);
        // A refused batch is kept intact for verbatim retry.
        assert_eq!(grouped[0].1.len(), 1);
        assert_eq!(grouped[1].1.len(), 2);
        // A batch that fits everywhere goes through whole and is drained.
        let mut ok = vec![
            (0usize, vec![request(0, &batch)]),
            (1usize, vec![request(1, &batch)]),
        ];
        assert_eq!(try_submit_all(&queues, &mut ok), Ok(()));
        assert!(ok.iter().all(|(_, reqs)| reqs.is_empty()), "accepted batch is drained");
        assert_eq!(queues[0].depth(), 1);
        assert_eq!(queues[1].depth(), 1);
    }

    #[test]
    fn closed_queue_refuses_and_drains() {
        let queue = Arc::new(ShardQueue::new(4));
        let batch = BatchShared::new(1);
        let queues = vec![queue.clone()];
        try_submit_all(&queues, &mut [(0, vec![request(0, &batch)])]).unwrap();
        queue.close();
        assert_eq!(
            try_submit_all(&queues, &mut [(0, vec![request(0, &batch)])]),
            Err(ServeError::ShutDown)
        );
        // The request accepted before close is still delivered...
        assert_eq!(queue.pop_all().map(|items| items.len()), Some(1));
        // ...and only then does the consumer see end-of-stream.
        assert!(queue.pop_all().is_none());
    }

    #[test]
    fn wait_for_space_returns_when_the_worker_drains() {
        let queue = Arc::new(ShardQueue::new(1));
        let batch = BatchShared::new(1);
        try_submit_all(std::slice::from_ref(&queue), &mut [(0, vec![request(0, &batch)])]).unwrap();
        let waiter = {
            let queue = queue.clone();
            std::thread::spawn(move || {
                queue.wait_for_space(1, Instant::now() + Duration::from_secs(10))
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        let drained = queue.pop_all().expect("one item queued");
        assert_eq!(drained.len(), 1);
        assert_eq!(waiter.join().unwrap(), Ok(()));
    }

    /// Regression: a submitter blocked in `Condvar::wait` for space while
    /// the queue is concurrently closed must return `ShutDown` promptly —
    /// before the fix, `close` only signalled the consumer-side condvar and
    /// the submitter waited on a signal that never came.
    #[test]
    fn close_wakes_a_submitter_blocked_on_space() {
        let queue = Arc::new(ShardQueue::new(1));
        let batch = BatchShared::new(1);
        try_submit_all(std::slice::from_ref(&queue), &mut [(0, vec![request(0, &batch)])]).unwrap();
        let waiter = {
            let queue = queue.clone();
            std::thread::spawn(move || {
                let start = Instant::now();
                let result = queue.wait_for_space(1, Instant::now() + Duration::from_secs(30));
                (result, start.elapsed())
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        queue.close();
        let (result, elapsed) = waiter.join().unwrap();
        assert_eq!(result, Err(ServeError::ShutDown));
        assert!(
            elapsed < Duration::from_secs(5),
            "close must wake the space waiter promptly, took {elapsed:?}"
        );
    }

    #[test]
    fn wait_for_space_honours_its_deadline() {
        let queue = Arc::new(ShardQueue::new(1));
        let batch = BatchShared::new(1);
        try_submit_all(std::slice::from_ref(&queue), &mut [(0, vec![request(0, &batch)])]).unwrap();
        // No worker will ever drain; the wait must end at the deadline.
        let start = Instant::now();
        let result = queue.wait_for_space(1, Instant::now() + Duration::from_millis(50));
        assert_eq!(result, Err(ServeError::DeadlineExceeded));
        assert!(start.elapsed() >= Duration::from_millis(50));
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
