//! The `StreamServer`: shard-partitioned, fault-tolerant, deterministic.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ficsum_core::SessionTemplate;
use ficsum_obs::{LatencyHistogram, Recorder};

use crate::error::ServeError;
use crate::queue::{self, Request, ShardQueue};
use crate::reply::{BatchReply, BatchShared};
use crate::session::{SessionId, SessionSnapshot};
use crate::shard::{self, ShardContext, ShardStats};
use crate::sync::lock_recover;

#[cfg(feature = "fault-injection")]
use crate::fault::FaultInjector;

/// Builds one recorder per shard, on the shard's own thread — recorders
/// themselves need not be `Send`. Share a single sink across shards by
/// closing over an `Arc<Mutex<R>>` (it implements [`Recorder`]). The
/// factory is also re-invoked when a crashed worker restarts (the previous
/// incarnation's recorder died with its thread), so it must be reusable.
pub type RecorderFactory = Arc<dyn Fn(usize) -> Box<dyn Recorder> + Send + Sync>;

/// A batch's requests grouped by destination shard, in ascending shard
/// order (the lock order `try_submit_all` relies on).
type ShardGroups = Vec<(usize, Vec<Request>)>;

/// Server shape: how many shards, how much queue, how many live sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Worker threads; sessions are hash-partitioned across them. Minimum 1.
    pub shards: usize,
    /// Per-shard queue capacity in *requests* (not batches). A batch whose
    /// share of a shard would exceed this is refused with
    /// [`ServeError::Overloaded`]. Minimum 1.
    pub queue_capacity: usize,
    /// Live pipelines a shard keeps before evicting least-recently-used
    /// sessions (snapshotting them first). Minimum 1.
    pub max_sessions_per_shard: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { shards: 4, queue_capacity: 1024, max_sessions_per_shard: 256 }
    }
}

impl ServeConfig {
    /// Returns the config with `shards` replaced.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns the config with `queue_capacity` replaced.
    #[must_use]
    pub fn with_queue_capacity(mut self, requests: usize) -> Self {
        self.queue_capacity = requests;
        self
    }

    /// Returns the config with `max_sessions_per_shard` replaced.
    #[must_use]
    pub fn with_max_sessions_per_shard(mut self, sessions: usize) -> Self {
        self.max_sessions_per_shard = sessions;
        self
    }

    fn normalized(self) -> Self {
        Self {
            shards: self.shards.max(1),
            queue_capacity: self.queue_capacity.max(1),
            max_sessions_per_shard: self.max_sessions_per_shard.max(1),
        }
    }
}

/// Optional server facilities beyond the shape in [`ServeConfig`]:
/// observability, checkpoint restore, and (under the `fault-injection`
/// feature) deterministic fault injection.
///
/// ```ignore
/// let report = server.shutdown();
/// // ... later, possibly in a new process ...
/// let server = StreamServer::with_options(
///     template,
///     config,
///     ServeOptions::default().with_restore(report.snapshots),
/// )?;
/// ```
#[derive(Default)]
pub struct ServeOptions {
    recorder_factory: Option<RecorderFactory>,
    restore: Vec<SessionSnapshot>,
    #[cfg(feature = "fault-injection")]
    injector: Option<Arc<dyn FaultInjector>>,
}

impl ServeOptions {
    /// Attaches a per-shard recorder factory (see [`RecorderFactory`]).
    #[must_use]
    pub fn with_recorder_factory(mut self, factory: RecorderFactory) -> Self {
        self.recorder_factory = Some(factory);
        self
    }

    /// Rehydrates sessions from earlier [`SessionSnapshot`]s before the
    /// server starts accepting work. Each snapshot must carry a
    /// checkpoint compatible with the server's template;
    /// [`StreamServer::with_options`] validates all of them eagerly and
    /// refuses construction otherwise, so an incompatible checkpoint
    /// surfaces as an error at startup rather than a panic mid-serve.
    #[must_use]
    pub fn with_restore(mut self, snapshots: Vec<SessionSnapshot>) -> Self {
        self.restore = snapshots;
        self
    }

    /// Injects deterministic faults into the shard workers (tests and the
    /// fault harness only; the hook does not exist in builds without the
    /// `fault-injection` feature).
    #[cfg(feature = "fault-injection")]
    #[must_use]
    pub fn with_fault_injector(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }
}

impl std::fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("ServeOptions");
        s.field("recorder_factory", &self.recorder_factory.is_some())
            .field("restore", &self.restore.len());
        #[cfg(feature = "fault-injection")]
        s.field("injector", &self.injector.is_some());
        s.finish()
    }
}

/// One observation addressed to one session.
#[derive(Debug, Clone, PartialEq)]
pub struct Submit {
    /// Which stream this observation belongs to.
    pub session_id: SessionId,
    /// Feature vector; length must match the server template's
    /// `n_features`.
    pub features: Vec<f64>,
    /// True label (FiCSUM is prequential: test-then-train).
    pub label: usize,
}

impl Submit {
    /// Convenience constructor.
    pub fn new(session_id: SessionId, features: Vec<f64>, label: usize) -> Self {
        Self { session_id, features, label }
    }
}

/// How [`StreamServer::submit_with_retry`] backs off between attempts:
/// bounded exponential — the delay doubles from `initial_backoff` up to
/// `max_backoff`, for at most `max_attempts` submit attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct RetryPolicy {
    /// Total submit attempts (including the first). Minimum 1.
    pub max_attempts: u32,
    /// Sleep after the first refused attempt.
    pub initial_backoff: Duration,
    /// Cap on the per-attempt sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 6,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(64),
        }
    }
}

impl RetryPolicy {
    /// Returns the policy with `max_attempts` replaced.
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Returns the policy with `initial_backoff` replaced.
    #[must_use]
    pub fn with_initial_backoff(mut self, backoff: Duration) -> Self {
        self.initial_backoff = backoff;
        self
    }

    /// Returns the policy with `max_backoff` replaced.
    #[must_use]
    pub fn with_max_backoff(mut self, backoff: Duration) -> Self {
        self.max_backoff = backoff;
        self
    }
}

/// Point-in-time view of one shard's health.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Requests accepted into the queue over the server's lifetime.
    pub enqueued: u64,
    /// Requests processed and replied to (including error replies for
    /// poisoned sessions).
    pub processed: u64,
    /// Queue drains (≥ 1 request each) the worker has performed.
    pub batches: u64,
    /// Sessions instantiated from the template.
    pub sessions_created: u64,
    /// Sessions evicted by the LRU capacity cap (shutdown snapshots are
    /// not counted here).
    pub sessions_evicted: u64,
    /// Sessions quarantined after their pipeline panicked.
    pub sessions_poisoned: u64,
    /// Sessions rehydrated from checkpoints at startup.
    pub sessions_restored: u64,
    /// Times the supervisor restarted this shard's serve loop after a
    /// panic escaped the per-request guard.
    pub worker_restarts: u64,
    /// Pipelines currently live.
    pub live_sessions: usize,
    /// Requests waiting in the queue right now.
    pub queue_depth: usize,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth: usize,
    /// Submit→reply latency distribution (log-bucketed nanoseconds).
    pub latency: LatencyHistogram,
}

/// Everything a server hands back at shutdown.
#[derive(Debug)]
#[non_exhaustive]
pub struct ServeReport {
    /// Snapshots not previously taken via
    /// [`StreamServer::drain_snapshots`]: eviction/quarantine snapshots
    /// still in the store, plus every session live at shutdown.
    pub snapshots: Vec<SessionSnapshot>,
    /// Final per-shard metrics.
    pub metrics: Vec<ShardMetrics>,
}

/// Serves many concurrent FiCSUM sessions over a fixed pool of supervised
/// shard workers.
///
/// * **Partitioning** — each [`SessionId`] maps to one shard by a fixed
///   hash; all of a session's requests are processed by that shard's single
///   thread in submission order, so every session behaves bit-identically
///   to a standalone pipeline built from the same template.
/// * **Backpressure** — [`StreamServer::try_submit`] never blocks. If any
///   involved shard queue lacks room for the batch, the whole batch is
///   refused ([`ServeError::Overloaded`]) and nothing is enqueued.
///   [`StreamServer::submit_with_deadline`] and
///   [`StreamServer::submit_with_retry`] layer bounded waiting on top.
/// * **Lifecycle** — sessions are created on first sight from the shared
///   template and evicted LRU at the per-shard cap; evicted and
///   shutdown-surviving sessions leave a [`SessionSnapshot`] whose
///   checkpoint can seed a future server
///   ([`ServeOptions::with_restore`]).
/// * **Fault tolerance** — a panicking pipeline quarantines only its own
///   session; a panic escaping the per-request guard restarts the worker
///   with its sessions intact. Every accepted request's reply slot always
///   completes, if necessary with a [`crate::StepError`].
pub struct StreamServer {
    template: SessionTemplate,
    config: ServeConfig,
    queues: Vec<Arc<ShardQueue>>,
    stats: Vec<Arc<Mutex<ShardStats>>>,
    snapshots: Arc<Mutex<Vec<SessionSnapshot>>>,
    /// Worker handles, drained exactly once by whichever caller closes the
    /// server first. Behind a mutex so [`StreamServer::close`] works
    /// through `&self`: a network front-end holding an `Arc<StreamServer>`
    /// and a direct caller can race on shutdown safely.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl StreamServer {
    /// Starts `config.shards` workers serving sessions stamped from
    /// `template`, with no observability attached.
    pub fn new(template: SessionTemplate, config: ServeConfig) -> Self {
        Self::with_options(template, config, ServeOptions::default())
            .expect("no restore snapshots, construction cannot fail")
    }

    /// Like [`StreamServer::new`], with a per-shard recorder. The factory
    /// runs on each worker thread at startup; see [`RecorderFactory`].
    pub fn with_recorder_factory(
        template: SessionTemplate,
        config: ServeConfig,
        recorder_factory: Option<RecorderFactory>,
    ) -> Self {
        let mut options = ServeOptions::default();
        if let Some(factory) = recorder_factory {
            options = options.with_recorder_factory(factory);
        }
        Self::with_options(template, config, options)
            .expect("no restore snapshots, construction cannot fail")
    }

    /// Starts a server with the full option set: recorders, checkpoint
    /// restore, fault injection (feature-gated).
    ///
    /// Every restore snapshot is validated against `template` *before* any
    /// worker spawns: a snapshot without a checkpoint fails with
    /// [`ServeError::MissingCheckpoint`], one whose checkpoint disagrees
    /// with the template (feature count, class count, fingerprint schema,
    /// config) with [`ServeError::IncompatibleCheckpoint`]. On success each
    /// checkpointed session is rehydrated bit-identically on the shard that
    /// owns its id, and counts toward that shard's session cap.
    pub fn with_options(
        template: SessionTemplate,
        config: ServeConfig,
        options: ServeOptions,
    ) -> Result<Self, ServeError> {
        let config = config.normalized();
        let mut restore: Vec<Vec<(SessionId, u64, ficsum_core::SessionCheckpoint)>> =
            (0..config.shards).map(|_| Vec::new()).collect();
        for snapshot in &options.restore {
            let session = snapshot.session;
            let checkpoint = snapshot
                .checkpoint
                .as_ref()
                .ok_or(ServeError::MissingCheckpoint { session })?;
            template
                .validate_checkpoint(checkpoint)
                .map_err(|reason| ServeError::IncompatibleCheckpoint { session, reason })?;
            let shard = shard_of_with(session, config.shards);
            restore[shard].push((session, snapshot.steps, checkpoint.clone()));
        }
        let queues: Vec<Arc<ShardQueue>> =
            (0..config.shards).map(|_| Arc::new(ShardQueue::new(config.queue_capacity))).collect();
        let stats: Vec<Arc<Mutex<ShardStats>>> =
            (0..config.shards).map(|_| Arc::new(Mutex::new(ShardStats::new()))).collect();
        let snapshots = Arc::new(Mutex::new(Vec::new()));
        let mut restore = restore.into_iter();
        let workers = (0..config.shards)
            .map(|shard| {
                let ctx = ShardContext {
                    shard,
                    queue: queues[shard].clone(),
                    template: template.clone(),
                    max_sessions: config.max_sessions_per_shard,
                    stats: stats[shard].clone(),
                    snapshots: snapshots.clone(),
                    restore: restore.next().expect("one restore list per shard"),
                    #[cfg(feature = "fault-injection")]
                    injector: options.injector.clone(),
                };
                let factory = options.recorder_factory.clone();
                std::thread::Builder::new()
                    .name(format!("ficsum-serve-{shard}"))
                    .spawn(move || shard::run(ctx, factory))
                    .expect("spawn shard worker")
            })
            .collect();
        Ok(Self { template, config, queues, stats, snapshots, workers: Mutex::new(workers) })
    }

    /// The template sessions are stamped from.
    pub fn template(&self) -> &SessionTemplate {
        &self.template
    }

    /// The (normalized) shape this server runs with.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// The shard that owns `session`. Stable for the server's lifetime and
    /// across servers with the same shard count.
    pub fn shard_of(&self, session: SessionId) -> usize {
        shard_of_with(session, self.config.shards)
    }

    /// Submits a batch of observations without blocking.
    ///
    /// On success every request is guaranteed a *completed* reply slot —
    /// the step's outcome, or a [`crate::StepError`] if a fault prevented
    /// one; await them (in submission order) through the returned
    /// [`BatchReply`]. On error **nothing** was enqueued: the caller still
    /// owns the batch and can retry it verbatim after backing off — or use
    /// [`StreamServer::submit_with_deadline`] /
    /// [`StreamServer::submit_with_retry`] to have the server do so.
    pub fn try_submit(&self, batch: &[Submit]) -> Result<BatchReply, ServeError> {
        let (shared, mut grouped) = self.prepare(batch)?;
        queue::try_submit_all(&self.queues, &mut grouped)?;
        Ok(BatchReply::new(shared, batch.len()))
    }

    /// Submits a batch, blocking up to `timeout` for queue space.
    ///
    /// Where [`StreamServer::try_submit`] refuses a full queue immediately,
    /// this parks on the contended shard's space condvar and retries when
    /// the worker drains — no spin, no sleep tuning. Fails with
    /// [`ServeError::DeadlineExceeded`] if the batch could not be accepted
    /// in time (nothing was enqueued) and [`ServeError::ShutDown`] if a
    /// needed shard closed while waiting. The timeout bounds *admission*
    /// only; pair it with [`BatchReply::wait_timeout`] to also bound the
    /// wait for results.
    pub fn submit_with_deadline(
        &self,
        batch: &[Submit],
        timeout: Duration,
    ) -> Result<BatchReply, ServeError> {
        let deadline = Instant::now() + timeout;
        let (shared, mut grouped) = self.prepare(batch)?;
        loop {
            match queue::try_submit_all(&self.queues, &mut grouped) {
                Ok(()) => return Ok(BatchReply::new(shared, batch.len())),
                Err(ServeError::Overloaded { shard }) => {
                    let needed = grouped
                        .iter()
                        .find(|(s, _)| *s == shard)
                        .map(|(_, requests)| requests.len())
                        .unwrap_or(1);
                    // Waits until the shard has room for this batch's whole
                    // share of it, the deadline passes, or the queue closes.
                    self.queues[shard].wait_for_space(needed, deadline)?;
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Submits a batch, retrying refused ([`ServeError::Overloaded`])
    /// attempts under `policy`'s bounded exponential backoff. Returns the
    /// last refusal once attempts are exhausted; non-transient errors
    /// (shutdown, validation) fail immediately without retrying.
    pub fn submit_with_retry(
        &self,
        batch: &[Submit],
        policy: RetryPolicy,
    ) -> Result<BatchReply, ServeError> {
        let attempts = policy.max_attempts.max(1);
        let mut backoff = policy.initial_backoff;
        let mut last = ServeError::EmptyBatch;
        for attempt in 0..attempts {
            match self.try_submit(batch) {
                Ok(reply) => return Ok(reply),
                Err(error @ ServeError::Overloaded { .. }) => {
                    last = error;
                    if attempt + 1 < attempts {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(policy.max_backoff);
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Err(last)
    }

    /// Validates a batch and groups it per shard; shared submission front
    /// half of the `submit` family.
    fn prepare(&self, batch: &[Submit]) -> Result<(Arc<BatchShared>, ShardGroups), ServeError> {
        if batch.is_empty() {
            return Err(ServeError::EmptyBatch);
        }
        let expected = self.template.n_features();
        for submit in batch {
            if submit.features.len() != expected {
                return Err(ServeError::DimensionMismatch {
                    expected,
                    got: submit.features.len(),
                });
            }
        }
        let shared = BatchShared::new(batch.len());
        let now = Instant::now();
        let mut grouped: BTreeMap<usize, Vec<Request>> = BTreeMap::new();
        for (slot, submit) in batch.iter().enumerate() {
            grouped.entry(self.shard_of(submit.session_id)).or_default().push(Request {
                session: submit.session_id,
                features: submit.features.clone(),
                label: submit.label,
                slot,
                batch: shared.clone(),
                submitted_at: now,
            });
        }
        Ok((shared, grouped.into_iter().collect()))
    }

    /// Current per-shard metrics (queue gauges + worker counters).
    pub fn metrics(&self) -> Vec<ShardMetrics> {
        (0..self.config.shards)
            .map(|shard| {
                let (queue_depth, enqueued, max_queue_depth) = self.queues[shard].gauges();
                let stats = lock_recover(&self.stats[shard]);
                ShardMetrics {
                    shard,
                    enqueued,
                    processed: stats.processed,
                    batches: stats.batches,
                    sessions_created: stats.sessions_created,
                    sessions_evicted: stats.sessions_evicted,
                    sessions_poisoned: stats.sessions_poisoned,
                    sessions_restored: stats.sessions_restored,
                    worker_restarts: stats.worker_restarts,
                    live_sessions: stats.live_sessions,
                    queue_depth,
                    max_queue_depth,
                    latency: stats.latency.clone(),
                }
            })
            .collect()
    }

    /// Takes the snapshots accumulated so far (capacity evictions and
    /// quarantines) out of the store. Non-blocking with respect to the
    /// workers.
    ///
    /// **Exactly-once, with [`StreamServer::shutdown`]:** every snapshot
    /// the server ever produces is returned by exactly one
    /// `drain_snapshots` call or by the final `shutdown` report, never
    /// both. A snapshot becomes drainable only after its eviction fully
    /// completed on the worker, so a drained checkpoint is always a
    /// consistent capture.
    pub fn drain_snapshots(&self) -> Vec<SessionSnapshot> {
        std::mem::take(&mut *lock_recover(&self.snapshots))
    }

    /// Stops accepting work, drains every queue (accepted batches are
    /// still processed and replied to), snapshots all surviving sessions,
    /// and returns the final report.
    ///
    /// **Ordering guarantee:** queues close first, then every worker is
    /// joined, and only then is the snapshot store emptied — so the report
    /// contains each remaining session exactly once, with its final state.
    /// Snapshots already taken via [`StreamServer::drain_snapshots`] are
    /// not repeated (see its exactly-once contract). Dropping the server
    /// instead of calling `shutdown` still joins the workers but discards
    /// the undrained snapshots.
    pub fn shutdown(self) -> ServeReport {
        self.shutdown_in_place()
    }

    /// [`StreamServer::shutdown`] through a shared reference, for callers
    /// that cannot take the server by value — typically a network front-end
    /// holding an `Arc<StreamServer>` next to a direct in-process caller.
    ///
    /// Safe to call from several threads, and idempotent with
    /// [`StreamServer::shutdown`] and [`StreamServer::close`]: the workers
    /// are joined exactly once (later callers wait for the first join to
    /// finish, never double-join or deadlock), and every snapshot the
    /// server produced appears in exactly one returned report — a second
    /// concurrent `shutdown_in_place` gets whatever the first did not
    /// drain, usually nothing.
    pub fn shutdown_in_place(&self) -> ServeReport {
        self.close();
        let snapshots = std::mem::take(&mut *lock_recover(&self.snapshots));
        let metrics = self.metrics();
        ServeReport { snapshots, metrics }
    }

    /// Closes every shard queue and joins the workers. Idempotent and
    /// race-safe: closing an already-closed queue is a no-op, and the
    /// worker handles are drained under a lock, so exactly one caller
    /// joins each worker while concurrent callers block until the joins
    /// complete — after `close` returns, *all* serving work has finished,
    /// no matter who closed first.
    pub fn close(&self) {
        for queue in &self.queues {
            queue.close();
        }
        for worker in lock_recover(&self.workers).drain(..) {
            // Workers are supervised and exit cleanly even after panics; a
            // join error would mean the supervisor itself died, which has
            // no useful handling beyond not compounding the panic.
            let _ = worker.join();
        }
    }
}

impl Drop for StreamServer {
    fn drop(&mut self) {
        self.close();
    }
}

fn shard_of_with(session: SessionId, shards: usize) -> usize {
    (splitmix64(session.0) % shards as u64) as usize
}

/// SplitMix64 finalizer: a fixed, well-mixed session→shard hash so the
/// partition is stable across runs (tests rely on this) without `std`'s
/// per-process-randomized hasher.
fn splitmix64(value: u64) -> u64 {
    let mut x = value.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StepError;
    use crate::session::EvictReason;
    use ficsum_core::{FicsumConfig, Variant};

    fn template() -> SessionTemplate {
        SessionTemplate::new(2, 2, FicsumConfig::default(), Variant::ErrorRate).unwrap()
    }

    fn outcomes(reply: BatchReply) -> Vec<ficsum_core::StepOutcome> {
        reply.wait().into_iter().map(|r| r.expect("no faults in this test")).collect()
    }

    #[test]
    fn serves_batches_across_sessions_and_returns_in_order() {
        let server = StreamServer::new(template(), ServeConfig::default().with_shards(2));
        let batch: Vec<Submit> = (0..32)
            .map(|i| Submit::new(SessionId(i % 4), vec![0.3, 0.7], (i % 2) as usize))
            .collect();
        let results = outcomes(server.try_submit(&batch).expect("queues are empty"));
        assert_eq!(results.len(), 32);
        let report = server.shutdown();
        assert_eq!(report.snapshots.len(), 4, "all four sessions snapshotted");
        assert_eq!(report.snapshots.iter().map(|s| s.steps).sum::<u64>(), 32);
        let processed: u64 = report.metrics.iter().map(|m| m.processed).sum();
        assert_eq!(processed, 32);
        assert_eq!(report.metrics.iter().map(|m| m.latency.count()).sum::<u64>(), 32);
    }

    #[test]
    fn dimension_mismatch_is_rejected_before_enqueue() {
        let server = StreamServer::new(template(), ServeConfig::default().with_shards(1));
        let bad = [Submit::new(SessionId(0), vec![1.0, 2.0, 3.0], 0)];
        assert_eq!(
            server.try_submit(&bad).map(|_| ()),
            Err(ServeError::DimensionMismatch { expected: 2, got: 3 })
        );
        assert_eq!(server.try_submit(&[]).map(|_| ()), Err(ServeError::EmptyBatch));
        assert_eq!(server.metrics()[0].enqueued, 0);
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let server = StreamServer::new(template(), ServeConfig::default().with_shards(1));
        let queues = server.queues.clone();
        drop(server);
        assert!(queues[0].pop_all().is_none(), "queue closed by drop");
    }

    #[test]
    fn shard_partition_is_stable_and_total() {
        let server = StreamServer::new(template(), ServeConfig::default().with_shards(3));
        let mut seen = [0usize; 3];
        for id in 0..300u64 {
            let shard = server.shard_of(SessionId(id));
            assert_eq!(shard, server.shard_of(SessionId(id)), "stable");
            seen[shard] += 1;
        }
        assert!(seen.iter().all(|&n| n > 50), "roughly balanced: {seen:?}");
    }

    #[test]
    fn restore_resumes_sessions_across_server_generations() {
        let config = ServeConfig::default().with_shards(2);
        let first = StreamServer::new(template(), config);
        let batch: Vec<Submit> = (0..40)
            .map(|i| Submit::new(SessionId(i % 4), vec![0.1 * (i % 7) as f64, 0.5], (i % 2) as usize))
            .collect();
        outcomes(first.try_submit(&batch).unwrap());
        let report = first.shutdown();
        assert_eq!(report.snapshots.len(), 4);

        // Second generation picks up exactly where the first stopped...
        let second = StreamServer::with_options(
            template(),
            config,
            ServeOptions::default().with_restore(report.snapshots),
        )
        .expect("checkpoints match the template");
        outcomes(second.try_submit(&batch).unwrap());
        let report = second.shutdown();
        assert_eq!(report.snapshots.len(), 4);
        // ...so step counts accumulate across generations.
        assert_eq!(report.snapshots.iter().map(|s| s.steps).sum::<u64>(), 80);
        assert_eq!(report.metrics.iter().map(|m| m.sessions_restored).sum::<u64>(), 4);
        assert!(report.metrics.iter().all(|m| m.worker_restarts == 0));

        // ...and a snapshot stripped of its checkpoint is refused up front.
        let mut snapshot = second_generation_snapshot();
        snapshot.checkpoint = None;
        let missing = StreamServer::with_options(
            template(),
            config,
            ServeOptions::default().with_restore(vec![snapshot]),
        );
        assert!(matches!(missing, Err(ServeError::MissingCheckpoint { .. })));
    }

    fn second_generation_snapshot() -> SessionSnapshot {
        let server = StreamServer::new(template(), ServeConfig::default().with_shards(1));
        outcomes(server.try_submit(&[Submit::new(SessionId(1), vec![0.2, 0.4], 0)]).unwrap());
        let mut report = server.shutdown();
        report.snapshots.pop().expect("one session")
    }

    #[test]
    fn incompatible_checkpoint_is_refused_at_construction() {
        let snapshot = second_generation_snapshot();
        let wide = SessionTemplate::new(3, 2, FicsumConfig::default(), Variant::ErrorRate).unwrap();
        let result = StreamServer::with_options(
            wide,
            ServeConfig::default(),
            ServeOptions::default().with_restore(vec![snapshot]),
        );
        match result {
            Err(ServeError::IncompatibleCheckpoint { session, .. }) => {
                assert_eq!(session, SessionId(1));
            }
            other => panic!("expected IncompatibleCheckpoint, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn submit_with_retry_gives_up_with_the_last_refusal() {
        let server = StreamServer::new(
            template(),
            ServeConfig::default().with_shards(1).with_queue_capacity(1),
        );
        let first = server.try_submit(&[Submit::new(SessionId(0), vec![0.1, 0.2], 0)]).unwrap();
        // A 2-request batch can never fit the capacity-1 queue, so every
        // retry observes Overloaded no matter how fast the worker drains.
        let oversize: Vec<Submit> =
            (0..2).map(|i| Submit::new(SessionId(0), vec![0.1, 0.2], i % 2)).collect();
        let policy = RetryPolicy::default()
            .with_max_attempts(3)
            .with_initial_backoff(Duration::from_micros(100))
            .with_max_backoff(Duration::from_micros(200));
        let result = server.submit_with_retry(&oversize, policy);
        assert_eq!(result.map(|_| ()), Err(ServeError::Overloaded { shard: 0 }));
        assert_eq!(first.wait().len(), 1);
    }

    #[test]
    fn submit_with_deadline_waits_for_space_and_succeeds() {
        let server = StreamServer::new(
            template(),
            ServeConfig::default().with_shards(1).with_queue_capacity(4),
        );
        let batch: Vec<Submit> =
            (0..4).map(|i| Submit::new(SessionId(i), vec![0.3, 0.6], (i % 2) as usize)).collect();
        // Saturate, then submit more with a generous deadline: the worker
        // drains, space frees, and the blocked submit lands.
        let mut replies = Vec::new();
        for _ in 0..8 {
            replies.push(
                server
                    .submit_with_deadline(&batch, Duration::from_secs(30))
                    .expect("worker drains within the deadline"),
            );
        }
        let total: usize = replies.into_iter().map(|reply| outcomes(reply).len()).sum();
        assert_eq!(total, 32);
        // A batch that can never fit (5 > capacity 4) fails with
        // DeadlineExceeded, enqueueing nothing.
        let huge: Vec<Submit> =
            (0..5).map(|_| Submit::new(SessionId(0), vec![0.3, 0.6], 0)).collect();
        let result = server.submit_with_deadline(&huge, Duration::from_millis(50));
        assert_eq!(result.map(|_| ()), Err(ServeError::DeadlineExceeded));
    }

    #[test]
    fn drain_and_shutdown_return_each_snapshot_exactly_once() {
        let server = StreamServer::new(
            template(),
            ServeConfig::default().with_shards(1).with_max_sessions_per_shard(2),
        );
        // 5 sessions through a 2-session table: 3 capacity evictions.
        for id in 0..5u64 {
            outcomes(server.try_submit(&[Submit::new(SessionId(id), vec![0.2, 0.8], 0)]).unwrap());
        }
        let drained = server.drain_snapshots();
        assert_eq!(drained.len(), 3);
        assert!(drained.iter().all(|s| s.reason == EvictReason::Capacity));
        assert!(server.drain_snapshots().is_empty(), "store was emptied");
        let report = server.shutdown();
        assert_eq!(report.snapshots.len(), 2, "only the still-live sessions remain");
        let mut all: Vec<u64> = drained
            .iter()
            .chain(report.snapshots.iter())
            .map(|s| s.session.0)
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4], "exactly once, no loss, no duplication");
    }

    /// Regression: a network front-end holding an `Arc<StreamServer>` and
    /// a direct caller can both reach shutdown; before `close` /
    /// `shutdown_in_place` existed, shutdown consumed the server and the
    /// loser of the race had no safe path. Both callers must terminate
    /// (no deadlock, no double-join panic), and every session snapshot
    /// must appear in exactly one of the two reports.
    #[test]
    fn shutdown_is_idempotent_across_racing_callers() {
        let server = Arc::new(StreamServer::new(template(), ServeConfig::default().with_shards(2)));
        for id in 0..6u64 {
            outcomes(server.try_submit(&[Submit::new(SessionId(id), vec![0.4, 0.2], 0)]).unwrap());
        }
        let racers: Vec<_> = (0..2)
            .map(|_| {
                let server = server.clone();
                std::thread::spawn(move || server.shutdown_in_place())
            })
            .collect();
        let reports: Vec<ServeReport> =
            racers.into_iter().map(|t| t.join().expect("no panic in shutdown race")).collect();
        let mut all: Vec<u64> = reports
            .iter()
            .flat_map(|r| r.snapshots.iter().map(|s| s.session.0))
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5], "each snapshot in exactly one report");
        // The server is fully closed: further submits are refused, and yet
        // another shutdown is a quiet no-op with an empty report.
        assert_eq!(
            server.try_submit(&[Submit::new(SessionId(0), vec![0.1, 0.2], 0)]).map(|_| ()),
            Err(ServeError::ShutDown)
        );
        let again = server.shutdown_in_place();
        assert!(again.snapshots.is_empty(), "snapshots were already drained exactly once");
    }

    /// A session whose pipeline panics poisons only itself: siblings keep
    /// serving, the panicking session's requests complete with
    /// `SessionPoisoned`, and its quarantine snapshot is reported. Runs
    /// without the fault-injection feature by planting a panicking
    /// classifier through the template's factory hook.
    #[test]
    fn panicking_session_poisons_only_itself() {
        use ficsum_classifiers::{Classifier, ClassifierFactory, GaussianNaiveBayes};

        #[derive(Clone)]
        struct PoisonPill {
            inner: GaussianNaiveBayes,
            trained: u32,
        }
        impl Classifier for PoisonPill {
            fn predict(&self, x: &[f64]) -> usize {
                self.inner.predict(x)
            }
            fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
                self.inner.predict_proba(x)
            }
            fn train(&mut self, x: &[f64], y: usize) {
                self.trained += 1;
                if self.trained > 3 {
                    panic!("poison pill classifier");
                }
                self.inner.train(x, y);
            }
            fn n_classes(&self) -> usize {
                self.inner.n_classes()
            }
            fn n_features(&self) -> usize {
                self.inner.n_features()
            }
            fn n_trained(&self) -> usize {
                self.inner.n_trained()
            }
            fn reset(&mut self) {
                self.inner.reset()
            }
            fn clone_box(&self) -> Box<dyn Classifier> {
                Box::new(self.clone())
            }
        }
        fn pill_factory() -> Box<dyn ClassifierFactory> {
            Box::new(|| {
                Box::new(PoisonPill { inner: GaussianNaiveBayes::new(2, 2), trained: 0 })
                    as Box<dyn Classifier>
            })
        }

        let template = SessionTemplate::new(2, 2, FicsumConfig::default(), Variant::ErrorRate)
            .unwrap()
            .with_classifier_factory(pill_factory);
        let server = StreamServer::new(template, ServeConfig::default().with_shards(1));
        // Two sessions on one shard; both trip their pill on the 4th learn.
        // Feed session 1 past the pill, keep session 2 healthy below it.
        let mut batch = Vec::new();
        for i in 0..6 {
            batch.push(Submit::new(SessionId(1), vec![0.2, 0.4], (i % 2) as usize));
        }
        batch.push(Submit::new(SessionId(2), vec![0.3, 0.1], 0));
        let results = server.try_submit(&batch).unwrap().wait();
        // First 3 learns succeed, 4th panics; everything after for session 1
        // is refused as poisoned, while session 2 still serves.
        assert!(results[..3].iter().all(|r| r.is_ok()));
        assert!(results[3..6]
            .iter()
            .all(|r| *r == Err(StepError::SessionPoisoned { session: SessionId(1) })));
        assert!(results[6].is_ok(), "sibling session keeps serving");
        let report = server.shutdown();
        let poisoned: Vec<_> =
            report.snapshots.iter().filter(|s| s.reason == EvictReason::Poisoned).collect();
        assert_eq!(poisoned.len(), 1);
        assert_eq!(poisoned[0].session, SessionId(1));
        assert_eq!(poisoned[0].steps, 3, "last-good state: three completed steps");
        assert_eq!(report.metrics[0].sessions_poisoned, 1);
        assert_eq!(report.metrics[0].worker_restarts, 0, "panic stayed session-scoped");
        assert_eq!(report.metrics[0].processed, 7, "every slot completed");
    }
}
