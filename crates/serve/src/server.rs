//! The `StreamServer`: shard-partitioned, non-blocking, deterministic.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use ficsum_core::SessionTemplate;
use ficsum_obs::{LatencyHistogram, Recorder};

use crate::error::ServeError;
use crate::queue::{self, Request, ShardQueue};
use crate::reply::{BatchReply, BatchShared};
use crate::session::{SessionId, SessionSnapshot};
use crate::shard::{self, ShardContext, ShardStats};

/// Builds one recorder per shard, on the shard's own thread — recorders
/// themselves need not be `Send`. Share a single sink across shards by
/// closing over an `Arc<Mutex<R>>` (it implements [`Recorder`]).
pub type RecorderFactory = Arc<dyn Fn(usize) -> Box<dyn Recorder> + Send + Sync>;

/// Server shape: how many shards, how much queue, how many live sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Worker threads; sessions are hash-partitioned across them. Minimum 1.
    pub shards: usize,
    /// Per-shard queue capacity in *requests* (not batches). A batch whose
    /// share of a shard would exceed this is refused with
    /// [`ServeError::Overloaded`]. Minimum 1.
    pub queue_capacity: usize,
    /// Live pipelines a shard keeps before evicting least-recently-used
    /// sessions (snapshotting them first). Minimum 1.
    pub max_sessions_per_shard: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { shards: 4, queue_capacity: 1024, max_sessions_per_shard: 256 }
    }
}

impl ServeConfig {
    /// Returns the config with `shards` replaced.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns the config with `queue_capacity` replaced.
    #[must_use]
    pub fn with_queue_capacity(mut self, requests: usize) -> Self {
        self.queue_capacity = requests;
        self
    }

    /// Returns the config with `max_sessions_per_shard` replaced.
    #[must_use]
    pub fn with_max_sessions_per_shard(mut self, sessions: usize) -> Self {
        self.max_sessions_per_shard = sessions;
        self
    }

    fn normalized(self) -> Self {
        Self {
            shards: self.shards.max(1),
            queue_capacity: self.queue_capacity.max(1),
            max_sessions_per_shard: self.max_sessions_per_shard.max(1),
        }
    }
}

/// One observation addressed to one session.
#[derive(Debug, Clone, PartialEq)]
pub struct Submit {
    /// Which stream this observation belongs to.
    pub session_id: SessionId,
    /// Feature vector; length must match the server template's
    /// `n_features`.
    pub features: Vec<f64>,
    /// True label (FiCSUM is prequential: test-then-train).
    pub label: usize,
}

impl Submit {
    /// Convenience constructor.
    pub fn new(session_id: SessionId, features: Vec<f64>, label: usize) -> Self {
        Self { session_id, features, label }
    }
}

/// Point-in-time view of one shard's health.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Requests accepted into the queue over the server's lifetime.
    pub enqueued: u64,
    /// Requests processed and replied to.
    pub processed: u64,
    /// Queue drains (≥ 1 request each) the worker has performed.
    pub batches: u64,
    /// Sessions instantiated from the template.
    pub sessions_created: u64,
    /// Sessions evicted by the LRU capacity cap (shutdown snapshots are
    /// not counted here).
    pub sessions_evicted: u64,
    /// Pipelines currently live.
    pub live_sessions: usize,
    /// Requests waiting in the queue right now.
    pub queue_depth: usize,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth: usize,
    /// Submit→reply latency distribution (log-bucketed nanoseconds).
    pub latency: LatencyHistogram,
}

/// Everything a server hands back at shutdown.
#[derive(Debug)]
#[non_exhaustive]
pub struct ServeReport {
    /// Snapshots of all sessions: capacity evictions during the run plus
    /// every session still live at shutdown.
    pub snapshots: Vec<SessionSnapshot>,
    /// Final per-shard metrics.
    pub metrics: Vec<ShardMetrics>,
}

/// Serves many concurrent FiCSUM sessions over a fixed pool of shard
/// workers.
///
/// * **Partitioning** — each [`SessionId`] maps to one shard by a fixed
///   hash; all of a session's requests are processed by that shard's single
///   thread in submission order, so every session behaves bit-identically
///   to a standalone pipeline built from the same template.
/// * **Backpressure** — [`StreamServer::try_submit`] never blocks. If any
///   involved shard queue lacks room for the batch, the whole batch is
///   refused ([`ServeError::Overloaded`]) and nothing is enqueued.
/// * **Lifecycle** — sessions are created on first sight from the shared
///   template and evicted LRU at the per-shard cap; evicted and
///   shutdown-surviving sessions leave a [`SessionSnapshot`].
pub struct StreamServer {
    template: SessionTemplate,
    config: ServeConfig,
    queues: Vec<Arc<ShardQueue>>,
    stats: Vec<Arc<Mutex<ShardStats>>>,
    snapshots: Arc<Mutex<Vec<SessionSnapshot>>>,
    workers: Vec<JoinHandle<()>>,
}

impl StreamServer {
    /// Starts `config.shards` workers serving sessions stamped from
    /// `template`, with no observability attached.
    pub fn new(template: SessionTemplate, config: ServeConfig) -> Self {
        Self::with_recorder_factory(template, config, None)
    }

    /// Like [`StreamServer::new`], with a per-shard recorder. The factory
    /// runs on each worker thread at startup; see [`RecorderFactory`].
    pub fn with_recorder_factory(
        template: SessionTemplate,
        config: ServeConfig,
        recorder_factory: Option<RecorderFactory>,
    ) -> Self {
        let config = config.normalized();
        let queues: Vec<Arc<ShardQueue>> =
            (0..config.shards).map(|_| Arc::new(ShardQueue::new(config.queue_capacity))).collect();
        let stats: Vec<Arc<Mutex<ShardStats>>> =
            (0..config.shards).map(|_| Arc::new(Mutex::new(ShardStats::new()))).collect();
        let snapshots = Arc::new(Mutex::new(Vec::new()));
        let workers = (0..config.shards)
            .map(|shard| {
                let ctx = ShardContext {
                    shard,
                    queue: queues[shard].clone(),
                    template: template.clone(),
                    max_sessions: config.max_sessions_per_shard,
                    stats: stats[shard].clone(),
                    snapshots: snapshots.clone(),
                };
                let factory = recorder_factory.clone();
                std::thread::Builder::new()
                    .name(format!("ficsum-serve-{shard}"))
                    .spawn(move || {
                        let recorder = factory.map(|make| make(shard));
                        shard::run(ctx, recorder);
                    })
                    .expect("spawn shard worker")
            })
            .collect();
        Self { template, config, queues, stats, snapshots, workers }
    }

    /// The template sessions are stamped from.
    pub fn template(&self) -> &SessionTemplate {
        &self.template
    }

    /// The (normalized) shape this server runs with.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// The shard that owns `session`. Stable for the server's lifetime and
    /// across servers with the same shard count.
    pub fn shard_of(&self, session: SessionId) -> usize {
        (splitmix64(session.0) % self.config.shards as u64) as usize
    }

    /// Submits a batch of observations without blocking.
    ///
    /// On success every request is guaranteed to be processed; await the
    /// outcomes (in submission order) through the returned [`BatchReply`].
    /// On error **nothing** was enqueued: the caller still owns the batch
    /// and can retry it verbatim after backing off.
    pub fn try_submit(&self, batch: &[Submit]) -> Result<BatchReply, ServeError> {
        if batch.is_empty() {
            return Err(ServeError::EmptyBatch);
        }
        let expected = self.template.n_features();
        for submit in batch {
            if submit.features.len() != expected {
                return Err(ServeError::DimensionMismatch {
                    expected,
                    got: submit.features.len(),
                });
            }
        }
        let shared = BatchShared::new(batch.len());
        let now = Instant::now();
        let mut grouped: BTreeMap<usize, Vec<Request>> = BTreeMap::new();
        for (slot, submit) in batch.iter().enumerate() {
            grouped.entry(self.shard_of(submit.session_id)).or_default().push(Request {
                session: submit.session_id,
                features: submit.features.clone(),
                label: submit.label,
                slot,
                batch: shared.clone(),
                submitted_at: now,
            });
        }
        queue::try_submit_all(&self.queues, grouped.into_iter().collect())?;
        Ok(BatchReply::new(shared, batch.len()))
    }

    /// Current per-shard metrics (queue gauges + worker counters).
    pub fn metrics(&self) -> Vec<ShardMetrics> {
        (0..self.config.shards)
            .map(|shard| {
                let (queue_depth, enqueued, max_queue_depth) = self.queues[shard].gauges();
                let stats = self.stats[shard].lock().expect("shard stats poisoned");
                ShardMetrics {
                    shard,
                    enqueued,
                    processed: stats.processed,
                    batches: stats.batches,
                    sessions_created: stats.sessions_created,
                    sessions_evicted: stats.sessions_evicted,
                    live_sessions: stats.live_sessions,
                    queue_depth,
                    max_queue_depth,
                    latency: stats.latency.clone(),
                }
            })
            .collect()
    }

    /// Takes the snapshots accumulated so far (capacity evictions). More
    /// may arrive while the server runs; [`StreamServer::shutdown`] returns
    /// the complete set.
    pub fn drain_snapshots(&self) -> Vec<SessionSnapshot> {
        std::mem::take(&mut *self.snapshots.lock().expect("snapshot store poisoned"))
    }

    /// Stops accepting work, drains every queue (accepted batches are still
    /// processed and replied to), snapshots all surviving sessions, and
    /// returns the final report.
    pub fn shutdown(mut self) -> ServeReport {
        self.close_and_join();
        let snapshots =
            std::mem::take(&mut *self.snapshots.lock().expect("snapshot store poisoned"));
        let metrics = self.metrics();
        ServeReport { snapshots, metrics }
    }

    fn close_and_join(&mut self) {
        for queue in &self.queues {
            queue.close();
        }
        for worker in self.workers.drain(..) {
            // A panicked worker already poisoned its state; nothing useful
            // to do here beyond not compounding the panic.
            let _ = worker.join();
        }
    }
}

impl Drop for StreamServer {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// SplitMix64 finalizer: a fixed, well-mixed session→shard hash so the
/// partition is stable across runs (tests rely on this) without `std`'s
/// per-process-randomized hasher.
fn splitmix64(value: u64) -> u64 {
    let mut x = value.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_core::{FicsumConfig, Variant};

    fn template() -> SessionTemplate {
        SessionTemplate::new(2, 2, FicsumConfig::default(), Variant::ErrorRate).unwrap()
    }

    #[test]
    fn serves_batches_across_sessions_and_returns_in_order() {
        let server = StreamServer::new(template(), ServeConfig::default().with_shards(2));
        let batch: Vec<Submit> = (0..32)
            .map(|i| Submit::new(SessionId(i % 4), vec![0.3, 0.7], (i % 2) as usize))
            .collect();
        let outcomes = server.try_submit(&batch).expect("queues are empty").wait();
        assert_eq!(outcomes.len(), 32);
        let report = server.shutdown();
        assert_eq!(report.snapshots.len(), 4, "all four sessions snapshotted");
        assert_eq!(report.snapshots.iter().map(|s| s.steps).sum::<u64>(), 32);
        let processed: u64 = report.metrics.iter().map(|m| m.processed).sum();
        assert_eq!(processed, 32);
        assert_eq!(report.metrics.iter().map(|m| m.latency.count()).sum::<u64>(), 32);
    }

    #[test]
    fn dimension_mismatch_is_rejected_before_enqueue() {
        let server = StreamServer::new(template(), ServeConfig::default().with_shards(1));
        let bad = [Submit::new(SessionId(0), vec![1.0, 2.0, 3.0], 0)];
        assert_eq!(
            server.try_submit(&bad).map(|_| ()),
            Err(ServeError::DimensionMismatch { expected: 2, got: 3 })
        );
        assert_eq!(server.try_submit(&[]).map(|_| ()), Err(ServeError::EmptyBatch));
        assert_eq!(server.metrics()[0].enqueued, 0);
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let server = StreamServer::new(template(), ServeConfig::default().with_shards(1));
        let queues = server.queues.clone();
        drop(server);
        assert!(queues[0].pop_all().is_none(), "queue closed by drop");
    }

    #[test]
    fn shard_partition_is_stable_and_total() {
        let server = StreamServer::new(template(), ServeConfig::default().with_shards(3));
        let mut seen = [0usize; 3];
        for id in 0..300u64 {
            let shard = server.shard_of(SessionId(id));
            assert_eq!(shard, server.shard_of(SessionId(id)), "stable");
            seen[shard] += 1;
        }
        assert!(seen.iter().all(|&n| n > 50), "roughly balanced: {seen:?}");
    }
}
