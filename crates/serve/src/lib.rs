//! Sharded multi-stream serving for FiCSUM.
//!
//! A production drift-detection deployment rarely serves one stream: it
//! serves thousands of independent sessions (one per sensor, tenant, or
//! device), each an isolated [`ficsum_core::Ficsum`] pipeline. This crate
//! turns the single-stream core into that deployment shape:
//!
//! * [`StreamServer`] owns N shard workers. Sessions are hash-partitioned
//!   across shards ([`StreamServer::shard_of`]); each shard's single thread
//!   owns its sessions outright, so per-session processing order equals
//!   submission order and served results are **bit-identical** to a
//!   standalone pipeline (pinned by `tests/serve_parity.rs`).
//! * Batched [`Submit`]s enter through bounded queues with explicit
//!   backpressure: [`StreamServer::try_submit`] never blocks — a full shard
//!   refuses the whole batch with [`ServeError::Overloaded`] and enqueues
//!   nothing, so the caller can retry verbatim.
//! * Sessions are created lazily from one validated
//!   [`ficsum_core::SessionTemplate`] and evicted least-recently-used at a
//!   per-shard cap, leaving a [`SessionSnapshot`] of what they learned —
//!   including a full [`ficsum_core::SessionCheckpoint`] from which a
//!   future server rehydrates the session bit-identically
//!   ([`ServeOptions::with_restore`]).
//! * Observability rides along per shard: counters, queue-depth gauges and
//!   submit→reply latency histograms flow through any
//!   [`ficsum_obs::Recorder`] built by a [`RecorderFactory`] on the shard's
//!   own thread.
//! * Workers are **supervised**: a panicking pipeline quarantines only its
//!   own session ([`StepError::SessionPoisoned`]); a panic escaping the
//!   per-request guard restarts the worker with its session table and
//!   backlog intact. Accepted requests always complete — with an outcome
//!   or a [`StepError`] — so [`BatchReply::wait`] cannot hang, and
//!   [`BatchReply::wait_timeout`] / [`StreamServer::submit_with_deadline`]
//!   bound the waits themselves. The `fault-injection` cargo feature (off
//!   by default, zero release overhead) adds deterministic fail points for
//!   exercising all of this in tests.
//!
//! # Threading model (the `Send` audit)
//!
//! `Ficsum` is deliberately **not** `Send`: recorders may be
//! single-threaded `Rc`-shared handles. Nothing in this crate moves a
//! pipeline between threads. What crosses the submit channel is plain data
//! — session id, features, label, a reply slot — and what shards share at
//! startup is the `Send + Sync` template; every pipeline is constructed on
//! the worker thread that will own it for its whole life. The assertions
//! below make this contract a compile-time fact.

mod error;
#[cfg(feature = "fault-injection")]
pub mod fault;
mod queue;
mod reply;
mod server;
mod session;
mod shard;
mod sync;

pub use error::{ServeError, StepError, StepResult};
pub use reply::BatchReply;
pub use server::{
    RecorderFactory, RetryPolicy, ServeConfig, ServeOptions, ServeReport, ShardMetrics,
    StreamServer, Submit,
};
pub use session::{EvictReason, SessionId, SessionSnapshot};

#[cfg(feature = "fault-injection")]
pub use fault::{FailPoint, FaultAction, FaultInjector, ScriptedFaults, SeededFaults};

// Compile-time Send audit of everything that crosses or touches the
// channel boundary.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<queue::Request>();
    assert_send::<BatchReply>();
    assert_send::<Submit>();
    assert_send::<ServeError>();
    assert_send::<SessionSnapshot>();
    assert_send::<StepError>();
    assert_send::<ficsum_core::SessionCheckpoint>();
    assert_send_sync::<ficsum_core::SessionTemplate>();
    assert_send_sync::<StreamServer>();
};
