//! Per-batch reply handles.
//!
//! Each accepted batch gets one [`BatchReply`]. A batch's requests may fan
//! out across several shards; each worker fills the slots it owns (slot
//! index = the request's position in the submitted batch), and the handle
//! becomes ready when the last slot lands. This keeps replies ordered for
//! the caller without any cross-shard coordination beyond a shared counter.

use std::sync::{Arc, Condvar, Mutex};

use ficsum_core::StepOutcome;

pub(crate) struct BatchShared {
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    slots: Vec<Option<StepOutcome>>,
    pending: usize,
}

impl BatchShared {
    pub(crate) fn new(len: usize) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(BatchState { slots: vec![None; len], pending: len }),
            done: Condvar::new(),
        })
    }

    /// Called by a shard worker with the outcome for one request. Slots are
    /// disjoint across workers, so filling never races on the same index.
    pub(crate) fn fill(&self, slot: usize, outcome: StepOutcome) {
        let mut state = self.state.lock().expect("batch state poisoned");
        debug_assert!(state.slots[slot].is_none(), "slot {slot} filled twice");
        state.slots[slot] = Some(outcome);
        state.pending -= 1;
        if state.pending == 0 {
            self.done.notify_all();
        }
    }
}

/// Handle to a batch accepted by [`crate::StreamServer::try_submit`].
///
/// The server guarantees every accepted request is processed (workers drain
/// their queues even during shutdown), so [`BatchReply::wait`] always
/// terminates once the batch has flowed through its shards.
pub struct BatchReply {
    shared: Arc<BatchShared>,
    len: usize,
}

impl BatchReply {
    pub(crate) fn new(shared: Arc<BatchShared>, len: usize) -> Self {
        Self { shared, len }
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch contained no requests (never true for accepted
    /// batches; submitting an empty batch is an error).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether every request has been processed (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.shared.state.lock().expect("batch state poisoned").pending == 0
    }

    /// Blocks until every request in the batch has been processed and
    /// returns the outcomes in submission order.
    pub fn wait(self) -> Vec<StepOutcome> {
        let mut state = self.shared.state.lock().expect("batch state poisoned");
        while state.pending > 0 {
            state = self.shared.done.wait(state).expect("batch state poisoned");
        }
        state
            .slots
            .iter_mut()
            .map(|s| s.take().expect("completed batch has every slot filled"))
            .collect()
    }
}

impl std::fmt::Debug for BatchReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchReply")
            .field("len", &self.len)
            .field("ready", &self.is_ready())
            .finish()
    }
}
