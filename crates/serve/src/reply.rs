//! Per-batch reply handles.
//!
//! Each accepted batch gets one [`BatchReply`]. A batch's requests may fan
//! out across several shards; each worker fills the slots it owns (slot
//! index = the request's position in the submitted batch), and the handle
//! becomes ready when the last slot lands. This keeps replies ordered for
//! the caller without any cross-shard coordination beyond a shared counter.
//!
//! Slots carry [`StepResult`]s, not bare outcomes: under faults the server
//! completes a slot with an error ([`crate::StepError`]) rather than never
//! completing it, so `wait` cannot hang on a quarantined session or a
//! failed worker. [`BatchReply::wait_timeout`] additionally bounds the wait
//! itself, for callers that must make progress even if a shard stalls.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::StepResult;
use crate::sync::{lock_recover, wait_recover, wait_timeout_recover};

pub(crate) struct BatchShared {
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    slots: Vec<Option<StepResult>>,
    pending: usize,
}

impl BatchShared {
    pub(crate) fn new(len: usize) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(BatchState { slots: vec![None; len], pending: len }),
            done: Condvar::new(),
        })
    }

    /// Called by a shard worker with the result for one request. Slots are
    /// disjoint across workers, so filling never races on the same index.
    pub(crate) fn fill(&self, slot: usize, result: StepResult) {
        let mut state = lock_recover(&self.state);
        debug_assert!(state.slots[slot].is_none(), "slot {slot} filled twice");
        state.slots[slot] = Some(result);
        state.pending -= 1;
        if state.pending == 0 {
            self.done.notify_all();
        }
    }

}

/// Handle to a batch accepted by [`crate::StreamServer::try_submit`].
///
/// The server guarantees every accepted request's slot *completes* — with
/// the step's outcome, or with a [`StepError`] when a fault prevented one —
/// so [`BatchReply::wait`] always terminates once the batch has flowed
/// through its shards. Use [`BatchReply::wait_timeout`] to additionally
/// bound how long "flowed through" may take.
pub struct BatchReply {
    shared: Arc<BatchShared>,
    len: usize,
}

impl BatchReply {
    pub(crate) fn new(shared: Arc<BatchShared>, len: usize) -> Self {
        Self { shared, len }
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch contained no requests (never true for accepted
    /// batches; submitting an empty batch is an error).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether every request has completed (non-blocking).
    pub fn is_ready(&self) -> bool {
        lock_recover(&self.shared.state).pending == 0
    }

    /// Blocks until every request in the batch has completed and returns
    /// the per-request results in submission order.
    pub fn wait(self) -> Vec<StepResult> {
        let mut state = lock_recover(&self.shared.state);
        while state.pending > 0 {
            state = wait_recover(&self.shared.done, state);
        }
        state
            .slots
            .iter_mut()
            .map(|s| s.take().expect("completed batch has every slot filled"))
            .collect()
    }

    /// Like [`BatchReply::wait`], but gives up once `timeout` has elapsed:
    /// `Err` returns the handle itself so the caller can keep waiting
    /// later, poll [`BatchReply::is_ready`], or drop it (outstanding
    /// requests still complete inside the server; their results are simply
    /// discarded).
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<StepResult>, BatchReply> {
        let deadline = Instant::now() + timeout;
        let mut state = lock_recover(&self.shared.state);
        while state.pending > 0 {
            let now = Instant::now();
            if now >= deadline {
                drop(state);
                return Err(self);
            }
            (state, _) = wait_timeout_recover(&self.shared.done, state, deadline - now);
        }
        let results = state
            .slots
            .iter_mut()
            .map(|s| s.take().expect("completed batch has every slot filled"))
            .collect();
        drop(state);
        Ok(results)
    }
}

impl std::fmt::Debug for BatchReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchReply")
            .field("len", &self.len)
            .field("ready", &self.is_ready())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StepError;
    use crate::session::SessionId;
    use ficsum_core::{FicsumConfig, SessionTemplate, StepOutcome, Variant};

    fn outcome() -> StepOutcome {
        // Only the framework constructs `StepOutcome` (non_exhaustive), so
        // take a real one from a throwaway pipeline.
        let template =
            SessionTemplate::new(2, 2, FicsumConfig::default(), Variant::ErrorRate).unwrap();
        template.instantiate().process(&[0.0, 1.0], 0)
    }

    #[test]
    fn wait_timeout_returns_the_handle_until_complete() {
        let shared = BatchShared::new(2);
        let reply = BatchReply::new(shared.clone(), 2);
        shared.fill(0, Ok(outcome()));
        let start = Instant::now();
        let reply = reply
            .wait_timeout(Duration::from_millis(40))
            .expect_err("one slot still pending");
        assert!(start.elapsed() >= Duration::from_millis(40));
        assert!(!reply.is_ready());
        shared.fill(1, Err(StepError::SessionPoisoned { session: SessionId(9) }));
        let results = reply.wait_timeout(Duration::from_secs(5)).expect("complete");
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(StepError::SessionPoisoned { session: SessionId(9) }));
    }

    #[test]
    fn error_fills_complete_a_batch_like_outcomes_do() {
        let shared = BatchShared::new(3);
        let reply = BatchReply::new(shared.clone(), 3);
        shared.fill(1, Ok(outcome()));
        shared.fill(0, Err(StepError::WorkerFailed { shard: 2 }));
        shared.fill(2, Err(StepError::WorkerFailed { shard: 2 }));
        let results = reply.wait();
        assert_eq!(results[0], Err(StepError::WorkerFailed { shard: 2 }));
        assert!(results[1].is_ok(), "filled slot must be preserved");
        assert_eq!(results[2], Err(StepError::WorkerFailed { shard: 2 }));
    }
}
