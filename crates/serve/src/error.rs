//! Serving errors.
//!
//! Two layers of failure, matching the two promises the server makes:
//!
//! * [`ServeError`] — the *submit* path. Returned eagerly; a rejected batch
//!   has enqueued **zero** of its requests and can be retried verbatim.
//! * [`StepError`] — the *reply* path. Once a batch is accepted every slot
//!   is guaranteed to complete, but under faults a slot may complete with
//!   an error instead of an outcome: a panicking session is quarantined
//!   ([`StepError::SessionPoisoned`]) and a shard that exhausts its restart
//!   budget fails its remaining requests ([`StepError::WorkerFailed`])
//!   rather than hanging their callers forever.

use std::fmt;

use ficsum_core::RestoreError;

use crate::session::SessionId;

/// Why a submit was rejected.
///
/// `try_submit` never blocks: when a shard queue cannot take the whole
/// batch the server refuses it instead of waiting, and the caller decides
/// whether to retry, shed load, or spill. Rejection is all-or-nothing — a
/// refused batch has enqueued **zero** of its requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The named shard's queue lacks room for this batch's requests.
    /// Back off and retry; the batch was not partially enqueued.
    Overloaded {
        /// Index of the shard whose queue was full.
        shard: usize,
    },
    /// A request's feature vector does not match the template's
    /// dimensionality.
    DimensionMismatch {
        /// Features per observation the server's template was built for.
        expected: usize,
        /// Features in the offending request.
        got: usize,
    },
    /// The server has been shut down; no further batches are accepted.
    ShutDown,
    /// The batch contained no requests.
    EmptyBatch,
    /// A blocking submit could not enqueue the batch before its deadline.
    /// Nothing was enqueued; the caller still owns the batch.
    DeadlineExceeded,
    /// A checkpoint handed to the server for restore does not fit the
    /// server's template (see [`ficsum_core::SessionTemplate::restore`]).
    IncompatibleCheckpoint {
        /// The session whose checkpoint was rejected.
        session: SessionId,
        /// Why the template refused it.
        reason: RestoreError,
    },
    /// A snapshot handed to the server for restore carries no checkpoint
    /// (its session's state was not capturable when it was taken).
    MissingCheckpoint {
        /// The session whose snapshot is stateless.
        session: SessionId,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { shard } => {
                write!(f, "shard {shard} queue is full; retry after draining")
            }
            ServeError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} features per observation, got {got}")
            }
            ServeError::ShutDown => write!(f, "server has shut down"),
            ServeError::EmptyBatch => write!(f, "batch contains no requests"),
            ServeError::DeadlineExceeded => {
                write!(f, "deadline passed before the batch could be enqueued")
            }
            ServeError::IncompatibleCheckpoint { session, reason } => {
                write!(f, "cannot restore {session}: {reason}")
            }
            ServeError::MissingCheckpoint { session } => {
                write!(f, "cannot restore {session}: its snapshot carries no checkpoint")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Why one accepted request completed without an outcome.
///
/// Reply slots carry [`StepResult`]s: the server's "every accepted request
/// completes" guarantee survives faults by completing a slot with an error
/// instead of never completing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StepError {
    /// The session's pipeline panicked (on this request or an earlier one)
    /// and the session is quarantined. Its last-good state was snapshotted
    /// with [`crate::EvictReason::Poisoned`] and can be rehydrated via
    /// [`ficsum_core::SessionTemplate::restore`]; other sessions on the
    /// shard are unaffected.
    SessionPoisoned {
        /// The quarantined session.
        session: SessionId,
    },
    /// The owning shard worker failed permanently (crash-restart budget
    /// exhausted) before reaching this request. Surviving sessions were
    /// snapshotted; the request itself was never processed.
    WorkerFailed {
        /// The failed shard.
        shard: usize,
    },
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::SessionPoisoned { session } => {
                write!(f, "{session} is quarantined after a pipeline panic")
            }
            StepError::WorkerFailed { shard } => {
                write!(f, "shard {shard} worker failed before processing this request")
            }
        }
    }
}

impl std::error::Error for StepError {}

/// What one reply slot resolves to: the step's outcome, or why the server
/// could not produce one.
pub type StepResult = Result<ficsum_core::StepOutcome, StepError>;
