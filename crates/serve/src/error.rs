//! Serving errors. All are returned eagerly from the submit path — once a
//! batch is accepted it is guaranteed to be processed.

use std::fmt;

/// Why a submit was rejected.
///
/// `try_submit` never blocks: when a shard queue cannot take the whole
/// batch the server refuses it instead of waiting, and the caller decides
/// whether to retry, shed load, or spill. Rejection is all-or-nothing — a
/// refused batch has enqueued **zero** of its requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The named shard's queue lacks room for this batch's requests.
    /// Back off and retry; the batch was not partially enqueued.
    Overloaded {
        /// Index of the shard whose queue was full.
        shard: usize,
    },
    /// A request's feature vector does not match the template's
    /// dimensionality.
    DimensionMismatch {
        /// Features per observation the server's template was built for.
        expected: usize,
        /// Features in the offending request.
        got: usize,
    },
    /// The server has been shut down; no further batches are accepted.
    ShutDown,
    /// The batch contained no requests.
    EmptyBatch,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { shard } => {
                write!(f, "shard {shard} queue is full; retry after draining")
            }
            ServeError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} features per observation, got {got}")
            }
            ServeError::ShutDown => write!(f, "server has shut down"),
            ServeError::EmptyBatch => write!(f, "batch contains no requests"),
        }
    }
}

impl std::error::Error for ServeError {}
