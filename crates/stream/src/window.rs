//! Sliding windows over labeled observations.
//!
//! Algorithm 1 of the paper maintains two windows:
//!
//! * the **active window** `A` — the `w` most recent observations, used to
//!   test for drift and for model selection, and
//! * the **buffer window** `B` — observations at least `b` steps old (and at
//!   most `b + w` steps old), assumed to be drawn from the *current* concept
//!   because any drift-detection delay is bounded by `b`.
//!
//! [`SlidingWindow`] implements `A`; [`BufferedWindow`] implements the
//! `Buf -> B` pipeline.

use std::collections::VecDeque;

use crate::observation::LabeledObservation;

/// A fixed-capacity FIFO window of the `w` most recent labeled observations.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    items: VecDeque<LabeledObservation>,
    capacity: usize,
}

impl SlidingWindow {
    /// Window keeping at most `capacity` observations. `capacity` must be
    /// greater than zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self { items: VecDeque::with_capacity(capacity + 1), capacity }
    }

    /// Appends an observation, evicting the oldest when full. Returns the
    /// evicted observation, if any.
    pub fn push(&mut self, obs: LabeledObservation) -> Option<LabeledObservation> {
        self.items.push_back(obs);
        if self.items.len() > self.capacity {
            self.items.pop_front()
        } else {
            None
        }
    }

    /// Current number of observations held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the window holds no observations.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Configured capacity `w`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates oldest-to-newest.
    pub fn iter(&self) -> impl Iterator<Item = &LabeledObservation> {
        self.items.iter()
    }

    /// Copies the contents oldest-to-newest into a vector.
    pub fn to_vec(&self) -> Vec<LabeledObservation> {
        self.items.iter().cloned().collect()
    }

    /// Drops all contents, keeping the capacity.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

/// The delayed buffer of Algorithm 1 (lines 12–15).
///
/// New observations enter a holding buffer of length `b`; once an observation
/// is older than `b` steps it graduates into the stale window `B`, which
/// keeps the most recent `w` graduates. Observations in `B` are therefore
/// between `b` and `b + w` steps old — old enough that, absent a drift alert,
/// they are assumed drawn from the current concept.
#[derive(Debug, Clone)]
pub struct BufferedWindow {
    holding: VecDeque<LabeledObservation>,
    stale: SlidingWindow,
    delay: usize,
}

impl BufferedWindow {
    /// `delay` is the buffer length `b`; `window` is `w`, the capacity of the
    /// stale window.
    pub fn new(delay: usize, window: usize) -> Self {
        Self {
            holding: VecDeque::with_capacity(delay + 1),
            stale: SlidingWindow::new(window),
            delay,
        }
    }

    /// Pushes a new observation into the holding buffer, graduating any
    /// observation that is now older than the delay into the stale window.
    pub fn push(&mut self, obs: LabeledObservation) {
        self.holding.push_back(obs);
        while self.holding.len() > self.delay {
            // Oldest holding element is now `delay` steps old: graduate it.
            let graduated = self.holding.pop_front().expect("non-empty after len check");
            self.stale.push(graduated);
        }
    }

    /// The stale window `B` (observations older than the delay).
    pub fn stale(&self) -> &SlidingWindow {
        &self.stale
    }

    /// Number of observations currently held back in the delay buffer.
    pub fn holding_len(&self) -> usize {
        self.holding.len()
    }

    /// Configured delay `b`.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Empties both the holding buffer and the stale window. Called after a
    /// drift so the new concept's representation is not polluted by
    /// observations from the old segment.
    pub fn clear(&mut self) {
        self.holding.clear();
        self.stale.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::LabeledObservation;

    fn lo(i: usize) -> LabeledObservation {
        LabeledObservation::new(vec![i as f64], 0, 0)
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut w = SlidingWindow::new(3);
        assert!(w.push(lo(0)).is_none());
        assert!(w.push(lo(1)).is_none());
        assert!(w.push(lo(2)).is_none());
        assert!(w.is_full());
        let evicted = w.push(lo(3)).expect("should evict");
        assert_eq!(evicted.features()[0], 0.0);
        let vals: Vec<f64> = w.iter().map(|o| o.features()[0]).collect();
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn buffered_window_delays_by_b() {
        let mut b = BufferedWindow::new(2, 3);
        for i in 0..2 {
            b.push(lo(i));
        }
        // Nothing has graduated yet: both observations are <= b old.
        assert!(b.stale().is_empty());
        assert_eq!(b.holding_len(), 2);
        b.push(lo(2));
        // Observation 0 is now 2 steps old and graduates.
        assert_eq!(b.stale().len(), 1);
        assert_eq!(b.stale().iter().next().unwrap().features()[0], 0.0);
    }

    #[test]
    fn buffered_window_stale_caps_at_w() {
        let mut b = BufferedWindow::new(1, 2);
        for i in 0..6 {
            b.push(lo(i));
        }
        // 5 graduates total, window keeps latest 2: observations 3 and 4.
        let vals: Vec<f64> = b.stale().iter().map(|o| o.features()[0]).collect();
        assert_eq!(vals, vec![3.0, 4.0]);
    }

    #[test]
    fn buffered_window_zero_delay_graduates_immediately() {
        let mut b = BufferedWindow::new(0, 4);
        b.push(lo(0));
        assert_eq!(b.stale().len(), 1);
        assert_eq!(b.holding_len(), 0);
    }

    #[test]
    fn clear_empties_everything() {
        let mut b = BufferedWindow::new(3, 3);
        for i in 0..10 {
            b.push(lo(i));
        }
        b.clear();
        assert!(b.stale().is_empty());
        assert_eq!(b.holding_len(), 0);
    }
}
