//! Sliding windows over labeled observations.
//!
//! Algorithm 1 of the paper maintains two windows:
//!
//! * the **active window** `A` — the `w` most recent observations, used to
//!   test for drift and for model selection, and
//! * the **buffer window** `B` — observations at least `b` steps old (and at
//!   most `b + w` steps old), assumed to be drawn from the *current* concept
//!   because any drift-detection delay is bounded by `b`.
//!
//! [`SlidingWindow`] implements `A`; [`BufferedWindow`] implements the
//! `Buf -> B` pipeline.

use std::collections::VecDeque;

use crate::observation::LabeledObservation;
use crate::stats::Moments;

/// A fixed-capacity FIFO window of the `w` most recent labeled observations.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    items: VecDeque<LabeledObservation>,
    capacity: usize,
}

impl SlidingWindow {
    /// Window keeping at most `capacity` observations. `capacity` must be
    /// greater than zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self { items: VecDeque::with_capacity(capacity + 1), capacity }
    }

    /// Appends an observation, evicting the oldest when full. Returns the
    /// evicted observation, if any.
    pub fn push(&mut self, obs: LabeledObservation) -> Option<LabeledObservation> {
        self.items.push_back(obs);
        if self.items.len() > self.capacity {
            self.items.pop_front()
        } else {
            None
        }
    }

    /// Current number of observations held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the window holds no observations.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Configured capacity `w`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates oldest-to-newest.
    pub fn iter(&self) -> impl Iterator<Item = &LabeledObservation> + Clone {
        self.items.iter()
    }

    /// The `i`-th observation, oldest first. O(1).
    pub fn get(&self, i: usize) -> &LabeledObservation {
        &self.items[i]
    }

    /// Drops all contents, keeping the capacity.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

/// A sliding window that additionally maintains incremental central moments
/// for every feature dimension and for the label sequence.
///
/// This is the O(1)-per-observation half of the fingerprint engine: the
/// mean / standard deviation / skew / kurtosis of the *feature* and *label*
/// behaviour sources depend only on window membership (never on the active
/// classifier), so they can be updated on push/evict instead of recomputed
/// over the full window at every fingerprint. Classifier-dependent sources
/// (predictions, errors, error distances) are left to the batch pass.
///
/// To keep a long-running stream numerically honest, the accumulators are
/// rebuilt from the raw window contents after [`Self::REBUILD_INTERVAL`]
/// evictions — downdating is exact in infinite precision but accretes
/// rounding error over unbounded insert/evict cycles.
#[derive(Debug, Clone)]
pub struct TrackedWindow {
    window: SlidingWindow,
    /// Per-feature-dimension moment accumulators.
    feature_moments: Vec<Moments>,
    label_moments: Moments,
    evictions_since_rebuild: usize,
}

impl TrackedWindow {
    /// Evictions between full accumulator rebuilds.
    pub const REBUILD_INTERVAL: usize = 4096;

    /// Window of `capacity` observations with `n_features` feature
    /// dimensions per observation.
    pub fn new(capacity: usize, n_features: usize) -> Self {
        Self {
            window: SlidingWindow::new(capacity),
            feature_moments: vec![Moments::new(); n_features],
            label_moments: Moments::new(),
            evictions_since_rebuild: 0,
        }
    }

    /// Appends an observation, evicting (and returning) the oldest when
    /// full; the moment accumulators track both edits.
    pub fn push(&mut self, obs: LabeledObservation) -> Option<LabeledObservation> {
        debug_assert_eq!(obs.features().len(), self.feature_moments.len());
        for (m, &x) in self.feature_moments.iter_mut().zip(obs.features()) {
            m.push(x);
        }
        self.label_moments.push(obs.label() as f64);
        let evicted = self.window.push(obs);
        if let Some(old) = &evicted {
            for (m, &x) in self.feature_moments.iter_mut().zip(old.features()) {
                m.remove(x);
            }
            self.label_moments.remove(old.label() as f64);
            self.evictions_since_rebuild += 1;
            if self.evictions_since_rebuild >= Self::REBUILD_INTERVAL {
                self.rebuild();
            }
        }
        evicted
    }

    /// Recomputes every accumulator from the raw window contents.
    fn rebuild(&mut self) {
        for m in &mut self.feature_moments {
            m.reset();
        }
        self.label_moments.reset();
        for obs in self.window.iter() {
            for (m, &x) in self.feature_moments.iter_mut().zip(obs.features()) {
                m.push(x);
            }
            self.label_moments.push(obs.label() as f64);
        }
        self.evictions_since_rebuild = 0;
    }

    /// Moment accumulator for feature dimension `j`.
    pub fn feature_moments(&self, j: usize) -> &Moments {
        &self.feature_moments[j]
    }

    /// Moment accumulator for the label sequence.
    pub fn label_moments(&self) -> &Moments {
        &self.label_moments
    }

    /// Number of tracked feature dimensions.
    pub fn n_features(&self) -> usize {
        self.feature_moments.len()
    }

    /// Current number of observations held.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window holds no observations.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Whether the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.window.is_full()
    }

    /// Configured capacity `w`.
    pub fn capacity(&self) -> usize {
        self.window.capacity()
    }

    /// Iterates oldest-to-newest.
    pub fn iter(&self) -> impl Iterator<Item = &LabeledObservation> + Clone {
        self.window.iter()
    }

    /// The `i`-th observation, oldest first. O(1).
    pub fn get(&self, i: usize) -> &LabeledObservation {
        self.window.get(i)
    }

    /// The underlying plain window.
    pub fn as_window(&self) -> &SlidingWindow {
        &self.window
    }

    /// Drops all contents and resets the accumulators.
    pub fn clear(&mut self) {
        self.window.clear();
        for m in &mut self.feature_moments {
            m.reset();
        }
        self.label_moments.reset();
        self.evictions_since_rebuild = 0;
    }
}

/// The delayed buffer of Algorithm 1 (lines 12–15).
///
/// New observations enter a holding buffer of length `b`; once an observation
/// is older than `b` steps it graduates into the stale window `B`, which
/// keeps the most recent `w` graduates. Observations in `B` are therefore
/// between `b` and `b + w` steps old — old enough that, absent a drift alert,
/// they are assumed drawn from the current concept.
#[derive(Debug, Clone)]
pub struct BufferedWindow {
    holding: VecDeque<LabeledObservation>,
    stale: TrackedWindow,
    delay: usize,
}

impl BufferedWindow {
    /// `delay` is the buffer length `b`; `window` is `w`, the capacity of the
    /// stale window; `n_features` is the feature dimensionality tracked by
    /// the stale window's moment accumulators.
    pub fn new(delay: usize, window: usize, n_features: usize) -> Self {
        Self {
            holding: VecDeque::with_capacity(delay + 1),
            stale: TrackedWindow::new(window, n_features),
            delay,
        }
    }

    /// Pushes a new observation into the holding buffer, graduating any
    /// observation that is now older than the delay into the stale window.
    pub fn push(&mut self, obs: LabeledObservation) {
        self.holding.push_back(obs);
        while self.holding.len() > self.delay {
            // Oldest holding element is now `delay` steps old: graduate it.
            let graduated = self.holding.pop_front().expect("non-empty after len check");
            self.stale.push(graduated);
        }
    }

    /// The stale window `B` (observations older than the delay), with
    /// incrementally maintained feature/label moments.
    pub fn stale(&self) -> &TrackedWindow {
        &self.stale
    }

    /// Number of observations currently held back in the delay buffer.
    pub fn holding_len(&self) -> usize {
        self.holding.len()
    }

    /// Configured delay `b`.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Empties both the holding buffer and the stale window. Called after a
    /// drift so the new concept's representation is not polluted by
    /// observations from the old segment.
    pub fn clear(&mut self) {
        self.holding.clear();
        self.stale.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::LabeledObservation;

    fn lo(i: usize) -> LabeledObservation {
        LabeledObservation::new(vec![i as f64], 0, 0)
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut w = SlidingWindow::new(3);
        assert!(w.push(lo(0)).is_none());
        assert!(w.push(lo(1)).is_none());
        assert!(w.push(lo(2)).is_none());
        assert!(w.is_full());
        let evicted = w.push(lo(3)).expect("should evict");
        assert_eq!(evicted.features()[0], 0.0);
        let vals: Vec<f64> = w.iter().map(|o| o.features()[0]).collect();
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn buffered_window_delays_by_b() {
        let mut b = BufferedWindow::new(2, 3, 1);
        for i in 0..2 {
            b.push(lo(i));
        }
        // Nothing has graduated yet: both observations are <= b old.
        assert!(b.stale().is_empty());
        assert_eq!(b.holding_len(), 2);
        b.push(lo(2));
        // Observation 0 is now 2 steps old and graduates.
        assert_eq!(b.stale().len(), 1);
        assert_eq!(b.stale().iter().next().unwrap().features()[0], 0.0);
    }

    #[test]
    fn buffered_window_stale_caps_at_w() {
        let mut b = BufferedWindow::new(1, 2, 1);
        for i in 0..6 {
            b.push(lo(i));
        }
        // 5 graduates total, window keeps latest 2: observations 3 and 4.
        let vals: Vec<f64> = b.stale().iter().map(|o| o.features()[0]).collect();
        assert_eq!(vals, vec![3.0, 4.0]);
    }

    #[test]
    fn buffered_window_zero_delay_graduates_immediately() {
        let mut b = BufferedWindow::new(0, 4, 1);
        b.push(lo(0));
        assert_eq!(b.stale().len(), 1);
        assert_eq!(b.holding_len(), 0);
    }

    #[test]
    fn tracked_window_moments_match_batch() {
        let mut tw = TrackedWindow::new(5, 2);
        for i in 0..40usize {
            let f0 = (i as f64 * 0.61).sin() * 2.0;
            let f1 = i as f64 * 0.13 - 1.0;
            tw.push(LabeledObservation::new(vec![f0, f1], i % 3, 0));
            // Batch reference over current contents.
            for j in 0..2 {
                let xs: Vec<f64> = tw.iter().map(|o| o.features()[j]).collect();
                let mean = xs.iter().sum::<f64>() / xs.len() as f64;
                assert!((tw.feature_moments(j).mean() - mean).abs() < 1e-10);
            }
            let labels: Vec<f64> = tw.iter().map(|o| o.label() as f64).collect();
            let lmean = labels.iter().sum::<f64>() / labels.len() as f64;
            assert!((tw.label_moments().mean() - lmean).abs() < 1e-10);
            assert_eq!(tw.label_moments().count() as usize, tw.len());
        }
        assert!(tw.is_full());
        assert_eq!(tw.len(), 5);
    }

    #[test]
    fn tracked_window_rebuild_and_clear() {
        let mut tw = TrackedWindow::new(3, 1);
        for i in 0..10 {
            tw.push(lo(i));
        }
        tw.clear();
        assert!(tw.is_empty());
        assert_eq!(tw.feature_moments(0).count(), 0);
        assert_eq!(tw.label_moments().count(), 0);
        tw.push(lo(5));
        assert_eq!(tw.feature_moments(0).mean(), 5.0);
    }

    #[test]
    fn clear_empties_everything() {
        let mut b = BufferedWindow::new(3, 3, 1);
        for i in 0..10 {
            b.push(lo(i));
        }
        b.clear();
        assert!(b.stale().is_empty());
        assert_eq!(b.holding_len(), 0);
    }
}
