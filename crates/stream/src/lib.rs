//! Data-stream foundations for the FiCSUM workspace.
//!
//! This crate provides the vocabulary shared by every other crate in the
//! reproduction of *Fingerprinting Concepts in Data Streams with Supervised
//! and Unsupervised Meta-Information* (ICDE 2021):
//!
//! * [`Observation`] / [`LabeledObservation`] — the `<X, y>` and `<X, y, l>`
//!   tuples the paper operates on,
//! * [`ConceptStream`] — a stream of observations annotated with the ground
//!   truth concept identifier needed by the co-occurrence evaluation,
//! * [`SlidingWindow`] and [`BufferedWindow`] — the *active* window `A` and
//!   the delayed *buffer* window `B` of Algorithm 1,
//! * online statistics ([`RunningStats`], [`MinMaxScaler`]) used by the
//!   fingerprinting and weighting machinery.

pub mod frames;
pub mod observation;
pub mod rng;
pub mod stats;
pub mod stream;
pub mod window;
pub mod winstats;

pub use frames::{
    FrameBlock, FrameSource, FrameStore, FrameView, FrameWindows, MomentSource, StatSource,
    TrackedFrames,
};
pub use observation::{LabeledObservation, Observation};
pub use rng::{RandomSource, Xoshiro256pp};
pub use stats::{EwStats, MinMaxScaler, Moments, RunningStats};
pub use winstats::SeqStats;
pub use stream::{ConceptStream, StreamSource, VecStream};
pub use window::{BufferedWindow, SlidingWindow, TrackedWindow};
