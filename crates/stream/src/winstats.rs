//! Incrementally maintained per-window sequence statistics beyond moments.
//!
//! [`crate::stats::Moments`] already gives the fingerprint engine O(1)
//! mean/std/skew/kurtosis per window. The remaining Table-I sequence
//! statistics — autocorrelation, partial autocorrelation, lagged mutual
//! information and turning-point rate — are still O(w) batch sweeps per
//! extraction. [`SeqStats`] maintains the sufficient state for all of them
//! in O(1) amortized time per pushed/evicted observation:
//!
//! * **Lagged cross-sums** for ACF/PACF lags 1–2, kept *centered around a
//!   frozen shift reference `K`*: `c_lag = Σ (x_i - K)(x_{i+lag} - K)`.
//!   Centering bounds catastrophic cancellation for data with a large mean
//!   offset (raw `Σ x_i x_{i+lag}` sums lose ~9 digits at offset 1e6); the
//!   consumer re-centers to the exact current mean at evaluation time with
//!   an O(lag) correction. `K` is refreshed to the current mean at every
//!   resummation, and a drift guard rebuilds early if the window mean runs
//!   more than 16 standard deviations from `K`.
//! * An **add/remove joint histogram** for lag-1 mutual information, with
//!   bin edges frozen at the window's exact min/max. Pushing a value
//!   outside the edges, or evicting a value sitting exactly on an edge,
//!   forces a rebuild — which keeps the frozen edges always equal to the
//!   true window min/max, so the histogram counts are *bit-identical* to a
//!   batch recount. For random data an edge event occurs O(1/w) of steps,
//!   so maintenance stays O(1) amortized.
//! * An exact **turning-point counter** (integer, bit-identical to the
//!   batch count by construction: both sides evaluate the same
//!   `(b-a)*(c-b) < 0` products on the same values).
//!
//! Non-finite values poison batch statistics in ways no incremental update
//! can mirror (`NaN` comparisons), so the state tracks an exact count of
//! non-finite values currently in the window; while it is non-zero the
//! state reports invalid and consumers fall back to the batch sweep, and
//! when the last non-finite value leaves the window the owner rebuilds.
//!
//! The owner ([`crate::frames::FrameWindows`]) drives maintenance: it
//! reads the neighbour values each update needs from its frame ring and
//! calls [`SeqStats::step`], then [`SeqStats::rebuild`]s any state that
//! requested it. Periodic resummation piggybacks on the ring's existing
//! moment-rebuild cadence to bound floating-point drift in the cross-sums.

/// Incremental sufficient statistics for one behaviour-source sequence
/// over a sliding window. See the module docs for the maintenance
/// contract.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqStats {
    bins: usize,
    /// Window length currently represented.
    n: usize,
    /// Shift reference `K` for the centered cross-sums.
    shift: f64,
    /// `Σ (x_i - K)(x_{i+1} - K)` over adjacent pairs.
    c1: f64,
    /// `Σ (x_i - K)(x_{i+2} - K)` over lag-2 pairs.
    c2: f64,
    /// Exact count of interior local extrema.
    turns: u32,
    /// Exact count of non-finite values currently in the window.
    nonfinite: u32,
    /// Whether the state needs a full rebuild before use.
    dirty: bool,
    /// Frozen histogram edges == exact window min/max while clean.
    lo: f64,
    hi: f64,
    /// Joint lag-1 histogram, row-major `[older_bin][newer_bin]` counts.
    joint: Vec<u32>,
}

impl SeqStats {
    /// Empty state with a `bins x bins` mutual-information histogram.
    pub fn new(bins: usize) -> Self {
        Self {
            bins,
            n: 0,
            shift: 0.0,
            c1: 0.0,
            c2: 0.0,
            turns: 0,
            nonfinite: 0,
            dirty: false,
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            joint: vec![0; bins * bins],
        }
    }

    /// Resets to the empty-window state, keeping the histogram allocation.
    pub fn reset(&mut self) {
        self.n = 0;
        self.shift = 0.0;
        self.c1 = 0.0;
        self.c2 = 0.0;
        self.turns = 0;
        self.nonfinite = 0;
        self.dirty = false;
        self.lo = f64::INFINITY;
        self.hi = f64::NEG_INFINITY;
        self.joint.iter_mut().for_each(|c| *c = 0);
    }

    /// Histogram resolution per axis.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Window length this state currently represents.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Whether the state may be substituted for a batch sweep. False while
    /// the window holds non-finite values or a rebuild is pending.
    pub fn is_valid(&self) -> bool {
        !self.dirty && self.nonfinite == 0
    }

    /// Whether the owner must [`SeqStats::rebuild`] before the next use.
    /// False while non-finite values remain resident (a rebuild would not
    /// help until they leave the window).
    pub fn needs_rebuild(&self) -> bool {
        self.dirty && self.nonfinite == 0
    }

    /// The frozen shift reference `K`.
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Centered cross-sum `Σ (x_i - K)(x_{i+lag} - K)` for lag 1 or 2.
    pub fn cross_sum(&self, lag: usize) -> f64 {
        match lag {
            1 => self.c1,
            2 => self.c2,
            _ => panic!("cross-sums are maintained for lags 1 and 2, got {lag}"),
        }
    }

    /// Exact count of interior turning points in the window.
    pub fn turning_points(&self) -> u32 {
        self.turns
    }

    /// Frozen histogram edges (exact window min/max while clean).
    pub fn edges(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Joint lag-1 histogram counts, row-major `[older][newer]`.
    pub fn joint(&self) -> &[u32] {
        &self.joint
    }

    /// Bin index of `v` under the frozen edges — the same computation the
    /// batch estimator applies with its freshly-folded min/max.
    #[inline]
    fn bin(&self, v: f64) -> usize {
        (((v - self.lo) / (self.hi - self.lo) * self.bins as f64) as usize).min(self.bins - 1)
    }

    /// O(1) maintenance for one window update.
    ///
    /// `v` is the value entering at the newest end; `p1`/`p2` are the
    /// previously newest and second-newest window values (when present).
    /// `evict` carries the value leaving the oldest end together with the
    /// next two oldest values of the *post-append* window (`x1`/`x2` may
    /// therefore be the incoming `v` for very small windows).
    ///
    /// When the update cannot be applied in O(1) — a histogram edge moved,
    /// or non-finite values are involved — the state marks itself for
    /// rebuild instead; the owner must check [`SeqStats::needs_rebuild`]
    /// afterwards and rebuild from the window contents.
    pub fn step(
        &mut self,
        v: f64,
        p1: Option<f64>,
        p2: Option<f64>,
        evict: Option<(f64, Option<f64>, Option<f64>)>,
    ) {
        // Length and non-finite accounting are exact regardless of state.
        let n_pre = self.n;
        self.n += 1;
        if !v.is_finite() {
            self.nonfinite += 1;
        }
        if let Some((x0, _, _)) = evict {
            self.n -= 1;
            if !x0.is_finite() {
                self.nonfinite = self.nonfinite.saturating_sub(1);
            }
        }
        if self.nonfinite > 0 {
            // Comparisons against NaN/inf are meaningless; leave the rest
            // of the state stale and rebuild once the window is clean.
            self.dirty = true;
            return;
        }
        if self.dirty {
            return;
        }
        // Histogram edge events force a rebuild: a new extremum widens the
        // range, and evicting a value sitting on an edge may shrink it.
        // Rebuilding keeps the frozen edges equal to the exact window
        // min/max, which is what makes the counts match a batch recount.
        if n_pre == 0 || v < self.lo || v > self.hi {
            self.dirty = true;
            return;
        }
        if let Some((x0, _, _)) = evict {
            if x0 == self.lo || x0 == self.hi {
                self.dirty = true;
                return;
            }
        }

        let k = self.shift;
        if let Some(p1) = p1 {
            self.c1 += (p1 - k) * (v - k);
            let at = self.bin(p1) * self.bins + self.bin(v);
            self.joint[at] += 1;
            if let Some(p2) = p2 {
                // New interior point p1 in the triple (p2, p1, v).
                if (p1 - p2) * (v - p1) < 0.0 {
                    self.turns += 1;
                }
                self.c2 += (p2 - k) * (v - k);
            }
        }
        if let Some((x0, Some(x1), x2)) = evict {
            self.c1 -= (x0 - k) * (x1 - k);
            let at = self.bin(x0) * self.bins + self.bin(x1);
            self.joint[at] -= 1;
            if let Some(x2) = x2 {
                // x1 stops being interior in the triple (x0, x1, x2).
                if (x1 - x0) * (x2 - x1) < 0.0 {
                    self.turns -= 1;
                }
                self.c2 -= (x0 - k) * (x2 - k);
            }
        }
    }

    /// Exact recomputation from the window contents (`get(i)`, oldest
    /// first). Refreshes the shift reference to the current window mean
    /// and the histogram edges to the exact min/max, clearing the dirty
    /// flag — unless non-finite values are present, in which case the
    /// state stays invalid until they leave the window.
    pub fn rebuild<F: Fn(usize) -> f64>(&mut self, len: usize, get: F) {
        self.n = len;
        self.nonfinite = (0..len).filter(|&i| !get(i).is_finite()).count() as u32;
        if self.nonfinite > 0 {
            self.dirty = true;
            return;
        }
        let mut sum = 0.0;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..len {
            let x = get(i);
            sum += x;
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let k = if len == 0 { 0.0 } else { sum / len as f64 };
        self.shift = k;
        self.lo = lo;
        self.hi = hi;
        self.c1 = 0.0;
        self.c2 = 0.0;
        self.turns = 0;
        self.joint.iter_mut().for_each(|c| *c = 0);
        for i in 0..len {
            let x = get(i);
            if i + 1 < len {
                let y = get(i + 1);
                self.c1 += (x - k) * (y - k);
                let at = self.bin(x) * self.bins + self.bin(y);
                self.joint[at] += 1;
            }
            if i + 2 < len {
                let z = get(i + 2);
                self.c2 += (x - k) * (z - k);
                if (get(i + 1) - x) * (z - get(i + 1)) < 0.0 {
                    self.turns += 1;
                }
            }
        }
        self.dirty = false;
    }

    /// Whether the window mean `mean` has drifted far enough from the
    /// shift reference (relative to the raw second moment `sum_sq_dev =
    /// Σ (x - mean)²`) that the eval-time re-centering correction would
    /// start losing precision; the owner rebuilds when this fires. The
    /// 16-sigma threshold keeps the relative error of the corrected
    /// cross-sums comfortably under 1e-12.
    pub fn shift_drifted(&self, mean: f64, sum_sq_dev: f64) -> bool {
        if self.n == 0 {
            return false;
        }
        let d = mean - self.shift;
        d * d * self.n as f64 > 256.0 * sum_sq_dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{RandomSource, Xoshiro256pp};

    /// Batch references mirroring the ficsum-meta functions.
    fn batch_cross_sum(xs: &[f64], k: f64, lag: usize) -> f64 {
        xs.windows(lag + 1).map(|w| (w[0] - k) * (w[lag] - k)).sum()
    }

    fn batch_turns(xs: &[f64]) -> u32 {
        xs.windows(3).filter(|w| (w[1] - w[0]) * (w[2] - w[1]) < 0.0).count() as u32
    }

    fn batch_joint(xs: &[f64], bins: usize) -> (Vec<u32>, f64, f64) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let bin = |v: f64| (((v - lo) / (hi - lo) * bins as f64) as usize).min(bins - 1);
        let mut joint = vec![0u32; bins * bins];
        for w in xs.windows(2) {
            joint[bin(w[0]) * bins + bin(w[1])] += 1;
        }
        (joint, lo, hi)
    }

    /// Drives a window of capacity `w` over `values`, mirroring the
    /// owner's maintenance contract, checking every statistic against a
    /// batch recompute at every step.
    fn drive_and_check(values: &[f64], w: usize, bins: usize) {
        let mut s = SeqStats::new(bins);
        let mut win: Vec<f64> = Vec::new();
        for (step, &v) in values.iter().enumerate() {
            let n = win.len();
            let p1 = (n >= 1).then(|| win[n - 1]);
            let p2 = (n >= 2).then(|| win[n - 2]);
            let evict = (n == w).then(|| {
                // Post-append window is win + [v]; x1/x2 fall back to v.
                let x1 = if w >= 2 { Some(win[1]) } else { Some(v) };
                let x2 = if w >= 3 {
                    Some(win[2])
                } else if w == 2 {
                    Some(v)
                } else {
                    None
                };
                (win[0], x1, x2)
            });
            s.step(v, p1, p2, evict);
            win.push(v);
            if win.len() > w {
                win.remove(0);
            }
            if s.needs_rebuild() {
                let snapshot = win.clone();
                s.rebuild(snapshot.len(), |i| snapshot[i]);
            }
            let finite = win.iter().all(|x| x.is_finite());
            assert_eq!(s.count(), win.len(), "step {step}: length");
            assert_eq!(s.is_valid(), finite, "step {step}: validity");
            if !finite {
                continue;
            }
            assert_eq!(s.turning_points(), batch_turns(&win), "step {step}: turns");
            let (joint, lo, hi) = batch_joint(&win, bins);
            assert_eq!(s.edges(), (lo, hi), "step {step}: edges");
            assert_eq!(s.joint(), &joint[..], "step {step}: joint histogram");
            for lag in [1usize, 2] {
                let want = batch_cross_sum(&win, s.shift(), lag);
                let got = s.cross_sum(lag);
                let tol = 1e-11 * (1.0 + want.abs());
                assert!(
                    (got - want).abs() <= tol,
                    "step {step}: c{lag} got {got} want {want}"
                );
            }
        }
    }

    #[test]
    fn random_stream_matches_batch_at_every_step() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        for &w in &[1usize, 2, 3, 5, 8, 30] {
            let values: Vec<f64> = (0..400).map(|_| rng.random_range(-5.0..5.0)).collect();
            drive_and_check(&values, w, 8);
        }
    }

    #[test]
    fn offset_stream_keeps_precision() {
        // Large mean offset is where un-centered cross-sums would lose
        // ~9 digits; the shifted form must not.
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let values: Vec<f64> = (0..500).map(|_| 1e6 + rng.random_range(-1.0..1.0)).collect();
        drive_and_check(&values, 20, 8);
    }

    #[test]
    fn duplicate_heavy_stream_is_exact() {
        // Repeated values sit exactly on histogram edges; evicting them
        // must trigger conservative rebuilds, never a wrong count.
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let values: Vec<f64> = (0..300).map(|_| (rng.random_range(0..4u32)) as f64).collect();
        drive_and_check(&values, 10, 4);
    }

    #[test]
    fn nonfinite_values_poison_and_recover() {
        let mut rng = Xoshiro256pp::seed_from_u64(14);
        let mut values: Vec<f64> = (0..200).map(|_| rng.random_range(-2.0..2.0)).collect();
        values[40] = f64::NAN;
        values[41] = f64::INFINITY;
        values[120] = f64::NEG_INFINITY;
        drive_and_check(&values, 12, 8);
    }

    #[test]
    fn shift_drift_guard_fires_on_level_shifts() {
        let mut s = SeqStats::new(4);
        let base: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
        s.rebuild(base.len(), |i| base[i]);
        assert!(!s.shift_drifted(0.01, 25.0));
        // Mean ran 1e6 away from K with unit-scale variance: must fire.
        assert!(s.shift_drifted(1e6, 50.0));
    }

    #[test]
    fn reset_returns_to_empty() {
        let mut s = SeqStats::new(4);
        let xs = [1.0, 2.0, 3.0, 1.0];
        s.rebuild(xs.len(), |i| xs[i]);
        assert_eq!(s.count(), 4);
        s.reset();
        assert_eq!(s, SeqStats::new(4));
        assert!(s.is_valid());
    }
}
