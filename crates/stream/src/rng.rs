//! Repo-owned pseudo-random number generation.
//!
//! The workspace builds with zero external dependencies, so instead of the
//! `rand` crate it carries its own small PRNG surface:
//!
//! * [`RandomSource`] — the trait every consumer programs against. Only
//!   [`RandomSource::next_u64`] is required; uniform floats, integer ranges
//!   and Bernoulli draws are provided on top of it.
//! * [`Xoshiro256pp`] — xoshiro256++ (Blackman & Vigna, 2019), a fast
//!   general-purpose generator with a 256-bit state and excellent
//!   statistical quality, seeded through SplitMix64 so that any `u64` seed
//!   (including 0) yields a well-mixed state.
//!
//! All experiment code seeds generators explicitly: given the same seed, a
//! stream, classifier or experiment is bit-for-bit reproducible on every
//! platform (the implementation uses only integer arithmetic and exact IEEE
//! double conversions).

use std::ops::{Range, RangeInclusive};

/// A deterministic source of uniform random bits.
///
/// Implementors supply [`RandomSource::next_u64`]; every other draw is
/// derived from it. The provided methods mirror the call-site shapes used
/// throughout the workspace: `rng.random::<f64>()`, `rng.random_range(0..k)`,
/// `rng.random_range(-1.0..1.0)`, `rng.random_bool(0.1)`.
pub trait RandomSource {
    /// The next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw of type `T` (see [`FromRandom`] for conventions).
    fn random<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self)
    }

    /// A uniform draw from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range. Integer ranges are sampled without modulo bias (Lemire's
    /// method); float ranges are affine maps of a uniform `[0, 1)` draw.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<T: RandomSource + ?Sized> RandomSource for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from a [`RandomSource`].
pub trait FromRandom {
    /// Draws one uniform value.
    fn from_random<R: RandomSource>(rng: &mut R) -> Self;
}

impl FromRandom for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_random<R: RandomSource>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_random<R: RandomSource>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRandom for u64 {
    fn from_random<R: RandomSource>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_random<R: RandomSource>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRandom for usize {
    fn from_random<R: RandomSource>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRandom for bool {
    /// A fair coin.
    fn from_random<R: RandomSource>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges that can be sampled uniformly. Implemented for the integer and
/// float `Range`/`RangeInclusive` shapes the workspace uses.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws one uniform value from the range. Panics on empty ranges.
    fn sample_from<R: RandomSource>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, span)` without modulo bias (Lemire's method with
/// rejection). `span` must be non-zero.
fn bounded_u64<R: RandomSource>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RandomSource>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RandomSource>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // The full 64-bit domain: every u64 is in range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RandomSource>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = FromRandom::from_random(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// SplitMix64 step — used to expand a single `u64` seed into a full
/// xoshiro256++ state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256++ generator: 256 bits of state, period `2^256 - 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the generator from a single `u64` via SplitMix64, the seeding
    /// procedure recommended by the xoshiro authors. Every seed (including
    /// 0) produces a valid, well-mixed, non-zero state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0; 4] {
            // Unreachable in practice, but the all-zero state is the one
            // fixed point of the generator and must never be used.
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// A fresh generator whose seed is drawn from this one — used to hand
    /// independent streams to sub-components (ensemble members, concepts).
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

impl RandomSource for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// `k` distinct indices drawn uniformly from `0..n`, in random order
/// (partial Fisher–Yates). Replacement for `rand::seq::index::sample`.
pub fn sample_indices<R: RandomSource>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// Shuffles a slice in place (Fisher–Yates).
pub fn shuffle<T, R: RandomSource>(rng: &mut R, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values for xoshiro256++ seeded with the state
    /// `[1, 2, 3, 4]`, from the authors' C implementation.
    #[test]
    fn matches_reference_stream() {
        let mut rng = Xoshiro256pp { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        let mut c = Xoshiro256pp::seed_from_u64(43);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        assert_ne!(rng.s, [0; 4]);
        let draws: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn integer_ranges_cover_uniformly() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.random_range(0..7usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.05, "{counts:?}");
        }
        // Inclusive ranges include both endpoints.
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match rng.random_range(0..=2usize) {
                0 => saw_lo = true,
                2 => saw_hi = true,
                _ => {}
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn negative_and_float_ranges() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn bernoulli_tracks_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let hits = (0..50_000).filter(|_| rng.random_bool(0.3)).count();
        let p = hits as f64 / 50_000.0;
        assert!((p - 0.3).abs() < 0.01, "p {p}");
    }

    #[test]
    fn sample_indices_are_distinct_and_in_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        for _ in 0..100 {
            let idx = sample_indices(&mut rng, 10, 4);
            assert_eq!(idx.len(), 4);
            let set: std::collections::HashSet<_> = idx.iter().collect();
            assert_eq!(set.len(), 4);
            assert!(idx.iter().all(|&i| i < 10));
        }
        assert_eq!(sample_indices(&mut rng, 5, 5).len(), 5);
        assert!(sample_indices(&mut rng, 5, 0).is_empty());
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Xoshiro256pp::seed_from_u64(19);
        let mut v: Vec<usize> = (0..20).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 20-element shuffle staying sorted is ~1e-18");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Xoshiro256pp::seed_from_u64(23);
        let mut child = parent.fork();
        assert_ne!(parent.next_u64(), child.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let _ = rng.random_range(5..5usize);
    }
}
