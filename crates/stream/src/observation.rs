//! The observation tuples flowing through a stream.

/// A single stream observation `<X, y>`: a dense feature vector paired with a
/// discrete class label.
///
/// The paper assumes labels arrive with no delay (Section II), so every
/// observation carries its ground-truth label. The optional
/// [`concept`](Observation::concept) annotation identifies which ground-truth
/// concept generated the observation; it is never shown to a learner and only
/// consumed by the C-F1 evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Dense feature vector `X`.
    pub features: Vec<f64>,
    /// Ground-truth class label `y`.
    pub label: usize,
    /// Ground-truth concept identifier, used only for evaluation.
    pub concept: usize,
}

impl Observation {
    /// Creates an observation without a concept annotation (concept 0).
    pub fn new(features: Vec<f64>, label: usize) -> Self {
        Self { features, label, concept: 0 }
    }

    /// Creates an observation annotated with its generating concept.
    pub fn with_concept(features: Vec<f64>, label: usize, concept: usize) -> Self {
        Self { features, label, concept }
    }

    /// Number of input features `d`.
    pub fn dims(&self) -> usize {
        self.features.len()
    }

    /// Attaches a prediction `l`, producing the `<X, y, l>` triple of
    /// Definition 2.
    pub fn labeled(self, prediction: usize) -> LabeledObservation {
        LabeledObservation { observation: self, prediction }
    }
}

/// A labeled observation `<X, y, l>`: an observation together with the label
/// `l` assigned by an incremental classifier (Definition 2 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledObservation {
    /// The underlying `<X, y>` pair.
    pub observation: Observation,
    /// Label `l` predicted by the classifier associated with the current
    /// concept representation.
    pub prediction: usize,
}

impl LabeledObservation {
    /// Convenience constructor.
    pub fn new(features: Vec<f64>, label: usize, prediction: usize) -> Self {
        Observation::new(features, label).labeled(prediction)
    }

    /// Feature vector `X`.
    pub fn features(&self) -> &[f64] {
        &self.observation.features
    }

    /// Ground-truth label `y`.
    pub fn label(&self) -> usize {
        self.observation.label
    }

    /// Whether the classifier got this observation wrong (`l != y`).
    pub fn is_error(&self) -> bool {
        self.prediction != self.observation.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_roundtrip() {
        let o = Observation::with_concept(vec![1.0, 2.0], 1, 3);
        assert_eq!(o.dims(), 2);
        assert_eq!(o.concept, 3);
        let l = o.clone().labeled(0);
        assert!(l.is_error());
        assert_eq!(l.label(), 1);
        assert_eq!(l.features(), &[1.0, 2.0]);
    }

    #[test]
    fn correct_prediction_is_not_error() {
        let l = LabeledObservation::new(vec![0.5], 2, 2);
        assert!(!l.is_error());
    }

    #[test]
    fn debug_format_includes_concept() {
        let o = Observation::with_concept(vec![1.0], 0, 1);
        assert!(format!("{o:?}").contains("concept: 1"));
    }
}
