//! Online statistics used throughout FiCSUM.
//!
//! Everything here is single-pass, constant-space, as required by the paper's
//! online setting (Section III-A: "this distribution is required to be
//! calculated online in one pass, in constant time and space").

/// Welford's online mean / variance accumulator.
///
/// Tracks count, mean and (population) standard deviation of a sequence of
/// real values in O(1) time and space per update. This is the
/// `(mu, sigma, count)` triple the paper stores per meta-information feature
/// in a concept fingerprint.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulator seeded with a single value.
    pub fn from_value(v: f64) -> Self {
        let mut s = Self::new();
        s.push(v);
        s
    }

    /// Incorporates one value.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }

    /// Number of values seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; 0 when fewer than two values were seen.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample (Bessel-corrected) variance; 0 when fewer than two values.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Resets to empty. Used by fingerprint plasticity events (Section IV).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Incremental central moments up to order four, with exact removal.
///
/// Extends Welford's recurrence to the third and fourth central moment sums
/// (Pébay's one-pass update), and — crucially for sliding windows — supports
/// *downdating*: removing a previously-pushed value in O(1) by running the
/// update in reverse. This lets mean / standard deviation / skew / kurtosis
/// of a window be maintained in O(1) per observation instead of O(w) per
/// fingerprint.
///
/// The accessors apply exactly the same degenerate-input gates as the batch
/// meta-functions in `ficsum-meta` (too-few observations or near-zero
/// variance return 0), so a freshly rebuilt accumulator and the batch path
/// agree to floating-point accumulation error.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    count: u64,
    mean: f64,
    /// Unnormalised central moment sums: `Σ (x - mean)^k`.
    m2: f64,
    m3: f64,
    m4: f64,
}

impl Moments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Incorporates one value (Pébay's update; `m3`/`m4` use the
    /// pre-update lower moments).
    pub fn push(&mut self, x: f64) {
        let n0 = self.count as f64;
        self.count += 1;
        let n = n0 + 1.0;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n0;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Removes a previously-pushed value by inverting the update. The lower
    /// moments must be recovered first (`m2` before `m3` before `m4`) since
    /// each higher-order reversal needs the *old* lower moments.
    ///
    /// Panics when empty. Removing a value that was never pushed silently
    /// corrupts the accumulator, as with any downdating scheme.
    pub fn remove(&mut self, x: f64) {
        assert!(self.count > 0, "cannot remove from an empty Moments");
        if self.count == 1 {
            *self = Self::default();
            return;
        }
        let n = self.count as f64;
        let n0 = n - 1.0;
        let mean_old = (n * self.mean - x) / n0;
        let delta = x - mean_old;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n0;
        let m2_old = self.m2 - term1;
        let m3_old = self.m3 - term1 * delta_n * (n - 2.0) + 3.0 * delta_n * m2_old;
        let m4_old = self.m4
            - term1 * delta_n2 * (n * n - 3.0 * n + 3.0)
            - 6.0 * delta_n2 * m2_old
            + 4.0 * delta_n * m3_old;
        self.count -= 1;
        self.mean = mean_old;
        self.m2 = m2_old;
        self.m3 = m3_old;
        self.m4 = m4_old;
    }

    /// Number of values currently represented.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean; 0 when empty (matching the batch `mean` of an empty slice).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation; 0 with fewer than two values.
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        (self.m2.max(0.0) / self.count as f64).sqrt()
    }

    /// Unnormalised second central moment `Σ (x - mean)²` — the raw sum the
    /// batch autocorrelation uses as its denominator. Exposed ungated so
    /// incremental substitutions can apply the batch functions' own gates.
    pub fn sum_sq_dev(&self) -> f64 {
        self.m2
    }

    /// Standardised skewness `m3 / m2^1.5` (population central moments);
    /// 0 with fewer than three values or near-zero variance.
    pub fn skewness(&self) -> f64 {
        if self.count < 3 {
            return 0.0;
        }
        let n = self.count as f64;
        let m2 = self.m2 / n;
        if m2 <= f64::EPSILON {
            return 0.0;
        }
        (self.m3 / n) / m2.powf(1.5)
    }

    /// Excess kurtosis `m4 / m2^2 - 3`; 0 with fewer than four values or
    /// near-zero variance.
    pub fn kurtosis(&self) -> f64 {
        if self.count < 4 {
            return 0.0;
        }
        let n = self.count as f64;
        let m2 = self.m2 / n;
        if m2 <= f64::EPSILON {
            return 0.0;
        }
        (self.m4 / n) / (m2 * m2) - 3.0
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Exponentially-weighted mean / variance accumulator.
///
/// Tracks the *recent* distribution of a sequence: each update moves the
/// mean by `alpha * (x - mean)` and decays the variance accordingly
/// (effective memory ~ `1/alpha` samples). FiCSUM uses this for the
/// recorded similarity distribution `(mu_c, sigma_c)` — "normal variation in
/// stationary conditions" — which must forget the classifier's training
/// transient rather than average over it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EwStats {
    alpha: f64,
    mean: f64,
    var: f64,
    count: u64,
}

impl EwStats {
    /// Accumulator with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, mean: 0.0, var: 0.0, count: 0 }
    }

    /// Incorporates one value. The first value initialises the mean.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count == 1 {
            self.mean = x;
            self.var = 0.0;
            return;
        }
        let diff = x - self.mean;
        let incr = self.alpha * diff;
        self.mean += incr;
        self.var = (1.0 - self.alpha) * (self.var + diff * incr);
    }

    /// Exponentially-weighted mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Exponentially-weighted variance.
    pub fn variance(&self) -> f64 {
        self.var.max(0.0)
    }

    /// Exponentially-weighted standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Values seen since construction/reset.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Resets to empty, keeping `alpha`.
    pub fn reset(&mut self) {
        *self = Self::new(self.alpha);
    }
}

impl Default for EwStats {
    fn default() -> Self {
        Self::new(0.05)
    }
}

/// Online min–max scaler mapping each observed value into `[0, 1]`.
///
/// The paper scales "the observed range of each meta-information feature ...
/// to the range [0,1]" (Section III-A). The range is learned online: the
/// scaler widens as new extreme values arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMaxScaler {
    min: f64,
    max: f64,
    seen: bool,
}

impl Default for MinMaxScaler {
    fn default() -> Self {
        Self { min: f64::INFINITY, max: f64::NEG_INFINITY, seen: false }
    }
}

impl MinMaxScaler {
    /// New scaler with no observed range.
    pub fn new() -> Self {
        Self::default()
    }

    /// Widens the observed range to include `v`. Non-finite values are
    /// ignored so a single degenerate meta-feature cannot poison the range.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.seen = true;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Scales `v` into `[0, 1]` using the observed range, clamping values
    /// outside it. Returns 0.5 when no range has been observed or the range
    /// is degenerate (min == max), which keeps constant features neutral.
    pub fn scale(&self, v: f64) -> f64 {
        if !self.seen || !v.is_finite() {
            return 0.5;
        }
        let span = self.max - self.min;
        if span <= f64::EPSILON {
            return 0.5;
        }
        ((v - self.min) / span).clamp(0.0, 1.0)
    }

    /// Observes then scales in one call.
    pub fn observe_and_scale(&mut self, v: f64) -> f64 {
        self.observe(v);
        self.scale(v)
    }

    /// Observed minimum (`NaN`-free); `None` before any observation.
    pub fn min(&self) -> Option<f64> {
        self.seen.then_some(self.min)
    }

    /// Observed maximum; `None` before any observation.
    pub fn max(&self) -> Option<f64> {
        self.seen.then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_batch() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for v in data {
            s.push(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let (a, b) = ([1.0, 2.0, 3.0], [10.0, 20.0, 30.0, 40.0]);
        let mut s1 = RunningStats::new();
        let mut s2 = RunningStats::new();
        let mut all = RunningStats::new();
        for v in a {
            s1.push(v);
            all.push(v);
        }
        for v in b {
            s2.push(v);
            all.push(v);
        }
        s1.merge(&s2);
        assert_eq!(s1.count(), all.count());
        assert!((s1.mean() - all.mean()).abs() < 1e-12);
        assert!((s1.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::from_value(3.0);
        s.merge(&RunningStats::new());
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn variance_of_single_value_is_zero() {
        let s = RunningStats::from_value(42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn ew_stats_track_recent_level() {
        let mut s = EwStats::new(0.1);
        for _ in 0..200 {
            s.push(1.0);
        }
        assert!((s.mean() - 1.0).abs() < 1e-9);
        assert!(s.std_dev() < 1e-6);
        // Shift the level: the mean follows within ~3/alpha samples.
        for _ in 0..60 {
            s.push(5.0);
        }
        assert!((s.mean() - 5.0).abs() < 0.05, "mean {} should track", s.mean());
    }

    #[test]
    fn ew_stats_forget_the_transient() {
        // A noisy start followed by a tight regime: cumulative stats would
        // keep a large sigma forever; EW stats shed it.
        let mut ew = EwStats::new(0.05);
        let mut cum = RunningStats::new();
        for i in 0..30 {
            let v = if i % 2 == 0 { 0.5 } else { 1.5 };
            ew.push(v);
            cum.push(v);
        }
        for _ in 0..300 {
            ew.push(1.0);
            cum.push(1.0);
        }
        assert!(ew.std_dev() < 0.05, "EW sigma {} should forget", ew.std_dev());
        assert!(cum.std_dev() > 0.1, "control: cumulative sigma keeps the transient");
    }

    #[test]
    fn ew_stats_first_value_initialises() {
        let mut s = EwStats::new(0.2);
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 1);
        s.reset();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ew_stats_rejects_bad_alpha() {
        let _ = EwStats::new(0.0);
    }

    /// Batch central-moment reference mirroring `ficsum-meta`'s functions.
    fn batch_moments(xs: &[f64]) -> (f64, f64, f64, f64) {
        let n = xs.len();
        if n == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let cm = |k: i32| xs.iter().map(|x| (x - mean).powi(k)).sum::<f64>() / n as f64;
        let (m2, m3, m4) = (cm(2), cm(3), cm(4));
        let sd = if n < 2 { 0.0 } else { m2.sqrt() };
        let skew = if n < 3 || m2 <= f64::EPSILON { 0.0 } else { m3 / m2.powf(1.5) };
        let kurt = if n < 4 || m2 <= f64::EPSILON { 0.0 } else { m4 / (m2 * m2) - 3.0 };
        (mean, sd, skew, kurt)
    }

    #[test]
    fn moments_push_matches_batch() {
        let data = [2.0, -4.0, 4.5, 4.0, 5.0, -5.0, 7.0, 9.25, 0.5, 1.0];
        let mut m = Moments::new();
        for (i, &v) in data.iter().enumerate() {
            m.push(v);
            let (mean, sd, skew, kurt) = batch_moments(&data[..=i]);
            assert!((m.mean() - mean).abs() < 1e-12);
            assert!((m.std_dev() - sd).abs() < 1e-12);
            assert!((m.skewness() - skew).abs() < 1e-10, "skew at {i}");
            assert!((m.kurtosis() - kurt).abs() < 1e-10, "kurt at {i}");
        }
    }

    #[test]
    fn moments_remove_inverts_push() {
        let mut m = Moments::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            m.push(v);
        }
        let snapshot = m;
        m.push(99.0);
        m.remove(99.0);
        assert_eq!(m.count(), snapshot.count());
        assert!((m.mean() - snapshot.mean()).abs() < 1e-12);
        assert!((m.std_dev() - snapshot.std_dev()).abs() < 1e-12);
        assert!((m.skewness() - snapshot.skewness()).abs() < 1e-10);
        assert!((m.kurtosis() - snapshot.kurtosis()).abs() < 1e-10);
    }

    #[test]
    fn moments_sliding_window_stays_accurate() {
        // Simulate a capacity-8 sliding window over a varied signal and
        // compare against batch recomputation at every step.
        let signal: Vec<f64> = (0..300)
            .map(|i| {
                let t = i as f64;
                (t * 0.37).sin() * 3.0 + (t * 0.051).cos() + if i % 7 == 0 { 5.0 } else { 0.0 }
            })
            .collect();
        let w = 8;
        let mut m = Moments::new();
        for i in 0..signal.len() {
            m.push(signal[i]);
            if i >= w {
                m.remove(signal[i - w]);
            }
            let lo = i.saturating_sub(w - 1);
            let (mean, sd, skew, kurt) = batch_moments(&signal[lo..=i]);
            assert!((m.mean() - mean).abs() < 1e-9, "mean at {i}");
            assert!((m.std_dev() - sd).abs() < 1e-9, "sd at {i}");
            assert!((m.skewness() - skew).abs() < 1e-9, "skew at {i}");
            assert!((m.kurtosis() - kurt).abs() < 1e-9, "kurt at {i}");
        }
    }

    #[test]
    fn moments_degenerate_gates_match_batch() {
        let mut m = Moments::new();
        assert_eq!(m.mean(), 0.0);
        m.push(3.0);
        assert_eq!(m.std_dev(), 0.0); // < 2 values
        m.push(4.0);
        assert_eq!(m.skewness(), 0.0); // < 3 values
        m.push(5.0);
        assert_eq!(m.kurtosis(), 0.0); // < 4 values
        // Constant series: near-zero variance gates skew and kurtosis.
        let mut c = Moments::new();
        for _ in 0..10 {
            c.push(1.0);
        }
        assert_eq!(c.skewness(), 0.0);
        assert_eq!(c.kurtosis(), 0.0);
        // Removing down to empty resets cleanly.
        let mut r = Moments::new();
        r.push(7.0);
        r.remove(7.0);
        assert_eq!(r, Moments::new());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn moments_remove_from_empty_panics() {
        let mut m = Moments::new();
        m.remove(1.0);
    }

    #[test]
    fn scaler_maps_range_to_unit_interval() {
        let mut m = MinMaxScaler::new();
        for v in [-2.0, 0.0, 2.0] {
            m.observe(v);
        }
        assert_eq!(m.scale(-2.0), 0.0);
        assert_eq!(m.scale(2.0), 1.0);
        assert_eq!(m.scale(0.0), 0.5);
        // outside the observed range clamps
        assert_eq!(m.scale(5.0), 1.0);
        assert_eq!(m.scale(-5.0), 0.0);
    }

    #[test]
    fn scaler_degenerate_cases() {
        let m = MinMaxScaler::new();
        assert_eq!(m.scale(1.0), 0.5); // nothing observed
        let mut m = MinMaxScaler::new();
        m.observe(3.0);
        assert_eq!(m.scale(3.0), 0.5); // zero-width range
        m.observe(f64::NAN); // ignored
        assert_eq!(m.min(), Some(3.0));
        assert_eq!(m.max(), Some(3.0));
    }
}
