//! Stream sources.
//!
//! A [`StreamSource`] yields [`Observation`]s one at a time. Generators in
//! `ficsum-synth` implement this trait; evaluation code consumes it.

use crate::observation::Observation;

/// A source of stream observations.
///
/// Implementations are pull-based: `next_observation` returns `None` when the
/// stream is exhausted. Finite streams should also report their length via
/// [`StreamSource::remaining_hint`] so harness code can pre-allocate.
pub trait StreamSource {
    /// Number of input features `d` of every observation produced.
    fn dims(&self) -> usize;

    /// Number of distinct class labels.
    fn n_classes(&self) -> usize;

    /// Pulls the next observation, or `None` when exhausted.
    fn next_observation(&mut self) -> Option<Observation>;

    /// Lower bound on remaining observations, when known.
    fn remaining_hint(&self) -> Option<usize> {
        None
    }

    /// Drains the whole stream into a vector.
    fn collect_all(&mut self) -> Vec<Observation>
    where
        Self: Sized,
    {
        let mut out = Vec::with_capacity(self.remaining_hint().unwrap_or(0));
        while let Some(o) = self.next_observation() {
            out.push(o);
        }
        out
    }
}

/// Adapter turning any `StreamSource` into an [`Iterator`].
pub struct StreamIter<S>(pub S);

impl<S: StreamSource> Iterator for StreamIter<S> {
    type Item = Observation;

    fn next(&mut self) -> Option<Observation> {
        self.0.next_observation()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.0.remaining_hint().unwrap_or(0), None)
    }
}

/// A finite, in-memory stream backed by a vector of observations.
///
/// Used for composed recurring-concept streams and in tests.
#[derive(Debug, Clone)]
pub struct VecStream {
    data: Vec<Observation>,
    pos: usize,
    dims: usize,
    n_classes: usize,
}

impl VecStream {
    /// Wraps a vector of observations. `dims` and `n_classes` are inferred
    /// from the data; an empty vector produces an empty zero-dim stream.
    pub fn new(data: Vec<Observation>) -> Self {
        let dims = data.first().map_or(0, Observation::dims);
        let n_classes = data.iter().map(|o| o.label + 1).max().unwrap_or(0);
        Self { data, pos: 0, dims, n_classes }
    }

    /// Wraps a vector with an explicit class count (useful when some labels
    /// do not occur in this particular segment).
    pub fn with_classes(data: Vec<Observation>, n_classes: usize) -> Self {
        let dims = data.first().map_or(0, Observation::dims);
        Self { data, pos: 0, dims, n_classes }
    }

    /// Total number of observations (consumed or not).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the backing vector is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only access to the backing observations.
    pub fn observations(&self) -> &[Observation] {
        &self.data
    }

    /// Rewinds to the beginning.
    pub fn reset(&mut self) {
        self.pos = 0;
    }
}

impl StreamSource for VecStream {
    fn dims(&self) -> usize {
        self.dims
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn next_observation(&mut self) -> Option<Observation> {
        let o = self.data.get(self.pos)?.clone();
        self.pos += 1;
        Some(o)
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.data.len() - self.pos)
    }
}

/// A stream annotated with ground-truth concept segmentation — the interface
/// the evaluation layer uses to compute C-F1.
///
/// `ConceptStream` is intentionally just a marker over `StreamSource`: the
/// concept id travels inside each [`Observation`], so any source whose
/// observations carry meaningful `concept` fields qualifies.
pub trait ConceptStream: StreamSource {
    /// Number of distinct ground-truth concepts in the stream.
    fn n_concepts(&self) -> usize;
}

impl ConceptStream for VecStream {
    fn n_concepts(&self) -> usize {
        self.data.iter().map(|o| o.concept + 1).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(c: usize, y: usize) -> Observation {
        Observation::with_concept(vec![c as f64, 1.0], y, c)
    }

    #[test]
    fn vec_stream_yields_in_order() {
        let mut s = VecStream::new(vec![obs(0, 0), obs(1, 1), obs(2, 0)]);
        assert_eq!(s.dims(), 2);
        assert_eq!(s.n_classes(), 2);
        assert_eq!(s.n_concepts(), 3);
        assert_eq!(s.remaining_hint(), Some(3));
        assert_eq!(s.next_observation().unwrap().concept, 0);
        assert_eq!(s.remaining_hint(), Some(2));
        let rest = s.collect_all();
        assert_eq!(rest.len(), 2);
        assert!(s.next_observation().is_none());
    }

    #[test]
    fn reset_rewinds() {
        let mut s = VecStream::new(vec![obs(0, 0)]);
        assert!(s.next_observation().is_some());
        assert!(s.next_observation().is_none());
        s.reset();
        assert!(s.next_observation().is_some());
    }

    #[test]
    fn iterator_adapter() {
        let s = VecStream::new(vec![obs(0, 0), obs(0, 1)]);
        let labels: Vec<usize> = StreamIter(s).map(|o| o.label).collect();
        assert_eq!(labels, vec![0, 1]);
    }

    #[test]
    fn empty_stream() {
        let mut s = VecStream::new(vec![]);
        assert_eq!(s.dims(), 0);
        assert!(s.is_empty());
        assert!(s.next_observation().is_none());
    }
}
